"""The docs subsystem's gates.

Hand-rolled (AST-based, no linter dependencies) enforcement that the
public API stays documented and the generated registry reference stays
fresh.  The freshness check runs ``repro docs --check`` in a *fresh
interpreter* so registrations made by other test files (e.g. the
``hh_variant`` sweeps) cannot leak into the comparison — the committed
``docs/REGISTRY.md`` must match a pristine import of the library,
which is exactly what CI sees.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import docgen

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestDocstringAudit:
    def test_public_api_is_fully_documented(self):
        assert docgen.audit_docstrings() == []

    def test_registered_callables_are_documented(self):
        assert docgen.audit_registrations() == []

    def test_audit_catches_missing_docstrings(self, tmp_path):
        """The gate itself must bite: a bare public surface fails."""
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Module docstring."""\n'
            "def exposed():\n    pass\n"
            "def _private():\n    pass\n"
            "class Public:\n"
            '    """Documented."""\n'
            "    def method(self):\n        pass\n"
        )
        problems = docgen.audit_file(bad)
        assert [p.split(": ", 1)[1] for p in problems] == [
            "public function exposed has no docstring",
            "public method Public.method has no docstring",
        ]

    def test_audit_requires_module_docstring(self, tmp_path):
        bad = tmp_path / "bare.py"
        bad.write_text("x = 1\n")
        assert docgen.audit_file(bad) == [
            "bare.py: module has no docstring"
        ]


class TestRegistryReference:
    def test_every_registry_is_rendered(self):
        text = docgen.registry_markdown()
        for title, dotted, registry in docgen.DOCUMENTED_REGISTRIES:
            assert f"## {title} (`{dotted}`)" in text
            for key in registry.keys():
                assert f"| `{key}` |" in text

    def test_no_entry_renders_undocumented(self):
        assert "(undocumented)" not in docgen.registry_markdown()

    def test_committed_reference_is_fresh(self):
        """`repro docs --check` must pass against the committed file.

        Runs in a subprocess so this comparison sees the pristine
        registries CI sees, not whatever earlier tests registered.
        """
        out = subprocess.run(
            [sys.executable, "-m", "repro", "docs", "--check"],
            capture_output=True, text=True, cwd=REPO_ROOT,
            env={**os.environ,
                 "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert out.returncode == 0, out.stdout + out.stderr
        assert "docs OK" in out.stdout

    def test_check_flags_a_stale_reference(self, tmp_path):
        stale = tmp_path / "REGISTRY.md"
        stale.write_text("# out of date\n")
        from repro.cli import main

        assert main(["docs", "--check", "--out", str(stale)]) == 2

    def test_regeneration_is_a_no_op_when_fresh(self, tmp_path):
        target = tmp_path / "REGISTRY.md"
        docgen.write_registry_doc(target)
        before = target.read_text()
        docgen.write_registry_doc(target)
        assert target.read_text() == before
        assert docgen.registry_doc_is_fresh(target)


class TestArchitectureDoc:
    @pytest.fixture(scope="class")
    def text(self) -> str:
        return (REPO_ROOT / "docs" / "ARCHITECTURE.md").read_text()

    def test_layer_map_names_every_layer(self, text):
        for layer in ("core/", "workloads/", "api/", "store/", "serving/",
                      "qos/", "analysis/", "perf/", "cli.py"):
            assert layer in text

    def test_paper_artifact_table_is_complete(self, text):
        for artifact in ("Table I", "Table II", "Table III", "Table IV",
                         "Table V", "Table VI", "Fig. 4", "Fig. 5",
                         "Fig. 6"):
            assert artifact in text
        for bench in sorted(
            p.name for p in (REPO_ROOT / "benchmarks").glob("test_bench_*.py")
        ):
            if "ablation" in bench:
                continue  # covered collectively by the ablation row
            assert bench in text, f"{bench} missing from the artifact table"

    def test_differential_convention_is_written_down(self, text):
        for marker in ("REPRO_SCALAR_DP", "REPRO_SCALAR_RUNTIME",
                       "scalar_dp()", "scalar_runtime()", "bit-identical"):
            assert marker in text
