"""Persistent LUT cache: addressing, round-trips, invalidation, engine use."""

from __future__ import annotations

import pickle

import pytest

from repro.api import ExperimentConfig
from repro.api.engine import Engine
from repro.arch import HH_PIM, HYBRID_PIM
from repro.core import lutcache
from repro.workloads import EFFICIENTNET_B0, MOBILENET_V2

TINY = dict(block_count=16, time_steps=1200)


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """A private cache directory with fresh counters for every test."""
    path = tmp_path / "lut-cache"
    monkeypatch.setenv("REPRO_LUT_CACHE", str(path))
    lutcache.stats.reset()
    return path


class TestAddressing:
    def test_fingerprint_is_stable(self):
        assert lutcache.fingerprint(HH_PIM, 1.5) == lutcache.fingerprint(
            HH_PIM, 1.5
        )

    def test_fingerprint_covers_dataclass_fields(self):
        assert lutcache.fingerprint(HH_PIM) != lutcache.fingerprint(HYBRID_PIM)

    def test_fingerprint_covers_float_bits(self):
        assert lutcache.fingerprint(0.1) != lutcache.fingerprint(
            0.1 + 2 ** -40
        )

    def test_fingerprint_distinguishes_types(self):
        assert lutcache.fingerprint(1) != lutcache.fingerprint("1")
        assert lutcache.fingerprint(True) != lutcache.fingerprint(1)

    def test_unknown_objects_rejected(self):
        with pytest.raises(TypeError):
            lutcache.fingerprint(object())


class TestStoreLoad:
    def test_round_trip(self, cache_dir):
        digest = lutcache.fingerprint("round", "trip")
        assert lutcache.store(digest, {"value": [1, 2, 3]})
        assert lutcache.load(digest) == {"value": [1, 2, 3]}
        assert lutcache.stats.writes == 1
        assert lutcache.stats.hits == 1

    def test_missing_entry_is_a_miss(self, cache_dir):
        assert lutcache.load(lutcache.fingerprint("absent")) is None
        assert lutcache.stats.misses == 1

    def test_corrupt_entry_is_a_miss(self, cache_dir):
        digest = lutcache.fingerprint("corrupt")
        lutcache.store(digest, "payload")
        path = lutcache._entry_path(digest)
        path.write_bytes(b"\x80not a pickle")
        assert lutcache.load(digest) is None

    def test_version_skew_is_a_miss(self, cache_dir):
        digest = lutcache.fingerprint("versioned")
        path = lutcache._entry_path(digest)
        path.parent.mkdir(parents=True)
        payload = {
            "version": lutcache.CACHE_VERSION + 1,
            "fingerprint": digest,
            "value": "stale",
        }
        path.write_bytes(pickle.dumps(payload))
        assert lutcache.load(digest) is None

    def test_fingerprint_mismatch_is_a_miss(self, cache_dir):
        digest = lutcache.fingerprint("original")
        lutcache.store(digest, "payload")
        other = lutcache.fingerprint("other")
        lutcache._entry_path(digest).rename(lutcache._entry_path(other))
        assert lutcache.load(other) is None

    def test_concurrent_writers_last_wins(self, cache_dir):
        digest = lutcache.fingerprint("raced")
        assert lutcache.store(digest, "first")
        assert lutcache.store(digest, "second")
        assert lutcache.load(digest) == "second"
        assert not list(cache_dir.glob("**/*.tmp"))

    def test_fetch_or_build_builds_once(self, cache_dir):
        built = []

        def builder():
            built.append(1)
            return "expensive"

        key = ("unit", 1)
        value, source = lutcache.fetch_or_build(key, builder)
        assert (value, source) == ("expensive", "stored")
        value, source = lutcache.fetch_or_build(key, builder)
        assert (value, source) == ("expensive", "disk")
        assert built == [1]


class TestMaintenance:
    def test_info_and_clear(self, cache_dir):
        for index in range(3):
            lutcache.store(lutcache.fingerprint("entry", index), index)
        state = lutcache.info()
        assert state["entries"] == 3
        assert state["bytes"] > 0
        assert state["path"] == str(cache_dir)
        assert lutcache.clear() == 3
        assert lutcache.info()["entries"] == 0

    def test_disabled_by_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", "off")
        assert not lutcache.enabled()
        monkeypatch.setenv("REPRO_LUT_CACHE", "0")
        assert not lutcache.enabled()
        monkeypatch.delenv("REPRO_LUT_CACHE")
        assert lutcache.enabled()


class TestEngineIntegration:
    def test_runtime_round_trips_through_disk(self, cache_dir):
        config = ExperimentConfig(**TINY)
        built = Engine().runtime(config)
        served = Engine().runtime(config)
        assert served.lut.candidates == built.lut.candidates
        assert served.t_slice_ns == built.t_slice_ns

    def test_second_engine_rebuilds_nothing(self, cache_dir):
        config = ExperimentConfig(**TINY)
        first = Engine()
        first.runtime(config)
        assert first.stats.dp_builds > 0
        second = Engine()
        second.runtime(config)
        assert second.stats.dp_builds == 0
        assert second.stats.lut_disk_hits > 0

    def test_resolution_change_invalidates(self, cache_dir):
        first = Engine()
        first.runtime(ExperimentConfig(**TINY))
        second = Engine()
        second.runtime(ExperimentConfig(block_count=18, time_steps=1200))
        assert second.stats.dp_builds > 0

    def test_model_change_invalidates(self, cache_dir):
        first = Engine()
        first.runtime(ExperimentConfig(model=EFFICIENTNET_B0.name, **TINY))
        second = Engine()
        second.runtime(ExperimentConfig(model=MOBILENET_V2.name, **TINY))
        assert second.stats.dp_builds > 0

    def test_config_knob_disables_cache(self, cache_dir):
        config = ExperimentConfig(lut_cache=False, **TINY)
        engine = Engine()
        engine.runtime(config)
        assert engine.stats.lut_disk_writes == 0
        assert not list(cache_dir.glob("**/*.pkl"))

    def test_engine_flag_disables_cache(self, cache_dir):
        engine = Engine(use_disk_cache=False)
        engine.runtime(ExperimentConfig(**TINY))
        assert engine.stats.lut_disk_writes == 0
        assert not list(cache_dir.glob("**/*.pkl"))

    def test_environment_off_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", "off")
        engine = Engine()
        engine.runtime(ExperimentConfig(**TINY))
        assert engine.stats.lut_disk_writes == 0
        assert engine.stats.dp_builds > 0

    def test_unwritable_cache_degrades_gracefully(self, tmp_path, monkeypatch):
        # A regular file where a directory is needed defeats mkdir even
        # for privileged test runners (chmod tricks don't stop root).
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        monkeypatch.setenv("REPRO_LUT_CACHE", str(blocker / "cache"))
        lutcache.stats.reset()
        engine = Engine()
        runtime = engine.runtime(ExperimentConfig(**TINY))
        assert runtime.lut is not None
        assert lutcache.stats.write_failures > 0
