"""QoS determinism: seed + config fully determine every series.

Two runs of the same config must produce bit-identical percentile / SLO
/ scaling series — across simulator instances, across the engine, and
across the CLI (``repro qos --json``), which shares nothing with the
in-process run but the config.
"""

import json

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig
from repro.cli import main

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)

#: A bursty-MMPP scenario with the autoscaler engaged — the acceptance
#: shape: queueing, scaling and SLO misses all in play.
CONFIG = dict(
    scenario="bursty", fleet=1, max_fleet=4, autoscaler="queue_depth",
    qos="edf", batch=2, slices=25, seed=7, **TINY,
)


def test_identical_runs_are_bit_identical():
    engine = Engine(use_disk_cache=False)
    config = ExperimentConfig(**CONFIG)
    one = engine.run_qos(config)
    two = engine.run_qos(config)
    assert one.to_dict(include_records=True) == two.to_dict(
        include_records=True
    )
    # the tuples themselves compare equal, not just the exports
    assert one.slices == two.slices


def test_fresh_engine_reproduces_the_series():
    one = Engine(use_disk_cache=False).run_qos(ExperimentConfig(**CONFIG))
    two = Engine(use_disk_cache=False).run_qos(ExperimentConfig(**CONFIG))
    assert one.to_dict() == two.to_dict()


def test_seed_changes_the_series():
    engine = Engine(use_disk_cache=False)
    base = engine.run_qos(ExperimentConfig(**CONFIG))
    other = engine.run_qos(ExperimentConfig(**{**CONFIG, "seed": 8}))
    assert base.to_dict() != other.to_dict()


def test_run_qos_matches_cli_json(capsys):
    """`repro qos --json` emits the exact series `Engine.run_qos` computes."""
    config = ExperimentConfig(**CONFIG)
    expected = Engine(use_disk_cache=False).run_qos(config).to_dict()

    code = main([
        "qos",
        "--scenario", "bursty",
        "--devices", "1",
        "--max-devices", "4",
        "--autoscaler", "queue_depth",
        "--discipline", "edf",
        "--batch", "2",
        "--slices", "25",
        "--seed", "7",
        "--blocks", str(SMALL_BLOCKS),
        "--steps", str(SMALL_STEPS),
        "--json",
    ])
    assert code == 0
    emitted = json.loads(capsys.readouterr().out)

    # the acceptance surface: percentiles, misses, attainment, scaling
    for key in (
        "p50_ns", "p95_ns", "p99_ns", "deadline_miss_rate",
        "slo_attainment", "mean_fleet_size", "total_energy_nj",
        "completed", "unfinished",
    ):
        assert emitted[key] == expected[key], key
    assert emitted["slices"] == expected["slices"]
    assert emitted["autoscaler"] == "queue_depth"
    assert emitted["discipline"] == "edf"
    # the run actually produced latency numbers
    assert emitted["p95_ns"] is not None
    assert emitted["p95_ns"] >= emitted["p50_ns"]
    assert 0.0 <= emitted["deadline_miss_rate"] <= 1.0
    assert 0.0 <= emitted["slo_attainment"] <= 1.0


def test_interleaved_runs_do_not_contaminate():
    """Stateful pieces (policies, autoscalers) are rebuilt per run."""
    engine = Engine(use_disk_cache=False)
    config = ExperimentConfig(**CONFIG)
    first = engine.run_qos(config)
    engine.run_qos(ExperimentConfig(**{**CONFIG, "qos": "fifo", "seed": 9}))
    third = engine.run_qos(config)
    assert first.to_dict() == third.to_dict()


@pytest.mark.parametrize("discipline", ["fifo", "priority", "edf"])
def test_every_discipline_is_deterministic(discipline):
    engine = Engine(use_disk_cache=False)
    config = ExperimentConfig(**{**CONFIG, "qos": discipline})
    assert (
        engine.run_qos(config).to_dict() == engine.run_qos(config).to_dict()
    )
