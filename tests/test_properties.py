"""Property-based tests (hypothesis) on core invariants."""


import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.knapsack import knapsack_min_energy, reconstruct_counts
from repro.core.spaces import SpaceKind
from repro.isa import ClusterId, Compute, ComputeOp, LoadOperands, decode
from repro.memory import MemoryBank, SRAM_45NM, STT_MRAM_45NM
from repro.pe.mac import int8_mac, requantize, saturate_int8
from repro.riscv import asm, Cpu, MmioBus, RamRegion
from tests.test_core_knapsack import brute_force, space


# --- Knapsack DP vs brute force ------------------------------------------------

@st.composite
def dp_instances(draw):
    n_spaces = draw(st.integers(1, 3))
    kinds = [SpaceKind.HP_SRAM, SpaceKind.HP_MRAM, SpaceKind.LP_SRAM]
    spaces = []
    for i in range(n_spaces):
        spaces.append(
            space(
                kinds[i],
                t=draw(st.integers(1, 4)),
                e=draw(st.integers(1, 20)),
                capacity=draw(st.integers(1, 6)),
            )
        )
    blocks = draw(st.integers(1, 5))
    t_steps = draw(st.integers(1, 12))
    return spaces, blocks, t_steps


@given(dp_instances())
@settings(max_examples=60, deadline=None)
def test_dp_matches_brute_force(instance):
    spaces, blocks, t_steps = instance
    result = knapsack_min_energy(spaces, t_steps=t_steps, max_blocks=blocks,
                                 time_step_ns=1.0)
    for t in range(t_steps + 1):
        expected = brute_force(spaces, t, blocks)
        got = result.dp[-1, t, blocks]
        if expected is None:
            assert np.isinf(got)
        else:
            assert got == np.float64(expected) or abs(got - expected) < 1e-9


@given(dp_instances())
@settings(max_examples=40, deadline=None)
def test_dp_reconstruction_is_consistent(instance):
    spaces, blocks, t_steps = instance
    result = knapsack_min_energy(spaces, t_steps=t_steps, max_blocks=blocks,
                                 time_step_ns=1.0)
    for t in range(t_steps + 1):
        if not np.isfinite(result.dp[-1, t, blocks]):
            continue
        counts = reconstruct_counts(result, t, blocks)
        assert sum(counts.values()) == blocks
        # The reconstructed placement respects capacity and time.
        by_kind = {s.kind: s for s in spaces}
        time = 0
        energy = 0.0
        for kind, taken in counts.items():
            assert taken <= by_kind[kind].capacity_blocks
            time += taken * by_kind[kind].time_per_block_ns
            energy += taken * by_kind[kind].energy_per_block_nj
        assert time <= t + 1e-9
        assert energy == np.float64(result.dp[-1, t, blocks]) or (
            abs(energy - result.dp[-1, t, blocks]) < 1e-9
        )


@given(dp_instances())
@settings(max_examples=30, deadline=None)
def test_dp_monotone_in_budget(instance):
    spaces, blocks, t_steps = instance
    result = knapsack_min_energy(spaces, t_steps=t_steps, max_blocks=blocks,
                                 time_step_ns=1.0)
    row = result.dp[-1, :, blocks]
    finite = row[np.isfinite(row)]
    assert np.all(np.diff(finite) <= 1e-9)


# --- Memory bank round-trips ------------------------------------------------------

@given(
    offset=st.integers(0, 200),
    payload=st.binary(min_size=1, max_size=55),
)
@settings(max_examples=50, deadline=None)
def test_bank_roundtrip(offset, payload):
    bank = MemoryBank(name="t", technology=SRAM_45NM,
                      capacity_bytes=256, vdd=1.2)
    bank.write(offset, payload)
    assert bank.read(offset, len(payload)) == payload


@given(payload=st.binary(min_size=1, max_size=32))
@settings(max_examples=30, deadline=None)
def test_mram_survives_gating(payload):
    bank = MemoryBank(name="t", technology=STT_MRAM_45NM,
                      capacity_bytes=64, vdd=0.8)
    bank.write(0, payload)
    bank.power_off()
    bank.power_on()
    assert bank.read(0, len(payload)) == payload


# --- ISA encode/decode -------------------------------------------------------------

@given(
    cluster=st.sampled_from(list(ClusterId)),
    module=st.integers(0, 15),
    op=st.sampled_from(list(ComputeOp)),
    count=st.integers(0, (1 << 20) - 1),
)
@settings(max_examples=80, deadline=None)
def test_compute_roundtrip(cluster, module, op, count):
    instruction = Compute(cluster, module, op=op, count=count)
    assert decode(instruction.encode()) == instruction


@given(
    cluster=st.sampled_from(list(ClusterId)),
    module=st.integers(0, 15),
    mram=st.integers(0, 1023),
    sram=st.integers(0, 1023),
)
@settings(max_examples=80, deadline=None)
def test_load_roundtrip(cluster, module, mram, sram):
    instruction = LoadOperands(cluster, module, mram_count=mram, sram_count=sram)
    assert decode(instruction.encode()) == instruction


# --- INT8 arithmetic ----------------------------------------------------------------

@given(st.integers(-128, 127), st.integers(-128, 127),
       st.integers(-(2**31), 2**31 - 1))
@settings(max_examples=100, deadline=None)
def test_mac_matches_clamped_python(w, a, acc):
    expected = max(-(2**31), min(2**31 - 1, acc + w * a))
    assert int8_mac(acc, w, a) == expected


@given(st.integers(-(2**20), 2**20), st.integers(1, 8), st.integers(0, 16))
@settings(max_examples=100, deadline=None)
def test_requantize_bounded(value, num, shift):
    result = requantize(value, num, shift)
    assert -128 <= result <= 127
    assert result == saturate_int8(result)


# --- RISC-V ALU vs Python semantics ----------------------------------------------------

@given(st.integers(-1000, 1000), st.integers(-1000, 1000))
@settings(max_examples=25, deadline=None)
def test_riscv_add_sub_match_python(a, b):
    bus = MmioBus()
    ram = bus.map(RamRegion(0, 64 * 1024))
    ram.load_blob(0, asm(f"""
        li a0, {a}
        li a1, {b}
        add a2, a0, a1
        sub a3, a0, a1
        mul a4, a0, a1
        ebreak
    """).to_bytes())
    cpu = Cpu(bus)
    cpu.run()
    mask = 0xFFFFFFFF
    assert cpu.state.read(12) == (a + b) & mask
    assert cpu.state.read(13) == (a - b) & mask
    assert cpu.state.read(14) == (a * b) & mask


# --- LUT monotonicity over the real optimizer ----------------------------------------

def test_lut_selected_energy_monotone(hh_lut):
    window = hh_lut.t_max_ns
    budgets = np.linspace(hh_lut.min_feasible_t_ns, window, 60)
    energies = [
        hh_lut.lookup(b, window_ns=window).task_energy_nj(window)
        for b in budgets
    ]
    assert all(b <= a + 1e-6 for a, b in zip(energies, energies[1:]))


def test_lut_task_times_within_budget(hh_lut):
    budgets = np.linspace(hh_lut.min_feasible_t_ns, hh_lut.t_max_ns, 40)
    for budget in budgets:
        placement = hh_lut.lookup(budget)
        assert placement.task_time_ns <= budget + 1e-6
