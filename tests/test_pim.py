"""Unit tests for PIM modules and clusters."""

import pytest

from repro.errors import ConfigurationError
from repro.isa.encoding import ClusterId
from repro.memory.hybrid import BankKind
from repro.pim import ModuleKind, PIMCluster, PIMModule


def make_module(kind=ModuleKind.HP, **kwargs):
    return PIMModule(name="m0", kind=kind, mram_capacity=1024,
                     sram_capacity=1024, **kwargs)


class TestPIMModule:
    def test_vdd_follows_kind(self):
        assert make_module(ModuleKind.HP).memory.vdd == 1.2
        assert make_module(ModuleKind.LP).memory.vdd == 0.8

    def test_mac_time_sram(self):
        module = make_module()
        sram = module.memory.bank(BankKind.SRAM)
        expected = sram.read_latency_ns + module.pe.mac_latency_ns
        assert module.mac_time_ns(BankKind.SRAM) == pytest.approx(expected)

    def test_mac_time_mram_waits_for_slower_stream(self):
        module = make_module()
        mram = module.memory.bank(BankKind.MRAM)
        expected = mram.read_latency_ns + module.pe.mac_latency_ns
        assert module.mac_time_ns(BankKind.MRAM) == pytest.approx(expected)

    def test_mac_dynamic_energy_components(self):
        module = make_module()
        mram = module.memory.bank(BankKind.MRAM)
        sram = module.memory.bank(BankKind.SRAM)
        expected = (mram.read_energy_nj + sram.read_energy_nj
                    + module.pe.mac_energy_nj)
        assert module.mac_dynamic_energy_nj(BankKind.MRAM) == pytest.approx(expected)

    def test_compute_dot_functional(self):
        module = make_module()
        weights = bytes([1, 2, 3, 0xFF])        # 0xFF = -1 signed
        activations = bytes([10, 20, 30, 40])
        module.write_weights(BankKind.MRAM, 0, weights)
        module.write_activations(0, activations)
        result, elapsed = module.compute_dot(BankKind.MRAM, 0, 0, 4)
        assert result == 1 * 10 + 2 * 20 + 3 * 30 + (-1) * 40
        assert elapsed > 0

    def test_compute_dot_matches_run_macs_timing(self):
        functional = make_module()
        fast = make_module()
        functional.write_weights(BankKind.SRAM, 0, bytes(8))
        functional.write_activations(8, bytes(8))
        _, elapsed = functional.compute_dot(BankKind.SRAM, 0, 8, 8)
        assert fast.run_macs(8, BankKind.SRAM) == pytest.approx(elapsed)

    def test_run_macs_zero(self):
        assert make_module().run_macs(0, BankKind.SRAM) == 0.0

    def test_run_macs_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            make_module().run_macs(-1, BankKind.SRAM)

    def test_gate_targets(self):
        module = make_module()
        module.gate("sram")
        assert not module.memory.bank(BankKind.SRAM).powered
        assert module.memory.bank(BankKind.MRAM).powered
        module.ungate("all")
        assert module.memory.bank(BankKind.SRAM).powered
        assert module.pe.powered

    def test_bad_gate_target(self):
        with pytest.raises(ConfigurationError):
            make_module().gate("dram")

    def test_energy_breakdown(self):
        module = make_module()
        module.run_macs(10, BankKind.SRAM)
        energy = module.energy()
        assert energy.memory_dynamic_nj > 0
        assert energy.pe_dynamic_nj > 0
        assert energy.total_nj == pytest.approx(
            energy.memory_dynamic_nj + energy.memory_static_nj
            + energy.pe_dynamic_nj + energy.pe_static_nj
        )

    def test_reset_stats(self):
        module = make_module()
        module.run_macs(5, BankKind.MRAM)
        module.reset_stats()
        assert module.energy().total_nj == 0.0
        assert module.busy_time_ns == 0.0


class TestPIMCluster:
    def make(self, count=4, kind=ModuleKind.HP):
        return PIMCluster(
            cluster_id=ClusterId.HP if kind is ModuleKind.HP else ClusterId.LP,
            kind=kind, module_count=count,
            mram_capacity=1024, sram_capacity=1024,
        )

    def test_split_macs_even(self):
        assert self.make(4).split_macs(8) == [2, 2, 2, 2]

    def test_split_macs_remainder_front_loaded(self):
        assert self.make(4).split_macs(10) == [3, 3, 2, 2]

    def test_split_macs_zero(self):
        assert self.make(4).split_macs(0) == [0, 0, 0, 0]

    def test_split_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            self.make().split_macs(-1)

    def test_run_macs_parallel_speedup(self):
        single = self.make(1)
        quad = self.make(4)
        t1 = single.run_macs(100, BankKind.SRAM)
        t4 = quad.run_macs(100, BankKind.SRAM)
        assert t4 == pytest.approx(t1 * 25 / 100)

    def test_run_mixed_macs_serializes_banks(self):
        cluster = self.make(1)
        mixed = cluster.run_mixed_macs(10, 10)
        only = self.make(1)
        expected = (only.run_macs(10, BankKind.MRAM)
                    + only.run_macs(10, BankKind.SRAM))
        assert mixed == pytest.approx(expected)

    def test_module_index_bounds(self):
        cluster = self.make(2)
        with pytest.raises(ConfigurationError):
            cluster.module(2)

    def test_bank_capacity(self):
        assert self.make(4).bank_capacity(BankKind.SRAM) == 4 * 1024

    def test_gate_all(self):
        cluster = self.make(2)
        cluster.gate_all("pe")
        assert all(not m.pe.powered for m in cluster.modules)

    def test_total_energy_accumulates(self):
        cluster = self.make(2)
        assert cluster.total_energy_nj() == 0.0
        cluster.run_macs(10, BankKind.SRAM)
        assert cluster.total_energy_nj() > 0

    def test_needs_positive_module_count(self):
        with pytest.raises(ConfigurationError):
            PIMCluster(ClusterId.HP, ModuleKind.HP, module_count=0)

    def test_lp_cluster_slower(self):
        hp = self.make(4, ModuleKind.HP)
        lp = self.make(4, ModuleKind.LP)
        assert lp.mac_time_ns(BankKind.SRAM) > hp.mac_time_ns(BankKind.SRAM)
