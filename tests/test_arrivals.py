"""Tests for the arrival-process scenario DSL."""

import json

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ALL_CASES,
    ArrivalProcess,
    Scenario,
    ScenarioCase,
    bursty,
    constant,
    diurnal,
    load_trace,
    periodic_spike,
    poisson,
    pulsing,
    scenario,
    scenario_from_trace,
    trace,
    uniform,
)


class TestGenerators:
    def test_constant(self):
        sc = constant(3).materialize(slices=10)
        assert sc.loads == (3,) * 10

    def test_periodic_spike_matches_case3(self):
        preset = scenario(ScenarioCase.PERIODIC_SPIKE, slices=50)
        dsl = periodic_spike(period=10, baseline=2, spike=10).materialize(
            slices=50
        )
        assert dsl.loads == preset.loads

    def test_pulsing_matches_case5(self):
        preset = scenario(ScenarioCase.PULSING, slices=30)
        dsl = pulsing(high_len=5, low_len=5, high=10, low=2).materialize(
            slices=30
        )
        assert dsl.loads == preset.loads

    def test_uniform_matches_case6(self):
        preset = scenario(ScenarioCase.RANDOM, slices=50, seed=11)
        dsl = uniform(2, 10).materialize(slices=50, seed=11)
        assert dsl.loads == preset.loads

    def test_poisson_seeded_and_bounded(self):
        a = poisson(4.0).materialize(slices=200, peak=10, seed=5)
        b = poisson(4.0).materialize(slices=200, peak=10, seed=5)
        c = poisson(4.0).materialize(slices=200, peak=10, seed=6)
        assert a.loads == b.loads != c.loads
        assert all(0 <= load <= 10 for load in a.loads)
        assert 2.0 < a.mean_load < 6.0

    def test_bursty_has_calm_and_burst_phases(self):
        sc = bursty(calm_rate=1.0, burst_rate=9.0).materialize(
            slices=400, peak=10, seed=3
        )
        assert min(sc.loads) <= 2
        assert max(sc.loads) >= 7

    def test_diurnal_starts_at_trough_and_crests(self):
        sc = diurnal(trough=1, crest=9).materialize(slices=48, seed=0)
        assert sc.loads[0] == 1
        assert max(sc.loads) == 9
        # crest lands mid-period
        assert sc.loads[24] == 9

    def test_generator_parameter_validation(self):
        with pytest.raises(WorkloadError):
            periodic_spike(period=0)
        with pytest.raises(WorkloadError):
            poisson(0.0)
        with pytest.raises(WorkloadError):
            bursty(p_burst=1.5)
        with pytest.raises(WorkloadError):
            pulsing(high_len=0)


class TestMaterialize:
    def test_clamps_to_peak_envelope(self):
        sc = constant(99).materialize(slices=5, peak=10)
        assert sc.loads == (10,) * 5

    def test_length_alias(self):
        assert len(constant(2).materialize(length=7)) == 7
        assert len(constant(2).materialize()) == 50
        assert len(constant(2).materialize(slices=7, length=7)) == 7
        with pytest.raises(WorkloadError, match="conflicting lengths"):
            constant(2).materialize(slices=5, length=7)
        with pytest.raises(WorkloadError, match="conflicting lengths"):
            # an explicit slices= that spells the default still conflicts
            constant(2).materialize(slices=50, length=60)

    def test_invalid_slices_and_peak(self):
        with pytest.raises(WorkloadError, match="length must be a positive"):
            constant(2).materialize(slices=0)
        with pytest.raises(WorkloadError, match="peak must be a positive"):
            constant(2).materialize(peak=0)

    def test_named_scenario(self):
        sc = poisson(3.0).materialize(slices=5, name="my-traffic")
        assert sc.label == "my-traffic"
        assert sc.case is None

    def test_base_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ArrivalProcess().materialize(slices=2)


class TestCombinators:
    def test_scaled(self):
        sc = constant(4).scaled(2.0).materialize(slices=4, peak=10)
        assert sc.loads == (8,) * 4

    def test_clipped(self):
        sc = constant(9).clipped(high=5).materialize(slices=4, peak=10)
        assert sc.loads == (5,) * 4

    def test_then_concatenates(self):
        sc = constant(1).then(constant(9), at=0.5).materialize(slices=10)
        assert sc.loads == (1,) * 5 + (9,) * 5

    def test_overlay_sums(self):
        sc = (constant(2) + constant(3)).materialize(slices=4)
        assert sc.loads == (5,) * 4

    def test_combinator_validation(self):
        with pytest.raises(WorkloadError):
            constant(2).scaled(-1.0)
        with pytest.raises(WorkloadError):
            constant(2).clipped(low=5, high=1)
        with pytest.raises(WorkloadError):
            constant(2).then(constant(3), at=1.5)


class TestTraceReplay:
    def test_inline_trace_cycles(self):
        sc = trace([1, 2, 3]).materialize(slices=7)
        assert sc.loads == (1, 2, 3, 1, 2, 3, 1)

    def test_trace_validation(self):
        with pytest.raises(WorkloadError):
            trace([])
        with pytest.raises(WorkloadError, match="position 1"):
            trace([1, -2])

    def test_json_trace(self, tmp_path):
        path = tmp_path / "loads.json"
        path.write_text(json.dumps([2, 4, 6]))
        sc = scenario_from_trace(path)
        assert sc.loads == (2, 4, 6)
        assert sc.label == "loads"

    def test_json_trace_object_form(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps({"loads": [1, 1, 5]}))
        assert scenario_from_trace(path).loads == (1, 1, 5)

    def test_csv_trace_with_header(self, tmp_path):
        path = tmp_path / "loads.csv"
        path.write_text("slice,load\n0,3\n1,7\n")
        assert scenario_from_trace(path).loads == (3, 7)

    def test_trace_errors(self, tmp_path):
        with pytest.raises(WorkloadError, match="cannot read"):
            load_trace(tmp_path / "missing.json")
        bad = tmp_path / "bad.csv"
        bad.write_text("a\nnot-a-number\n")
        with pytest.raises(WorkloadError, match="not a number"):
            load_trace(bad)
        wrong = tmp_path / "loads.txt"
        wrong.write_text("1 2 3")
        with pytest.raises(WorkloadError, match=".json or .csv"):
            load_trace(wrong)
        empty = tmp_path / "empty.json"
        empty.write_text(json.dumps({"rows": []}))
        with pytest.raises(WorkloadError, match="'loads' key"):
            load_trace(empty)


class TestScenarioHelpers:
    def test_with_length_cycles_and_truncates(self):
        sc = Scenario(loads=(1, 2, 3), peak=10)
        assert sc.with_length(5).loads == (1, 2, 3, 1, 2)
        assert sc.with_length(2).loads == (1, 2)
        with pytest.raises(WorkloadError):
            sc.with_length(0)

    def test_with_peak_refuses_silent_sheds(self):
        sc = Scenario(loads=(2, 8), peak=10)
        with pytest.raises(WorkloadError, match="pass clamp=True"):
            sc.with_peak(5)
        assert sc.with_peak(5, clamp=True).loads == (2, 5)
        assert sc.with_peak(20).peak == 20

    def test_scenario_concat_and_overlay(self):
        a = Scenario(loads=(1, 2), peak=5, name="a")
        b = Scenario(loads=(3, 3), peak=10, name="b")
        both = a + b
        assert both.loads == (1, 2, 3, 3) and both.peak == 10
        mixed = a.overlay(b)
        assert mixed.loads == (4, 5)
        with pytest.raises(WorkloadError, match="lengths differ"):
            a.overlay(Scenario(loads=(1,), peak=5))

    def test_validation_messages_name_the_slice(self):
        with pytest.raises(WorkloadError, match="slice 1: load 11"):
            Scenario(loads=(2, 11), peak=10)
        with pytest.raises(WorkloadError, match="slice 0: load must be"):
            Scenario(loads=(2.5,), peak=10)

    def test_scenario_factory_length_alias(self):
        assert len(scenario(ScenarioCase.LOW_CONSTANT, length=12)) == 12
        with pytest.raises(WorkloadError, match="conflicting lengths"):
            scenario(ScenarioCase.LOW_CONSTANT, slices=5, length=12)

    def test_fig4_presets_keep_their_case(self):
        for case in ALL_CASES:
            sc = scenario(case, slices=10)
            assert sc.case is case
            assert sc.label == case.label

    def test_to_dict(self):
        sc = scenario(ScenarioCase.PULSING, slices=10)
        data = sc.to_dict()
        assert data["case"] == 5
        assert data["slices"] == 10
        assert data["loads"] == list(sc.loads)
