"""Unit tests for the request-level QoS subsystem."""

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import AUTOSCALERS, Engine, ExperimentConfig, QOS
from repro.errors import ConfigurationError, QoSError, ServingError
from repro.qos import (
    BUILTIN_AUTOSCALERS,
    BUILTIN_DISCIPLINES,
    DEFAULT_CLASSES,
    INTERACTIVE_MIX,
    EarliestDeadline,
    Fifo,
    Fixed,
    Priority,
    QoSSimulator,
    QueueDepthTarget,
    RequestClass,
    ScaleObservation,
    SloAccountant,
    Threshold,
    make_autoscaler,
    make_discipline,
    percentile,
    sample_requests,
)
from repro.workloads import ScenarioCase, bursty, scenario

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)


@pytest.fixture(scope="module")
def hh_runtime():
    engine = Engine(use_disk_cache=False)
    return engine.runtime(ExperimentConfig(**TINY))


class TestSampleRequests:
    def test_counts_match_scenario(self, hh_runtime):
        scn = scenario(ScenarioCase.RANDOM, slices=25)
        requests = sample_requests(scn, hh_runtime.t_slice_ns, seed=3)
        assert len(requests) == scn.total_inferences
        per_slice = [0] * len(scn)
        for request in requests:
            per_slice[request.slice_index] += 1
        assert per_slice == list(scn.loads)

    def test_arrivals_sorted_within_window(self, hh_runtime):
        t = hh_runtime.t_slice_ns
        scn = scenario(ScenarioCase.HIGH_CONSTANT, slices=5)
        requests = sample_requests(scn, t, seed=0)
        for request in requests:
            low = request.slice_index * t
            assert low <= request.arrival_ns < low + t
            assert request.deadline_ns == pytest.approx(
                request.arrival_ns + 2 * t
            )
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)

    def test_seed_determinism(self, hh_runtime):
        scn = bursty().materialize(slices=30, peak=10, seed=5)
        one = sample_requests(scn, hh_runtime.t_slice_ns, seed=11)
        two = sample_requests(scn, hh_runtime.t_slice_ns, seed=11)
        other = sample_requests(scn, hh_runtime.t_slice_ns, seed=12)
        assert one == two
        assert one != other

    def test_class_mix(self, hh_runtime):
        scn = scenario(ScenarioCase.HIGH_CONSTANT, slices=30)
        requests = sample_requests(
            scn, hh_runtime.t_slice_ns, seed=1, classes=INTERACTIVE_MIX
        )
        names = {request.cls.name for request in requests}
        assert names == {"interactive", "batch"}

    def test_validation(self, hh_runtime):
        scn = scenario(ScenarioCase.LOW_CONSTANT, slices=3)
        with pytest.raises(QoSError, match="t_slice_ns"):
            sample_requests(scn, 0.0)
        with pytest.raises(QoSError, match="deadline_slices"):
            sample_requests(scn, 1e6, deadline_slices=0)
        with pytest.raises(QoSError, match="at least one"):
            sample_requests(scn, 1e6, classes=())
        with pytest.raises(QoSError, match="slo_factor"):
            RequestClass("bad", slo_factor=0)
        with pytest.raises(QoSError, match="weight"):
            RequestClass("bad", weight=-1)


class TestDisciplines:
    def _requests(self, hh_runtime):
        scn = scenario(ScenarioCase.HIGH_CONSTANT, slices=2)
        return sample_requests(
            scn, hh_runtime.t_slice_ns, seed=2, classes=INTERACTIVE_MIX
        )

    def test_fifo_orders_by_arrival(self, hh_runtime):
        requests = sorted(
            self._requests(hh_runtime), key=Fifo().key
        )
        arrivals = [r.arrival_ns for r in requests]
        assert arrivals == sorted(arrivals)

    def test_priority_groups_classes(self, hh_runtime):
        requests = sorted(self._requests(hh_runtime), key=Priority().key)
        priorities = [r.cls.priority for r in requests]
        assert priorities == sorted(priorities)

    def test_edf_orders_by_deadline(self, hh_runtime):
        requests = sorted(
            self._requests(hh_runtime), key=EarliestDeadline().key
        )
        deadlines = [r.deadline_ns for r in requests]
        assert deadlines == sorted(deadlines)

    def test_make_discipline_coercions(self):
        assert isinstance(make_discipline("fifo"), Fifo)
        assert isinstance(make_discipline(Priority), Priority)
        edf = EarliestDeadline()
        assert make_discipline(edf) is edf
        with pytest.raises(QoSError, match="unknown queue discipline"):
            make_discipline("nope")
        with pytest.raises(QoSError, match="must be a name"):
            make_discipline(42)

    def test_builtins_registered_in_api(self):
        for name in BUILTIN_DISCIPLINES:
            assert name in QOS
        for name in BUILTIN_AUTOSCALERS:
            assert name in AUTOSCALERS


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.95) == 95
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100
        assert percentile([7], 0.5) == 7
        assert percentile([], 0.5) is None
        with pytest.raises(QoSError, match="rank"):
            percentile(values, 0.0)

    def test_accountant_streams(self):
        accountant = SloAccountant(slo_ns=100.0)

        class _R:
            def __init__(self, rid, arrival):
                self.rid = rid
                self.arrival_ns = arrival
                self.deadline_ns = arrival + 150.0
                self.cls = DEFAULT_CLASSES[0]

        first = accountant.observe_window(
            index=0, arrivals=2,
            completions=[(_R(0, 0.0), 50.0), (_R(1, 0.0), 120.0)],
            backlog=0, fleet_size=1, energy_nj=1.0, utilization=0.5,
        )
        assert first.completed == 2
        assert first.p50_ns == 50.0
        assert first.slo_misses == 1  # 120 > 100 target
        assert first.deadline_misses == 0
        second = accountant.observe_window(
            index=1, arrivals=1,
            completions=[(_R(2, 0.0), 200.0)],
            backlog=0, fleet_size=1, energy_nj=1.0, utilization=0.5,
        )
        assert second.deadline_misses == 1  # 200 > 150 deadline
        assert second.cumulative_p99_ns == 200.0
        assert accountant.completed == 3
        assert accountant.slo_attainment == pytest.approx(1 / 3)


class TestAutoscalers:
    def _obs(self, **kw):
        defaults = dict(
            slice_index=0, fleet_size=2, staged=0, utilization=0.5,
            capacity_per_device=10,
        )
        defaults.update(kw)
        return ScaleObservation(**defaults)

    def test_fixed_never_moves(self):
        scaler = Fixed()
        scaler.start(3, 1, 8)
        assert scaler.resize(self._obs(utilization=1.0, staged=500)) == 3

    def test_threshold_bands(self):
        scaler = Threshold(low=0.3, high=0.8)
        scaler.start(2, 1, 4)
        assert scaler.resize(self._obs(utilization=0.9)) == 3
        assert scaler.resize(self._obs(utilization=0.5)) == 3
        assert scaler.resize(self._obs(utilization=0.1, staged=0)) == 2
        # backlog blocks the scale-down
        assert scaler.resize(self._obs(utilization=0.1, staged=5)) == 2

    def test_queue_depth_tracks_backlog(self):
        scaler = QueueDepthTarget()
        scaler.start(1, 1, 8)
        assert scaler.resize(self._obs(staged=35)) == 2  # one step at a time
        assert scaler.resize(self._obs(staged=35)) == 3
        assert scaler.resize(self._obs(staged=0)) == 2

    def test_bounds_clamp(self):
        scaler = Threshold()
        scaler.start(1, 1, 2)
        assert scaler.resize(self._obs(utilization=0.99)) == 2
        assert scaler.resize(self._obs(utilization=0.99)) == 2  # clamped
        with pytest.raises(QoSError, match="bounds"):
            scaler.start(0, 1, 2)
        with pytest.raises(QoSError, match="bounds"):
            scaler.start(1, 3, 2)

    def test_make_autoscaler_coercions(self):
        assert isinstance(make_autoscaler("fixed"), Fixed)
        assert isinstance(make_autoscaler(Threshold), Threshold)
        depth = QueueDepthTarget(target=5)
        assert make_autoscaler(depth) is depth
        with pytest.raises(QoSError, match="unknown autoscaler"):
            make_autoscaler("nope")
        with pytest.raises(QoSError, match="must be a name"):
            make_autoscaler(3.14)


class TestSimulator:
    def test_conservation_and_drain(self, hh_runtime):
        # peak beyond one device's window capacity: backlog forms, then
        # drain windows clear it after the last arrival slice.
        scn = bursty(calm_rate=4, burst_rate=18).materialize(
            slices=20, peak=20, seed=9
        )
        sim = QoSSimulator(hh_runtime, devices=1)
        result = sim.run(scn)
        assert result.completed + result.unfinished == result.total_requests
        assert result.unfinished == 0
        assert len(result.slices) >= len(scn)  # drain windows appended
        assert result.peak_backlog > 0
        # the per-window arrivals series conserves the request stream
        assert (
            sum(stats.arrivals for stats in result.slices)
            == result.total_requests
        )

    def test_overload_spills_and_misses_slo(self, hh_runtime):
        from repro.workloads import arrivals

        scn = arrivals.constant(25).materialize(slices=10, peak=30, seed=0)
        sim = QoSSimulator(hh_runtime, devices=1)
        result = sim.run(scn)
        assert result.peak_backlog > 0
        assert result.slo_attainment < 1.0
        assert result.deadline_miss_rate > 0.0

    def test_autoscaler_grows_and_saves_the_slo(self, hh_runtime):
        scn = bursty(calm_rate=4, burst_rate=18).materialize(
            slices=30, peak=20, seed=9
        )
        undersized = QoSSimulator(hh_runtime, devices=1).run(scn)
        scaled = QoSSimulator(
            hh_runtime, devices=1, max_devices=6, autoscaler="queue_depth"
        ).run(scn)
        assert scaled.mean_fleet_size > 1.0
        assert scaled.slo_attainment >= undersized.slo_attainment
        sizes = [stats.fleet_size for stats in scaled.slices]
        assert max(sizes) <= 6 and min(sizes) >= 1
        # scale-downs re-stage queued requests without re-counting them
        assert (
            sum(stats.arrivals for stats in scaled.slices)
            == scaled.total_requests
        )

    def test_idle_devices_pay_leakage(self):
        # A fixed 3-device SRAM-based fleet serving a trickle: the
        # energy-aware dispatch parks everything on device 0, but the two
        # idle devices still hold their weights in powered SRAM — the
        # fleet burns strictly more than one device.  (On HH-PIM idle
        # devices retain weights in gated MRAM for free, which is the
        # architecture's selling point.)
        engine = Engine(use_disk_cache=False)
        runtime = engine.runtime(
            ExperimentConfig(arch="Baseline-PIM", **TINY)
        )
        scn = scenario(ScenarioCase.LOW_CONSTANT, slices=10)
        solo = QoSSimulator(runtime, devices=1).run(scn)
        trio = QoSSimulator(
            runtime, devices=3, dispatch="energy_aware"
        ).run(scn)
        assert trio.completed == solo.completed
        assert trio.total_energy_nj > solo.total_energy_nj

    def test_batching_collapses_completions(self, hh_runtime):
        scn = scenario(ScenarioCase.HIGH_CONSTANT, slices=6)
        one = QoSSimulator(hh_runtime, devices=1, batch=1).run(scn)
        grouped = QoSSimulator(hh_runtime, devices=1, batch=5).run(scn)
        assert grouped.completed == one.completed
        # batch members complete together at the batch end, so the
        # median completion waits for its batch: p50 grows, energy holds.
        assert grouped.latency_percentiles_ns[0] >= one.latency_percentiles_ns[0]
        assert grouped.total_energy_nj == pytest.approx(one.total_energy_nj)

    def test_priority_beats_fifo_for_interactive(self, hh_runtime):
        # Under overload, the priority discipline should serve the
        # interactive class no worse than FIFO does.
        scn = bursty(calm_rate=6, burst_rate=18).materialize(
            slices=25, peak=20, seed=3
        )
        t = hh_runtime.t_slice_ns
        requests = sample_requests(scn, t, seed=3, classes=INTERACTIVE_MIX)
        fifo = QoSSimulator(hh_runtime, devices=1, discipline="fifo").run(
            scn, requests=requests
        )
        prio = QoSSimulator(
            hh_runtime, devices=1, discipline="priority"
        ).run(scn, requests=requests)
        # same service capacity: identical totals, different orderings
        assert prio.completed == fifo.completed
        assert prio.total_energy_nj == pytest.approx(fifo.total_energy_nj)

    def test_simulator_validation(self, hh_runtime):
        with pytest.raises(QoSError, match="TimeSliceRuntime"):
            QoSSimulator(object())
        with pytest.raises(QoSError, match="fleet size"):
            QoSSimulator(hh_runtime, devices=0)
        with pytest.raises(QoSError, match="batch"):
            QoSSimulator(hh_runtime, batch=0)
        with pytest.raises(QoSError, match="slo"):
            QoSSimulator(hh_runtime, slo=0)
        with pytest.raises(QoSError, match="max_devices"):
            QoSSimulator(hh_runtime, devices=4, max_devices=2)

    def test_foreign_requests_rejected(self, hh_runtime):
        scn = scenario(ScenarioCase.LOW_CONSTANT, slices=3)
        longer = scenario(ScenarioCase.LOW_CONSTANT, slices=8)
        requests = sample_requests(longer, hh_runtime.t_slice_ns, seed=1)
        with pytest.raises(QoSError, match="outside the scenario"):
            QoSSimulator(hh_runtime, devices=1).run(scn, requests=requests)

    def test_qos_error_is_serving_error(self):
        assert issubclass(QoSError, ServingError)


class TestEngineQoS:
    def test_run_qos_from_config(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(
            scenario="bursty", fleet=2, max_fleet=5,
            autoscaler="queue_depth", qos="edf", batch=2, slices=20, **TINY,
        ).validate()
        result = engine.run_qos(config)
        assert result.discipline == "edf"
        assert result.autoscaler == "queue_depth"
        assert result.batch == 2
        assert result.completed + result.unfinished == result.total_requests
        # one shared runtime: the LUT was built exactly once
        assert engine.stats.lut_builds == 1

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="qos"):
            ExperimentConfig(qos="")
        with pytest.raises(ConfigurationError, match="slo"):
            ExperimentConfig(slo=0)
        with pytest.raises(ConfigurationError, match="autoscaler"):
            ExperimentConfig(autoscaler="  ")
        with pytest.raises(ConfigurationError, match="max_fleet"):
            ExperimentConfig(fleet=4, max_fleet=2)
        with pytest.raises(ConfigurationError, match="batch"):
            ExperimentConfig(batch=0)
        config = ExperimentConfig(
            qos="priority", autoscaler="threshold", slo=1.5, batch=3,
            fleet=2, max_fleet=4,
        )
        assert ExperimentConfig.from_dict(config.to_dict()) == config
