"""Unit tests for the energy accounting and FPGA resource models."""

import pytest

from repro.arch import BASELINE_PIM, HH_PIM, TABLE_I
from repro.energy import EnergyAccount, power_row, table_v_rows
from repro.errors import ConfigurationError
from repro.fpga import estimate_processor, table_ii_report
from repro.fpga.resources import Resources, brams_for, cluster_resources
from repro.pim.module import ModuleKind


class TestTableV:
    def test_hp_row_matches_paper(self):
        hp = table_v_rows()[0]
        assert hp.mram_read_mw == pytest.approx(428.48, abs=1e-6)
        assert hp.mram_write_mw == pytest.approx(133.78, abs=1e-6)
        assert hp.mram_static_mw == pytest.approx(2.98, abs=1e-6)
        assert hp.sram_read_mw == pytest.approx(508.93, abs=1e-6)
        assert hp.sram_write_mw == pytest.approx(500.0, abs=1e-6)
        assert hp.sram_static_mw == pytest.approx(23.29, abs=1e-6)
        assert hp.pe_dynamic_mw == pytest.approx(0.9, abs=1e-9)
        assert hp.pe_static_mw == pytest.approx(0.48, abs=1e-9)

    def test_lp_row_matches_paper(self):
        lp = table_v_rows()[1]
        assert lp.mram_read_mw == pytest.approx(179.05, abs=1e-6)
        assert lp.sram_static_mw == pytest.approx(5.45, abs=1e-6)
        assert lp.pe_dynamic_mw == pytest.approx(0.51, abs=1e-9)

    def test_intermediate_voltage_between_rows(self):
        mid = power_row("mid", 1.0)
        hp, lp = table_v_rows()
        assert lp.sram_read_mw < mid.sram_read_mw < hp.sram_read_mw
        assert lp.mram_static_mw < mid.mram_static_mw < hp.mram_static_mw


class TestEnergyAccount:
    def test_charge_and_total(self):
        account = EnergyAccount()
        account.charge("dynamic", 10.0)
        account.charge("static", 5.0)
        account.charge("dynamic", 2.5)
        assert account["dynamic"] == 12.5
        assert account.total_nj == 17.5

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount().charge("x", -1.0)

    def test_merge(self):
        a = EnergyAccount({"dyn": 1.0})
        b = EnergyAccount({"dyn": 2.0, "static": 3.0})
        merged = a.merge(b)
        assert merged["dyn"] == 3.0
        assert merged["static"] == 3.0

    def test_scaled(self):
        account = EnergyAccount({"x": 4.0}).scaled(0.5)
        assert account["x"] == 2.0

    def test_breakdown_sums_to_one(self):
        account = EnergyAccount({"a": 1.0, "b": 3.0})
        breakdown = account.breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)
        assert breakdown["b"] == pytest.approx(0.75)

    def test_savings_vs(self):
        ours = EnergyAccount({"total": 40.0})
        base = EnergyAccount({"total": 100.0})
        assert ours.savings_vs(base) == pytest.approx(0.6)

    def test_savings_vs_zero_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyAccount({"x": 1.0}).savings_vs(EnergyAccount())

    def test_render(self):
        text = EnergyAccount({"dyn": 1.0, "static": 1.0}).render()
        assert "dyn" in text and "total" in text


class TestTableII:
    def test_report_matches_paper_exactly(self):
        report = table_ii_report()
        rows = dict(report.rows)
        core = rows["RISC-V Rocket Core"]
        assert (core.luts, core.ffs, core.brams, core.dsps) == (14998, 9762, 12, 4)
        hp_cluster = rows["Total (HP-PIM module cluster)"]
        assert (hp_cluster.luts, hp_cluster.ffs) == (6951, 5460)
        assert (hp_cluster.brams, hp_cluster.dsps) == (128, 8)
        lp_cluster = rows["Total (LP-PIM module cluster)"]
        assert (lp_cluster.luts, lp_cluster.ffs) == (6680, 5616)
        hp_module = rows["HP-PIM Module"]
        assert (hp_module.luts, hp_module.ffs, hp_module.brams,
                hp_module.dsps) == (968, 1055, 32, 2)
        lp_ctrl = rows["LP-PIM Module Controller"]
        assert (lp_ctrl.luts, lp_ctrl.ffs) == (2149, 875)

    def test_bram_banking(self):
        assert brams_for(128 * 1024) == 32
        assert brams_for(64 * 1024) == 16
        assert brams_for(0) == 0
        # 36 Kb granularity, then rounded to groups of four.
        assert brams_for(5 * 1024) == 4

    def test_cluster_scales_with_module_count(self):
        four = cluster_resources(ModuleKind.HP, 4, 128 * 1024)
        eight = cluster_resources(ModuleKind.HP, 8, 128 * 1024)
        assert eight.brams == 2 * four.brams
        assert eight.dsps == 2 * four.dsps
        assert eight.luts > four.luts

    def test_estimate_all_architectures(self):
        for spec in TABLE_I:
            report = estimate_processor(spec)
            total = report.total
            assert total.luts > 20_000
            assert total.dsps == 4 + 2 * spec.total_modules
            # Every design carries 1 MB of module memory = 256 BRAMs,
            # plus the core's 12.
            assert total.brams == 12 + 256

    def test_render_contains_total(self):
        text = table_ii_report().render()
        assert "Total" in text and "LUTs" in text

    def test_resources_add(self):
        a = Resources(1, 2, 3, 4)
        b = Resources(10, 20, 30, 40)
        total = a + b
        assert (total.luts, total.ffs, total.brams, total.dsps) == (11, 22, 33, 44)

    def test_baseline_single_cluster_report(self):
        report = estimate_processor(BASELINE_PIM)
        names = [name for name, _ in report.rows]
        assert sum("cluster" in name for name in names) == 1

    def test_hh_two_cluster_report(self):
        report = estimate_processor(HH_PIM)
        names = [name for name, _ in report.rows]
        assert sum("cluster" in name for name in names) == 2
