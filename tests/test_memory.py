"""Unit tests for the memory subsystem (technology, nvsim, bank, hybrid)."""

import math

import pytest

from repro.errors import (
    AddressError,
    ConfigurationError,
    PowerGatingError,
)
from repro.memory import (
    AccessTiming,
    HybridMemory,
    MemoryBank,
    NvSimModel,
    PE_45NM,
    SRAM_45NM,
    STT_MRAM_45NM,
    estimate,
)
from repro.memory.hybrid import BankKind
from repro.memory.technology import HP_VDD, LP_VDD, V_TH


class TestTechnologyCalibration:
    """The fitted laws must reproduce Tables III and V bit-exactly."""

    @pytest.mark.parametrize("vdd,read,write", [(1.2, 1.12, 1.12), (0.8, 1.41, 1.41)])
    def test_sram_latency(self, vdd, read, write):
        assert SRAM_45NM.read_latency(vdd) == pytest.approx(read, abs=1e-9)
        assert SRAM_45NM.write_latency(vdd) == pytest.approx(write, abs=1e-9)

    @pytest.mark.parametrize("vdd,read,write", [(1.2, 2.62, 11.81), (0.8, 2.96, 14.65)])
    def test_mram_latency(self, vdd, read, write):
        assert STT_MRAM_45NM.read_latency(vdd) == pytest.approx(read, abs=1e-9)
        assert STT_MRAM_45NM.write_latency(vdd) == pytest.approx(write, abs=1e-9)

    @pytest.mark.parametrize("vdd,value", [(1.2, 5.52), (0.8, 10.68)])
    def test_pe_latency(self, vdd, value):
        assert PE_45NM.mac_latency(vdd) == pytest.approx(value, abs=1e-9)

    @pytest.mark.parametrize(
        "vdd,read,write,static",
        [(1.2, 508.93, 500.0, 23.29), (0.8, 177.3, 177.3, 5.45)],
    )
    def test_sram_power(self, vdd, read, write, static):
        assert SRAM_45NM.read_power(vdd) == pytest.approx(read, abs=1e-6)
        assert SRAM_45NM.write_power(vdd) == pytest.approx(write, abs=1e-6)
        assert SRAM_45NM.static_power(vdd) == pytest.approx(static, abs=1e-6)

    @pytest.mark.parametrize(
        "vdd,read,write,static",
        [(1.2, 428.48, 133.78, 2.98), (0.8, 179.05, 47.78, 0.84)],
    )
    def test_mram_power(self, vdd, read, write, static):
        assert STT_MRAM_45NM.read_power(vdd) == pytest.approx(read, abs=1e-6)
        assert STT_MRAM_45NM.write_power(vdd) == pytest.approx(write, abs=1e-6)
        assert STT_MRAM_45NM.static_power(vdd) == pytest.approx(static, abs=1e-6)

    @pytest.mark.parametrize("vdd,dyn,static", [(1.2, 0.9, 0.48), (0.8, 0.51, 0.25)])
    def test_pe_power(self, vdd, dyn, static):
        assert PE_45NM.dynamic_power(vdd) == pytest.approx(dyn, abs=1e-9)
        assert PE_45NM.static_power(vdd) == pytest.approx(static, abs=1e-9)

    def test_volatility_flags(self):
        assert SRAM_45NM.volatile
        assert not STT_MRAM_45NM.volatile

    def test_interpolation_is_monotone(self):
        # Latency must grow as the supply drops towards threshold.
        latencies = [SRAM_45NM.read_latency(v) for v in (1.2, 1.0, 0.9, 0.8)]
        assert latencies == sorted(latencies)

    def test_leakage_monotone_in_vdd(self):
        leaks = [SRAM_45NM.static_power(v) for v in (0.8, 1.0, 1.2)]
        assert leaks == sorted(leaks)

    def test_below_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SRAM_45NM.read_latency(V_TH)


class TestNvSim:
    def test_reference_point_exact(self):
        result = estimate(SRAM_45NM, 64 * 1024, HP_VDD)
        assert result.timing.read_ns == pytest.approx(1.12)
        assert result.power.static_mw == pytest.approx(23.29)

    def test_banked_capacity_keeps_access_latency(self):
        # 128 kB is two banked 64 kB macros: same access, doubled leakage.
        big = estimate(SRAM_45NM, 128 * 1024, HP_VDD)
        assert big.timing.read_ns == pytest.approx(1.12)
        assert big.power.static_mw == pytest.approx(2 * 23.29)

    def test_monolithic_macro_scales_latency(self):
        model = NvSimModel(SRAM_45NM)
        big = model.estimate(256 * 1024, HP_VDD, macro_bytes=None)
        assert big.timing.read_ns == pytest.approx(1.12 * 2.0)

    def test_small_capacity_scales_down(self):
        small = estimate(SRAM_45NM, 16 * 1024, HP_VDD)
        assert small.timing.read_ns < 1.12
        assert small.power.static_mw < 23.29

    def test_energy_properties(self):
        result = estimate(STT_MRAM_45NM, 64 * 1024, LP_VDD)
        assert result.read_energy_nj == pytest.approx(179.05 * 2.96 / 1000.0)
        assert result.write_energy_nj == pytest.approx(47.78 * 14.65 / 1000.0)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            estimate(SRAM_45NM, 0, HP_VDD)

    def test_bad_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            AccessTiming(read_ns=0.0, write_ns=1.0)


class TestMemoryBank:
    def make_bank(self, **kwargs):
        defaults = dict(
            name="t.sram", technology=SRAM_45NM,
            capacity_bytes=1024, vdd=HP_VDD,
        )
        defaults.update(kwargs)
        return MemoryBank(**defaults)

    def test_write_read_roundtrip(self):
        bank = self.make_bank()
        bank.write(10, b"hello")
        assert bank.read(10, 5) == b"hello"

    def test_read_charges_latency_and_energy(self):
        bank = self.make_bank()
        before = bank.stats.dynamic_energy_nj
        bank.read(0, 1)
        assert bank.stats.reads == 1
        assert bank.stats.dynamic_energy_nj > before

    def test_multi_word_access_counts(self):
        bank = self.make_bank(word_bytes=4)
        bank.write(0, bytes(12))
        assert bank.stats.writes == 3

    def test_out_of_range_read(self):
        bank = self.make_bank()
        with pytest.raises(AddressError):
            bank.read(1020, 8)

    def test_negative_address(self):
        bank = self.make_bank()
        with pytest.raises(AddressError):
            bank.read(-1, 1)

    def test_power_gating_blocks_access(self):
        bank = self.make_bank()
        bank.power_off()
        with pytest.raises(PowerGatingError):
            bank.read(0, 1)

    def test_volatile_gating_clears_contents(self):
        bank = self.make_bank()
        bank.write(0, b"\xaa")
        bank.power_off()
        bank.power_on()
        assert bank.read(0, 1) == b"\x00"

    def test_nonvolatile_gating_retains_contents(self):
        bank = self.make_bank(name="t.mram", technology=STT_MRAM_45NM)
        bank.write(0, b"\xaa")
        bank.power_off()
        bank.power_on()
        assert bank.read(0, 1) == b"\xaa"

    def test_idle_accounting_powered(self):
        bank = self.make_bank(capacity_bytes=64 * 1024)
        bank.account_idle(1000.0)
        assert bank.stats.static_energy_nj == pytest.approx(23.29 * 1000 / 1000.0)
        assert bank.stats.powered_time_ns == pytest.approx(1000.0)

    def test_idle_accounting_gated_is_free(self):
        bank = self.make_bank()
        bank.power_off()
        bank.account_idle(1000.0)
        assert bank.stats.static_energy_nj == 0.0
        assert bank.stats.gated_time_ns == pytest.approx(1000.0)

    def test_charge_accesses_matches_read(self):
        functional = self.make_bank()
        fast = self.make_bank()
        functional.read(0, 1)
        fast.charge_accesses(reads=1)
        assert fast.stats.dynamic_energy_nj == pytest.approx(
            functional.stats.dynamic_energy_nj
        )

    def test_charge_accesses_while_gated(self):
        bank = self.make_bank()
        bank.power_off()
        with pytest.raises(PowerGatingError):
            bank.charge_accesses(reads=1)

    def test_peek_free(self):
        bank = self.make_bank()
        bank.write(0, b"\x42")
        reads_before = bank.stats.reads
        assert bank.peek(0, 1) == b"\x42"
        assert bank.stats.reads == reads_before

    def test_reset_stats_keeps_contents(self):
        bank = self.make_bank()
        bank.write(0, b"\x11")
        bank.reset_stats()
        assert bank.stats.reads == 0
        assert bank.peek(0, 1) == b"\x11"

    def test_word_must_divide_capacity(self):
        with pytest.raises(ConfigurationError):
            self.make_bank(capacity_bytes=1000, word_bytes=3)

    def test_stats_merge(self):
        a = self.make_bank()
        b = self.make_bank()
        a.read(0, 1)
        b.write(0, b"\x01")
        merged = a.stats.merge(b.stats)
        assert merged.reads == 1 and merged.writes == 1


class TestHybridMemory:
    def make(self):
        return HybridMemory(name="mod0", vdd=HP_VDD,
                            mram_capacity=256, sram_capacity=256)

    def test_flat_map_decode(self):
        hybrid = self.make()
        assert hybrid.decode(0).bank is BankKind.MRAM
        assert hybrid.decode(255).bank is BankKind.MRAM
        assert hybrid.decode(256).bank is BankKind.SRAM
        assert hybrid.decode(256).offset == 0

    def test_flat_map_encode_roundtrip(self):
        hybrid = self.make()
        for address in (0, 100, 256, 511):
            assert hybrid.encode(hybrid.decode(address)) == address

    def test_decode_out_of_range(self):
        hybrid = self.make()
        with pytest.raises(AddressError):
            hybrid.decode(512)

    def test_flat_write_read(self):
        hybrid = self.make()
        hybrid.write(300, b"\x7f")
        assert hybrid.read(300, 1) == b"\x7f"

    def test_load_operand_sync_waits_for_slower(self):
        hybrid = self.make()
        mram_read = hybrid.bank(BankKind.MRAM).read_latency_ns
        sram_read = hybrid.bank(BankKind.SRAM).read_latency_ns
        elapsed = hybrid.load_operands({BankKind.MRAM: 2, BankKind.SRAM: 2})
        assert elapsed == pytest.approx(max(2 * mram_read, 2 * sram_read))

    def test_load_operands_single_stream(self):
        hybrid = self.make()
        sram_read = hybrid.bank(BankKind.SRAM).read_latency_ns
        assert hybrid.load_operands({BankKind.SRAM: 3}) == pytest.approx(3 * sram_read)

    def test_load_operands_rejects_negative(self):
        hybrid = self.make()
        with pytest.raises(ConfigurationError):
            hybrid.load_operands({BankKind.SRAM: -1})

    def test_selective_power_off(self):
        hybrid = self.make()
        hybrid.power_off(BankKind.SRAM)
        assert not hybrid.bank(BankKind.SRAM).powered
        assert hybrid.bank(BankKind.MRAM).powered

    def test_needs_at_least_one_bank(self):
        with pytest.raises(ConfigurationError):
            HybridMemory(name="x", vdd=HP_VDD, mram_capacity=0, sram_capacity=0)

    def test_mram_only_memory(self):
        hybrid = HybridMemory(name="m", vdd=HP_VDD,
                              mram_capacity=128, sram_capacity=0)
        assert hybrid.capacity_bytes == 128
        with pytest.raises(AddressError):
            hybrid.bank(BankKind.SRAM)

    def test_stats_aggregate_both_banks(self):
        hybrid = self.make()
        hybrid.write(0, b"\x01")    # MRAM
        hybrid.write(256, b"\x02")  # SRAM
        assert hybrid.stats().writes == 2

    def test_idle_accounting_propagates(self):
        hybrid = self.make()
        hybrid.account_idle(100.0)
        assert hybrid.stats().static_energy_nj > 0

    def test_vdd_affects_latency(self):
        hp = HybridMemory(name="hp", vdd=HP_VDD, mram_capacity=64 * 1024,
                          sram_capacity=64 * 1024)
        lp = HybridMemory(name="lp", vdd=LP_VDD, mram_capacity=64 * 1024,
                          sram_capacity=64 * 1024)
        assert (lp.bank(BankKind.SRAM).read_latency_ns
                > hp.bank(BankKind.SRAM).read_latency_ns)
        assert math.isclose(hp.bank(BankKind.SRAM).read_latency_ns, 1.12)
