"""Tests for the storage-space pricing, the optimizer, the LUT and the
time-slice runtime (shared reduced-resolution fixtures from conftest)."""

import pytest

from repro.arch import BASELINE_PIM, HH_PIM, HYBRID_PIM
from repro.core import DataPlacementOptimizer, PlacementPolicy, SpaceKind
from repro.core.runtime import TimeSliceRuntime, default_time_slice_ns
from repro.core.spaces import CORE_MAC_TIME_NS
from repro.errors import InfeasibleError, PlacementError
from repro.workloads import EFFICIENTNET_B0, RESNET_18, scenario, ScenarioCase

from _shared import SMALL_BLOCKS, SMALL_STEPS


class TestSpaces:
    def test_four_spaces_for_hh(self, hh_optimizer):
        kinds = {space.kind for space in hh_optimizer.spaces}
        assert kinds == {
            SpaceKind.HP_SRAM, SpaceKind.HP_MRAM,
            SpaceKind.LP_SRAM, SpaceKind.LP_MRAM,
        }

    def test_hp_sram_is_fastest(self, hh_optimizer):
        times = {s.kind: s.time_per_block_ns for s in hh_optimizer.spaces}
        assert times[SpaceKind.HP_SRAM] < times[SpaceKind.HP_MRAM]
        assert times[SpaceKind.HP_MRAM] < times[SpaceKind.LP_SRAM]
        assert times[SpaceKind.LP_SRAM] < times[SpaceKind.LP_MRAM]

    def test_volatility_tagging(self, hh_optimizer):
        for space in hh_optimizer.spaces:
            if space.kind in (SpaceKind.HP_SRAM, SpaceKind.LP_SRAM):
                assert space.volatile
                assert space.hold_static_energy_per_block_nj > 0
            else:
                assert not space.volatile
                assert space.hold_static_energy_per_block_nj == 0.0

    def test_hold_static_power_steps_with_granules(self, hh_optimizer):
        space = hh_optimizer.space(SpaceKind.HP_SRAM)
        none = space.hold_static_power_mw(0)
        one = space.hold_static_power_mw(1)
        all_blocks = space.hold_static_power_mw(SMALL_BLOCKS)
        assert none == 0.0
        assert 0 < one <= all_blocks
        assert all_blocks <= space.full_static_power_mw + 1e-9

    def test_mram_hold_free(self, hh_optimizer):
        space = hh_optimizer.space(SpaceKind.LP_MRAM)
        assert space.hold_static_power_mw(SMALL_BLOCKS) == 0.0

    def test_space_kind_mapping(self):
        from repro.isa.encoding import ClusterId
        from repro.memory.hybrid import BankKind
        assert SpaceKind.of(ClusterId.HP, BankKind.SRAM) is SpaceKind.HP_SRAM
        assert SpaceKind.LP_MRAM.cluster is ClusterId.LP
        assert SpaceKind.LP_MRAM.bank is BankKind.MRAM


class TestOptimizer:
    def test_peak_matches_paper_inference_time(self, hh_lut):
        # Fig. 6: EfficientNet-B0 peak inference = 31.06 ms at 50 MHz.
        inference_ns = (hh_lut.peak_placement.task_time_ns
                        + EFFICIENTNET_B0.core_macs * CORE_MAC_TIME_NS)
        assert inference_ns == pytest.approx(
            EFFICIENTNET_B0.peak_inference_ns, rel=0.05
        )

    def test_peak_uses_sram_of_both_clusters(self, hh_lut):
        counts = hh_lut.peak_placement.counts
        assert counts[SpaceKind.HP_SRAM] > 0
        # Both clusters participate at the peak point.
        assert counts[SpaceKind.LP_SRAM] + counts[SpaceKind.LP_MRAM] > 0
        # SRAM carries the majority of the weights at peak performance
        # (the exact 16:9 split is asserted by the full-resolution
        # Fig. 6 benchmark; at test resolution quantisation shifts it).
        sram = counts[SpaceKind.HP_SRAM] + counts[SpaceKind.LP_SRAM]
        assert sram > SMALL_BLOCKS / 2

    def test_relaxed_is_lp_mram_only(self, hh_lut):
        counts = hh_lut.most_relaxed_placement.counts
        assert counts[SpaceKind.LP_MRAM] == SMALL_BLOCKS
        assert hh_lut.most_relaxed_placement.hold_static_power_mw == 0.0

    def test_mram_only_restriction(self, hh_optimizer):
        mram_kinds = [SpaceKind.HP_MRAM, SpaceKind.LP_MRAM]
        lut = hh_optimizer.build_lut(restrict_to=mram_kinds)
        for placement in lut.candidates:
            assert placement.counts.get(SpaceKind.HP_SRAM, 0) == 0
            assert placement.counts.get(SpaceKind.LP_SRAM, 0) == 0

    def test_mram_only_peak_slower_than_hybrid_peak(self, hh_optimizer, hh_lut):
        # The green dot beats the purple dot (SRAM-for-weights wins).
        mram_lut = hh_optimizer.build_lut(
            restrict_to=[SpaceKind.HP_MRAM, SpaceKind.LP_MRAM]
        )
        assert (mram_lut.peak_placement.task_time_ns
                > hh_lut.peak_placement.task_time_ns)

    def test_lookup_respects_budget(self, hh_lut):
        budget = hh_lut.peak_placement.task_time_ns * 1.5
        placement = hh_lut.lookup(budget)
        assert placement.task_time_ns <= budget

    def test_lookup_infeasible_below_peak(self, hh_lut):
        with pytest.raises(InfeasibleError):
            hh_lut.lookup(hh_lut.min_feasible_t_ns * 0.5)

    def test_lookup_energy_monotone_with_window(self, hh_lut):
        # With the slice-long hold window the selected energies decline
        # as the budget relaxes (the paper's Fig. 6 curve).
        window = hh_lut.t_max_ns
        budgets = [hh_lut.min_feasible_t_ns * f for f in (1.0, 2.0, 4.0, 8.0)]
        energies = [
            hh_lut.lookup(b, window_ns=window).task_energy_nj(window)
            for b in budgets
        ]
        assert all(b <= a + 1e-6 for a, b in zip(energies, energies[1:]))

    def test_negative_budget_rejected(self, hh_lut):
        with pytest.raises(PlacementError):
            hh_lut.lookup(-1.0)

    def test_fixed_mram_only_policy(self, t_slice):
        optimizer = DataPlacementOptimizer(
            HYBRID_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        placement = optimizer.fixed_placement(PlacementPolicy.FIXED_MRAM_ONLY)
        assert placement.counts.get(SpaceKind.HP_MRAM, 0) == SMALL_BLOCKS

    def test_baseline_has_single_space(self, t_slice):
        optimizer = DataPlacementOptimizer(
            BASELINE_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        assert [s.kind for s in optimizer.spaces] == [SpaceKind.HP_SRAM]
        placement = optimizer.fixed_placement(
            PlacementPolicy.FIXED_LATENCY_OPTIMAL
        )
        assert placement.counts[SpaceKind.HP_SRAM] == SMALL_BLOCKS

    def test_mram_only_on_baseline_rejected(self, t_slice):
        optimizer = DataPlacementOptimizer(
            BASELINE_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        with pytest.raises(PlacementError):
            optimizer.fixed_placement(PlacementPolicy.FIXED_MRAM_ONLY)

    def test_movement_conserves_blocks(self, hh_optimizer, hh_lut):
        peak = hh_lut.peak_placement.counts
        relaxed = hh_lut.most_relaxed_placement.counts
        movement = hh_optimizer.movement(peak, relaxed)
        expected = sum(
            max(0, relaxed.get(kind, 0) - peak.get(kind, 0))
            for kind in set(peak) | set(relaxed)
        )
        assert movement.blocks_moved == expected > 0
        assert movement.time_ns > 0
        assert movement.energy_nj > 0

    def test_movement_identity_is_free(self, hh_optimizer, hh_lut):
        counts = hh_lut.peak_placement.counts
        movement = hh_optimizer.movement(counts, counts)
        assert movement.blocks_moved == 0
        assert movement.time_ns == 0.0

    def test_movement_nonconserving_rejected(self, hh_optimizer):
        with pytest.raises(PlacementError):
            hh_optimizer.movement(
                {SpaceKind.HP_SRAM: 2}, {SpaceKind.HP_SRAM: 3}
            )

    def test_policy_defaults(self):
        from repro.arch import HETEROGENEOUS_PIM
        assert PlacementPolicy.default_for(HH_PIM) is PlacementPolicy.DYNAMIC_LUT
        assert (PlacementPolicy.default_for(HYBRID_PIM)
                is PlacementPolicy.FIXED_MRAM_ONLY)
        assert (PlacementPolicy.default_for(HETEROGENEOUS_PIM)
                is PlacementPolicy.FIXED_LATENCY_OPTIMAL)


class TestRuntime:
    def test_time_slice_default_sizing(self, t_slice):
        # T covers 10 peak inferences plus a small scheduling headroom.
        ten = 10 * EFFICIENTNET_B0.peak_inference_ns
        assert ten * 0.95 < t_slice < ten * 1.15

    def test_all_architectures_meet_deadlines(self, runtimes):
        sc = scenario(ScenarioCase.PERIODIC_SPIKE)
        for name, runtime in runtimes.items():
            result = runtime.run(sc)
            assert result.deadlines_met, name

    def test_hh_beats_all_baselines_in_every_case(self, runtimes):
        for case in ScenarioCase:
            sc = scenario(case)
            energies = {
                name: runtime.run(sc).total_energy_nj
                for name, runtime in runtimes.items()
            }
            hh = energies["HH-PIM"]
            for name, energy in energies.items():
                if name == "HH-PIM":
                    continue
                if (case is ScenarioCase.HIGH_CONSTANT
                        and name == "Heterogeneous-PIM"):
                    # The paper's worst case: 3.72 % savings; at test
                    # resolution the gap may quantise to near zero.
                    assert hh < energy * 1.02, (case, name)
                else:
                    assert hh < energy, (case, name)

    def test_case1_is_best_case2_is_worst(self, runtimes):
        """Fig. 5: constant-low maximises savings, constant-high minimises."""
        savings = {}
        for case in (ScenarioCase.LOW_CONSTANT, ScenarioCase.HIGH_CONSTANT,
                     ScenarioCase.PULSING):
            sc = scenario(case)
            base = runtimes["Baseline-PIM"].run(sc).total_energy_nj
            hh = runtimes["HH-PIM"].run(sc).total_energy_nj
            savings[case] = 1 - hh / base
        assert savings[ScenarioCase.LOW_CONSTANT] == max(savings.values())
        assert savings[ScenarioCase.HIGH_CONSTANT] == min(savings.values())

    def test_hetero_gap_smallest_at_high_load(self, runtimes):
        """Paper: in Case 2 both HH and Hetero sit in SRAM -> tiny gap."""
        high = scenario(ScenarioCase.HIGH_CONSTANT)
        low = scenario(ScenarioCase.LOW_CONSTANT)
        def gap(sc):
            hetero = runtimes["Heterogeneous-PIM"].run(sc).total_energy_nj
            hh = runtimes["HH-PIM"].run(sc).total_energy_nj
            return 1 - hh / hetero
        assert gap(high) < gap(low)
        assert gap(high) < 0.15

    def test_records_structure(self, runtimes):
        result = runtimes["HH-PIM"].run(scenario(ScenarioCase.RANDOM))
        assert len(result.records) == 50
        for record in result.records:
            assert record.total_energy_nj > 0
            assert record.busy_time_ns >= 0
            assert sum(record.placement_counts.values()) == SMALL_BLOCKS

    def test_idle_slices_relax_placement(self, runtimes):
        runtime = runtimes["HH-PIM"]
        sc = scenario(ScenarioCase.LOW_CONSTANT)
        result = runtime.run(sc)
        # At low constant load the steady-state placement is MRAM-heavy.
        last = result.records[-1]
        mram_blocks = (last.placement_counts.get(SpaceKind.LP_MRAM, 0)
                       + last.placement_counts.get(SpaceKind.HP_MRAM, 0))
        assert mram_blocks > SMALL_BLOCKS / 2

    def test_high_load_forces_sram(self, runtimes):
        result = runtimes["HH-PIM"].run(scenario(ScenarioCase.HIGH_CONSTANT))
        last = result.records[-1]
        sram_blocks = (last.placement_counts.get(SpaceKind.HP_SRAM, 0)
                       + last.placement_counts.get(SpaceKind.LP_SRAM, 0))
        assert sram_blocks > SMALL_BLOCKS / 2

    def test_movement_charged_on_transitions(self, runtimes):
        result = runtimes["HH-PIM"].run(scenario(ScenarioCase.PULSING))
        moved = [r for r in result.records if r.movement.blocks_moved > 0]
        assert moved, "pulsing workload must trigger reallocation"
        assert all(r.movement_energy_nj > 0 for r in moved)

    def test_fixed_policy_never_moves_after_boot(self, runtimes):
        result = runtimes["Hybrid-PIM"].run(scenario(ScenarioCase.PULSING))
        for record in result.records:
            assert record.movement.blocks_moved == 0

    def test_energy_per_inference(self, runtimes):
        result = runtimes["HH-PIM"].run(scenario(ScenarioCase.RANDOM))
        assert result.total_inferences == result.scenario.total_inferences
        assert result.energy_per_inference_nj > 0

    def test_mean_power_sanity(self, runtimes):
        result = runtimes["Baseline-PIM"].run(scenario(ScenarioCase.HIGH_CONSTANT))
        # A small PIM fabric must land in the mW..W range, not kW.
        assert 1.0 < result.mean_power_mw < 5000.0

    def test_resnet_fits_hh(self):
        # ResNet-18 (256 kB of weights) just fits the 4x64 kB spaces.
        t = default_time_slice_ns(RESNET_18, block_count=16, time_steps=1500)
        runtime = TimeSliceRuntime(HH_PIM, RESNET_18, t_slice_ns=t,
                                   block_count=16, time_steps=1500)
        result = runtime.run(scenario(ScenarioCase.LOW_CONSTANT, slices=5))
        assert result.deadlines_met
