"""Tests for the inference compiler (placement -> PIM instruction stream)."""

import pytest

from repro.arch import HH_PIM, PimFabric
from repro.core.spaces import SpaceKind
from repro.errors import PlacementError
from repro.isa import ClusterId, Compute, Config, LoadOperands, Move, Sync
from repro.mapping import InferenceCompiler
from repro.workloads import EFFICIENTNET_B0

from _shared import SMALL_BLOCKS


@pytest.fixture(scope="module")
def compiler():
    return InferenceCompiler(model=EFFICIENTNET_B0, block_count=SMALL_BLOCKS)


class TestPartition:
    def test_blocks_striped_over_modules(self, compiler, hh_lut):
        work = compiler.partition(hh_lut.peak_placement)
        modules = {(w.cluster, w.module) for w in work}
        assert len(modules) == len(work)
        # The peak placement engages both clusters.
        assert any(w.cluster is ClusterId.HP for w in work)
        assert any(w.cluster is ClusterId.LP for w in work)

    def test_total_macs_conserved(self, compiler, hh_lut):
        placement = hh_lut.peak_placement
        work = compiler.partition(placement)
        expected = sum(placement.counts.values()) * compiler.macs_per_block
        assert sum(w.total_macs for w in work) == expected

    def test_lp_mram_only_uses_only_lp_mram(self, compiler, hh_lut):
        work = compiler.partition(hh_lut.most_relaxed_placement)
        assert all(w.cluster is ClusterId.LP for w in work)
        assert all(w.sram_macs == 0 for w in work)

    def test_missing_cluster_rejected(self, hh_lut):
        solo = InferenceCompiler(
            model=EFFICIENTNET_B0, block_count=SMALL_BLOCKS,
            modules_per_cluster={ClusterId.HP: 4},
        )
        with pytest.raises(PlacementError):
            solo.partition(hh_lut.most_relaxed_placement)


class TestCompileInference:
    def test_stream_structure(self, compiler, hh_lut):
        compiled = compiler.compile_inference(hh_lut.peak_placement)
        kinds = {type(i) for i in compiled.instructions}
        assert kinds >= {LoadOperands, Compute, Sync}
        # Barrier per engaged cluster, at the end of the stream.
        syncs = [i for i in compiled.instructions if isinstance(i, Sync)]
        assert 1 <= len(syncs) <= 2

    def test_loads_chunked_to_field_width(self, compiler, hh_lut):
        compiled = compiler.compile_inference(hh_lut.peak_placement)
        for instruction in compiled.instructions:
            if isinstance(instruction, LoadOperands):
                assert instruction.mram_count <= 1023
                assert instruction.sram_count <= 1023
            if isinstance(instruction, Compute):
                assert instruction.count <= (1 << 20) - 1

    def test_every_instruction_encodes(self, compiler, hh_lut):
        compiled = compiler.compile_inference(hh_lut.peak_placement)
        for instruction in compiled.instructions:
            word = instruction.encode()
            assert 0 <= word < 2**32

    def test_total_macs_reported(self, compiler, hh_lut):
        compiled = compiler.compile_inference(hh_lut.peak_placement)
        assert compiled.total_macs == pytest.approx(
            EFFICIENTNET_B0.pim_macs, rel=0.05
        )


class TestCompileTransition:
    def test_inter_cluster_moves_emitted(self, compiler, hh_lut):
        old = hh_lut.peak_placement
        new = hh_lut.most_relaxed_placement
        transition = compiler.compile_transition(old, new)
        moves = [i for i in transition.instructions if isinstance(i, Move)]
        assert moves, "HP->LP shift must emit MOVEs"
        hp_blocks = sum(
            old.counts.get(k, 0) for k in SpaceKind
            if k.cluster is ClusterId.HP
        )
        assert transition.blocks_moved == hp_blocks

    def test_gating_of_emptied_spaces(self, compiler, hh_lut):
        transition = compiler.compile_transition(
            hh_lut.peak_placement, hh_lut.most_relaxed_placement
        )
        gates = [i for i in transition.instructions if isinstance(i, Config)]
        assert gates, "emptied SRAM spaces must be gated"

    def test_identity_transition_is_empty_or_moveless(self, compiler, hh_lut):
        placement = hh_lut.peak_placement
        transition = compiler.compile_transition(placement, placement)
        assert transition.blocks_moved == 0
        assert not any(
            isinstance(i, Move) for i in transition.instructions
        )


class TestExecutionOnFabric:
    def test_runs_and_charges_the_fabric(self, compiler, hh_lut):
        fabric = PimFabric(HH_PIM, queue_depth=32)
        compiled = compiler.compile_inference(hh_lut.peak_placement)
        elapsed = compiler.run_on_fabric(fabric, compiled)
        assert elapsed > 0
        executed_macs = sum(
            module.pe.stats.macs
            for cluster in fabric.clusters.values()
            for module in cluster.modules
        )
        assert executed_macs == compiled.total_macs

    def test_executed_time_tracks_analytic_model(self, hh_optimizer, hh_lut):
        """The fabric-executed task time must track the cost model.

        The fabric runs at unscaled Table III latencies; the analytic
        model applies the FPGA latency scale — divide it out and the two
        should agree within the chunking/controller overheads.
        """
        fabric = PimFabric(HH_PIM, queue_depth=64)
        compiler = InferenceCompiler.for_fabric(
            fabric, EFFICIENTNET_B0, hh_optimizer.block_count
        )
        placement = hh_lut.most_relaxed_placement
        compiled = compiler.compile_inference(placement)
        elapsed = compiler.run_on_fabric(fabric, compiled)
        analytic = placement.task_time_ns / hh_optimizer.latency_scale
        assert elapsed == pytest.approx(analytic, rel=0.30)
