"""Tests for the serving daemon, its wire protocol and metrics exporter.

The daemon under test runs in-process (``ServeDaemon.start()`` on an
ephemeral port) with a silenced logger; clients talk to it over real
TCP sockets, so the framing, dispatch and worker paths are all the
production ones.  The subprocess lifecycle (signals, pidfile, CLI
summary line) lives in ``test_service_integration.py``.
"""

import json
import socket
import struct
import threading
import time

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig
from repro.errors import ProtocolError, ReproError, ServiceError
from repro.service import (
    PROTOCOL_VERSION,
    MetricsRegistry,
    RemoteError,
    ServeClient,
    ServeDaemon,
)
from repro.service import protocol
from repro.service.telemetry import (
    Histogram,
    LineFileWriter,
    escape_measurement,
    escape_tag,
    format_field_value,
    format_line,
)

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)


def qos_config(**overrides):
    base = dict(scenario="case1", slices=6, **TINY)
    base.update(overrides)
    return ExperimentConfig(**base)


# -- wire framing -----------------------------------------------------------------


@pytest.fixture
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


class TestFraming:
    def test_round_trip(self, pair):
        a, b = pair
        message = protocol.request("PING", nonce=42)
        protocol.send_message(a, message)
        assert protocol.recv_message(b) == message

    def test_several_frames_on_one_stream(self, pair):
        a, b = pair
        for index in range(3):
            protocol.send_message(a, protocol.request("STATUS", seq=index))
        got = [protocol.recv_message(b)["seq"] for _ in range(3)]
        assert got == [0, 1, 2]

    def test_clean_eof_is_connection_closed(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(protocol.ConnectionClosed):
            protocol.recv_message(b)

    def test_truncated_frame_is_torn_not_closed(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", 100) + b"only ten b")
        a.close()
        with pytest.raises(ProtocolError) as err:
            protocol.recv_message(b)
        assert not isinstance(err.value, protocol.ConnectionClosed)
        assert "truncated" in str(err.value)

    def test_oversize_length_prefix_rejected(self, pair):
        a, b = pair
        a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.recv_message(b)

    def test_bad_json_rejected(self, pair):
        a, b = pair
        body = b"not json at all"
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            protocol.recv_message(b)

    def test_non_object_message_rejected(self, pair):
        a, b = pair
        body = json.dumps([1, 2, 3]).encode()
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="JSON object"):
            protocol.recv_message(b)

    def test_unserialisable_message_rejected(self):
        with pytest.raises(ProtocolError, match="JSON-serialisable"):
            protocol.encode_frame({"x": object()})


class TestMessageValidation:
    def test_request_carries_version(self):
        assert protocol.request("PING")["v"] == PROTOCOL_VERSION

    def test_unknown_request_type_rejected(self):
        with pytest.raises(ProtocolError, match="unknown request type"):
            protocol.request("FROBNICATE")

    def test_version_mismatch_code(self):
        with pytest.raises(ProtocolError) as err:
            protocol.validate_request({"v": 99, "type": "PING"})
        assert err.value.code == "version_mismatch"

    def test_unknown_type_code(self):
        message = {"v": PROTOCOL_VERSION, "type": "NOPE"}
        with pytest.raises(ProtocolError) as err:
            protocol.validate_request(message)
        assert err.value.code == "unknown_type"

    def test_submit_needs_config_object(self):
        message = {"v": PROTOCOL_VERSION, "type": "SUBMIT", "config": 7}
        with pytest.raises(ProtocolError, match="config object"):
            protocol.validate_request(message)

    def test_submit_rejects_unknown_kind(self):
        message = {
            "v": PROTOCOL_VERSION, "type": "SUBMIT",
            "kind": "banana", "config": {},
        }
        with pytest.raises(ProtocolError, match="unknown submit kind"):
            protocol.validate_request(message)

    def test_result_needs_job_id(self):
        message = {"v": PROTOCOL_VERSION, "type": "RESULT"}
        with pytest.raises(ProtocolError, match="job_id"):
            protocol.validate_request(message)

    def test_error_reply_codes_are_closed_set(self):
        reply = protocol.error_reply("draining", "later")
        assert reply["type"] == "ERROR"
        assert reply["code"] == "draining"
        with pytest.raises(ProtocolError):
            protocol.error_reply("made_up_code", "nope")


# -- line protocol (golden) -------------------------------------------------------


class TestLineProtocol:
    def test_golden_line(self):
        # Pinned format: external dashboards parse exactly this.
        line = format_line(
            "m,1 x",
            {"b tag": "v=1", "a": "x,y"},
            {"i": 3, "f": 0.5, "b": True, "s": 'say "hi"\\'},
            1700000000000000000,
        )
        assert line == (
            r"m\,1\ x,a=x\,y,b\ tag=v\=1 "
            'b=true,f=0.5,i=3i,s="say \\"hi\\"\\\\" '
            "1700000000000000000"
        )

    def test_golden_line_untagged_untimestamped(self):
        assert format_line("jobs", {}, {"done": 2}) == "jobs done=2i"

    def test_escaping(self):
        assert escape_measurement("a b,c") == r"a\ b\,c"
        assert escape_tag("k=v, w") == r"k\=v\,\ w"

    def test_field_values(self):
        assert format_field_value(True) == "true"
        assert format_field_value(False) == "false"
        assert format_field_value(7) == "7i"
        assert format_field_value(0.25) == "0.25"
        assert format_field_value("a") == '"a"'
        with pytest.raises(ServiceError, match="unsupported"):
            format_field_value(object())

    def test_empty_fields_rejected(self):
        with pytest.raises(ServiceError, match="no fields"):
            format_line("m", {}, {})

    def test_histogram_fields(self):
        histogram = Histogram()
        for value in range(1, 101):
            histogram.observe(value)
        fields = histogram.fields("wall")
        assert fields["wall_count"] == 100
        assert fields["wall_sum"] == pytest.approx(5050.0)
        assert fields["wall_min"] == 1.0
        assert fields["wall_max"] == 100.0
        assert fields["wall_p50"] <= fields["wall_p95"] <= fields["wall_p99"]

    def test_histogram_window_bounds_memory(self):
        histogram = Histogram(window=8)
        for value in range(1000):
            histogram.observe(value)
        assert histogram.count == 1000
        assert len(histogram._recent) == 8
        # Percentiles now reflect the window, not all time.
        assert histogram.fields("x")["x_p50"] >= 992

    def test_empty_histogram_renders_count_and_sum_only(self):
        # No observations: no min/max/percentiles — dashboards must
        # not see NaNs or placeholder tails before the first job.
        fields = Histogram().fields("wall")
        assert fields == {"wall_count": 0, "wall_sum": 0.0}
        assert format_line("jobs", {}, fields) == (
            "jobs wall_count=0i,wall_sum=0.0"
        )

    def test_field_names_escape_like_tags(self):
        # Field *keys* pass through tag escaping, so a pathological
        # metric name cannot tear the line apart.
        assert format_line("m", {}, {"a b": 1, "k=v": 2}) == (
            r"m a\ b=1i,k\=v=2i"
        )

    def test_render_unchanged_under_active_tracer(self):
        # Observability layers must not bleed into each other: the
        # metrics render is byte-identical with span tracing active.
        from repro.obs import tracing as obs_tracing

        def build():
            registry = MetricsRegistry()
            registry.counter("jobs", "done").inc(2)
            registry.gauge("obs", "spans").set(7)
            registry.histogram("jobs", "wall_s").observe(0.5)
            return registry.render(timestamp_ns=1700000000000000000)

        baseline = build()
        obs_tracing.activate(proc="test", epoch_ns=0)
        try:
            traced = build()
        finally:
            obs_tracing.deactivate()
        assert traced == baseline


class TestRegistry:
    def test_fields_merge_into_one_line(self):
        registry = MetricsRegistry()
        registry.counter("jobs", "done").inc(2)
        registry.gauge("jobs", "queue").set(3)
        assert registry.lines() == ["jobs done=2i,queue=3i"]

    def test_tags_split_lines_and_sort(self):
        registry = MetricsRegistry()
        registry.counter("jobs", "n", tags={"kind": "qos"}).inc()
        registry.counter("jobs", "n", tags={"kind": "run"}).inc(5)
        assert registry.lines() == [
            "jobs,kind=qos n=1i",
            "jobs,kind=run n=5i",
        ]

    def test_render_is_deterministic(self):
        registry = MetricsRegistry()
        registry.gauge("b", "y").set(1)
        registry.counter("a", "x").inc()
        first = registry.render(timestamp_ns=123)
        assert first == registry.render(timestamp_ns=123)
        assert first.splitlines()[0].startswith("a ")

    def test_values_mirror_lines(self):
        """``values()`` is the JSON face of ``lines()``: same grouping
        by measurement+tags, same field payload."""
        registry = MetricsRegistry()
        registry.counter("jobs", "done").inc(2)
        registry.gauge("jobs", "queue").set(3)
        registry.counter("jobs", "n", tags={"kind": "qos"}).inc()
        assert registry.values() == {
            "jobs": {"done": 2, "queue": 3},
            "jobs,kind=qos": {"n": 1},
        }

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("m", "f")
        with pytest.raises(ServiceError, match="already registered"):
            registry.gauge("m", "f")

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ServiceError, match="only go up"):
            registry.counter("m", "f").inc(-1)


class TestLineFileWriter:
    def test_appends_and_flushes(self, tmp_path):
        path = tmp_path / "metrics.lp"
        writer = LineFileWriter(path)
        writer.write(["a x=1i"])
        writer.write(["b y=2i", "c z=3i"])
        writer.close()
        assert path.read_text().splitlines() == ["a x=1i", "b y=2i", "c z=3i"]

    def test_failure_degrades_silently_after_one_warning(self, tmp_path):
        warnings = []
        writer = LineFileWriter(
            tmp_path / "missing-dir" / "metrics.lp", log=warnings.append
        )
        writer.write(["a x=1i"])
        writer.write(["b y=2i"])
        writer.close()
        assert len(warnings) == 1
        assert "metrics_file_error" in warnings[0]


# -- the daemon, in-process over real sockets -------------------------------------


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    metrics_file = tmp_path_factory.mktemp("serve") / "metrics.lp"
    serving = ServeDaemon(
        port=0,
        engine=Engine(use_disk_cache=False),
        metrics_file=metrics_file,
        log=lambda line: None,
    )
    serving.start()
    yield serving
    serving.initiate_shutdown()
    serving._shutdown_thread.join(timeout=30)


@pytest.fixture
def client(daemon):
    return ServeClient(port=daemon.port, timeout=60.0)


class TestDaemon:
    def test_ping(self, client):
        assert client.ping()

    def test_ping_nobody_home(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        assert not ServeClient(port=free_port, timeout=2.0).ping()

    def test_warm_submissions_skip_dp_rebuilds(self, client):
        """Submissions after the first reuse the resident runtime."""
        config = qos_config()
        first = client.result(client.submit(config))
        warm = client.status()["engine"]
        baseline_dp, baseline_hits = warm["dp_builds"], warm["lut_hits"]
        payloads = [
            client.result(client.submit(config)) for _ in range(3)
        ]
        after = client.status()["engine"]
        assert after["dp_builds"] == baseline_dp  # zero rebuilds while warm
        assert after["lut_hits"] >= baseline_hits + 3
        for payload in payloads:
            assert payload["result"] == first["result"]

    def test_daemon_result_bit_identical_to_local_engine(self, client):
        config = qos_config(slices=8, peak=4)
        remote = client.result(client.submit(config, records=True))
        local = Engine(use_disk_cache=False).run_qos(config)
        expected = json.loads(json.dumps(local.to_dict(include_records=True)))
        assert remote["kind"] == "qos"
        assert remote["result"] == expected

    def test_run_and_fleet_kinds(self, client):
        run = client.result(client.submit(qos_config(), kind="run"))
        assert run["kind"] == "run"
        assert run["row"]["devices"] == 1
        assert run["result"]["total_energy_nj"] > 0
        fleet = client.result(
            client.submit(qos_config(fleet=2), kind="fleet")
        )
        assert fleet["kind"] == "fleet"
        assert fleet["row"]["devices"] == 2

    def test_status_reports_job_and_daemon_state(self, client, daemon):
        job_id = client.submit(qos_config())
        client.result(job_id)
        job = client.status(job_id)["job"]
        assert job["state"] == "done"
        assert job["error"] is None
        assert job["wall_s"] > 0
        state = client.status()
        assert state["port"] == daemon.port
        assert state["jobs"]["done"] >= 1
        assert not state["draining"]
        assert any(j["job_id"] == job_id for j in state["recent"])

    def test_metrics_scrape(self, client):
        client.result(client.submit(qos_config()))
        body = client.metrics()
        by_name = {
            line.split(",")[0].split(" ")[0]: line
            for line in body.strip().splitlines()
        }
        assert "jobs_completed=" in by_name["repro_serve_jobs"]
        assert "jobs_submitted=" in by_name["repro_serve_jobs"]
        assert "wall_s_p95=" in by_name["repro_serve_jobs"]
        assert "dp_builds=" in by_name["repro_engine"]
        assert "uptime_s=" in by_name["repro_serve"]
        assert "requests_completed=" in by_name["repro_qos"]
        # QoS windows streamed into gauges as the simulation ran.
        assert "slo_attainment=" in by_name["repro_qos_window"]

    def test_metrics_file_tails_jobs_and_windows(self, client, daemon):
        client.result(client.submit(qos_config()))
        lines = daemon._metrics_writer.path.read_text().splitlines()
        assert any(line.startswith("repro_qos_window,job=") for line in lines)
        assert any(line.startswith("repro_serve_job,job=") for line in lines)

    def test_failed_job_is_typed_and_daemon_survives(self, client, daemon):
        original = daemon.engine.run_job

        def explode(*args, **kwargs):
            raise ReproError("injected failure")

        daemon.engine.run_job = explode
        try:
            job_id = client.submit(qos_config())
            with pytest.raises(RemoteError) as err:
                client.result(job_id)
            assert err.value.code == "job_failed"
            assert "injected failure" in str(err.value)
        finally:
            daemon.engine.run_job = original
        # The daemon keeps serving: the very next submission succeeds.
        assert client.result(client.submit(qos_config()))["kind"] == "qos"
        assert client.status(job_id)["job"]["state"] == "failed"
        assert "jobs_failed=" in client.metrics()

    def test_result_without_wait_is_job_pending(self, client, daemon):
        release = threading.Event()
        original = daemon.engine.run_job

        def held(*args, **kwargs):
            release.wait(timeout=30)
            return original(*args, **kwargs)

        daemon.engine.run_job = held
        try:
            job_id = client.submit(qos_config())
            with pytest.raises(RemoteError) as err:
                client.result(job_id, wait=False)
            assert err.value.code == "job_pending"
        finally:
            release.set()
            daemon.engine.run_job = original
        assert client.result(job_id)["kind"] == "qos"

    def test_unknown_job_is_typed(self, client):
        with pytest.raises(RemoteError) as err:
            client.result("job-999999")
        assert err.value.code == "unknown_job"
        with pytest.raises(RemoteError) as err:
            client.status("job-999999")
        assert err.value.code == "unknown_job"

    def test_bad_config_rejected_at_submit(self, client):
        config = qos_config().to_dict()
        config["arch"] = "no-such-arch"
        with pytest.raises(RemoteError) as err:
            client.submit(config)
        assert err.value.code == "bad_config"

    def test_raw_socket_error_replies(self, daemon):
        def exchange(message):
            with socket.create_connection(
                ("127.0.0.1", daemon.port), timeout=10
            ) as sock:
                protocol.send_message(sock, message)
                return protocol.recv_message(sock)

        stale = exchange({"v": 99, "type": "PING"})
        assert (stale["type"], stale["code"]) == ("ERROR", "version_mismatch")
        alien = exchange({"v": PROTOCOL_VERSION, "type": "NOPE"})
        assert (alien["type"], alien["code"]) == ("ERROR", "unknown_type")
        with socket.create_connection(
            ("127.0.0.1", daemon.port), timeout=10
        ) as sock:
            sock.sendall(struct.pack(">I", 5) + b"{{{{{")
            torn = protocol.recv_message(sock)
            assert (torn["type"], torn["code"]) == ("ERROR", "bad_message")
            # A torn stream is unrecoverable: the daemon hangs up after.
            assert sock.recv(1) == b""

    def test_second_daemon_on_same_port_fails_fast(self, daemon):
        rival = ServeDaemon(
            port=daemon.port,
            engine=Engine(use_disk_cache=False),
            log=lambda line: None,
        )
        with pytest.raises(ServiceError, match="already running"):
            rival.start()


class TestDrainAndShutdown:
    @pytest.fixture
    def fresh(self, tmp_path):
        serving = ServeDaemon(
            port=0,
            engine=Engine(use_disk_cache=False),
            pidfile=tmp_path / "serve.pid",
            metrics_file=tmp_path / "metrics.lp",
            log=lambda line: None,
        )
        serving.start()
        yield serving
        if serving._server is not None:
            serving.stop()

    def test_drain_finishes_work_then_rejects_submissions(self, fresh):
        client = ServeClient(port=fresh.port, timeout=60.0)
        client.submit(qos_config())
        assert client.drain() == 1
        with pytest.raises(RemoteError) as err:
            client.submit(qos_config())
        assert err.value.code == "draining"
        # Observability survives the drain.
        assert client.status()["draining"]
        assert "jobs_completed=1i" in client.metrics()

    def test_shutdown_stops_and_cleans_up(self, fresh):
        client = ServeClient(port=fresh.port, timeout=60.0)
        assert fresh.pidfile.read_text().strip().isdigit()
        client.result(client.submit(qos_config()))
        client.shutdown()
        # stop() clears _server before removing the pidfile: wait on the
        # pidfile, the last artefact of the shutdown sequence.
        deadline = time.monotonic() + 30
        while fresh.pidfile.exists() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert fresh._server is None
        assert not fresh.pidfile.exists()
        assert (fresh.pidfile.parent / "metrics.lp").read_text()
        assert not client.ping()

    def test_traced_submit_returns_job_span_subtree(self, tmp_path):
        """A waiting RESULT must carry the subtree, not lose the race
        with its collection (the trace is attached before _finish)."""
        serving = ServeDaemon(
            port=0, engine=Engine(use_disk_cache=False),
            trace=tmp_path / "daemon.json", log=lambda line: None,
        )
        try:
            serving.start()
            client = ServeClient(port=serving.port, timeout=60.0)
            job_id = client.submit(qos_config(), trace=True)
            spans = client.result(job_id, wait=True)["trace"]
            roots = [s for s in spans if s["parent"] is None]
            assert [s["name"] for s in roots] == ["daemon.job"]
            names = {s["name"] for s in spans}
            assert "engine.qos" in names
            # A second, untraced submission carries no trace key.
            plain = client.result(client.submit(qos_config()), wait=True)
            assert "trace" not in plain
        finally:
            serving.stop()
        # The daemon's own trace file lands on stop.
        from repro.obs.tracing import Trace

        written = Trace.from_file(tmp_path / "daemon.json")
        assert sum(1 for s in written.spans if s.name == "daemon.job") == 2

    def test_completed_qos_jobs_persist_into_the_store(self, tmp_path):
        from repro.store import Store

        store = Store(tmp_path / "store")
        serving = ServeDaemon(port=0, store=store, log=lambda line: None)
        try:
            serving.start()
            client = ServeClient(port=serving.port, timeout=60.0)
            client.result(client.submit(qos_config()))
            rows = store.qos_rows()
            assert len(rows) == 1
            assert rows[0]["completed"] > 0
        finally:
            if serving._server is not None:
                serving.stop()
