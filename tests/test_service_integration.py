"""Subprocess lifecycle tests for ``repro serve``.

These exercise what the in-process daemon tests cannot: the CLI entry
point, the pidfile and structured startup log of a real daemon
process, a client in a *different* process driving it, and the clean
exit-0 shutdown with its one-line summary.  Everything runs on an
ephemeral port with isolated cache/store directories, so parallel CI
jobs never collide.
"""

import os
import re
import subprocess
import sys
import time

import pytest

import repro
from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import ExperimentConfig
from repro.service import ServeClient


def qos_config():
    return ExperimentConfig(
        scenario="case1", slices=6,
        block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
    )


@pytest.fixture
def serve_process(tmp_path):
    """A real ``repro serve`` subprocess on an ephemeral port."""
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_LUT_CACHE"] = str(tmp_path / "lut")
    pidfile = tmp_path / "serve.pid"
    metrics_file = tmp_path / "metrics.lp"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--store", str(tmp_path / "store"),
         "--pidfile", str(pidfile),
         "--metrics-file", str(metrics_file)],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        # The structured startup line carries the resolved port.
        deadline = time.monotonic() + 60
        banner = ""
        while time.monotonic() < deadline:
            banner = proc.stderr.readline()
            if "event=listening" in banner or proc.poll() is not None:
                break
        match = re.search(r"port=(\d+)", banner)
        assert match, f"no event=listening banner, got {banner!r}"
        yield proc, int(match.group(1)), pidfile, metrics_file
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)
        proc.stdout.close()
        proc.stderr.close()


class TestServeSubprocess:
    def test_full_lifecycle(self, serve_process):
        proc, port, pidfile, metrics_file = serve_process
        assert pidfile.read_text().strip() == str(proc.pid)

        client = ServeClient(port=port, timeout=60.0)
        assert client.ping()
        payload = client.result(client.submit(qos_config()))
        assert payload["kind"] == "qos"
        assert payload["result"]["completed"] > 0

        state = client.status()
        assert state["pid"] == proc.pid
        assert state["jobs"]["done"] == 1
        assert "jobs_completed=1i" in client.metrics()

        client.shutdown()
        assert proc.wait(timeout=60) == 0
        out = proc.stdout.read()
        assert "served 1 jobs (0 failed)" in out
        assert not pidfile.exists()
        assert "repro_serve_job," in metrics_file.read_text()
        err = proc.stderr.read()
        assert "event=stopped" in err
        assert not client.ping()

    def test_port_collision_exits_2(self, serve_process, tmp_path):
        _, port, _, _ = serve_process
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_LUT_CACHE"] = str(tmp_path / "lut2")
        rival = subprocess.run(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--store", str(tmp_path / "store2")],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert rival.returncode == 2
        assert rival.stderr.startswith("error: cannot listen on")
        assert "already running" in rival.stderr
        # The incumbent is untouched.
        assert ServeClient(port=port, timeout=10.0).ping()
