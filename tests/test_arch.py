"""Unit tests for architecture specs and processor assembly."""

import pytest

from repro.arch import (
    BASELINE_PIM,
    HETEROGENEOUS_PIM,
    HH_PIM,
    HYBRID_PIM,
    PimFabric,
    Processor,
    TABLE_I,
)
from repro.arch.specs import ArchitectureSpec, ClusterSpec
from repro.errors import ConfigurationError
from repro.isa import ClusterId, Compute, LoadOperands, Sync
from repro.pim.module import ModuleKind
from repro.riscv import asm


class TestTableI:
    """The four presets must match Table I exactly."""

    def test_baseline(self):
        assert BASELINE_PIM.hp.module_count == 8
        assert BASELINE_PIM.hp.sram_capacity == 128 * 1024
        assert BASELINE_PIM.hp.mram_capacity == 0
        assert BASELINE_PIM.lp is None

    def test_heterogeneous(self):
        assert HETEROGENEOUS_PIM.hp.module_count == 4
        assert HETEROGENEOUS_PIM.lp.module_count == 4
        assert HETEROGENEOUS_PIM.lp.sram_capacity == 128 * 1024
        assert not HETEROGENEOUS_PIM.hybrid

    def test_hybrid(self):
        assert HYBRID_PIM.hp.module_count == 8
        assert HYBRID_PIM.hp.mram_capacity == 64 * 1024
        assert HYBRID_PIM.hp.sram_capacity == 64 * 1024
        assert HYBRID_PIM.hybrid and not HYBRID_PIM.heterogeneous

    def test_hh(self):
        assert HH_PIM.heterogeneous and HH_PIM.hybrid
        assert HH_PIM.total_modules == 8

    def test_every_design_has_8_modules_and_1mb(self):
        for spec in TABLE_I:
            assert spec.total_modules == 8
            capacity = spec.total_capacity()
            assert capacity["mram"] + capacity["sram"] == 1024 * 1024

    def test_cluster_kind_validation(self):
        with pytest.raises(ConfigurationError):
            ArchitectureSpec(
                name="bad",
                hp=ClusterSpec(ModuleKind.LP, 4, 0, 1024),
            )

    def test_memoryless_module_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(ModuleKind.HP, 4, 0, 0)


class TestPimFabric:
    def test_hh_has_two_controllers(self):
        fabric = PimFabric(HH_PIM)
        assert set(fabric.clusters) == {ClusterId.HP, ClusterId.LP}
        assert fabric.controller(ClusterId.HP).peer is fabric.cluster(ClusterId.LP)

    def test_baseline_has_single_cluster(self):
        fabric = PimFabric(BASELINE_PIM)
        with pytest.raises(ConfigurationError):
            fabric.cluster(ClusterId.LP)

    def test_drain_routes_by_cluster(self):
        fabric = PimFabric(HH_PIM)
        fabric.queue.push(Compute(ClusterId.HP, 0, count=4))
        fabric.queue.push(Compute(ClusterId.LP, 0, count=4))
        elapsed = fabric.drain()
        assert elapsed > 0
        assert fabric.cluster(ClusterId.HP).module(0).pe.stats.macs == 4
        assert fabric.cluster(ClusterId.LP).module(0).pe.stats.macs == 4

    def test_drain_dual_controller_overlap(self):
        # The fabric completes at the slower controller, not the sum.
        fabric = PimFabric(HH_PIM)
        fabric.queue.push(Compute(ClusterId.HP, 0, count=100))
        fabric.queue.push(Compute(ClusterId.LP, 0, count=100))
        elapsed = fabric.drain()
        lp_only = PimFabric(HH_PIM)
        lp_only.queue.push(Compute(ClusterId.LP, 0, count=100))
        assert elapsed == pytest.approx(lp_only.drain())

    def test_energy_accumulates(self):
        fabric = PimFabric(HH_PIM)
        fabric.queue.push(LoadOperands(ClusterId.HP, 0, mram_count=8, sram_count=8))
        fabric.drain()
        assert fabric.total_energy_nj() > 0


class TestProcessor:
    def test_end_to_end_issue_path(self):
        processor = Processor(HH_PIM)
        word = Compute(ClusterId.HP, 0, count=16).encode()
        program = asm(f"""
            li a0, 0x40000000
            li t0, {word}
            sw t0, 0(a0)
            ebreak
        """)
        processor.load_program(program.to_bytes())
        summary = processor.run()
        assert summary["pim_instructions"] == 1
        # Straight-line program: every assembled word retires exactly once.
        assert summary["core_instructions"] == program.size_bytes // 4
        hp = processor.fabric.cluster(ClusterId.HP)
        assert hp.module(0).pe.stats.macs == 16
        assert summary["total_time_ns"] > 0

    def test_issue_loop_program(self):
        processor = Processor(HH_PIM)
        words = [
            Sync(ClusterId.HP, 0).encode(),
            Compute(ClusterId.HP, 1, count=3).encode(),
            Compute(ClusterId.LP, 2, count=5).encode(),
        ]
        body = "\n".join(
            f"li t0, {word}\nsw t0, 0(a0)" for word in words
        )
        program = asm(f"li a0, 0x40000000\n{body}\nebreak")
        processor.load_program(program.to_bytes())
        summary = processor.run()
        assert summary["pim_instructions"] == 3
        assert processor.fabric.cluster(ClusterId.LP).module(2).pe.stats.macs == 5
