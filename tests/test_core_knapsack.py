"""Unit tests for Algorithm 1 (knapsack DP) and Algorithm 2 (combine)."""

import itertools

import numpy as np
import pytest

from repro.core.combine import set_allocation_state
from repro.core.knapsack import (
    cluster_time_ns,
    knapsack_min_energy,
    reconstruct_counts,
)
from repro.core.spaces import SpaceKind, StorageSpace
from repro.errors import ConfigurationError, PlacementError


def space(kind, t, e, capacity=1000, volatile=False):
    """A hand-priced storage space for DP testing."""
    return StorageSpace(
        kind=kind,
        time_per_block_ns=t,
        dynamic_energy_per_block_nj=e,
        hold_static_energy_per_block_nj=0.0,
        access_static_energy_per_block_nj=0.0,
        capacity_blocks=capacity,
        full_static_power_mw=1.0,
        volatile=volatile,
    )


def brute_force(spaces, t_budget, blocks):
    """Exhaustive optimum for small instances."""
    best = None
    n = len(spaces)
    for counts in itertools.product(range(blocks + 1), repeat=n):
        if sum(counts) != blocks:
            continue
        if any(c > s.capacity_blocks for c, s in zip(counts, spaces)):
            continue
        time = sum(c * s.time_per_block_ns for c, s in zip(counts, spaces))
        if time > t_budget + 1e-9:
            continue
        energy = sum(
            c * s.energy_per_block_nj for c, s in zip(counts, spaces)
        )
        if best is None or energy < best:
            best = energy
    return best


class TestAlgorithm1:
    def test_single_space_exact(self):
        spaces = [space(SpaceKind.HP_SRAM, t=2.0, e=5.0)]
        result = knapsack_min_energy(spaces, t_steps=20, max_blocks=5,
                                     time_step_ns=1.0)
        # 5 blocks at 2 steps each need t >= 10.
        assert np.isinf(result.dp[-1, 9, 5])
        assert result.dp[-1, 10, 5] == pytest.approx(25.0)

    def test_prefers_cheaper_space_when_feasible(self):
        spaces = [
            space(SpaceKind.HP_SRAM, t=1.0, e=10.0),
            space(SpaceKind.HP_MRAM, t=2.0, e=1.0),
        ]
        result = knapsack_min_energy(spaces, t_steps=20, max_blocks=4,
                                     time_step_ns=1.0)
        # Plenty of time: everything goes to the cheap slow space.
        counts = reconstruct_counts(result, 20, 4)
        assert counts[SpaceKind.HP_MRAM] == 4
        # Tight time: forced into the fast expensive space.
        counts = reconstruct_counts(result, 4, 4)
        assert counts[SpaceKind.HP_SRAM] == 4

    def test_mixed_split_under_medium_budget(self):
        spaces = [
            space(SpaceKind.HP_SRAM, t=1.0, e=10.0),
            space(SpaceKind.HP_MRAM, t=2.0, e=1.0),
        ]
        result = knapsack_min_energy(spaces, t_steps=6, max_blocks=4,
                                     time_step_ns=1.0)
        counts = reconstruct_counts(result, 6, 4)
        # 2 fast + 2 slow = 2*1 + 2*2 = 6 steps exactly.
        assert counts == {SpaceKind.HP_SRAM: 2, SpaceKind.HP_MRAM: 2}

    def test_matches_brute_force_small_grid(self):
        spaces = [
            space(SpaceKind.HP_SRAM, t=1.0, e=7.0),
            space(SpaceKind.HP_MRAM, t=3.0, e=2.0),
        ]
        result = knapsack_min_energy(spaces, t_steps=15, max_blocks=5,
                                     time_step_ns=1.0)
        for t in range(16):
            for k in range(6):
                expected = brute_force(spaces, t, k)
                got = result.dp[-1, t, k]
                if expected is None:
                    assert np.isinf(got), (t, k)
                else:
                    assert got == pytest.approx(expected), (t, k)

    def test_capacity_limit_respected(self):
        spaces = [
            space(SpaceKind.HP_SRAM, t=1.0, e=10.0, capacity=2),
            space(SpaceKind.HP_MRAM, t=1.0, e=1.0, capacity=2),
        ]
        result = knapsack_min_energy(spaces, t_steps=10, max_blocks=4,
                                     time_step_ns=1.0)
        counts = reconstruct_counts(result, 10, 4)
        assert counts[SpaceKind.HP_MRAM] == 2
        assert counts[SpaceKind.HP_SRAM] == 2

    def test_infeasible_when_capacity_exhausted(self):
        spaces = [space(SpaceKind.HP_SRAM, t=1.0, e=1.0, capacity=2)]
        result = knapsack_min_energy(spaces, t_steps=10, max_blocks=4,
                                     time_step_ns=1.0)
        assert np.isinf(result.dp[-1, 10, 3])

    def test_dp_monotone_in_time(self):
        spaces = [
            space(SpaceKind.HP_SRAM, t=2.0, e=5.0),
            space(SpaceKind.HP_MRAM, t=3.0, e=1.0),
        ]
        result = knapsack_min_energy(spaces, t_steps=30, max_blocks=6,
                                     time_step_ns=1.0)
        final = result.dp[-1]
        for k in range(7):
            column = final[:, k]
            finite = column[np.isfinite(column)]
            assert np.all(np.diff(finite) <= 1e-9)

    def test_zero_blocks_costs_zero(self):
        spaces = [space(SpaceKind.HP_SRAM, t=1.0, e=1.0)]
        result = knapsack_min_energy(spaces, t_steps=5, max_blocks=3,
                                     time_step_ns=1.0)
        assert np.all(result.dp[:, :, 0] == 0.0)

    def test_reconstruction_conserves_blocks(self):
        spaces = [
            space(SpaceKind.LP_SRAM, t=1.5, e=4.0),
            space(SpaceKind.LP_MRAM, t=2.5, e=1.0),
        ]
        result = knapsack_min_energy(spaces, t_steps=40, max_blocks=8,
                                     time_step_ns=1.0)
        for t in (16, 20, 40):
            counts = reconstruct_counts(result, t, 8)
            assert sum(counts.values()) == 8

    def test_reconstruct_infeasible_raises(self):
        spaces = [space(SpaceKind.HP_SRAM, t=5.0, e=1.0)]
        result = knapsack_min_energy(spaces, t_steps=4, max_blocks=2,
                                     time_step_ns=1.0)
        with pytest.raises(PlacementError):
            reconstruct_counts(result, 4, 2)

    def test_cluster_time_matches_counts(self):
        spaces = [
            space(SpaceKind.HP_SRAM, t=1.0, e=2.0),
            space(SpaceKind.HP_MRAM, t=2.0, e=1.0),
        ]
        result = knapsack_min_energy(spaces, t_steps=10, max_blocks=4,
                                     time_step_ns=1.0)
        counts = {SpaceKind.HP_SRAM: 1, SpaceKind.HP_MRAM: 3}
        assert cluster_time_ns(result, counts) == pytest.approx(7.0)

    def test_empty_spaces_rejected(self):
        with pytest.raises(ConfigurationError):
            knapsack_min_energy([], t_steps=5, max_blocks=2, time_step_ns=1.0)

    def test_bad_dimensions_rejected(self):
        spaces = [space(SpaceKind.HP_SRAM, t=1.0, e=1.0)]
        with pytest.raises(ConfigurationError):
            knapsack_min_energy(spaces, t_steps=0, max_blocks=2,
                                time_step_ns=1.0)


class TestAlgorithm2:
    def make_tables(self):
        hp = knapsack_min_energy(
            [space(SpaceKind.HP_SRAM, t=1.0, e=10.0),
             space(SpaceKind.HP_MRAM, t=2.0, e=4.0)],
            t_steps=20, max_blocks=6, time_step_ns=1.0,
        )
        lp = knapsack_min_energy(
            [space(SpaceKind.LP_SRAM, t=2.0, e=3.0),
             space(SpaceKind.LP_MRAM, t=4.0, e=1.0)],
            t_steps=20, max_blocks=6, time_step_ns=1.0,
        )
        return hp, lp

    def test_rows_cover_time_axis(self):
        hp, lp = self.make_tables()
        rows = set_allocation_state(hp, lp, total_blocks=6)
        assert len(rows) == 21

    def test_infeasible_region_marked(self):
        hp, lp = self.make_tables()
        rows = set_allocation_state(hp, lp, total_blocks=6)
        # At t=0 and t=1 nothing fits (6 blocks need at least 3 steps
        # when split 3/3 over the two clusters at 1.0/2.0 per block).
        assert rows[0] is None

    def test_blocks_conserved_in_every_row(self):
        hp, lp = self.make_tables()
        rows = set_allocation_state(hp, lp, total_blocks=6)
        for row in rows:
            if row is None:
                continue
            assert row.k_hp + row.k_lp == 6
            assert sum(row.counts.values()) == 6

    def test_energy_non_increasing_with_budget(self):
        hp, lp = self.make_tables()
        rows = set_allocation_state(hp, lp, total_blocks=6)
        energies = [row.energy_nj for row in rows if row is not None]
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))

    def test_relaxed_budget_prefers_cheap_lp(self):
        hp, lp = self.make_tables()
        rows = set_allocation_state(hp, lp, total_blocks=6)
        last = rows[-1]
        # LP-MRAM (e=1) absorbs as much as the 20-step budget allows
        # (5 blocks at 4 steps); the leftover block goes to the cheapest
        # remaining space, HP-MRAM (e=4), which runs in parallel.
        assert last.counts[SpaceKind.LP_MRAM] == 5
        assert last.counts[SpaceKind.HP_MRAM] == 1
        assert last.k_hp == 1

    def test_combined_optimum_matches_exhaustive(self):
        hp, lp = self.make_tables()
        rows = set_allocation_state(hp, lp, total_blocks=4)
        hp_spaces = list(hp.spaces)
        lp_spaces = list(lp.spaces)
        for t in (4, 8, 12, 20):
            row = rows[t]
            best = None
            for k_hp in range(5):
                hp_best = brute_force(hp_spaces, t, k_hp)
                lp_best = brute_force(lp_spaces, t, 4 - k_hp)
                if hp_best is None or lp_best is None:
                    continue
                total = hp_best + lp_best
                if best is None or total < best:
                    best = total
            if best is None:
                assert row is None
            else:
                assert row.energy_nj == pytest.approx(best)

    def test_single_cluster_mode(self):
        hp, _ = self.make_tables()
        rows = set_allocation_state(hp, None, total_blocks=6)
        last = rows[-1]
        assert last.k_lp == 0
        assert sum(last.counts.values()) == 6

    def test_block_count_exceeding_table_rejected(self):
        hp, lp = self.make_tables()
        with pytest.raises(PlacementError):
            set_allocation_state(hp, lp, total_blocks=7)
