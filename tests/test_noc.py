"""Unit tests for the interconnect substrate (AXI + µNoC)."""

import pytest

from repro.errors import ConfigurationError, NocError
from repro.noc import AxiBus, AxiTransaction, BurstType, MicroNoc, NocLink


class TestAxi:
    def test_beats_rounding(self):
        bus = AxiBus(data_width_bytes=8)
        assert bus.beats_of(AxiTransaction(0, 64, False)) == 8
        assert bus.beats_of(AxiTransaction(0, 65, False)) == 9

    def test_burst_length_cap(self):
        bus = AxiBus(data_width_bytes=8)
        with pytest.raises(NocError):
            bus.beats_of(AxiTransaction(0, 8 * 257, False))

    def test_transfer_time(self):
        bus = AxiBus(data_width_bytes=8, clock_ns=20.0,
                     address_phase_cycles=2, beat_cycles=1)
        # 2 address cycles + 4 beats = 6 cycles = 120 ns.
        assert bus.transfer_time_ns(AxiTransaction(0, 32, True)) == pytest.approx(120.0)

    def test_incr_addresses(self):
        bus = AxiBus(data_width_bytes=4)
        txn = AxiTransaction(0x100, 16, False, burst=BurstType.INCR)
        assert bus.beat_addresses(txn) == [0x100, 0x104, 0x108, 0x10C]

    def test_fixed_addresses(self):
        bus = AxiBus(data_width_bytes=4)
        txn = AxiTransaction(0x40, 16, False, burst=BurstType.FIXED)
        assert bus.beat_addresses(txn) == [0x40] * 4

    def test_wrap_addresses(self):
        bus = AxiBus(data_width_bytes=4)
        txn = AxiTransaction(0x48, 16, False, burst=BurstType.WRAP)
        # Window [0x40, 0x50); wraps back to the start.
        assert bus.beat_addresses(txn) == [0x48, 0x4C, 0x40, 0x44]

    def test_long_transfer_splits(self):
        bus = AxiBus(data_width_bytes=8)
        elapsed = bus.transfer(0, 8 * 600, is_write=True)
        assert bus.transactions == 3
        assert elapsed > 0
        assert bus.bytes_transferred == 8 * 600

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            AxiBus(data_width_bytes=3)

    def test_invalid_transaction(self):
        with pytest.raises(NocError):
            AxiTransaction(0, 0, False)


class TestMicroNoc:
    def test_edge_soc_routes(self):
        noc = MicroNoc.edge_soc()
        assert noc.route("core", "hhpim") == ["core", "interconnect", "hhpim"]

    def test_self_route(self):
        noc = MicroNoc.edge_soc()
        assert noc.route("core", "core") == ["core"]

    def test_unknown_node(self):
        noc = MicroNoc.edge_soc()
        with pytest.raises(NocError):
            noc.route("core", "gpu")

    def test_no_route(self):
        noc = MicroNoc()
        noc.add_node("a")
        noc.add_node("b")
        with pytest.raises(NocError):
            noc.route("a", "b")

    def test_transfer_time_scales_with_length(self):
        noc = MicroNoc.edge_soc()
        short = noc.transfer_time_ns("core", "hhpim", 8)
        long = noc.transfer_time_ns("core", "hhpim", 256)
        assert long > short

    def test_transfer_records_history(self):
        noc = MicroNoc.edge_soc()
        noc.transfer("core", "system_memory", 64)
        assert noc.total_bytes == 64
        assert noc.history[0].hops == 2

    def test_narrowest_link_dominates(self):
        noc = MicroNoc(clock_ns=10.0)
        noc.add_link(NocLink("a", "b", width_bytes=8))
        noc.add_link(NocLink("b", "c", width_bytes=2))
        # 16 bytes over the 2-byte link = 8 flits; 2 hops of router latency.
        assert noc.transfer_time_ns("a", "c", 16) == pytest.approx((8 + 2) * 10.0)

    def test_self_link_rejected(self):
        noc = MicroNoc()
        with pytest.raises(ConfigurationError):
            noc.add_link(NocLink("x", "x"))

    def test_zero_length_rejected(self):
        noc = MicroNoc.edge_soc()
        with pytest.raises(NocError):
            noc.transfer_time_ns("core", "hhpim", 0)

    def test_deterministic_routing(self):
        noc = MicroNoc()
        noc.add_link(NocLink("a", "b"))
        noc.add_link(NocLink("a", "c"))
        noc.add_link(NocLink("b", "d"))
        noc.add_link(NocLink("c", "d"))
        # Two equal-length paths; BFS over sorted neighbours picks via 'b'.
        assert noc.route("a", "d") == ["a", "b", "d"]
