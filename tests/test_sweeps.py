"""Tests for the design-space sweep utilities."""

import pytest

from repro.analysis.sweeps import hh_variant, sweep_module_split, sweep_time_slice
from repro.errors import ConfigurationError
from repro.workloads import EFFICIENTNET_B0, ScenarioCase, scenario

SWEEP_KW = dict(block_count=16, time_steps=1500)


class TestVariants:
    def test_variant_naming_and_shape(self):
        spec = hh_variant(2, 6)
        assert spec.name == "HH-2H6L-64M64S"
        assert spec.hp.module_count == 2
        assert spec.lp.module_count == 6
        assert spec.hybrid

    def test_hp_only_variant(self):
        spec = hh_variant(8, 0)
        assert spec.lp is None
        assert spec.total_modules == 8

    def test_zero_hp_rejected(self):
        with pytest.raises(ConfigurationError):
            hh_variant(0, 8)


class TestModuleSplitSweep:
    @pytest.fixture(scope="class")
    def points(self):
        workload = scenario(ScenarioCase.RANDOM, slices=8)
        return sweep_module_split(
            EFFICIENTNET_B0, workload, splits=((2, 6), (4, 4), (6, 2)),
            **SWEEP_KW,
        )

    def test_one_point_per_split(self, points):
        assert [p.label for p in points] == [
            "HH-2H6L-64M64S", "HH-4H4L-64M64S", "HH-6H2L-64M64S"
        ]

    def test_energies_positive(self, points):
        assert all(p.total_energy_nj > 0 for p in points)

    def test_hp_heavy_is_fastest_at_peak(self, points):
        by_label = {p.label: p for p in points}
        assert (by_label["HH-6H2L-64M64S"].peak_task_time_ns
                < by_label["HH-2H6L-64M64S"].peak_task_time_ns)

    def test_reference_split_meets_deadlines(self, points):
        by_label = {p.label: p for p in points}
        assert by_label["HH-4H4L-64M64S"].deadlines_met


class TestModifiedModelSpec:
    def test_sweep_runs_the_passed_model_not_the_registered_one(self):
        """A modified spec sharing a builtin name must be what runs."""
        import dataclasses
        from repro.api.registry import MODELS, ensure_registered

        custom = dataclasses.replace(EFFICIENTNET_B0, pim_ratio=0.5)
        workload = scenario(ScenarioCase.LOW_CONSTANT, slices=3)
        try:
            stock = sweep_module_split(
                EFFICIENTNET_B0, workload, splits=((4, 4),), **SWEEP_KW
            )[0]
            modified = sweep_module_split(
                custom, workload, splits=((4, 4),), **SWEEP_KW
            )[0]
            assert modified.total_energy_nj != stock.total_energy_nj
        finally:
            # restore the builtin registration for other tests
            ensure_registered(MODELS, EFFICIENTNET_B0.name, EFFICIENTNET_B0)


class TestTimeSliceSweep:
    def test_energy_per_inference_non_increasing(self):
        workload = scenario(ScenarioCase.LOW_CONSTANT, slices=6)
        points = sweep_time_slice(
            EFFICIENTNET_B0, workload, scale_factors=(1.0, 2.0, 4.0),
            **SWEEP_KW,
        )
        # Same inference count in every run; a longer slice can only relax
        # the placement, so total energy must not grow faster than the
        # added idle leakage (which is ~zero in LP-MRAM); in practice it
        # shrinks or stays flat.
        energies = [p.total_energy_nj for p in points]
        assert energies[1] <= energies[0] * 1.05
        assert energies[2] <= energies[1] * 1.05

    def test_bad_factor_rejected(self):
        workload = scenario(ScenarioCase.LOW_CONSTANT, slices=2)
        with pytest.raises(ConfigurationError):
            sweep_time_slice(EFFICIENTNET_B0, workload,
                             scale_factors=(0.0,), **SWEEP_KW)
