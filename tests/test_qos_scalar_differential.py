"""Differential: vectorized QoS batch engine vs the per-event reference.

The columnar window engine (:meth:`QoSSimulator.run_vectorized`) must
reproduce the retained per-event scalar engine *bit for bit* — every
per-window :class:`QoSSliceStats` (latency percentiles included), every
per-device :class:`SliceRecord`, every summary aggregate — across the
six Fig. 4 presets, fleet shapes, queue disciplines and batch sizes,
plus the stress states the presets never reach (overload with drain,
autoscaling, multi-class mixes).  Mirrors the ``REPRO_SCALAR_DP`` and
``REPRO_SCALAR_RUNTIME`` differential suites.
"""

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig
from repro.qos import (
    INTERACTIVE_MIX,
    QoSSimulator,
    RequestBatch,
    sample_request_batch,
    sample_requests,
    scalar_qos,
    use_scalar_qos,
)
from repro.qos.queueing import Fifo, QueueDiscipline
from repro.workloads import ALL_CASES, bursty, scenario

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)


@pytest.fixture(scope="module")
def hh_runtime():
    return Engine(use_disk_cache=False).runtime(ExperimentConfig(**TINY))


def run_both(runtime, workload, requests=None, **kwargs):
    """One run per engine, same configuration, freshly built policies."""

    def run():
        return QoSSimulator(runtime, **kwargs).run(
            workload, requests=requests
        )

    with scalar_qos(False):
        fast = run()
    with scalar_qos():
        slow = run()
    return fast, slow


def assert_identical(fast, slow):
    """Bit-for-bit equality, per-device records included."""
    assert fast.to_dict(include_records=True) == slow.to_dict(
        include_records=True
    )


class TestMatrix:
    """Six Fig. 4 presets x fleet shapes x disciplines x batching."""

    @pytest.mark.parametrize("case", ALL_CASES,
                             ids=lambda c: f"case{c.value}")
    @pytest.mark.parametrize("devices", (1, 3))
    @pytest.mark.parametrize("discipline", ("fifo", "priority", "edf"))
    @pytest.mark.parametrize("batch", (1, 3))
    def test_record_for_record(self, hh_runtime, case, devices,
                               discipline, batch):
        workload = scenario(case, slices=12)
        fast, slow = run_both(
            hh_runtime, workload,
            devices=devices, discipline=discipline, batch=batch,
        )
        assert_identical(fast, slow)


class TestStressStates:
    def test_overload_with_drain(self, hh_runtime):
        """Deep backlog + drain windows: completions past the horizon."""
        workload = bursty(calm_rate=6.0, burst_rate=18.0).materialize(
            slices=20, peak=24, seed=7
        )
        fast, slow = run_both(
            hh_runtime, workload, devices=1, discipline="edf", batch=2
        )
        assert fast.unfinished == slow.unfinished
        assert len(fast.slices) > len(workload)
        assert_identical(fast, slow)

    @pytest.mark.parametrize("autoscaler", ("queue_depth", "threshold"))
    def test_autoscaling_fleet(self, hh_runtime, autoscaler):
        """Grow-and-shrink fleets re-stage queues identically."""
        workload = bursty(calm_rate=1.0, burst_rate=16.0).materialize(
            slices=24, peak=20, seed=11
        )
        fast, slow = run_both(
            hh_runtime, workload,
            devices=1, max_devices=5, autoscaler=autoscaler,
            discipline="edf", batch=2,
        )
        assert fast.mean_fleet_size > 1.0
        assert_identical(fast, slow)

    def test_multi_class_mix(self, hh_runtime):
        """Per-class priorities/SLO factors survive the columnar path."""
        workload = scenario(ALL_CASES[2], slices=16)
        fast, slow = run_both(
            hh_runtime, workload,
            devices=2, discipline="priority", batch=2,
            classes=INTERACTIVE_MIX,
        )
        assert_identical(fast, slow)

    def test_on_window_streams_identical_stats(self, hh_runtime):
        workload = scenario(ALL_CASES[0], slices=10)
        seen = {"fast": [], "slow": []}

        def run(key):
            sim = QoSSimulator(
                hh_runtime, devices=2, discipline="edf", batch=2,
                on_window=seen[key].append,
            )
            return sim.run(workload)

        with scalar_qos(False):
            fast = run("fast")
        with scalar_qos():
            run("slow")
        assert seen["fast"] == seen["slow"]
        assert tuple(seen["fast"]) == fast.slices


class TestRequestPlumbing:
    def test_explicit_request_tuples_match_batch(self, hh_runtime):
        """Tuple-of-Request input converts and serves identically."""
        workload = scenario(ALL_CASES[1], slices=10)
        t_slice = hh_runtime.t_slice_ns
        tuples = sample_requests(workload, t_slice, seed=5)
        batch = sample_request_batch(workload, t_slice, seed=5)
        fast, _ = run_both(
            hh_runtime, workload, requests=tuples,
            devices=1, discipline="fifo", batch=1,
        )
        via_batch, _ = run_both(
            hh_runtime, workload, requests=batch,
            devices=1, discipline="fifo", batch=1,
        )
        assert_identical(fast, via_batch)

    def test_sampler_parity_and_round_trip(self, hh_runtime):
        workload = scenario(ALL_CASES[3], slices=14)
        t_slice = hh_runtime.t_slice_ns
        tuples = sample_requests(workload, t_slice, seed=2025)
        batch = sample_request_batch(workload, t_slice, seed=2025)
        assert batch.to_requests() == tuples
        rebuilt = RequestBatch.from_requests(tuples)
        assert rebuilt.to_requests() == tuples


class TestDispatchSwitch:
    def test_env_flag_selects_the_scalar_engine(self, hh_runtime,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_QOS", "1")
        assert use_scalar_qos()
        with scalar_qos(False):
            assert not use_scalar_qos()

    def test_custom_discipline_falls_back_to_scalar(self, hh_runtime):
        """No vector keys -> run() silently uses the event engine."""

        class ReverseFifo(QueueDiscipline):
            name = "reverse_fifo"

            def key(self, request):
                return (-request.arrival_ns, -request.rid)

        workload = scenario(ALL_CASES[0], slices=8)
        assert ReverseFifo().vector_keys(
            sample_request_batch(workload, hh_runtime.t_slice_ns)
        ) is None
        custom = QoSSimulator(
            hh_runtime, devices=1, discipline=ReverseFifo(), batch=1
        ).run(workload)
        with scalar_qos():
            reference = QoSSimulator(
                hh_runtime, devices=1, discipline=ReverseFifo(), batch=1
            ).run(workload)
        assert custom.to_dict(include_records=True) == reference.to_dict(
            include_records=True
        )

    def test_builtin_disciplines_expose_vector_keys(self, hh_runtime):
        workload = scenario(ALL_CASES[0], slices=6)
        batch = sample_request_batch(workload, hh_runtime.t_slice_ns)
        keys = Fifo().vector_keys(batch)
        assert keys is not None
        assert all(len(k) == len(batch) for k in keys)
