"""Unit tests for workloads: layers, models, scenarios, tasks."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    ALL_CASES,
    Conv2d,
    DepthwiseConv2d,
    EFFICIENTNET_B0,
    InferenceTask,
    Linear,
    MOBILENET_V2,
    RESNET_18,
    Scenario,
    ScenarioCase,
    TABLE_IV,
    TaskBuffer,
    model_by_name,
    scenario,
)
from repro.workloads.layers import network_stats


class TestLayers:
    def test_conv_params_and_macs(self):
        conv = Conv2d("c", 3, 8, kernel=3, padding=1)
        stats = conv.stats((3, 16, 16))
        assert stats.params == 8 * 3 * 3 * 3
        assert stats.macs == 16 * 16 * 8 * 3 * 3 * 3
        assert stats.out_shape == (8, 16, 16)

    def test_conv_stride_halves(self):
        conv = Conv2d("c", 4, 4, kernel=3, stride=2, padding=1)
        assert conv.stats((4, 16, 16)).out_shape == (4, 8, 8)

    def test_conv_channel_mismatch(self):
        with pytest.raises(WorkloadError):
            Conv2d("c", 3, 8, kernel=3).stats((4, 16, 16))

    def test_conv_collapse_rejected(self):
        with pytest.raises(WorkloadError):
            Conv2d("c", 3, 8, kernel=5).stats((3, 4, 4))

    def test_conv_bias_params(self):
        with_bias = Conv2d("c", 2, 4, kernel=1, bias=True).stats((2, 4, 4))
        without = Conv2d("c", 2, 4, kernel=1).stats((2, 4, 4))
        assert with_bias.params == without.params + 4

    def test_depthwise(self):
        dw = DepthwiseConv2d("d", 8, kernel=3, padding=1)
        stats = dw.stats((8, 10, 10))
        assert stats.params == 8 * 9
        assert stats.macs == 10 * 10 * 8 * 9

    def test_linear_flattens(self):
        fc = Linear("f", 32, 10)
        stats = fc.stats((2, 4, 4))
        assert stats.params == 32 * 10 + 10
        assert stats.macs == 320

    def test_linear_shape_mismatch(self):
        with pytest.raises(WorkloadError):
            Linear("f", 16, 10).stats((2, 4, 4))

    def test_network_stats_chains_shapes(self):
        layers = [
            Conv2d("c1", 3, 4, kernel=3, padding=1),
            Conv2d("c2", 4, 8, kernel=3, stride=2, padding=1),
            DepthwiseConv2d("d", 8, kernel=4),
            Linear("f", 8, 2),
        ]
        stats = network_stats(layers, (3, 8, 8))
        assert stats[-1].out_shape == (2,)


class TestModels:
    def test_table_iv_totals(self):
        assert EFFICIENTNET_B0.params == 95_000
        assert EFFICIENTNET_B0.macs == 3_245_000
        assert EFFICIENTNET_B0.pim_ratio == 0.85
        assert MOBILENET_V2.params == 101_000
        assert RESNET_18.macs == 29_580_000
        assert RESNET_18.pim_ratio == 0.75

    def test_pim_core_split(self):
        assert (EFFICIENTNET_B0.pim_macs + EFFICIENTNET_B0.core_macs
                == EFFICIENTNET_B0.macs)
        assert EFFICIENTNET_B0.pim_macs == round(3_245_000 * 0.85)

    def test_macs_per_weight(self):
        assert EFFICIENTNET_B0.macs_per_weight == pytest.approx(
            EFFICIENTNET_B0.pim_macs / 95_000
        )

    def test_weight_bytes_int8(self):
        assert RESNET_18.weight_bytes == 256_000

    def test_lookup_by_name(self):
        assert model_by_name("resnet-18") is RESNET_18
        with pytest.raises(WorkloadError):
            model_by_name("vgg")

    @pytest.mark.parametrize("model", TABLE_IV, ids=lambda m: m.name)
    def test_backbones_shape_check(self, model):
        stats = model.backbone_stats()
        assert stats[-1].out_shape == (10,)
        total_params = sum(s.params for s in stats)
        total_macs = sum(s.macs for s in stats)
        # The synthetic backbones approximate Table IV within 5x; the
        # experiments always use the published totals.
        assert 0.2 < total_params / model.params < 5
        assert total_macs > 0

    def test_reference_times_present(self):
        for model in TABLE_IV:
            assert model.peak_inference_ns > 0
            assert model.mram_only_inference_ns > model.peak_inference_ns


class TestScenarios:
    def test_case1_constant_low(self):
        sc = scenario(ScenarioCase.LOW_CONSTANT, slices=20, peak=10, low=2)
        assert sc.loads == (2,) * 20

    def test_case2_constant_high(self):
        sc = scenario(ScenarioCase.HIGH_CONSTANT, slices=10)
        assert sc.loads == (10,) * 10

    def test_case3_spikes_every_10(self):
        sc = scenario(ScenarioCase.PERIODIC_SPIKE, slices=50)
        assert sum(1 for load in sc.loads if load == 10) == 5
        assert sc.loads[9] == 10

    def test_case4_more_frequent_than_case3(self):
        sparse = scenario(ScenarioCase.PERIODIC_SPIKE, slices=48)
        frequent = scenario(ScenarioCase.PERIODIC_SPIKE_FREQUENT, slices=48)
        assert frequent.total_inferences > sparse.total_inferences

    def test_case5_pulsing_blocks(self):
        sc = scenario(ScenarioCase.PULSING, slices=20)
        assert sc.loads[:5] == (10,) * 5
        assert sc.loads[5:10] == (2,) * 5

    def test_case6_random_seeded(self):
        a = scenario(ScenarioCase.RANDOM, seed=7)
        b = scenario(ScenarioCase.RANDOM, seed=7)
        c = scenario(ScenarioCase.RANDOM, seed=8)
        assert a.loads == b.loads
        assert a.loads != c.loads

    def test_loads_bounded(self):
        for case in ALL_CASES:
            sc = scenario(case)
            assert all(1 <= load <= 10 for load in sc.loads)

    def test_mean_load(self):
        sc = scenario(ScenarioCase.LOW_CONSTANT, slices=10, low=2)
        assert sc.mean_load == pytest.approx(2.0)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            scenario(ScenarioCase.RANDOM, slices=0)
        with pytest.raises(WorkloadError):
            scenario(ScenarioCase.RANDOM, low=0)
        with pytest.raises(WorkloadError):
            scenario(ScenarioCase.RANDOM, low=11, peak=10)

    def test_scenario_validation(self):
        with pytest.raises(WorkloadError):
            Scenario(case=ScenarioCase.RANDOM, loads=(11,), peak=10)


class TestTaskBuffer:
    def test_double_buffering(self):
        buffer = TaskBuffer(model=EFFICIENTNET_B0)
        buffer.arrive(3)
        # Arrivals of slice 0 are processed when slice 0 closes.
        tasks = buffer.advance_slice()
        assert len(tasks) == 3
        assert all(t.arrival_slice == 0 for t in tasks)
        assert buffer.advance_slice() == []

    def test_latency_bound_2T(self):
        buffer = TaskBuffer(model=EFFICIENTNET_B0)
        buffer.arrive(1)
        tasks = buffer.advance_slice()
        # A task arriving in slice s is processed during slice s+1, so its
        # completion is at most 2 slices after its arrival instant.
        assert tasks[0].arrival_slice == 0
        assert buffer.slice_index == 1

    def test_sequence_numbers_monotone(self):
        buffer = TaskBuffer(model=EFFICIENTNET_B0)
        buffer.arrive(2)
        first = buffer.advance_slice()
        buffer.arrive(2)
        second = buffer.advance_slice()
        sequences = [t.sequence for t in first + second]
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == 4

    def test_task_macs(self):
        task = InferenceTask(model=MOBILENET_V2, arrival_slice=0, sequence=0)
        assert task.pim_macs == MOBILENET_V2.pim_macs
        assert task.core_macs == MOBILENET_V2.core_macs

    def test_negative_arrivals_rejected(self):
        buffer = TaskBuffer(model=EFFICIENTNET_B0)
        with pytest.raises(WorkloadError):
            buffer.arrive(-1)

    def test_totals(self):
        buffer = TaskBuffer(model=EFFICIENTNET_B0)
        buffer.arrive(5)
        buffer.advance_slice()
        assert buffer.total_arrived == 5
        assert buffer.total_processed == 5
