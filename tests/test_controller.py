"""Unit tests for the controller package (FSM, decoder, encoder, allocator,
controller)."""

import pytest

from repro.controller import (
    AddressGenerator,
    CommandEncoder,
    DataAllocator,
    DataRearrangeBuffer,
    InstructionDecoder,
    PIMController,
    StateMachine,
)
from repro.controller.state_machine import ControllerState
from repro.errors import ControllerError, StateTransitionError
from repro.isa import (
    BROADCAST_MODULE,
    Category,
    ClusterId,
    Compute,
    Config,
    ConfigOp,
    GateTarget,
    Halt,
    LoadOperands,
    Move,
    StoreResult,
    Sync,
)
from repro.memory.hybrid import BankKind
from repro.pim import ModuleKind, PIMCluster


def make_cluster(cluster_id=ClusterId.HP, count=4):
    kind = ModuleKind.HP if cluster_id is ClusterId.HP else ModuleKind.LP
    return PIMCluster(cluster_id=cluster_id, kind=kind, module_count=count,
                      mram_capacity=4096, sram_capacity=4096)


class TestStateMachine:
    def test_initial_state(self):
        assert StateMachine().state is ControllerState.IDLE

    def test_full_cycle(self):
        machine = StateMachine()
        machine.run_cycle((ControllerState.LOAD, ControllerState.EXECUTE,
                           ControllerState.STORE))
        assert machine.state is ControllerState.IDLE
        assert machine.transitions == 6

    def test_illegal_transition_rejected(self):
        machine = StateMachine()
        with pytest.raises(StateTransitionError):
            machine.transition(ControllerState.EXECUTE)

    def test_halt_from_idle(self):
        machine = StateMachine()
        machine.halt()
        assert machine.state is ControllerState.HALTED

    def test_reset_from_halt(self):
        machine = StateMachine()
        machine.halt()
        machine.reset()
        assert machine.state is ControllerState.IDLE

    def test_history_bounded(self):
        machine = StateMachine(history_depth=8)
        for _ in range(10):
            machine.run_cycle((ControllerState.EXECUTE,))
        assert len(machine.history) <= 8

    def test_can_transition(self):
        machine = StateMachine()
        assert machine.can_transition(ControllerState.FETCH)
        assert not machine.can_transition(ControllerState.STORE)


class TestDecoder:
    def make(self):
        return InstructionDecoder(ClusterId.HP, module_count=4)

    def test_broadcast_expansion(self):
        decoded = self.make().decode(Sync(ClusterId.HP, BROADCAST_MODULE))
        assert decoded.module_select == (0, 1, 2, 3)

    def test_single_module(self):
        decoded = self.make().decode(Compute(ClusterId.HP, 2, count=5))
        assert decoded.module_select == (2,)
        assert decoded.category is Category.COMPUTE
        assert decoded.instruction_field["count"] == 5

    def test_wrong_cluster_rejected(self):
        with pytest.raises(ControllerError):
            self.make().decode(Sync(ClusterId.LP, 0))

    def test_module_out_of_range(self):
        with pytest.raises(ControllerError):
            self.make().decode(Sync(ClusterId.HP, 7))

    def test_decode_raw_word(self):
        word = LoadOperands(ClusterId.HP, 1, mram_count=3, sram_count=4).encode()
        decoded = self.make().decode(word)
        assert decoded.category is Category.LOAD
        assert decoded.instruction_field == {"mram_count": 3, "sram_count": 4}

    def test_move_fields(self):
        decoded = self.make().decode(
            Move(ClusterId.HP, 0, dst_module=2, block=9, count=3)
        )
        assert decoded.instruction_field["dst_cluster"] is ClusterId.LP
        assert decoded.instruction_field["block"] == 9


class TestCommandEncoder:
    def test_compute_striping(self):
        decoder = InstructionDecoder(ClusterId.HP, 4)
        decoded = decoder.decode(
            Compute(ClusterId.HP, BROADCAST_MODULE, count=10)
        )
        commands = CommandEncoder().encode(decoded)
        assert [c.params["count"] for c in commands] == [3, 3, 2, 2]

    def test_load_striping(self):
        decoder = InstructionDecoder(ClusterId.HP, 2)
        decoded = decoder.decode(
            LoadOperands(ClusterId.HP, BROADCAST_MODULE, mram_count=3, sram_count=5)
        )
        commands = CommandEncoder().encode(decoded)
        assert [c.params["mram_count"] for c in commands] == [2, 1]
        assert [c.params["sram_count"] for c in commands] == [3, 2]

    def test_config_fanout(self):
        decoder = InstructionDecoder(ClusterId.HP, 4)
        decoded = decoder.decode(
            Config(ClusterId.HP, BROADCAST_MODULE, op=ConfigOp.GATE_OFF,
                   target=GateTarget.SRAM)
        )
        commands = CommandEncoder().encode(decoded)
        assert len(commands) == 4
        assert all(c.category is Category.CONFIG for c in commands)


class TestAddressGenerator:
    def test_round_robin_striping(self):
        gen = AddressGenerator(module_count=4, block_bytes=256)
        assert gen.locate(0, BankKind.SRAM).module == 0
        assert gen.locate(5, BankKind.SRAM).module == 1
        assert gen.locate(5, BankKind.SRAM).offset == 256

    def test_negative_block_rejected(self):
        gen = AddressGenerator(module_count=2, block_bytes=64)
        with pytest.raises(ControllerError):
            gen.locate(-1, BankKind.MRAM)

    def test_blocks_per_module(self):
        gen = AddressGenerator(module_count=4, block_bytes=256)
        assert gen.blocks_per_module(4096) == 16


class TestDataRearrangeBuffer:
    def test_park_and_drain_fifo(self):
        gen = AddressGenerator(2, 4)
        buffer = DataRearrangeBuffer(capacity_bytes=64)
        buffer.park(gen.locate(0, BankKind.SRAM), b"aaaa")
        buffer.park(gen.locate(1, BankKind.SRAM), b"bbbb")
        assert buffer.drain().data == b"aaaa"
        assert buffer.drain().data == b"bbbb"

    def test_overflow_rejected(self):
        gen = AddressGenerator(2, 4)
        buffer = DataRearrangeBuffer(capacity_bytes=4)
        buffer.park(gen.locate(0, BankKind.SRAM), b"1234")
        with pytest.raises(ControllerError):
            buffer.park(gen.locate(1, BankKind.SRAM), b"5")

    def test_drain_empty_rejected(self):
        with pytest.raises(ControllerError):
            DataRearrangeBuffer().drain()

    def test_occupancy_tracking(self):
        gen = AddressGenerator(2, 4)
        buffer = DataRearrangeBuffer(capacity_bytes=64)
        buffer.park(gen.locate(0, BankKind.SRAM), b"12345678")
        assert buffer.occupancy_bytes == 8
        buffer.drain()
        assert buffer.occupancy_bytes == 0
        assert buffer.peak_occupancy == 8


class TestDataAllocator:
    def test_move_blocks_preserves_data(self):
        hp = make_cluster(ClusterId.HP)
        lp = make_cluster(ClusterId.LP)
        allocator = DataAllocator(block_bytes=16)
        payload = bytes(range(16))
        hp.module(0).memory.bank(BankKind.SRAM).write(0, payload)
        elapsed = allocator.move_blocks(hp, lp, BankKind.SRAM, BankKind.SRAM, [0])
        assert elapsed > 0
        assert lp.module(0).memory.bank(BankKind.SRAM).peek(0, 16) == payload

    def test_move_blocks_counts(self):
        hp = make_cluster(ClusterId.HP)
        lp = make_cluster(ClusterId.LP)
        allocator = DataAllocator(block_bytes=8)
        allocator.move_blocks(hp, lp, BankKind.SRAM, BankKind.MRAM, range(4))
        assert allocator.blocks_moved == 4
        assert allocator.bytes_moved == 32

    def test_movement_estimate_positive(self):
        hp = make_cluster(ClusterId.HP)
        lp = make_cluster(ClusterId.LP)
        allocator = DataAllocator(block_bytes=8)
        estimate = allocator.movement_time_ns(hp, lp, BankKind.SRAM,
                                              BankKind.MRAM, 8)
        assert estimate > 0

    def test_movement_estimate_zero_blocks(self):
        hp = make_cluster(ClusterId.HP)
        lp = make_cluster(ClusterId.LP)
        allocator = DataAllocator()
        assert allocator.movement_time_ns(hp, lp, BankKind.SRAM,
                                          BankKind.SRAM, 0) == 0.0


class TestPIMController:
    def make_pair(self):
        hp = make_cluster(ClusterId.HP)
        lp = make_cluster(ClusterId.LP)
        controller = PIMController(hp)
        controller.connect_peer(lp)
        return controller, hp, lp

    def test_compute_charges_pe(self):
        controller, hp, _ = self.make_pair()
        controller.execute(Compute(ClusterId.HP, 0, count=10))
        assert hp.module(0).pe.stats.macs == 10

    def test_compute_broadcast_stripes(self):
        controller, hp, _ = self.make_pair()
        controller.execute(Compute(ClusterId.HP, BROADCAST_MODULE, count=8))
        assert [m.pe.stats.macs for m in hp.modules] == [2, 2, 2, 2]

    def test_load_charges_banks(self):
        controller, hp, _ = self.make_pair()
        controller.execute(LoadOperands(ClusterId.HP, 0, mram_count=4, sram_count=2))
        stats = hp.module(0).memory_stats()
        assert stats.reads == 6

    def test_store_charges_write(self):
        controller, hp, _ = self.make_pair()
        controller.execute(StoreResult(ClusterId.HP, 1, address=4096))
        assert hp.module(1).memory_stats().writes == 1

    def test_config_gates(self):
        controller, hp, _ = self.make_pair()
        controller.execute(Config(ClusterId.HP, 0, op=ConfigOp.GATE_OFF,
                                  target=GateTarget.SRAM))
        assert not hp.module(0).memory.bank(BankKind.SRAM).powered

    def test_move_requires_peer(self):
        controller = PIMController(make_cluster(ClusterId.HP))
        with pytest.raises(ControllerError):
            controller.execute(Move(ClusterId.HP, 0, dst_module=0, count=1))

    def test_move_transfers(self):
        controller, hp, lp = self.make_pair()
        elapsed = controller.execute(Move(ClusterId.HP, 0, dst_module=0,
                                          block=0, count=1))
        assert elapsed > 0
        assert controller.allocator.blocks_moved == 1

    def test_halt_blocks_further_execution(self):
        controller, _, _ = self.make_pair()
        controller.execute(Halt(ClusterId.HP, 0))
        assert controller.halted
        with pytest.raises(ControllerError):
            controller.execute(Sync(ClusterId.HP, 0))

    def test_reset_after_halt(self):
        controller, _, _ = self.make_pair()
        controller.execute(Halt(ClusterId.HP, 0))
        controller.reset()
        controller.execute(Sync(ClusterId.HP, 0))
        assert controller.instructions_retired == 2

    def test_peer_must_be_opposite(self):
        controller = PIMController(make_cluster(ClusterId.HP))
        with pytest.raises(ControllerError):
            controller.connect_peer(make_cluster(ClusterId.HP))

    def test_run_program_accumulates_time(self):
        controller, _, _ = self.make_pair()
        program = [
            LoadOperands(ClusterId.HP, 0, mram_count=2, sram_count=2),
            Compute(ClusterId.HP, 0, count=4),
            Sync(ClusterId.HP, BROADCAST_MODULE),
        ]
        elapsed = controller.run_program(program)
        assert elapsed > 0
        assert controller.instructions_retired == 3
