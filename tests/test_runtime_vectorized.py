"""Differential tests: vectorized vs scalar slice loop.

The vectorized driver must produce *bit-identical* ``SliceRecord``
streams to the retained scalar reference loop on every Fig. 4 case and
every Table I architecture, plus DSL-built scenarios whose load ranges
exercise states the presets never reach.  Mirrors the
``REPRO_SCALAR_DP`` differential suite of ``tests/test_core_fastpath.py``.
"""

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig
from repro.core.runtime import scalar_runtime, use_scalar_runtime
from repro.workloads import ALL_CASES, bursty, diurnal, poisson, scenario

ARCH_NAMES = ("Baseline-PIM", "Heterogeneous-PIM", "Hybrid-PIM", "HH-PIM")


def assert_identical(vectorized, reference):
    assert len(vectorized.records) == len(reference.records)
    for fast, slow in zip(vectorized.records, reference.records):
        assert fast == slow


class TestDifferential:
    @pytest.mark.parametrize("arch", ARCH_NAMES)
    @pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: c.name.lower())
    def test_all_cases_all_architectures(self, runtimes, arch, case):
        runtime = runtimes[arch]
        workload = scenario(case, slices=30)
        assert_identical(
            runtime.run_vectorized(workload), runtime.run_scalar(workload)
        )

    @pytest.mark.parametrize("arch", ARCH_NAMES)
    def test_long_dsl_scenarios(self, runtimes, arch):
        runtime = runtimes[arch]
        workload = poisson(4.5).overlay(diurnal(trough=0)).materialize(
            slices=300, peak=10, seed=9
        )
        assert_identical(
            runtime.run_vectorized(workload), runtime.run_scalar(workload)
        )

    def test_zero_load_slices(self, runtimes):
        """Idle slices (0 arrivals) account identically on both paths."""
        runtime = runtimes["HH-PIM"]
        workload = bursty(calm_rate=0.5, burst_rate=8.0).materialize(
            slices=120, peak=10, seed=2
        )
        assert 0 in workload.loads
        assert_identical(
            runtime.run_vectorized(workload), runtime.run_scalar(workload)
        )


class TestSwitch:
    def test_run_dispatches_on_switch(self, runtimes):
        runtime = runtimes["HH-PIM"]
        workload = scenario(ALL_CASES[2], slices=8)
        # Pin both states explicitly so the test also holds on the CI
        # leg that exports REPRO_SCALAR_RUNTIME=1 for the whole suite.
        with scalar_runtime(False):
            assert not use_scalar_runtime()
            default = runtime.run(workload)
        with scalar_runtime():
            assert use_scalar_runtime()
            forced = runtime.run(workload)
        assert_identical(default, forced)

    def test_env_switch(self, runtimes, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_RUNTIME", "1")
        assert use_scalar_runtime()
        with scalar_runtime(False):
            assert not use_scalar_runtime()

    def test_engine_runs_identically_under_both_drivers(self):
        config = ExperimentConfig(
            scenario="bursty", slices=25,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        fast = Engine(use_disk_cache=False).run(config)
        with scalar_runtime():
            slow = Engine(use_disk_cache=False).run(config)
        assert_identical(fast, slow)


class TestExport:
    def test_run_result_to_dict(self, runtimes):
        runtime = runtimes["HH-PIM"]
        result = runtime.run(scenario(ALL_CASES[0], slices=6))
        data = result.to_dict()
        assert data["architecture"] == "HH-PIM"
        assert data["slices"] == 6
        assert len(data["records"]) == 6
        record = data["records"][0]
        assert set(record) >= {
            "index", "arrivals", "tasks_processed", "placement_counts",
            "busy_time_ns", "total_energy_nj", "deadline_met",
        }
        # plain primitives only: must round-trip through JSON
        import json

        json.dumps(data)
        assert all(
            isinstance(k, str) for k in record["placement_counts"]
        )
        summary = result.to_dict(include_records=False)
        assert "records" not in summary
        assert summary["total_energy_nj"] == result.total_energy_nj
