"""Unit tests for the simulation package (events, trace, engine)."""

import pytest

from repro.errors import SimulationError
from repro.isa.encoding import ClusterId
from repro.pim import ModuleKind, PIMCluster
from repro.sim import CycleEngine, EventQueue, TraceRecorder


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        order = []
        queue.schedule(10.0, lambda: order.append("b"))
        queue.schedule(5.0, lambda: order.append("a"))
        queue.run()
        assert order == ["a", "b"]
        assert queue.now_ns == pytest.approx(10.0)

    def test_tie_break_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.schedule(1.0, lambda: order.append("first"))
        queue.schedule(1.0, lambda: order.append("second"))
        queue.run()
        assert order == ["first", "second"]

    def test_nested_scheduling(self):
        queue = EventQueue()
        seen = []
        def fire():
            seen.append(queue.now_ns)
            if len(seen) < 3:
                queue.schedule(2.0, fire)
        queue.schedule(1.0, fire)
        queue.run()
        assert seen == [1.0, 3.0, 5.0]

    def test_run_until_horizon(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda: seen.append(1))
        queue.schedule(100.0, lambda: seen.append(2))
        queue.run(until_ns=50.0)
        assert seen == [1]
        assert len(queue) == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        queue = EventQueue()
        queue.schedule(10.0, lambda: None)
        queue.run()
        with pytest.raises(SimulationError):
            queue.schedule_at(5.0, lambda: None)

    def test_event_budget(self):
        queue = EventQueue()
        def forever():
            queue.schedule(1.0, forever)
        queue.schedule(1.0, forever)
        with pytest.raises(SimulationError):
            queue.run(max_events=10)

    def test_step_empty_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().step()


class TestTraceRecorder:
    def test_emit_and_filter(self):
        trace = TraceRecorder()
        trace.emit(1.0, "start", "a")
        trace.emit(2.0, "stop", "a", reason="done")
        assert len(trace.events) == 2
        assert trace.of_kind("stop")[0].detail["reason"] == "done"

    def test_window_filter(self):
        trace = TraceRecorder()
        for t in (1.0, 5.0, 9.0):
            trace.emit(t, "tick", "x")
        assert len(trace.between(2.0, 8.0)) == 1

    def test_bounded(self):
        trace = TraceRecorder(limit=2)
        for t in range(5):
            trace.emit(float(t), "tick", "x")
        assert len(trace.events) == 2
        assert trace.events[0].time_ns == 3.0

    def test_clear(self):
        trace = TraceRecorder()
        trace.emit(0.0, "tick", "x")
        trace.clear()
        assert not trace.events


class TestCycleEngine:
    def make_engine(self):
        clusters = {
            ClusterId.HP: PIMCluster(ClusterId.HP, ModuleKind.HP, 4),
            ClusterId.LP: PIMCluster(ClusterId.LP, ModuleKind.LP, 4),
        }
        return CycleEngine(clusters)

    def test_task_time_is_cluster_max(self):
        from repro.core.spaces import SpaceKind
        engine = self.make_engine()
        execution = engine.execute_task(
            {SpaceKind.HP_SRAM: 4, SpaceKind.LP_SRAM: 4}, macs_per_block=100
        )
        assert execution.task_time_ns == pytest.approx(
            max(execution.per_cluster_time_ns.values())
        )
        assert execution.per_cluster_time_ns[ClusterId.LP] > (
            execution.per_cluster_time_ns[ClusterId.HP]
        )

    def test_dynamic_energy_positive(self):
        from repro.core.spaces import SpaceKind
        engine = self.make_engine()
        execution = engine.execute_task(
            {SpaceKind.LP_MRAM: 8}, macs_per_block=50
        )
        assert execution.dynamic_energy_nj > 0

    def test_trace_emitted(self):
        from repro.core.spaces import SpaceKind
        engine = self.make_engine()
        engine.execute_task({SpaceKind.HP_SRAM: 2}, macs_per_block=10)
        assert engine.trace.of_kind("task_done")

    def test_run_slice_repeats(self):
        from repro.core.spaces import SpaceKind
        engine = self.make_engine()
        executions = engine.run_slice(
            {SpaceKind.HP_SRAM: 2}, macs_per_block=10, tasks=3
        )
        assert len(executions) == 3
        times = {e.task_time_ns for e in executions}
        assert len(times) == 1  # identical placements -> identical times

    def test_negative_blocks_rejected(self):
        from repro.core.spaces import SpaceKind
        engine = self.make_engine()
        with pytest.raises(SimulationError):
            engine.execute_task({SpaceKind.HP_SRAM: -1}, macs_per_block=10)

    def test_empty_clusters_rejected(self):
        with pytest.raises(SimulationError):
            CycleEngine({})
