"""Shared fixtures.

Heavy objects (optimizers, LUTs, runtimes) are session-scoped and built
at reduced resolution (fewer blocks / time steps) so the suite stays
fast while exercising the same code paths as the full-resolution
benchmarks.
"""

from __future__ import annotations

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.arch import BASELINE_PIM, HETEROGENEOUS_PIM, HH_PIM, HYBRID_PIM
from repro.core import DataPlacementOptimizer, TimeSliceRuntime
from repro.core.lutcache import temporary_cache_dir
from repro.core.runtime import default_time_slice_ns
from repro.store import temporary_store_dir
from repro.workloads import EFFICIENTNET_B0


@pytest.fixture(scope="session", autouse=True)
def _isolated_lut_cache(tmp_path_factory):
    """Point the persistent LUT cache at a throwaway directory.

    Keeps the suite hermetic: no reads of a previously warmed user cache
    (which would skew the engine's build-count assertions) and no writes
    outside the pytest tmp tree.
    """
    with temporary_cache_dir(tmp_path_factory.mktemp("lut-cache")):
        yield


@pytest.fixture(scope="session", autouse=True)
def _isolated_experiment_store(tmp_path_factory):
    """Point the default experiment store at a throwaway directory.

    ``Store()`` and CLI invocations without ``--store`` resolve through
    ``REPRO_STORE``; redirecting it keeps the suite from touching (or
    polluting) a user's real store.
    """
    with temporary_store_dir(tmp_path_factory.mktemp("exp-store")):
        yield


@pytest.fixture(scope="session")
def t_slice():
    """Time slice for EfficientNet-B0 at test resolution."""
    return default_time_slice_ns(
        EFFICIENTNET_B0, block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS
    )


@pytest.fixture(scope="session")
def hh_optimizer(t_slice):
    """HH-PIM optimizer for EfficientNet-B0 at test resolution."""
    return DataPlacementOptimizer(
        HH_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice,
        block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
    )


@pytest.fixture(scope="session")
def hh_lut(hh_optimizer):
    """The HH-PIM allocation LUT at test resolution."""
    return hh_optimizer.build_lut()


@pytest.fixture(scope="session")
def runtimes(t_slice):
    """One TimeSliceRuntime per Table I architecture (test resolution)."""
    return {
        spec.name: TimeSliceRuntime(
            spec, EFFICIENTNET_B0, t_slice_ns=t_slice,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        for spec in (BASELINE_PIM, HETEROGENEOUS_PIM, HYBRID_PIM, HH_PIM)
    }
