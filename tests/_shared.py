"""Shared test constants, importable absolutely.

Test modules import these with ``from _shared import ...`` (the tests
directory is on ``sys.path`` under pytest's rootdir-style collection);
relative imports like ``from .conftest import ...`` break because the
test directory is not a package.
"""

#: Reduced optimizer resolution used across the test suite.
SMALL_BLOCKS = 24
SMALL_STEPS = 3000
