"""Unit tests for the RV32IM ISS (decoder, CPU, MMIO, assembler)."""

import pytest

from repro.errors import IllegalInstructionError, MmioError, RiscvError
from repro.isa import ClusterId, Compute, InstructionQueue
from repro.riscv import (
    Cpu,
    MmioBus,
    PimMmioBridge,
    RamRegion,
    asm,
    decode,
)


def make_soc(ram_size=64 * 1024, queue_depth=16):
    bus = MmioBus()
    ram = bus.map(RamRegion(0, ram_size))
    queue = InstructionQueue(depth=queue_depth)
    bridge = bus.map(PimMmioBridge(0x4000_0000, queue))
    cpu = Cpu(bus)
    return cpu, bus, ram, queue, bridge


def run_program(source, max_instructions=100_000):
    cpu, bus, ram, queue, bridge = make_soc()
    ram.load_blob(0, asm(source).to_bytes())
    cpu.run(max_instructions=max_instructions)
    return cpu, queue, bridge


class TestDecoder:
    def test_addi(self):
        decoded = decode(asm("addi t0, zero, 42").words[0])
        assert decoded.mnemonic == "addi"
        assert decoded.imm == 42

    def test_negative_immediate(self):
        decoded = decode(asm("addi t0, zero, -5").words[0])
        assert decoded.imm == -5

    def test_branch_offset(self):
        program = asm("loop: beq zero, zero, loop")
        decoded = decode(program.words[0])
        assert decoded.mnemonic == "beq"
        assert decoded.imm == 0

    def test_illegal_word(self):
        with pytest.raises(IllegalInstructionError):
            decode(0xFFFFFFFF)

    def test_mul_decodes(self):
        decoded = decode(asm("mul a0, a1, a2").words[0])
        assert decoded.mnemonic == "mul"

    def test_shift_decodes(self):
        decoded = decode(asm("srai a0, a1, 3").words[0])
        assert decoded.mnemonic == "srai"
        assert decoded.imm == 3


class TestCpuArithmetic:
    def test_addi_chain(self):
        cpu, _, _ = run_program("""
            addi t0, zero, 10
            addi t0, t0, 20
            ebreak
        """)
        assert cpu.state.read(5) == 30

    def test_li_large_constant(self):
        cpu, _, _ = run_program("""
            li a0, 0x12345678
            ebreak
        """)
        assert cpu.state.read(10) == 0x12345678

    def test_li_negative(self):
        cpu, _, _ = run_program("""
            li a0, -1000000
            ebreak
        """)
        assert cpu.state.read(10) == (-1000000) & 0xFFFFFFFF

    def test_sub_and_compare(self):
        cpu, _, _ = run_program("""
            li t0, 7
            li t1, 10
            sub t2, t0, t1
            slt t3, t0, t1
            sltu t4, t0, t1
            ebreak
        """)
        assert cpu.state.read(7) == (-3) & 0xFFFFFFFF
        assert cpu.state.read(28) == 1
        assert cpu.state.read(29) == 1

    def test_mul_div_rem(self):
        cpu, _, _ = run_program("""
            li t0, -7
            li t1, 2
            mul t2, t0, t1
            div t3, t0, t1
            rem t4, t0, t1
            ebreak
        """)
        assert cpu.state.read(7) == (-14) & 0xFFFFFFFF
        assert cpu.state.read(28) == (-3) & 0xFFFFFFFF   # trunc toward zero
        assert cpu.state.read(29) == (-1) & 0xFFFFFFFF

    def test_div_by_zero_semantics(self):
        cpu, _, _ = run_program("""
            li t0, 5
            li t1, 0
            div t2, t0, t1
            divu t3, t0, t1
            rem t4, t0, t1
            ebreak
        """)
        assert cpu.state.read(7) == 0xFFFFFFFF
        assert cpu.state.read(28) == 0xFFFFFFFF
        assert cpu.state.read(29) == 5

    def test_shifts(self):
        cpu, _, _ = run_program("""
            li t0, -16
            srai t1, t0, 2
            srli t2, t0, 2
            slli t3, t0, 1
            ebreak
        """)
        assert cpu.state.read(6) == (-4) & 0xFFFFFFFF
        assert cpu.state.read(7) == ((-16) & 0xFFFFFFFF) >> 2
        assert cpu.state.read(28) == (-32) & 0xFFFFFFFF

    def test_x0_hardwired(self):
        cpu, _, _ = run_program("""
            addi zero, zero, 5
            ebreak
        """)
        assert cpu.state.read(0) == 0

    def test_loop_sum(self):
        cpu, _, _ = run_program("""
                li a0, 0      # sum
                li a1, 10     # counter
            loop:
                add a0, a0, a1
                addi a1, a1, -1
                bne a1, zero, loop
                ebreak
        """)
        assert cpu.state.read(10) == 55

    def test_function_call(self):
        cpu, _, _ = run_program("""
                li a0, 4
                jal ra, square
                ebreak
            square:
                mul a0, a0, a0
                jalr zero, 0(ra)
        """)
        assert cpu.state.read(10) == 16


class TestCpuMemory:
    def test_store_load_word(self):
        cpu, _, _ = run_program("""
            li a0, 0x1000
            li t0, 0xdeadbeef
            sw t0, 0(a0)
            lw t1, 0(a0)
            ebreak
        """)
        assert cpu.state.read(6) == 0xDEADBEEF

    def test_byte_sign_extension(self):
        cpu, _, _ = run_program("""
            li a0, 0x1000
            li t0, 0xff
            sb t0, 0(a0)
            lb t1, 0(a0)
            lbu t2, 0(a0)
            ebreak
        """)
        assert cpu.state.read(6) == 0xFFFFFFFF
        assert cpu.state.read(7) == 0xFF

    def test_halfword(self):
        cpu, _, _ = run_program("""
            li a0, 0x1000
            li t0, 0x8000
            sh t0, 0(a0)
            lh t1, 0(a0)
            lhu t2, 0(a0)
            ebreak
        """)
        assert cpu.state.read(6) == 0xFFFF8000
        assert cpu.state.read(7) == 0x8000

    def test_unmapped_access(self):
        cpu, bus, ram, _, _ = make_soc()
        ram.load_blob(0, asm("""
            li a0, 0x70000000
            lw t0, 0(a0)
            ebreak
        """).to_bytes())
        with pytest.raises(MmioError):
            cpu.run()

    def test_instruction_budget(self):
        cpu, bus, ram, _, _ = make_soc()
        ram.load_blob(0, asm("loop: j loop").to_bytes())
        with pytest.raises(RiscvError):
            cpu.run(max_instructions=100)

    def test_elapsed_time(self):
        cpu, _, _ = run_program("""
            nop
            nop
            ebreak
        """)
        assert cpu.elapsed_ns == pytest.approx(3 * 20.0)


class TestPimBridge:
    def test_doorbell_enqueues(self):
        word = Compute(ClusterId.HP, 0, count=7).encode()
        cpu, queue, _ = run_program(f"""
            li a0, 0x40000000
            li t0, {word}
            sw t0, 0(a0)
            ebreak
        """)
        assert len(queue) == 1
        instruction = queue.pop()
        assert instruction.count == 7

    def test_status_register(self):
        cpu, queue, _ = run_program("""
            li a0, 0x40000000
            lw t0, 4(a0)      # STATUS: empty
            lw t1, 8(a0)      # LEVEL
            ebreak
        """)
        assert cpu.state.read(5) == 2  # bit1 = empty
        assert cpu.state.read(6) == 0

    def test_full_queue_drops_and_counts(self):
        bus = MmioBus()
        queue = InstructionQueue(depth=1)
        bridge = bus.map(PimMmioBridge(0x0, queue))
        word = Compute(ClusterId.HP, 0, count=1).encode()
        bridge.store(0, word, 4)
        bridge.store(0, word, 4)  # dropped
        assert len(queue) == 1
        assert bridge.rejected_pushes == 1
        assert bridge.load(4, 4) & 1 == 1  # full flag

    def test_narrow_access_rejected(self):
        bus = MmioBus()
        bridge = bus.map(PimMmioBridge(0x0, InstructionQueue()))
        with pytest.raises(MmioError):
            bridge.load(4, 2)

    def test_overlapping_regions_rejected(self):
        bus = MmioBus()
        bus.map(RamRegion(0, 0x1000))
        with pytest.raises(MmioError):
            bus.map(RamRegion(0x800, 0x1000))


class TestAssembler:
    def test_labels_forward_and_back(self):
        program = asm("""
                j end
            middle:
                nop
            end:
                beq zero, zero, middle
                ebreak
        """)
        assert len(program.words) == 4
        assert program.labels["middle"] == 4

    def test_duplicate_label_rejected(self):
        from repro.errors import AssemblerError
        with pytest.raises(AssemblerError):
            asm("x: nop\nx: nop")

    def test_unknown_register(self):
        from repro.errors import AssemblerError
        with pytest.raises(AssemblerError):
            asm("addi q0, zero, 1")

    def test_ecall_hook(self):
        cpu, bus, ram, _, _ = make_soc()
        ram.load_blob(0, asm("""
            li a0, 99
            ecall
            ebreak
        """).to_bytes())
        seen = []
        cpu.ecall_handler = lambda c: seen.append(c.state.read(10))
        cpu.run()
        assert seen == [99]
