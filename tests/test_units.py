"""Unit tests for repro.units."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.units import (
    Clock,
    PROTOTYPE_CLOCK,
    energy_mj,
    energy_nj,
    mhz,
    ms,
    seconds,
    to_ms,
    to_us,
    us,
)


class TestConversions:
    def test_us_to_ns(self):
        assert us(1.5) == 1500.0

    def test_ms_to_ns(self):
        assert ms(2) == 2_000_000.0

    def test_seconds_to_ns(self):
        assert seconds(0.001) == ms(1)

    def test_roundtrip_ms(self):
        assert to_ms(ms(3.25)) == pytest.approx(3.25)

    def test_roundtrip_us(self):
        assert to_us(us(7.5)) == pytest.approx(7.5)

    def test_energy_mw_times_ns_is_pj(self):
        # 1 mW for 1 ns = 1 pJ = 0.001 nJ.
        assert energy_nj(1.0, 1.0) == pytest.approx(0.001)

    def test_energy_large(self):
        # 100 mW for 1 ms = 0.1 mJ = 1e5 nJ.
        assert energy_nj(100.0, ms(1)) == pytest.approx(1e5)

    def test_energy_mj(self):
        assert energy_mj(1e6) == pytest.approx(1.0)

    def test_mhz(self):
        assert mhz(50) == 50e6


class TestClock:
    def test_prototype_period(self):
        assert PROTOTYPE_CLOCK.period_ns == pytest.approx(20.0)

    def test_cycles_for_exact(self):
        assert PROTOTYPE_CLOCK.cycles_for(40.0) == 2

    def test_cycles_for_rounds_up(self):
        assert PROTOTYPE_CLOCK.cycles_for(20.1) == 2

    def test_cycles_for_zero(self):
        assert PROTOTYPE_CLOCK.cycles_for(0.0) == 0

    def test_cycles_for_sub_cycle(self):
        assert PROTOTYPE_CLOCK.cycles_for(1.0) == 1

    def test_time_of(self):
        assert PROTOTYPE_CLOCK.time_of(5) == pytest.approx(100.0)

    def test_quantize(self):
        assert PROTOTYPE_CLOCK.quantize(25.0) == pytest.approx(40.0)

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            Clock(frequency_hz=-1)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            PROTOTYPE_CLOCK.cycles_for(-1.0)

    def test_negative_cycles_rejected(self):
        with pytest.raises(ConfigurationError):
            PROTOTYPE_CLOCK.time_of(-2)

    def test_quantize_is_idempotent(self):
        once = PROTOTYPE_CLOCK.quantize(33.3)
        assert PROTOTYPE_CLOCK.quantize(once) == pytest.approx(once)

    def test_cycles_float_robustness(self):
        clock = Clock(frequency_hz=mhz(100))
        # 10 ns period; 30 ns must be exactly 3 cycles despite float math.
        assert clock.cycles_for(30.0) == 3
        assert not math.isnan(clock.period_ns)
