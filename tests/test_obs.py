"""Tests for the observability substrate (``repro.obs``).

Covers the span tracer (deterministic ids, nesting, epoch alignment,
retroactive recording, drain/ingest for the wire), both trace export
formats and their round-trips, the subtree extractor, the phase
profiler fold/render, the typed event log, and — the load-bearing
property — that an active tracer observes without perturbing results.
"""

import itertools
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Engine, ExperimentConfig
from repro.obs import events as obs_events
from repro.obs import profile as obs_profile
from repro.obs import tracing as obs_tracing
from repro.obs.tracing import Span, Trace, Tracer, subtree

TINY = dict(block_count=16, time_steps=1500)


class StepClock:
    """A fake monotonic clock advancing a fixed step per reading."""

    def __init__(self, step=1000):
        self.now = 0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def two_span_tracer():
    """A tracer with one nested pair recorded under the step clock.

    Clock readings: base=1000, enter a=2000, enter b=3000, exit b=4000,
    exit a=5000; with ``epoch_ns=0`` the offset is -1000, so span ``a``
    covers [1000, 4000) and ``b`` covers [2000, 3000).
    """
    tracer = Tracer(proc="main", clock=StepClock(), epoch_ns=0)
    with tracer.span("a", label="x"):
        with tracer.span("b"):
            pass
    return tracer


class TestTracer:
    def test_deterministic_ids_and_nesting(self):
        tracer = two_span_tracer()
        by_id = {s.id: s for s in tracer.spans}
        assert set(by_id) == {"main/1", "main/2"}
        a, b = by_id["main/1"], by_id["main/2"]
        assert (a.name, a.parent) == ("a", None)
        assert (b.name, b.parent) == ("b", "main/1")
        # Children close first: the buffer order is b, a.
        assert [s.name for s in tracer.spans] == ["b", "a"]

    def test_epoch_alignment_and_durations(self):
        by_name = {s.name: s for s in two_span_tracer().spans}
        a, b = by_name["a"], by_name["b"]
        assert (a.start_ns, a.dur_ns) == (1000, 3000)
        assert (b.start_ns, b.dur_ns) == (2000, 1000)

    def test_args_and_annotate(self):
        tracer = Tracer(proc="main", clock=StepClock(), epoch_ns=0)
        with tracer.span("a", label="x") as live:
            live.annotate(hit=True)
        assert tracer.spans[0].args == {"label": "x", "hit": True}

    def test_duration_clamped_nonnegative(self):
        readings = iter([10, 20, 15])
        tracer = Tracer(proc="main", clock=lambda: next(readings),
                        epoch_ns=0)
        with tracer.span("a"):
            pass
        assert tracer.spans[0].dur_ns == 0

    def test_thread_indices_in_order_of_first_appearance(self):
        tracer = Tracer(proc="main", epoch_ns=0)
        with tracer.span("main-thread"):
            pass

        def other():
            with tracer.span("other-thread"):
                pass

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        threads = {s.name: s.thread for s in tracer.spans}
        assert threads == {"main-thread": 0, "other-thread": 1}

    def test_record_retroactive_span(self):
        tracer = Tracer(proc="w", clock=StepClock(), epoch_ns=0)
        # Raw clock readings, aligned by the tracer's offset (-1000).
        span = tracer.record("claim", 6000, 6500, granted=True)
        assert (span.start_ns, span.dur_ns) == (5000, 500)
        assert span.parent is None
        assert span.args == {"granted": True}
        assert span.id == "w/1"
        assert tracer.spans[-1] is span

    def test_record_parents_onto_open_span(self):
        tracer = Tracer(proc="w", clock=StepClock(), epoch_ns=0)
        with tracer.span("outer") as outer:
            inner = tracer.record("claim", 100, 90)
        assert inner.parent == outer.id
        assert inner.dur_ns == 0  # end before start clamps to zero

    def test_drain_empties_buffer_but_keeps_counters(self):
        tracer = two_span_tracer()
        shipped = tracer.drain()
        assert [r["name"] for r in shipped] == ["b", "a"]
        assert tracer.spans == []
        assert tracer.spans_recorded == 2
        assert tracer.drain() == []
        with tracer.span("c"):
            pass
        assert tracer.spans[0].id == "main/3"  # counter kept going

    def test_add_foreign_spans_ingests_wire_records(self):
        tracer = Tracer(proc="main", epoch_ns=0)
        worker = two_span_tracer()
        records = worker.drain()
        tracer.add_foreign_spans(records)
        assert [s.name for s in tracer.spans] == ["b", "a"]
        assert tracer.spans_recorded == 2
        assert all(isinstance(s, Span) for s in tracer.spans)


class TestTraceExport:
    def test_chrome_export_golden(self):
        trace = two_span_tracer().trace()
        assert trace.to_chrome() == {
            "displayTimeUnit": "ms",
            "traceEvents": [
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": 0,
                    "args": {"name": "main"},
                },
                {
                    "name": "a",
                    "ph": "X",
                    "ts": 1,
                    "dur": 3,
                    "pid": 1,
                    "tid": 0,
                    "args": {"span_id": "main/1", "label": "x"},
                },
                {
                    "name": "b",
                    "ph": "X",
                    "ts": 2,
                    "dur": 1,
                    "pid": 1,
                    "tid": 0,
                    "args": {"span_id": "main/2", "parent_id": "main/1"},
                },
            ],
        }

    def test_jsonl_export_golden(self):
        lines = two_span_tracer().trace().to_jsonl().splitlines()
        assert [json.loads(line) for line in lines] == [
            {
                "id": "main/1",
                "parent": None,
                "name": "a",
                "start_ns": 1000,
                "dur_ns": 3000,
                "proc": "main",
                "thread": 0,
                "args": {"label": "x"},
            },
            {
                "id": "main/2",
                "parent": "main/1",
                "name": "b",
                "start_ns": 2000,
                "dur_ns": 1000,
                "proc": "main",
                "thread": 0,
            },
        ]

    def test_main_process_sorts_first(self):
        spans = [
            Span("a/1", None, "x", 0, 1, "a-proc", 0),
            Span("main/1", None, "x", 0, 1, "main", 0),
        ]
        events = Trace(spans).to_chrome()["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["main", "a-proc"]
        assert [m["pid"] for m in meta] == [1, 2]

    @pytest.mark.parametrize("suffix", [".json", ".jsonl"])
    def test_write_round_trip(self, tmp_path, suffix):
        original = two_span_tracer().trace()
        path = original.write(tmp_path / f"t{suffix}")
        loaded = Trace.from_file(path)
        assert [s.to_dict() for s in loaded.sorted_spans()] == [
            s.to_dict() for s in original.sorted_spans()
        ]

    def test_merge_accepts_traces_and_wire_lists(self):
        merged = Trace()
        merged.merge(two_span_tracer().trace())
        merged.merge(
            [Span("w/1", None, "chunk", 0, 5, "worker:w0", 0).to_dict()]
        )
        assert len(merged) == 3
        assert {s.proc for s in merged.spans} == {"main", "worker:w0"}

    def test_sub_microsecond_timestamps_survive_chrome(self, tmp_path):
        span = Span("main/1", None, "tiny", 1500, 250, "main", 0)
        path = Trace([span]).write(tmp_path / "t.json")
        loaded = Trace.from_file(path)
        assert (loaded.spans[0].start_ns, loaded.spans[0].dur_ns) == (
            1500, 250,
        )


class TestSubtree:
    def test_extracts_rooted_tree_from_unordered_spans(self):
        # Children close before parents, so grandchildren precede the
        # spans that link them to the root — the fixed point must grow.
        spans = [
            Span("p/3", "p/2", "grandchild", 2, 1, "p", 0),
            Span("p/5", None, "unrelated", 0, 9, "p", 0),
            Span("p/2", "p/1", "child", 1, 3, "p", 0),
            Span("p/1", None, "root", 0, 5, "p", 0),
            Span("p/4", "p/5", "other-child", 1, 1, "p", 0),
        ]
        picked = {s.id for s in subtree(spans, "p/1")}
        assert picked == {"p/1", "p/2", "p/3"}

    def test_missing_root_selects_nothing(self):
        spans = [Span("p/1", None, "root", 0, 5, "p", 0)]
        assert subtree(spans, "q/9") == []


class TestModuleHooks:
    def test_span_is_shared_null_object_when_inactive(self):
        assert obs_tracing.active_tracer() is None
        first = obs_tracing.span("anything", key="value")
        second = obs_tracing.span("other")
        assert first is second  # one shared instance, zero allocation
        with first as live:
            live.annotate(ignored=True)  # all no-ops

    def test_activate_routes_spans_and_deactivate_restores(self):
        tracer = obs_tracing.activate(proc="test", epoch_ns=0)
        try:
            assert obs_tracing.active_tracer() is tracer
            with obs_tracing.span("hello", n=1):
                pass
        finally:
            assert obs_tracing.deactivate() is tracer
        assert obs_tracing.active_tracer() is None
        assert [s.name for s in tracer.spans] == ["hello"]
        assert tracer.spans[0].args == {"n": 1}
        assert obs_tracing.deactivate() is None


class TestProfiler:
    def trace(self):
        return Trace([
            Span("p/1", None, "outer", 0, 10_000_000, "p", 0),
            Span("p/2", "p/1", "inner", 1_000_000, 4_000_000, "p", 0),
            Span("p/3", "p/1", "inner", 6_000_000, 3_000_000, "p", 0),
        ])

    def test_fold_self_time_subtracts_direct_children(self):
        stats = {s.name: s for s in obs_profile.fold(self.trace())}
        outer, inner = stats["outer"], stats["inner"]
        assert (outer.count, outer.total_ns) == (1, 10_000_000)
        assert outer.self_ns == 3_000_000  # 10ms minus the two inners
        assert (inner.count, inner.total_ns) == (2, 7_000_000)
        assert inner.self_ns == 7_000_000  # leaves keep all their time
        assert inner.max_ns == 4_000_000
        assert inner.avg_ns == 3_500_000.0

    def test_fold_sorts_hottest_self_first(self):
        assert [s.name for s in obs_profile.fold(self.trace())] == [
            "inner", "outer",
        ]

    def test_wall_spans_min_start_to_max_end(self):
        assert obs_profile.wall_ns(self.trace()) == 10_000_000
        assert obs_profile.wall_ns(Trace()) == 0

    def test_render_table_and_footer(self):
        text = obs_profile.render(self.trace())
        lines = text.splitlines()
        assert lines[0].split() == [
            "phase", "count", "total_ms", "self_ms", "avg_ms", "max_ms",
            "self%",
        ]
        assert lines[2].split() == [
            "inner", "2", "7.000", "7.000", "3.500", "4.000", "70.0",
        ]
        assert lines[3].split() == [
            "outer", "1", "10.000", "3.000", "10.000", "10.000", "30.0",
        ]
        assert lines[-1] == "3 spans, 2 phases, 1 process(es), wall 10.000 ms"

    def test_profile_file_round_trip(self, tmp_path):
        path = self.trace().write(tmp_path / "t.json")
        assert obs_profile.profile_file(path) == obs_profile.render(
            self.trace()
        )


class TestEventLog:
    def test_unknown_event_rejected(self):
        log = obs_events.EventLog("test", sink=lambda line: None)
        with pytest.raises(ValueError, match="unknown event"):
            log.emit("not_an_event")

    def test_unknown_field_rejected(self):
        log = obs_events.EventLog("test", sink=lambda line: None)
        with pytest.raises(ValueError, match="does not accept"):
            log.emit("listening", port=1, color="red")

    def test_fields_render_in_registry_order(self):
        lines = []
        log = obs_events.EventLog("repro-sweep", sink=lines.append)
        # Emit order scrambled on purpose: the registry order wins.
        log.emit("chunk_granted", stolen=True, chunk=3, worker="w0",
                 configs=4)
        assert lines == [
            "repro-sweep event=chunk_granted chunk=3 worker=w0"
            " configs=4 stolen=1"
        ]

    def test_value_rendering(self):
        lines = []
        log = obs_events.EventLog("p", sink=lines.append)
        log.emit("job_done", job="job-000001", kind="qos",
                 label="a label", wall_s=1.23456)
        # bools -> ints, floats -> .3f, whitespace strings -> repr.
        assert lines == [
            "p event=job_done job=job-000001 kind=qos"
            " label='a label' wall_s=1.235"
        ]

    def test_absent_fields_omitted(self):
        lines = []
        log = obs_events.EventLog("p", sink=lines.append)
        log.emit("listening", port=7787)
        assert lines == ["p event=listening port=7787"]

    def test_jsonl_mirror_with_injected_clock(self, tmp_path):
        path = tmp_path / "events.jsonl"
        ticks = itertools.count(100, 10)
        log = obs_events.EventLog(
            "p", sink=lambda line: None, path=path,
            clock=lambda: next(ticks),
        )
        log.emit("started", worker="w0", coordinator="127.0.0.1:1")
        log.emit("finished", worker="w0", chunks=2, configs=8,
                 abandoned=0)
        log.close()
        records = [json.loads(x) for x in path.read_text().splitlines()]
        assert records == [
            {"ts_ns": 100, "event": "started", "worker": "w0",
             "coordinator": "127.0.0.1:1"},
            {"ts_ns": 110, "event": "finished", "worker": "w0",
             "chunks": 2, "configs": 8, "abandoned": 0},
        ]
        assert log.events_logged == 2

    def test_global_install_emit_uninstall(self):
        lines = []
        log = obs_events.EventLog("deep", sink=lines.append)
        obs_events.install(log)
        try:
            obs_events.install(log)  # idempotent: no double delivery
            obs_events.emit("store_quarantine", path="x", reason="torn")
        finally:
            obs_events.uninstall(log)
        obs_events.emit("store_quarantine", path="y", reason="torn")
        assert lines == ["deep event=store_quarantine path=x reason=torn"]
        obs_events.uninstall(log)  # no-op when absent

    def test_every_registered_event_accepts_its_own_fields(self):
        log = obs_events.EventLog("p", sink=lambda line: None)
        for event, fields in obs_events.EVENTS.items():
            log.emit(event, **{field: 1 for field in fields})
        assert log.events_logged == len(obs_events.EVENTS)


# -- properties ---------------------------------------------------------------------


span_trees = st.recursive(
    st.just([]),
    lambda children: st.lists(children, max_size=3),
    max_leaves=12,
)


class TestTracingProperties:
    @given(
        tree=span_trees,
        increments=st.lists(
            st.integers(min_value=0, max_value=1_000),
            min_size=1, max_size=32,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_spans_nest_within_parents(self, tree, increments):
        """Every child interval lies within its parent's; no negative
        durations; ids unique — under an arbitrary monotonic clock."""
        ticks = itertools.cycle(increments)
        now = [0]

        def clock():
            now[0] += next(ticks)
            return now[0]

        tracer = Tracer(proc="t", clock=clock, epoch_ns=0)

        def walk(children, depth):
            with tracer.span(f"depth-{depth}"):
                for child in children:
                    walk(child, depth + 1)

        walk(tree, 0)
        by_id = {s.id: s for s in tracer.spans}
        assert len(by_id) == len(tracer.spans)
        for span in tracer.spans:
            assert span.dur_ns >= 0
            assert span.start_ns >= 0
            if span.parent is not None:
                parent = by_id[span.parent]
                assert parent.start_ns <= span.start_ns
                assert (span.start_ns + span.dur_ns
                        <= parent.start_ns + parent.dur_ns)


# -- non-perturbation ---------------------------------------------------------------


class TestTracingDoesNotPerturb:
    def test_engine_run_bit_identical_under_tracing(self):
        config = ExperimentConfig(scenario="case3", slices=5, **TINY)
        baseline = Engine().run(config)
        tracer = obs_tracing.activate(proc="test", epoch_ns=0)
        try:
            traced = Engine().run(config)
        finally:
            obs_tracing.deactivate()
        assert traced.total_energy_nj == baseline.total_energy_nj
        assert traced.records == baseline.records
        names = {s.name for s in tracer.spans}
        assert {"engine.run", "engine.materialize_runtime",
                "lutcache.fetch_or_build"} <= names
        assert tracer.spans_recorded == len(tracer.spans)

    def test_qos_run_bit_identical_under_tracing(self):
        config = ExperimentConfig(
            scenario="bursty", slices=8, fleet=2, qos="edf", batch=2,
            **TINY,
        )
        baseline = Engine().run_qos(config)
        tracer = obs_tracing.activate(proc="test", epoch_ns=0)
        try:
            traced = Engine().run_qos(config)
        finally:
            obs_tracing.deactivate()
        assert traced.total_energy_nj == baseline.total_energy_nj
        assert traced.latency_percentiles_ns == (
            baseline.latency_percentiles_ns
        )
        names = {s.name for s in tracer.spans}
        assert "engine.qos" in names
        assert "qos.window" in names
