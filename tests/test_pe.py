"""Unit tests for the PE package (MAC datapath + timing wrapper)."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.technology import HP_VDD, LP_VDD
from repro.pe import (
    MacUnit,
    ProcessingElement,
    int8_mac,
    requantize,
    saturate_int8,
    saturate_int32,
)


class TestSaturation:
    def test_int8_in_range(self):
        assert saturate_int8(100) == 100

    def test_int8_clamps_high(self):
        assert saturate_int8(200) == 127

    def test_int8_clamps_low(self):
        assert saturate_int8(-200) == -128

    def test_int32_clamps(self):
        assert saturate_int32(2**40) == 2**31 - 1
        assert saturate_int32(-(2**40)) == -(2**31)


class TestInt8Mac:
    def test_basic(self):
        assert int8_mac(10, 3, 4) == 22

    def test_negative_operands(self):
        assert int8_mac(0, -128, -128) == 16384

    def test_saturates_accumulator(self):
        acc = 2**31 - 10
        assert int8_mac(acc, 127, 127) == 2**31 - 1

    def test_rejects_out_of_range_weight(self):
        with pytest.raises(ConfigurationError):
            int8_mac(0, 128, 0)

    def test_rejects_out_of_range_activation(self):
        with pytest.raises(ConfigurationError):
            int8_mac(0, 0, -129)


class TestRequantize:
    def test_identity(self):
        assert requantize(100, 1, 0) == 100

    def test_shift(self):
        assert requantize(256, 1, 8) == 1

    def test_rounding_half_up(self):
        assert requantize(3, 1, 1) == 2  # 1.5 rounds away from zero

    def test_negative_rounds_away(self):
        assert requantize(-3, 1, 1) == -2

    def test_saturates_to_int8(self):
        assert requantize(10_000, 1, 0) == 127
        assert requantize(-10_000, 1, 0) == -128

    def test_negative_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            requantize(1, 1, -1)


class TestMacUnit:
    def test_dot_product_matches_python(self):
        unit = MacUnit()
        weights = [1, -2, 3, -4]
        activations = [5, 6, -7, 8]
        expected = sum(w * a for w, a in zip(weights, activations))
        assert unit.dot(weights, activations) == expected

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            MacUnit().dot([1, 2], [1])

    def test_emit_clears(self):
        unit = MacUnit()
        unit.step(10, 10)
        assert unit.emit() == 100
        assert unit.accumulator == 0

    def test_ops_counted(self):
        unit = MacUnit()
        unit.dot([1] * 5, [1] * 5)
        assert unit.ops == 5


class TestProcessingElement:
    def test_hp_latency(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        assert pe.mac_latency_ns == pytest.approx(5.52)

    def test_lp_latency(self):
        pe = ProcessingElement(name="pe", vdd=LP_VDD)
        assert pe.mac_latency_ns == pytest.approx(10.68)

    def test_mac_energy(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        assert pe.mac_energy_nj == pytest.approx(0.9 * 5.52 / 1000.0)

    def test_execute_mac_functional_and_charged(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        assert pe.execute_mac(3, 7) == 21
        assert pe.stats.macs == 1
        assert pe.stats.busy_time_ns == pytest.approx(5.52)

    def test_charge_macs_bulk(self):
        pe = ProcessingElement(name="pe", vdd=LP_VDD)
        elapsed = pe.charge_macs(100)
        assert elapsed == pytest.approx(100 * 10.68)
        assert pe.stats.macs == 100

    def test_charge_macs_zero(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        assert pe.charge_macs(0) == 0.0

    def test_gated_compute_rejected(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        pe.power_off()
        with pytest.raises(ConfigurationError):
            pe.execute_mac(1, 1)

    def test_gating_clears_accumulator(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        pe.execute_mac(2, 2)
        pe.power_off()
        pe.power_on()
        assert pe.mac.accumulator == 0

    def test_idle_static(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        pe.account_idle(1000.0)
        assert pe.stats.static_energy_nj == pytest.approx(0.48)

    def test_idle_gated_free(self):
        pe = ProcessingElement(name="pe", vdd=HP_VDD)
        pe.power_off()
        pe.account_idle(1000.0)
        assert pe.stats.static_energy_nj == 0.0

    def test_hp_faster_but_hungrier_than_lp(self):
        hp = ProcessingElement(name="hp", vdd=HP_VDD)
        lp = ProcessingElement(name="lp", vdd=LP_VDD)
        assert hp.mac_latency_ns < lp.mac_latency_ns
        assert hp.dynamic_power_mw > lp.dynamic_power_mw
        # Per-MAC *energy* is what LP wins on.
        assert lp.mac_energy_nj > 0
