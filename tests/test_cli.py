"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestTables:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "HH-PIM" in out and "Baseline-PIM" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2")
        assert "14,998" in out and "Rocket" in out

    def test_table3(self, capsys):
        out = run_cli(capsys, "table3")
        assert "2.62" in out and "10.68" in out

    def test_table4(self, capsys):
        out = run_cli(capsys, "table4")
        assert "ResNet-18" in out and "29,580,000" in out

    def test_table5(self, capsys):
        out = run_cli(capsys, "table5")
        assert "428.48" in out and "23.29" in out

    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "architectures:" in out
        assert "6: Random Workload" in out


class TestFigures:
    def test_fig4(self, capsys):
        out = run_cli(capsys, "fig4", "--slices", "20")
        assert out.count("Case") == 6

    def test_fig6_small(self, capsys):
        out = run_cli(capsys, "fig6", "--blocks", "16", "--steps", "1500",
                      "--points", "6")
        assert "E_task" in out
        assert out.count("|") >= 12  # placement strips

    def test_run_small(self, capsys):
        out = run_cli(capsys, "run", "--case", "1", "--slices", "4",
                      "--blocks", "16", "--steps", "1500")
        assert "HH-PIM" in out
        assert "met" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_case_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "9"])
