"""Tests for the command-line interface."""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    assert code == 0
    return captured.out


class TestTables:
    def test_table1(self, capsys):
        out = run_cli(capsys, "table1")
        assert "HH-PIM" in out and "Baseline-PIM" in out

    def test_table2(self, capsys):
        out = run_cli(capsys, "table2")
        assert "14,998" in out and "Rocket" in out

    def test_table3(self, capsys):
        out = run_cli(capsys, "table3")
        assert "2.62" in out and "10.68" in out

    def test_table4(self, capsys):
        out = run_cli(capsys, "table4")
        assert "ResNet-18" in out and "29,580,000" in out

    def test_table5(self, capsys):
        out = run_cli(capsys, "table5")
        assert "428.48" in out and "23.29" in out

    def test_list(self, capsys):
        out = run_cli(capsys, "list")
        assert "architectures:" in out
        assert "6: Random Workload" in out
        assert "queue disciplines:" in out
        assert "edf" in out
        assert "autoscalers:" in out
        assert "queue_depth" in out


class TestFigures:
    def test_fig4(self, capsys):
        out = run_cli(capsys, "fig4", "--slices", "20")
        assert out.count("Case") == 6

    def test_fig6_small(self, capsys):
        out = run_cli(capsys, "fig6", "--blocks", "16", "--steps", "1500",
                      "--points", "6")
        assert "E_task" in out
        assert out.count("|") >= 12  # placement strips

    def test_run_small(self, capsys):
        out = run_cli(capsys, "run", "--case", "1", "--slices", "4",
                      "--blocks", "16", "--steps", "1500")
        assert "HH-PIM" in out
        assert "met" in out

    def test_run_single_arch(self, capsys):
        out = run_cli(capsys, "run", "--case", "1", "--slices", "4",
                      "--blocks", "16", "--steps", "1500",
                      "--arch", "hh-pim")
        assert "HH-PIM" in out
        assert "Baseline-PIM" not in out


class TestJsonAndSweep:
    def test_run_json(self, capsys):
        out = run_cli(capsys, "run", "--case", "1", "--slices", "4",
                      "--blocks", "16", "--steps", "1500", "--json")
        rows = json.loads(out)
        assert {row["arch"] for row in rows} >= {"HH-PIM", "Baseline-PIM"}
        for row in rows:
            assert row["scenario"] == "case1"
            assert row["total_energy_nj"] > 0

    def test_sweep_table_and_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "sweep.csv"
        out = run_cli(capsys, "sweep", "--model", "EfficientNet-B0",
                      "--case", "1", "--case", "2",
                      "--arch", "HH-PIM", "--arch", "Hybrid-PIM",
                      "--slices", "4", "--blocks", "16", "--steps", "1500",
                      "--csv", str(csv_path))
        assert "aggregate by arch" in out
        assert "LUTs built" in out
        lines = csv_path.read_text().strip().splitlines()
        assert len(lines) == 5  # header + 2 archs x 2 cases

    def test_sweep_json(self, capsys):
        out = run_cli(capsys, "sweep", "--model", "EfficientNet-B0",
                      "--case", "1", "--arch", "HH-PIM",
                      "--slices", "4", "--blocks", "16", "--steps", "1500",
                      "--json")
        rows = json.loads(out)
        assert len(rows) == 1 and rows[0]["arch"] == "HH-PIM"

    def test_run_json_records(self, capsys):
        out = run_cli(capsys, "run", "--case", "1", "--slices", "4",
                      "--blocks", "16", "--steps", "1500",
                      "--arch", "HH-PIM", "--json", "--records")
        rows = json.loads(out)
        assert len(rows[0]["records"]) == 4
        record = rows[0]["records"][0]
        assert "placement_counts" in record and "total_energy_nj" in record


class TestFleetAndScenarios:
    def test_fleet_four_devices(self, capsys):
        out = run_cli(capsys, "fleet", "--devices", "4",
                      "--dispatch", "least_loaded", "--scenario", "bursty",
                      "--slices", "6", "--blocks", "16", "--steps", "1500")
        assert "fleet of 4 (least_loaded)" in out
        assert out.count("HH-PIM") >= 4

    def test_fleet_json(self, capsys):
        out = run_cli(capsys, "fleet", "--devices", "2",
                      "--scenario", "case1", "--slices", "4",
                      "--blocks", "16", "--steps", "1500", "--json")
        data = json.loads(out)
        assert data["devices"] == 2
        assert len(data["device_results"]) == 2

    def test_qos_human_output(self, capsys):
        out = run_cli(capsys, "qos", "--devices", "1", "--max-devices", "3",
                      "--autoscaler", "queue_depth", "--scenario", "bursty",
                      "--slices", "10", "--blocks", "16", "--steps", "1500")
        assert "SLO attainment" in out
        assert "p95 latency (ms)" in out
        assert "fleet" in out
        assert "scenario bursty" in out

    def test_qos_json(self, capsys):
        out = run_cli(capsys, "qos", "--devices", "2", "--scenario", "case3",
                      "--discipline", "edf", "--slices", "8",
                      "--blocks", "16", "--steps", "1500", "--json")
        data = json.loads(out)
        assert data["discipline"] == "edf"
        assert data["completed"] + data["unfinished"] == data["total_requests"]
        assert len(data["slices"]) >= 8
        assert "p99_ns" in data and "slo_attainment" in data
        assert "device_records" not in data

    def test_qos_json_records(self, capsys):
        out = run_cli(capsys, "qos", "--devices", "2", "--scenario", "case1",
                      "--slices", "5", "--blocks", "16", "--steps", "1500",
                      "--json", "--records")
        data = json.loads(out)
        assert set(data["device_records"]) == {"0", "1"}
        record = data["device_records"]["0"][0]
        assert "placement_counts" in record and "total_energy_nj" in record

    def test_qos_unknown_discipline_exits_2(self, capsys):
        code = main(["qos", "--discipline", "lifo",
                     "--blocks", "16", "--steps", "1500"])
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err
        assert "lifo" in captured.err

    def test_scenarios_preview(self, capsys):
        out = run_cli(capsys, "scenarios", "--slices", "20")
        for key in ("case1", "case6", "poisson", "bursty", "diurnal"):
            assert key in out
        assert "mean" in out

    def test_scenarios_only(self, capsys):
        out = run_cli(capsys, "scenarios", "--only", "diurnal",
                      "--slices", "16")
        assert out.strip().startswith("diurnal")
        assert "case1" not in out


class TestErrorExit:
    def test_bench_quick_writes_artifacts(self, capsys, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        out = run_cli(capsys, "bench", "--quick", "--blocks", "12",
                      "--steps", "600", "--out", str(tmp_path),
                      "--min-speedup", "1.0",
                      "--min-runtime-speedup", "1.0",
                      "--min-qos-throughput", "1.0")
        assert "speedup" in out
        names = {path.name for path in tmp_path.glob("BENCH_*.json")}
        assert names == {"BENCH_lut_build.json", "BENCH_lut_cache.json",
                         "BENCH_sweep.json", "BENCH_lookup.json",
                         "BENCH_runtime.json", "BENCH_qos.json",
                         "BENCH_store.json", "BENCH_serve.json",
                         "BENCH_dist.json", "BENCH_obs.json"}
        runtime = json.loads((tmp_path / "BENCH_runtime.json").read_text())
        assert runtime["metrics"]["speedup"] > 0
        assert runtime["metrics"]["slices"] > 0
        qos = json.loads((tmp_path / "BENCH_qos.json").read_text())
        assert qos["metrics"]["requests_per_s"] > 0
        assert qos["metrics"]["scalar_requests_per_s"] > 0
        assert qos["metrics"]["speedup"] > 0
        assert (
            qos["metrics"]["completed"] + qos["metrics"]["unfinished"]
            == qos["metrics"]["requests"]
        )
        payload = json.loads((tmp_path / "BENCH_lut_build.json").read_text())
        assert payload["bench"] == "lut_build"
        assert payload["metrics"]["speedup"] > 0
        assert json.loads(
            (tmp_path / "BENCH_sweep.json").read_text()
        )["metrics"]["disk_warm_dp_builds"] == 0
        store = json.loads((tmp_path / "BENCH_store.json").read_text())
        assert store["metrics"]["warm_runs_executed"] == 0
        assert store["metrics"]["warm_store_hits"] == store["metrics"]["runs"]
        serve = json.loads((tmp_path / "BENCH_serve.json").read_text())
        assert serve["metrics"]["warm_dp_builds"] == 0
        assert serve["metrics"]["speedup"] > 0
        assert serve["metrics"]["jobs"] == len(serve["metrics"]["cases"])

    def test_bench_gate_failure_exits_2(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        code = main(["bench", "--quick", "--blocks", "12", "--steps", "600",
                     "--out", str(tmp_path), "--min-speedup", "1e9"])
        captured = capsys.readouterr()
        assert code == 2
        assert "perf gate failed" in captured.err

    def test_bench_qos_gate_failure_exits_2(self, capsys, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        code = main(["bench", "--quick", "--blocks", "12", "--steps", "600",
                     "--out", str(tmp_path), "--min-qos-throughput", "1e18"])
        captured = capsys.readouterr()
        assert code == 2
        assert "QoS simulator throughput" in captured.err

    def test_bench_qos_speedup_gate_failure_exits_2(self, capsys, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        code = main(["bench", "--quick", "--blocks", "12", "--steps", "600",
                     "--out", str(tmp_path), "--min-qos-speedup", "1e9"])
        captured = capsys.readouterr()
        assert code == 2
        assert "vectorized QoS engine speedup" in captured.err

    def test_sweep_spill_needs_store(self, capsys):
        code = main(["sweep", "--model", "EfficientNet-B0", "--case", "1",
                     "--blocks", "16", "--steps", "1500", "--slices", "2",
                     "--spill"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--spill needs --store" in captured.err

    def test_sweep_shard_validated_up_front(self, capsys):
        """Bad ``--shard`` specs fail before any compute starts."""
        for bad in ("2/2", "3/2", "-1/4", "0/0", "0/-1", "banana", "1"):
            code = main(["sweep", "--model", "EfficientNet-B0",
                         "--case", "1", "--blocks", "16", "--steps", "1500",
                         "--slices", "2", f"--shard={bad}"])
            captured = capsys.readouterr()
            assert code == 2, bad
            assert captured.err.startswith("error:")
            assert "Traceback" not in captured.err

    def test_sweep_spill_through_store(self, capsys, tmp_path):
        out = run_cli(capsys, "sweep", "--model", "EfficientNet-B0",
                      "--case", "1", "--blocks", "16", "--steps", "1500",
                      "--slices", "2", "--store", str(tmp_path / "runs"),
                      "--spill", "--csv", str(tmp_path / "rows.csv"))
        assert "runs" in out
        assert (tmp_path / "rows.csv").read_text().count("\n") > 1

    def test_cache_info_and_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        run_cli(capsys, "run", "--case", "1", "--slices", "2",
                "--blocks", "12", "--steps", "600", "--arch", "HH-PIM")
        out = run_cli(capsys, "cache", "info")
        assert str(tmp_path / "cache") in out
        assert "entries: 2" in out  # the runtime + the t-slice sizing
        out = run_cli(capsys, "cache", "clear")
        assert "removed 2" in out
        out = run_cli(capsys, "cache", "info")
        assert "entries: 0" in out

    def test_no_cache_skips_the_disk(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        run_cli(capsys, "run", "--case", "1", "--slices", "2",
                "--blocks", "12", "--steps", "600", "--arch", "HH-PIM",
                "--no-cache")
        assert not list((tmp_path / "cache").glob("**/*.pkl"))

    def test_unknown_model_exits_2_without_traceback(self, capsys):
        code = main(["run", "--model", "NoSuchModel",
                     "--blocks", "16", "--steps", "1500"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "NoSuchModel" in captured.err
        assert "Traceback" not in captured.err

    def test_unknown_arch_exits_2(self, capsys):
        code = main(["run", "--arch", "NoSuchFabric",
                     "--blocks", "16", "--steps", "1500"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_python_m_repro_clean_error(self):
        """``python -m repro`` must exit non-zero with one clean line."""
        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "run", "--model", "NoSuchModel",
             "--blocks", "16", "--steps", "1500"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 2
        assert proc.stderr.startswith("error:")
        assert "Traceback" not in proc.stderr
        assert proc.stdout == ""


class TestVersionAndInterrupt:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert repro.__version__ in out

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setitem(cli._HANDLERS, "list", interrupt)
        assert main(["list"]) == 130
        captured = capsys.readouterr()
        assert captured.err.strip() == "interrupted"
        assert "Traceback" not in captured.err


class TestServeCli:
    """The client verbs against an in-process daemon on an ephemeral port."""

    @pytest.fixture
    def daemon(self):
        from repro.api import Engine
        from repro.service import ServeDaemon

        serving = ServeDaemon(port=0, engine=Engine(use_disk_cache=False),
                              log=lambda line: None)
        serving.start()
        yield serving
        serving.initiate_shutdown()
        serving._shutdown_thread.join(timeout=30)

    def submit_args(self, daemon, *extra):
        return ["submit", "--port", str(daemon.port), "--scenario", "case1",
                "--slices", "6", "--blocks", "16", "--steps", "1500", *extra]

    def test_submit_status_shutdown_verbs(self, capsys, daemon):
        port = str(daemon.port)
        out = run_cli(capsys, *self.submit_args(daemon))
        assert "job-000001" in out and "SLO attainment" in out
        out = run_cli(capsys, *self.submit_args(daemon, "--no-wait"))
        assert out.strip() == "job-000002"
        out = run_cli(capsys, *self.submit_args(daemon, "--json"))
        assert json.loads(out)["kind"] == "qos"
        out = run_cli(capsys, "status", "--port", port)
        assert "daemon pid" in out and "engine:" in out
        out = run_cli(capsys, "status", "--port", port, "--job", "job-000001")
        assert "job-000001" in out and "done" in out
        out = run_cli(capsys, "status", "--port", port, "--metrics")
        assert "jobs_submitted=3i" in out
        out = run_cli(capsys, "shutdown", "--port", port)
        assert "stopping" in out

    def test_client_verbs_without_daemon_exit_2(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = str(probe.getsockname()[1])
        for verb in (self.submit_args_unreachable(free_port),
                     ["status", "--port", free_port],
                     ["shutdown", "--port", free_port]):
            assert main(verb) == 2
            err = capsys.readouterr().err
            assert "is repro serve running?" in err

    def submit_args_unreachable(self, port):
        return ["submit", "--port", port, "--scenario", "case1",
                "--slices", "6", "--blocks", "16", "--steps", "1500"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_case_bounds(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--case", "9"])

    def test_submit_kind_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "--kind", "banana"])

    def test_store_ls_kind_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "ls", "--kind", "banana"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 7787
        assert args.workers == 1

    def test_trend_requires_current(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trend"])

    def test_trend_defaults(self):
        args = build_parser().parse_args(["trend", "--current", "out/"])
        assert args.baseline == "."
        assert args.tolerance == 0.30
        assert args.summary is None

    def test_sweep_spill_flag(self):
        args = build_parser().parse_args(["sweep", "--spill"])
        assert args.spill is True
        assert build_parser().parse_args(["sweep"]).spill is False


class TestCliErrorPaths:
    """Error paths must exit 2 with one clean line, no traceback."""

    def test_profile_malformed_trace_exits_2(self, capsys, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not a trace {{{")
        code = main(["profile", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: cannot profile")
        assert "Traceback" not in captured.err

    def test_profile_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["profile", str(tmp_path / "nope.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error: cannot profile")
        assert "Traceback" not in captured.err

    def test_sweep_malformed_shard_exits_2(self, capsys):
        code = main(["sweep", "--shard", "bogus"])
        captured = capsys.readouterr()
        assert code == 2
        assert "shard must look like I/N" in captured.err
        assert "Traceback" not in captured.err

    def test_sweep_out_of_range_shard_exits_2(self, capsys):
        code = main(["sweep", "--shard", "5/2"])
        captured = capsys.readouterr()
        assert code == 2
        assert "out of range" in captured.err
        assert "Traceback" not in captured.err

    def test_sweep_worker_bad_connect_exits_2(self, capsys):
        code = main(["sweep-worker", "--connect", "bogus"])
        captured = capsys.readouterr()
        assert code == 2
        assert "HOST:PORT" in captured.err
        assert "Traceback" not in captured.err

    def test_store_ls_unknown_kind_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "ls", "--kind", "banana"])
        captured = capsys.readouterr()
        assert excinfo.value.code == 2
        assert "invalid choice" in captured.err
        assert "Traceback" not in captured.err


class TestFuzzCli:
    def test_fuzz_clean_run(self, capsys):
        out = run_cli(capsys, "fuzz", "--seed", "0", "--cases", "2")
        assert "violations=0" in out
        assert out.count("[ok]") == 2

    def test_fuzz_json_bit_reproducible(self, capsys):
        first = run_cli(capsys, "fuzz", "--seed", "3", "--cases", "2",
                        "--json")
        second = run_cli(capsys, "fuzz", "--seed", "3", "--cases", "2",
                         "--json")
        assert first == second
        payload = json.loads(first)
        assert payload["seed"] == 3
        assert payload["cases"] == 2
        assert payload["violations"] == 0

    def test_fuzz_negative_cases_exits_2(self, capsys):
        code = main(["fuzz", "--cases", "-1"])
        captured = capsys.readouterr()
        assert code == 2
        assert "non-negative" in captured.err

    def test_fuzz_injected_fault_full_loop(self, capsys, tmp_path,
                                           monkeypatch):
        """Inject, fail, persist; list via store ls; replay fails armed
        and passes clean."""
        store_dir = str(tmp_path / "store")
        monkeypatch.setenv("REPRO_FUZZ_TEST_BREAK", "1")
        code = main(["fuzz", "--seed", "7", "--cases", "1",
                     "--store", store_dir])
        captured = capsys.readouterr()
        assert code == 2
        assert "invariant violation" in captured.err
        assert "[FAIL]" in captured.out
        assert "shrunk ->" in captured.out

        out = run_cli(capsys, "store", "ls", "--kind", "fuzz",
                      "--store", store_dir)
        assert "conservation" in out
        assert "repro fuzz --replay" in out

        code = main(["fuzz", "--replay", "--store", store_dir])
        captured = capsys.readouterr()
        assert code == 2
        assert "still fail" in captured.err

        monkeypatch.delenv("REPRO_FUZZ_TEST_BREAK")
        out = run_cli(capsys, "fuzz", "--replay", "--store", store_dir)
        assert "[ok]" in out

    def test_fuzz_replay_empty_store(self, capsys, tmp_path):
        out = run_cli(capsys, "fuzz", "--replay", "--store",
                      str(tmp_path / "empty"))
        assert "replayed 0" in out
