"""Integration tests: cross-layer consistency and end-to-end paths."""

import pytest

from repro.arch import HH_PIM, Processor
from repro.core import SpaceKind
from repro.core.spaces import CORE_MAC_TIME_NS
from repro.isa import ClusterId, Compute, Config, ConfigOp, GateTarget, LoadOperands
from repro.memory.hybrid import BankKind
from repro.pim import ModuleKind, PIMCluster
from repro.riscv import asm
from repro.sim import CycleEngine
from repro.workloads import EFFICIENTNET_B0, ScenarioCase, scenario


class TestEngineVsAnalyticModel:
    """The cycle engine and the analytic cost model must agree."""

    def make_engine(self):
        clusters = {
            ClusterId.HP: PIMCluster(ClusterId.HP, ModuleKind.HP, 4),
            ClusterId.LP: PIMCluster(ClusterId.LP, ModuleKind.LP, 4),
        }
        return CycleEngine(clusters), clusters

    def test_task_time_agrees(self, hh_optimizer):
        engine, _ = self.make_engine()
        counts = {SpaceKind.HP_SRAM: 8, SpaceKind.LP_MRAM: 16}
        macs_per_block = (
            EFFICIENTNET_B0.pim_macs / hh_optimizer.block_count
        )
        execution = engine.execute_task(counts, macs_per_block)
        analytic = hh_optimizer.task_time_ns(counts) / hh_optimizer.latency_scale
        assert execution.task_time_ns == pytest.approx(analytic, rel=0.01)

    def test_dynamic_energy_agrees(self, hh_optimizer):
        engine, _ = self.make_engine()
        counts = {SpaceKind.HP_SRAM: 4, SpaceKind.LP_SRAM: 4,
                  SpaceKind.LP_MRAM: 8}
        macs_per_block = (
            EFFICIENTNET_B0.pim_macs / hh_optimizer.block_count
        )
        execution = engine.execute_task(counts, macs_per_block)
        analytic = hh_optimizer.dynamic_energy_nj(counts)
        # The engine additionally charges leakage during the access
        # windows, so it reads slightly above the pure-dynamic figure.
        assert execution.dynamic_energy_nj == pytest.approx(analytic, rel=0.05)
        assert execution.dynamic_energy_nj >= analytic

    def test_engine_scales_with_tasks(self, hh_optimizer):
        engine, clusters = self.make_engine()
        counts = {SpaceKind.HP_SRAM: 8}
        macs = EFFICIENTNET_B0.pim_macs / hh_optimizer.block_count
        engine.run_slice(counts, macs, tasks=3)
        total = sum(c.total_energy_nj() for c in clusters.values())
        single_engine, single_clusters = self.make_engine()
        single_engine.execute_task(counts, macs)
        single = sum(c.total_energy_nj() for c in single_clusters.values())
        assert total == pytest.approx(3 * single, rel=1e-6)


class TestProcessorDrivenPim:
    """RISC-V driver -> MMIO doorbell -> queue -> controller -> modules."""

    def test_gating_program(self):
        processor = Processor(HH_PIM)
        words = [
            Config(ClusterId.LP, 0, op=ConfigOp.GATE_OFF,
                   target=GateTarget.SRAM).encode(),
            Config(ClusterId.LP, 1, op=ConfigOp.GATE_OFF,
                   target=GateTarget.ALL).encode(),
        ]
        body = "\n".join(f"li t0, {w}\nsw t0, 0(a0)" for w in words)
        processor.load_program(asm(f"li a0, 0x40000000\n{body}\nebreak").to_bytes())
        processor.run()
        lp = processor.fabric.cluster(ClusterId.LP)
        assert not lp.module(0).memory.bank(BankKind.SRAM).powered
        assert lp.module(0).memory.bank(BankKind.MRAM).powered
        assert not lp.module(1).pe.powered

    def test_compute_pipeline_program(self):
        processor = Processor(HH_PIM)
        words = [
            LoadOperands(ClusterId.HP, 0, mram_count=8, sram_count=8).encode(),
            Compute(ClusterId.HP, 0, count=8).encode(),
        ]
        body = "\n".join(f"li t0, {w}\nsw t0, 0(a0)" for w in words)
        processor.load_program(asm(f"li a0, 0x40000000\n{body}\nebreak").to_bytes())
        summary = processor.run()
        hp0 = processor.fabric.cluster(ClusterId.HP).module(0)
        assert hp0.pe.stats.macs == 8
        assert hp0.memory_stats().reads == 16
        assert summary["pim_energy_nj"] > 0

    def test_queue_backpressure_visible_to_software(self):
        processor = Processor(HH_PIM, queue_depth=2)
        word = Compute(ClusterId.HP, 0, count=1).encode()
        # Push 3 words without draining; the third is dropped and the
        # software can see the full flag.
        body = "\n".join(f"li t0, {word}\nsw t0, 0(a0)" for _ in range(3))
        program = asm(f"""
            li a0, 0x40000000
            {body}
            lw t1, 4(a0)
            ebreak
        """)
        processor.load_program(program.to_bytes())
        processor.run()
        assert processor.bridge.rejected_pushes == 1


class TestRuntimeInvariants:
    def test_slice_energy_decomposition(self, runtimes):
        result = runtimes["HH-PIM"].run(scenario(ScenarioCase.RANDOM, slices=10))
        for record in result.records:
            parts = (
                record.dynamic_energy_nj
                + record.hold_static_energy_nj
                + record.access_static_energy_nj
                + record.buffer_static_energy_nj
                + record.pe_static_energy_nj
                + record.movement_energy_nj
            )
            assert record.total_energy_nj == pytest.approx(parts)

    def test_busy_plus_idle_bounded_by_slice(self, runtimes):
        runtime = runtimes["HH-PIM"]
        result = runtime.run(scenario(ScenarioCase.PULSING, slices=10))
        for record in result.records:
            assert record.busy_time_ns + record.idle_time_ns <= (
                runtime.t_slice_ns * 1.001 + 1
            )

    def test_task_conservation(self, runtimes):
        sc = scenario(ScenarioCase.RANDOM, slices=20)
        result = runtimes["HH-PIM"].run(sc)
        assert result.total_inferences == sum(sc.loads)

    def test_inference_latency_model_consistency(self, runtimes):
        """Peak task + core time reproduces the Fig. 6 inference time."""
        runtime = runtimes["HH-PIM"]
        peak = runtime.lut.peak_placement
        inference_ns = peak.task_time_ns + (
            EFFICIENTNET_B0.core_macs * CORE_MAC_TIME_NS
        )
        assert inference_ns == pytest.approx(
            EFFICIENTNET_B0.peak_inference_ns, rel=0.05
        )

    def test_dynamic_energy_scales_with_load(self, runtimes):
        runtime = runtimes["Baseline-PIM"]
        low = runtime.run(scenario(ScenarioCase.LOW_CONSTANT, slices=10))
        high = runtime.run(scenario(ScenarioCase.HIGH_CONSTANT, slices=10))
        low_dyn = sum(r.dynamic_energy_nj for r in low.records)
        high_dyn = sum(r.dynamic_energy_nj for r in high.records)
        # 5x the load -> 5x the dynamic energy on a fixed placement.
        assert high_dyn == pytest.approx(5 * low_dyn, rel=0.01)

    def test_hold_static_constant_for_fixed_arch(self, runtimes):
        runtime = runtimes["Baseline-PIM"]
        result = runtime.run(scenario(ScenarioCase.RANDOM, slices=10))
        holds = {round(r.hold_static_energy_nj, 3) for r in result.records}
        assert len(holds) == 1

    def test_hybrid_has_zero_hold_static(self, runtimes):
        result = runtimes["Hybrid-PIM"].run(
            scenario(ScenarioCase.RANDOM, slices=10)
        )
        assert all(r.hold_static_energy_nj == 0.0 for r in result.records)
