"""The persistent experiment store and sharded, resumable sweeps.

Pins the store's contract: round-tripping, corruption quarantine,
version-bump invalidation, deterministic cross-process shard
assignment, and the headline property — an interrupted sweep resumed
through the store completes with zero recomputation and exports
bit-identically to an uninterrupted run (the experiment-level analogue
of PR 2's "warm cache does zero DP builds" regression).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig, FleetRecord, RunRecord
from repro.errors import ConfigurationError
from repro.store import (
    Store,
    parse_shard,
    partition,
    partition_chunks,
    select_shard,
    shard_index,
)
from repro.store import store as store_module

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS, slices=6)


def tiny_grid() -> tuple:
    """A 2x2 single-device grid at test resolution."""
    return ExperimentConfig(**TINY).sweep(
        arch=["HH-PIM", "Hybrid-PIM"], scenario=["case1", "case3"]
    )


@pytest.fixture
def store(tmp_path) -> Store:
    return Store(tmp_path / "store")


class TestRoundTrip:
    def test_run_record_round_trip(self, store):
        config = ExperimentConfig(**TINY)
        record = Engine(use_disk_cache=False).run_record(config)
        assert store.put(record)
        loaded = store.get(config)
        assert isinstance(loaded, RunRecord)
        assert loaded.config == config
        assert loaded.to_row() == record.to_row()
        assert loaded.result.to_dict() == record.result.to_dict()

    def test_fleet_record_round_trip(self, store):
        config = ExperimentConfig(fleet=2, **TINY)
        record = Engine(use_disk_cache=False).run_fleet_record(config)
        assert store.put(record)
        loaded = store.get(config)
        assert isinstance(loaded, FleetRecord)
        assert loaded.to_row() == record.to_row()

    def test_qos_round_trip(self, store):
        config = ExperimentConfig(scenario="bursty", **TINY)
        engine = Engine(use_disk_cache=False, store=store)
        first = engine.run_qos(config)
        assert engine.stats.store_misses == 1
        again = Engine(use_disk_cache=False, store=store).run_qos(config)
        assert again.to_dict() == first.to_dict()

    def test_get_unstored_is_miss(self, store):
        assert store.get(ExperimentConfig(**TINY)) is None
        assert store.stats.misses == 1

    def test_put_rejects_non_records(self, store):
        with pytest.raises(ConfigurationError, match="RunRecord"):
            store.put(ExperimentConfig(**TINY))

    def test_contains_and_keys(self, store):
        config = ExperimentConfig(**TINY)
        assert config not in store
        store.put(Engine(use_disk_cache=False).run_record(config))
        assert config in store
        assert store.keys() == [store.key_for(config)]

    def test_fingerprint_ignores_lut_cache_knob(self, store):
        """The store addresses results; lut_cache never changes them."""
        config = ExperimentConfig(**TINY)
        uncached = config.replace(lut_cache=False)
        assert config.fingerprint() == uncached.fingerprint()
        store.put(Engine(use_disk_cache=False).run_record(config))
        assert store.get(uncached) is not None

    def test_fingerprint_separates_real_axes(self):
        config = ExperimentConfig(**TINY)
        assert config.fingerprint() != config.replace(seed=1).fingerprint()
        assert (
            config.fingerprint()
            != config.replace(arch="Hybrid-PIM").fingerprint()
        )


class TestCorruptionAndVersioning:
    def test_corrupt_entry_is_quarantined(self, store):
        config = ExperimentConfig(**TINY)
        store.put(Engine(use_disk_cache=False).run_record(config))
        path = store._entry_path(store.key_for(config))
        path.write_bytes(b"not a pickle")
        assert store.get(config) is None
        assert store.stats.quarantined == 1
        assert not path.exists()  # moved aside, not left to fail again
        quarantined = list((store.root / "quarantine").iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == b"not a pickle"  # evidence kept
        assert store.info()["quarantined"] == 1

    def test_mislabeled_entry_is_quarantined(self, store):
        """A payload whose key disagrees with its address is corrupt."""
        config = ExperimentConfig(**TINY)
        other = config.replace(seed=99)
        store.put(Engine(use_disk_cache=False).run_record(config))
        good = store._entry_path(store.key_for(config))
        bad = store._entry_path(store.key_for(other))
        bad.write_bytes(good.read_bytes())
        assert store.get(other) is None
        assert store.stats.quarantined == 1
        assert store.get(config) is not None  # the honest entry survives

    def test_version_bump_orphans_entries(self, store, monkeypatch):
        config = ExperimentConfig(**TINY)
        store.put(Engine(use_disk_cache=False).run_record(config))
        monkeypatch.setattr(store_module, "STORE_VERSION", 2)
        fresh = Store(store.root)
        assert fresh.get(config) is None
        assert fresh.stats.quarantined == 0  # orphaned, not corrupt
        monkeypatch.undo()
        assert Store(store.root).get(config) is not None

    def test_stray_file_does_not_crash_info(self, store):
        """Foreign files in the version dir are reported, not fatal."""
        store.put(
            Engine(use_disk_cache=False).run_record(ExperimentConfig(**TINY))
        )
        (store.root / "v1" / "notes.pkl").write_bytes(b"junk")
        state = store.info()
        assert state["entries"] == 2
        assert state["by_kind"]["run"] == 1
        assert state["by_kind"]["unrecognized"] == 1

    def test_unpicklable_record_degrades_to_a_failed_write(self, store):
        """put() must never crash a finished sweep (contract: degrade)."""
        record = Engine(use_disk_cache=False).run_record(
            ExperimentConfig(**TINY)
        )
        poisoned = RunRecord(
            config=record.config,
            result=record.result,
            lut_cached=record.lut_cached,
        )
        object.__setattr__(poisoned, "unpicklable", lambda: None)
        assert store.put(poisoned) is False
        assert store.stats.write_failures == 1
        leftovers = list((store.root / f"v{store_module.STORE_VERSION}")
                         .glob(".*.tmp"))
        assert leftovers == []  # temp file cleaned up

    def test_clear_removes_everything(self, store):
        store.put(
            Engine(use_disk_cache=False).run_record(ExperimentConfig(**TINY))
        )
        assert store.clear() == 1
        assert store.info()["entries"] == 0
        assert store.clear() == 0  # idempotent on an empty store


class TestSharding:
    def test_parse_shard_forms(self):
        assert parse_shard("0/4") == (0, 4)
        assert parse_shard((2, 3)) == (2, 3)
        for bad in ("4/4", "-1/4", "x/4", "2", (1, 0)):
            with pytest.raises(ConfigurationError):
                parse_shard(bad)

    def test_partition_conserves_the_grid(self):
        grid = tiny_grid()
        shards = partition(grid, 3)
        assert len(shards) == 3
        flattened = [config for shard in shards for config in shard]
        assert sorted(flattened, key=lambda c: c.fingerprint()) == sorted(
            grid, key=lambda c: c.fingerprint()
        )
        for index, shard in enumerate(shards):
            assert shard == select_shard(grid, (index, 3))

    def test_assignment_is_content_based(self):
        """Identical configs land identically however they were built."""
        config = ExperimentConfig(**TINY)
        rebuilt = ExperimentConfig.from_dict(config.to_dict())
        assert shard_index(config, 5) == shard_index(rebuilt, 5)

    def test_assignment_survives_grid_edits(self):
        """Appending an axis value never reshuffles existing configs."""
        grid = tiny_grid()
        grown = ExperimentConfig(**TINY).sweep(
            arch=["HH-PIM", "Hybrid-PIM", "Baseline-PIM"],
            scenario=["case1", "case3"],
        )
        for config in grid:
            assert shard_index(config, 4) == shard_index(
                next(c for c in grown if c == config), 4
            )

    def test_partition_chunks_conserves_the_grid(self):
        grid = tiny_grid()
        chunks = partition_chunks(grid, 2)
        assert all(chunks)  # empty shards are dropped, not served
        flattened = [config for chunk in chunks for config in chunk]
        assert sorted(flattened, key=lambda c: c.fingerprint()) == sorted(
            grid, key=lambda c: c.fingerprint()
        )
        # chunking is deterministic: same grid, same chunks
        assert partition_chunks(grid, 2) == chunks

    def test_partition_chunks_edge_cases(self):
        grid = tiny_grid()
        assert partition_chunks((), 4) == []
        assert partition_chunks(grid, len(grid) * 10) == [
            chunk for chunk in partition(grid, 1) if chunk
        ]
        for bad in (0, -2):
            with pytest.raises(ConfigurationError):
                partition_chunks(grid, bad)

    def test_partition_matches_across_processes(self, tmp_path):
        """Same grid -> same shard assignment in a fresh interpreter."""
        script = tmp_path / "shards.py"
        script.write_text(
            "from repro.api import ExperimentConfig\n"
            "from repro.store import shard_index\n"
            f"grid = ExperimentConfig(**{TINY!r}).sweep(\n"
            "    arch=['HH-PIM', 'Hybrid-PIM'], scenario=['case1', 'case3'])\n"
            "print([shard_index(c, 3) for c in grid])\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        out = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": src},
        )
        local = [shard_index(c, 3) for c in tiny_grid()]
        assert json.loads(out.stdout) == local


class TestResumedSweeps:
    def test_interrupted_sweep_resumes_with_zero_recompute(
        self, store, tmp_path
    ):
        """The acceptance regression: shard 0 runs, the resume stitches."""
        grid = tiny_grid()
        shard0 = select_shard(grid, "0/2")
        assert 0 < len(shard0) < len(grid)  # both sides exercised

        first = Engine(use_disk_cache=False, store=store)
        first.run_many(shard0)
        # ... the other shard's process dies here ...

        reference = Engine(use_disk_cache=False).run_many(grid)

        resumed_engine = Engine(use_disk_cache=False, store=store)
        resumed = resumed_engine.run_many(grid)
        assert resumed_engine.stats.store_hits == len(shard0)
        assert resumed_engine.stats.store_misses == len(grid) - len(shard0)
        assert resumed_engine.stats.runs == len(grid) - len(shard0)
        assert resumed.to_json() == reference.to_json()
        assert resumed.to_csv() == reference.to_csv()

        # a second resume is pure hits: zero scenario runs, zero DP work
        final = Engine(use_disk_cache=False, store=store)
        stitched = final.run_many(grid)
        assert final.stats.store_hits == len(grid)
        assert final.stats.runs == 0
        assert final.stats.dp_builds == 0
        assert stitched.to_json() == reference.to_json()

    def test_engine_sweep_expands_shards_and_resumes(self, store):
        engine = Engine(use_disk_cache=False, store=store)
        axes = dict(arch=["HH-PIM", "Hybrid-PIM"], scenario=["case1", "case3"])
        base = ExperimentConfig(**TINY)
        part0 = engine.sweep(base, shard="0/2", **axes)
        part1 = engine.sweep(base, shard="1/2", **axes)
        assert len(part0) + len(part1) == 4
        full_engine = Engine(use_disk_cache=False, store=store)
        full = full_engine.sweep(base, **axes)
        assert len(full) == 4
        assert full_engine.stats.store_hits == 4
        assert full_engine.stats.runs == 0

    def test_write_through_without_resume_recomputes(self, store):
        grid = tiny_grid()
        Engine(use_disk_cache=False, store=store).run_many(grid)
        engine = Engine(use_disk_cache=False, store=store, resume=False)
        engine.run_many(grid)
        assert engine.stats.store_hits == 0
        assert engine.stats.runs == len(grid)

    def test_store_serves_mixed_fleet_batches(self, store):
        configs = (
            ExperimentConfig(**TINY),
            ExperimentConfig(fleet=2, **TINY),
        )
        reference = Engine(use_disk_cache=False, store=store).run_many(configs)
        resumed_engine = Engine(use_disk_cache=False, store=store)
        resumed = resumed_engine.run_many(configs)
        assert resumed_engine.stats.store_hits == 2
        assert isinstance(resumed[1], FleetRecord)
        assert resumed.to_json() == reference.to_json()

    def test_query_reloads_a_result_set(self, store):
        grid = tiny_grid()
        Engine(use_disk_cache=False, store=store).run_many(grid)
        everything = store.query()
        assert len(everything) == len(grid)
        hh = store.query(arch="HH-PIM")
        assert {r.arch for r in hh} == {"HH-PIM"}
        assert len(hh) == 2

    def test_query_limit_is_listing_order_independent(
        self, store, monkeypatch
    ):
        """``limit=N`` truncates the fingerprint-sorted order, so the
        same store queried on any filesystem (or any readdir order)
        yields the same head."""
        grid = tiny_grid()
        Engine(use_disk_cache=False, store=store).run_many(grid)
        full = store.query()
        fingerprints = [r.config.fingerprint() for r in full]
        assert fingerprints == sorted(fingerprints)
        head = store.query(limit=2)
        assert [r.config.fingerprint() for r in head] == fingerprints[:2]

        listing = store._entries
        monkeypatch.setattr(
            store, "_entries", lambda: list(listing())[::-1]
        )
        assert [
            r.config.fingerprint() for r in store.query()
        ] == fingerprints
        assert [
            r.config.fingerprint() for r in store.query(limit=2)
        ] == fingerprints[:2]


class TestStoreCLI:
    def run_cli(self, *argv) -> str:
        from repro.cli import main

        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            assert main(list(argv)) == 0
        return buffer.getvalue()

    def test_sharded_sweep_resume_is_bit_identical(self, tmp_path):
        """The CLI acceptance path: shard 0, then --resume, same JSON."""
        args = [
            "sweep", "--model", "EfficientNet-B0", "--case", "1", "--case",
            "3", "--blocks", str(SMALL_BLOCKS), "--steps", str(SMALL_STEPS),
            "--slices", "6", "--json",
        ]
        store_dir = str(tmp_path / "store")
        self.run_cli(*args, "--store", store_dir, "--shard", "0/2")
        reference = self.run_cli(*args)
        resumed = self.run_cli(*args, "--store", store_dir, "--resume")
        assert resumed == reference

    def test_resume_without_store_errors(self, capsys):
        from repro.cli import main

        assert main(["sweep", "--resume", "--case", "1"]) == 2
        assert "needs --store" in capsys.readouterr().err

    def test_ls_kind_and_limit(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self.run_cli(
            "sweep", "--case", "1", "--case", "3", "--arch", "HH-PIM",
            "--model", "EfficientNet-B0", "--blocks", str(SMALL_BLOCKS),
            "--steps", str(SMALL_STEPS), "--slices", "4",
            "--store", store_dir,
        )
        # No qos entries yet: the qos listing says so instead of erroring.
        empty = self.run_cli("store", "ls", "--store", store_dir,
                             "--kind", "qos")
        assert "no stored qos entries" in empty
        # A qos run through a store-attached engine persists its row.
        store = Store(store_dir)
        Engine(use_disk_cache=False, store=store).run_qos(
            ExperimentConfig(scenario="case1", slices=4,
                             block_count=SMALL_BLOCKS,
                             time_steps=SMALL_STEPS)
        )
        qos = self.run_cli("store", "ls", "--store", store_dir,
                           "--kind", "qos")
        assert "SLO att." in qos and "HH-PIM" in qos
        # --kind filters the batch listing; --limit truncates it.
        runs = self.run_cli("store", "ls", "--store", store_dir,
                            "--kind", "run")
        assert runs.count("\nrun ") == 2
        limited = self.run_cli("store", "ls", "--store", store_dir,
                               "--kind", "run", "--limit", "1")
        assert limited.count("\nrun ") == 1
        # No fleet entries: header only, no table.
        fleet = self.run_cli("store", "ls", "--store", store_dir,
                             "--kind", "fleet")
        assert "Deadlines" not in fleet

    def test_info_ls_clear(self, tmp_path):
        store_dir = str(tmp_path / "store")
        self.run_cli(
            "sweep", "--case", "1", "--arch", "HH-PIM", "--model",
            "EfficientNet-B0", "--blocks", str(SMALL_BLOCKS), "--steps",
            str(SMALL_STEPS), "--slices", "4", "--store", store_dir,
        )
        info = self.run_cli("store", "info", "--store", store_dir)
        assert "entries:     1 (1 run" in info
        listing = self.run_cli("store", "ls", "--store", store_dir)
        assert "HH-PIM" in listing and "aggregate by arch" in listing
        cleared = self.run_cli("store", "clear", "--store", store_dir)
        assert "removed 1" in cleared
