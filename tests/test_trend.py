"""Perf-trend comparison: ``repro trend`` against committed baselines.

The trend gate is CI's relative-drift watchdog: it must stay green when
a fresh bench run sits inside the tolerance band of the committed
``BENCH_*.json`` baselines and go red (exit 2) the moment any section's
headline metric drops past it — exercised here with synthetic artifact
directories, never a real bench run.
"""

import json

import pytest

from repro.cli import main
from repro.errors import ReproError
from repro.perf import (
    DEFAULT_TOLERANCE,
    HEADLINE_METRICS,
    compare_reports,
    render_markdown,
)


def write_artifacts(directory, values):
    """One ``BENCH_<section>.json`` per entry of ``{section: value}``."""
    directory.mkdir(parents=True, exist_ok=True)
    for section, value in values.items():
        metric = HEADLINE_METRICS[section]
        (directory / f"BENCH_{section}.json").write_text(json.dumps({
            "bench": section, "metrics": {metric: value},
        }))


@pytest.fixture
def dirs(tmp_path):
    baseline = {section: 10.0 for section in HEADLINE_METRICS}
    write_artifacts(tmp_path / "baseline", baseline)
    write_artifacts(tmp_path / "current", baseline)
    return tmp_path / "baseline", tmp_path / "current"


class TestCompare:
    def test_equal_reports_are_green(self, dirs):
        deltas = compare_reports(*dirs)
        assert len(deltas) == len(HEADLINE_METRICS)
        assert not any(delta.regressed for delta in deltas)
        assert all(delta.ratio == 1.0 for delta in deltas)

    def test_within_tolerance_is_green(self, dirs):
        baseline, current = dirs
        write_artifacts(
            current, {section: 7.1 for section in HEADLINE_METRICS}
        )
        assert not any(
            delta.regressed for delta in compare_reports(baseline, current)
        )

    def test_synthetic_30pct_regression_is_red(self, dirs):
        baseline, current = dirs
        write_artifacts(current, {"qos": 6.9})
        deltas = compare_reports(baseline, current)
        regressed = [d.section for d in deltas if d.regressed]
        assert regressed == ["qos"]

    def test_improvements_never_regress(self, dirs):
        baseline, current = dirs
        write_artifacts(
            current, {section: 100.0 for section in HEADLINE_METRICS}
        )
        assert not any(
            delta.regressed for delta in compare_reports(baseline, current)
        )

    def test_missing_baseline_section_is_skipped(self, dirs):
        baseline, current = dirs
        (baseline / "BENCH_serve.json").unlink()
        sections = {d.section for d in compare_reports(baseline, current)}
        assert "serve" not in sections
        assert len(sections) == len(HEADLINE_METRICS) - 1

    def test_missing_current_section_is_an_error(self, dirs):
        baseline, current = dirs
        (current / "BENCH_qos.json").unlink()
        with pytest.raises(ReproError, match="no current artifact"):
            compare_reports(baseline, current)

    def test_missing_headline_metric_is_an_error(self, dirs):
        baseline, current = dirs
        (current / "BENCH_qos.json").write_text(json.dumps({
            "bench": "qos", "metrics": {"requests_per_s": 1.0},
        }))
        with pytest.raises(ReproError, match="headline metric"):
            compare_reports(baseline, current)

    def test_empty_baseline_dir_is_an_error(self, tmp_path):
        (tmp_path / "empty").mkdir()
        (tmp_path / "cur").mkdir()
        with pytest.raises(ReproError, match="no bench baselines"):
            compare_reports(tmp_path / "empty", tmp_path / "cur")

    def test_bad_tolerance_is_an_error(self, dirs):
        with pytest.raises(ReproError, match="tolerance"):
            compare_reports(*dirs, tolerance=1.5)


class TestMarkdown:
    def test_table_carries_every_section(self, dirs):
        deltas = compare_reports(*dirs)
        table = render_markdown(deltas, DEFAULT_TOLERANCE)
        for section in HEADLINE_METRICS:
            assert f"| {section} |" in table
        assert "All sections within tolerance." in table

    def test_regression_is_called_out(self, dirs):
        baseline, current = dirs
        write_artifacts(current, {"qos": 1.0})
        table = render_markdown(compare_reports(baseline, current))
        assert "regressed" in table
        assert "qos" in table


class TestCli:
    def test_green_run_exits_0_and_writes_summary(self, dirs, tmp_path,
                                                  capsys):
        baseline, current = dirs
        summary = tmp_path / "summary.md"
        code = main([
            "trend", "--baseline", str(baseline),
            "--current", str(current), "--summary", str(summary),
        ])
        assert code == 0
        assert "Perf trend" in capsys.readouterr().out
        assert "All sections within tolerance." in summary.read_text()

    def test_regression_exits_2_with_delta_table(self, dirs, capsys):
        baseline, current = dirs
        write_artifacts(current, {"runtime": 6.9})
        code = main([
            "trend", "--baseline", str(baseline), "--current", str(current),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "perf trend failed" in err
        assert "runtime" in err

    def test_wider_tolerance_turns_the_same_delta_green(self, dirs):
        baseline, current = dirs
        write_artifacts(current, {"runtime": 6.9})
        code = main([
            "trend", "--baseline", str(baseline), "--current", str(current),
            "--tolerance", "0.5",
        ])
        assert code == 0
