"""Tests for the fleet serving layer and its api wiring."""

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import DISPATCH, Engine, ExperimentConfig
from repro.errors import ConfigurationError, ServingError
from repro.serving import (
    BUILTIN_POLICIES,
    DispatchPolicy,
    EnergyAware,
    Fleet,
    LeastLoaded,
    RoundRobin,
    make_policy,
)
from repro.workloads import ScenarioCase, bursty, scenario

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)


@pytest.fixture(scope="module")
def hh_runtime():
    engine = Engine(use_disk_cache=False)
    return engine.runtime(ExperimentConfig(**TINY))


class TestDispatchPolicies:
    def _infos(self, fleet):
        return fleet.devices

    def test_round_robin_deals_evenly(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 4, dispatch="round_robin")
        splits = fleet.split(scenario(ScenarioCase.HIGH_CONSTANT, slices=3))
        totals = [sum(loads) for loads in splits]
        # 30 arrivals over 4 devices: 8/8/7/7 (pointer persists)
        assert sorted(totals, reverse=True) == [8, 8, 7, 7]

    def test_least_loaded_balances(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 3, dispatch="least_loaded")
        workload = bursty().materialize(slices=40, peak=10, seed=4)
        splits = fleet.split(workload)
        totals = [sum(loads) for loads in splits]
        assert max(totals) - min(totals) <= 1
        assert sum(totals) == workload.total_inferences

    def test_energy_aware_fills_cheapest_first(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 2, dispatch="energy_aware")
        light = scenario(ScenarioCase.LOW_CONSTANT, slices=5)
        splits = fleet.split(light)
        # identical devices: everything fits on device 0's capacity
        assert sum(splits[0]) == light.total_inferences
        assert sum(splits[1]) == 0

    def test_conservation_enforced(self, hh_runtime):
        class Dropper(DispatchPolicy):
            name = "dropper"

            def assign(self, slice_index, arrivals):
                return [0] * len(self._devices)

        fleet = Fleet([hh_runtime] * 2, dispatch=Dropper())
        with pytest.raises(ServingError, match="dropped or invented"):
            fleet.run(scenario(ScenarioCase.LOW_CONSTANT, slices=2))

    def test_make_policy_coercions(self):
        assert isinstance(make_policy("round_robin"), RoundRobin)
        assert isinstance(make_policy(LeastLoaded), LeastLoaded)
        aware = EnergyAware()
        assert make_policy(aware) is aware
        with pytest.raises(ServingError, match="unknown dispatch"):
            make_policy("nope")
        with pytest.raises(ServingError, match="must be a name"):
            make_policy(42)

    def test_make_policy_resolves_registered_names(self, hh_runtime):
        class Cheapest(EnergyAware):
            name = "cheapest"

        DISPATCH.register("cheapest", Cheapest)
        try:
            # a registry-only name works in directly-built fleets too
            fleet = Fleet([hh_runtime] * 2, dispatch="cheapest")
            assert fleet.policy.name == "cheapest"
        finally:
            DISPATCH.unregister("cheapest")
        with pytest.raises(ServingError, match="unknown dispatch"):
            Fleet([hh_runtime], dispatch="cheapest")

    def test_builtins_registered_in_api(self):
        for name in BUILTIN_POLICIES:
            assert name in DISPATCH


class TestFleet:
    def test_single_device_fleet_equals_runtime(self, hh_runtime):
        """The 1-device fleet property: record-identical to the runtime."""
        workload = bursty().materialize(slices=30, peak=10, seed=8)
        solo = hh_runtime.run(workload)
        for dispatch in BUILTIN_POLICIES:
            fleet = Fleet([hh_runtime], dispatch=dispatch)
            result = fleet.run(workload)
            assert result.device_results[0].records == solo.records
            assert result.total_energy_nj == solo.total_energy_nj

    def test_four_device_run(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 4, dispatch="least_loaded")
        workload = bursty().materialize(slices=25, peak=10, seed=1)
        result = fleet.run(workload)
        assert len(result) == 4
        assert result.total_inferences == workload.total_inferences
        assert result.total_energy_nj == pytest.approx(
            sum(r.total_energy_nj for r in result.device_results)
        )
        assert 0.0 <= result.deadline_rate <= 1.0
        assert len(result.device_utilization) == 4
        assert result.load_imbalance >= 1.0

    def test_fleet_validation(self, hh_runtime):
        with pytest.raises(ServingError, match="at least one device"):
            Fleet([])
        with pytest.raises(ServingError, match="TimeSliceRuntime"):
            Fleet([object()])

    def test_fleet_result_to_dict(self, hh_runtime):
        import json

        fleet = Fleet([hh_runtime] * 2)
        result = fleet.run(scenario(ScenarioCase.PULSING, slices=6))
        data = result.to_dict()
        assert data["devices"] == 2
        assert len(data["device_results"]) == 2
        assert "records" not in data["device_results"][0]
        json.dumps(data)
        detailed = result.to_dict(include_records=True)
        assert len(detailed["device_results"][0]["records"]) == 6


class TestEngineFleet:
    def test_run_fleet_from_config(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(
            fleet=4, dispatch="least_loaded", scenario="poisson",
            slices=15, **TINY,
        )
        result = engine.run_fleet(config)
        assert len(result) == 4
        assert result.dispatch == "least_loaded"
        # one shared runtime: the LUT was built exactly once
        assert engine.stats.lut_builds == 1

    def test_run_dispatches_to_fleet(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(fleet=2, slices=5, **TINY)
        result = engine.run(config)
        assert len(result.device_results) == 2

    def test_one_device_config_equals_single_run(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(scenario="case3", slices=8, **TINY)
        single = engine.run(config)
        fleet = engine.run_fleet(config)
        assert fleet.device_results[0].records == single.records

    def test_run_many_rejects_fleet_configs(self):
        engine = Engine(use_disk_cache=False)
        with pytest.raises(ConfigurationError, match="run_fleet"):
            engine.run_many([ExperimentConfig(fleet=2, **TINY)])
        with pytest.raises(ConfigurationError, match="run_fleet"):
            engine.run_record(ExperimentConfig(fleet=2, **TINY))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="fleet size"):
            ExperimentConfig(fleet=0)
        with pytest.raises(ConfigurationError, match="dispatch"):
            ExperimentConfig(dispatch="")
        config = ExperimentConfig(fleet=2, dispatch="energy_aware")
        assert ExperimentConfig.from_dict(config.to_dict()) == config
