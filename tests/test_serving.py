"""Tests for the fleet serving layer and its api wiring."""

import pytest
from hypothesis import given, settings, strategies as st

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import DISPATCH, Engine, ExperimentConfig
from repro.errors import ConfigurationError, ServingError
from repro.serving import (
    BUILTIN_POLICIES,
    DispatchPolicy,
    EnergyAware,
    Fleet,
    LeastLoaded,
    RoundRobin,
    make_policy,
)
from repro.workloads import ScenarioCase, arrivals, bursty, scenario

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)


@pytest.fixture(scope="module")
def hh_runtime():
    engine = Engine(use_disk_cache=False)
    return engine.runtime(ExperimentConfig(**TINY))


class TestDispatchPolicies:
    def _infos(self, fleet):
        return fleet.devices

    def test_round_robin_deals_evenly(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 4, dispatch="round_robin")
        splits = fleet.split(scenario(ScenarioCase.HIGH_CONSTANT, slices=3))
        totals = [sum(loads) for loads in splits]
        # 30 arrivals over 4 devices: 8/8/7/7 (pointer persists)
        assert sorted(totals, reverse=True) == [8, 8, 7, 7]

    def test_least_loaded_balances(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 3, dispatch="least_loaded")
        workload = bursty().materialize(slices=40, peak=10, seed=4)
        splits = fleet.split(workload)
        totals = [sum(loads) for loads in splits]
        assert max(totals) - min(totals) <= 1
        assert sum(totals) == workload.total_inferences

    def test_energy_aware_fills_cheapest_first(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 2, dispatch="energy_aware")
        light = scenario(ScenarioCase.LOW_CONSTANT, slices=5)
        splits = fleet.split(light)
        # identical devices: everything fits on device 0's capacity
        assert sum(splits[0]) == light.total_inferences
        assert sum(splits[1]) == 0

    def test_conservation_enforced(self, hh_runtime):
        class Dropper(DispatchPolicy):
            name = "dropper"

            def assign(self, slice_index, arrivals):
                return [0] * len(self._devices)

        fleet = Fleet([hh_runtime] * 2, dispatch=Dropper())
        with pytest.raises(ServingError, match="dropped or invented"):
            fleet.run(scenario(ScenarioCase.LOW_CONSTANT, slices=2))

    def test_make_policy_coercions(self):
        assert isinstance(make_policy("round_robin"), RoundRobin)
        assert isinstance(make_policy(LeastLoaded), LeastLoaded)
        aware = EnergyAware()
        assert make_policy(aware) is aware
        with pytest.raises(ServingError, match="unknown dispatch"):
            make_policy("nope")
        with pytest.raises(ServingError, match="must be a name"):
            make_policy(42)

    def test_make_policy_resolves_registered_names(self, hh_runtime):
        class Cheapest(EnergyAware):
            name = "cheapest"

        DISPATCH.register("cheapest", Cheapest)
        try:
            # a registry-only name works in directly-built fleets too
            fleet = Fleet([hh_runtime] * 2, dispatch="cheapest")
            assert fleet.policy.name == "cheapest"
        finally:
            DISPATCH.unregister("cheapest")
        with pytest.raises(ServingError, match="unknown dispatch"):
            Fleet([hh_runtime], dispatch="cheapest")

    def test_builtins_registered_in_api(self):
        for name in BUILTIN_POLICIES:
            assert name in DISPATCH

    def test_least_loaded_resize_keeps_counts(self, hh_runtime):
        """A scale-up steers new work to the fresh (empty) device."""
        from repro.serving.fleet import device_info

        infos = tuple(device_info(i, hh_runtime) for i in range(2))
        policy = LeastLoaded()
        policy.start(infos)
        policy.assign(0, 8)  # 4/4 across the two devices
        grown = tuple(device_info(i, hh_runtime) for i in range(3))
        policy.resize(grown)
        shares = policy.assign(1, 4)
        assert shares == [0, 0, 4]  # the new device catches up first

    def test_round_robin_resize_keeps_pointer(self, hh_runtime):
        from repro.serving.fleet import device_info

        policy = RoundRobin()
        policy.start(tuple(device_info(i, hh_runtime) for i in range(3)))
        policy.assign(0, 2)  # pointer now at device 2
        policy.resize(tuple(device_info(i, hh_runtime) for i in range(2)))
        assert policy.assign(1, 1) == [1, 0]  # pointer wrapped to 0

    def test_default_resize_restarts(self, hh_runtime):
        from repro.serving.fleet import device_info

        policy = EnergyAware()
        policy.start(tuple(device_info(i, hh_runtime) for i in range(1)))
        policy.resize(tuple(device_info(i, hh_runtime) for i in range(2)))
        assert len(policy.assign(0, 3)) == 2


class TestFleet:
    def test_single_device_fleet_equals_runtime(self, hh_runtime):
        """The 1-device fleet property: record-identical to the runtime."""
        workload = bursty().materialize(slices=30, peak=10, seed=8)
        solo = hh_runtime.run(workload)
        for dispatch in BUILTIN_POLICIES:
            fleet = Fleet([hh_runtime], dispatch=dispatch)
            result = fleet.run(workload)
            assert result.device_results[0].records == solo.records
            assert result.total_energy_nj == solo.total_energy_nj

    def test_four_device_run(self, hh_runtime):
        fleet = Fleet([hh_runtime] * 4, dispatch="least_loaded")
        workload = bursty().materialize(slices=25, peak=10, seed=1)
        result = fleet.run(workload)
        assert len(result) == 4
        assert result.total_inferences == workload.total_inferences
        assert result.total_energy_nj == pytest.approx(
            sum(r.total_energy_nj for r in result.device_results)
        )
        assert 0.0 <= result.deadline_rate <= 1.0
        assert len(result.device_utilization) == 4
        assert result.load_imbalance >= 1.0

    def test_fleet_validation(self, hh_runtime):
        with pytest.raises(ServingError, match="at least one device"):
            Fleet([])
        with pytest.raises(ServingError, match="TimeSliceRuntime"):
            Fleet([object()])

    def test_fleet_result_to_dict(self, hh_runtime):
        import json

        fleet = Fleet([hh_runtime] * 2)
        result = fleet.run(scenario(ScenarioCase.PULSING, slices=6))
        data = result.to_dict()
        assert data["devices"] == 2
        assert len(data["device_results"]) == 2
        assert "records" not in data["device_results"][0]
        json.dumps(data)
        detailed = result.to_dict(include_records=True)
        assert len(detailed["device_results"][0]["records"]) == 6


class TestEngineFleet:
    def test_run_fleet_from_config(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(
            fleet=4, dispatch="least_loaded", scenario="poisson",
            slices=15, **TINY,
        )
        result = engine.run_fleet(config)
        assert len(result) == 4
        assert result.dispatch == "least_loaded"
        # one shared runtime: the LUT was built exactly once
        assert engine.stats.lut_builds == 1

    def test_run_dispatches_to_fleet(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(fleet=2, slices=5, **TINY)
        result = engine.run(config)
        assert len(result.device_results) == 2

    def test_one_device_config_equals_single_run(self):
        engine = Engine(use_disk_cache=False)
        config = ExperimentConfig(scenario="case3", slices=8, **TINY)
        single = engine.run(config)
        fleet = engine.run_fleet(config)
        assert fleet.device_results[0].records == single.records

    def test_run_record_rejects_fleet_configs(self):
        # run_record stays single-device; batching goes via run_many.
        engine = Engine(use_disk_cache=False)
        with pytest.raises(ConfigurationError, match="run_fleet"):
            engine.run_record(ExperimentConfig(fleet=2, **TINY))

    def test_run_many_batches_fleet_configs(self):
        """run_many mixes fleet and single-device configs in one batch."""
        from repro.api import FleetRecord, RunRecord

        engine = Engine(use_disk_cache=False)
        configs = [
            ExperimentConfig(scenario="case1", slices=6, **TINY),
            ExperimentConfig(
                scenario="case1", slices=6, fleet=3,
                dispatch="least_loaded", **TINY,
            ),
            ExperimentConfig(scenario="case5", slices=6, **TINY),
        ]
        results = engine.run_many(configs)
        assert len(results) == 3
        assert isinstance(results[0], RunRecord)
        assert isinstance(results[1], FleetRecord)
        assert results[1].devices == 3
        assert results[1].dispatch == "least_loaded"
        # the batched fleet run equals a direct run_fleet
        direct = engine.run_fleet(configs[1])
        assert results[1].result.to_dict() == direct.to_dict()
        # one runtime serves all three configs: LUT built exactly once
        assert engine.stats.lut_builds == 1
        # rows share one schema, so CSV/JSON exports stay rectangular
        rows = results.to_rows()
        assert [set(row) for row in rows] == [set(rows[0])] * 3
        assert [row["devices"] for row in rows] == [1, 3, 1]
        csv_lines = results.to_csv().strip().splitlines()
        assert len(csv_lines) == 4
        aggregate = results.aggregate(by="arch")["HH-PIM"]
        assert aggregate.runs == 3

    def test_run_many_batches_fleet_configs_pooled(self):
        """Fleet configs run in-parent even when a pool is requested."""
        from repro.api import FleetRecord

        engine = Engine(use_disk_cache=False)
        configs = [
            ExperimentConfig(scenario="case1", slices=4, **TINY),
            ExperimentConfig(scenario="case1", slices=4, fleet=2, **TINY),
        ]
        results = engine.run_many(configs, max_workers=2)
        assert isinstance(results[1], FleetRecord)
        assert len(results[1].result.device_results) == 2
        serial = Engine(use_disk_cache=False).run_many(configs)
        assert results.to_rows() == serial.to_rows()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="fleet size"):
            ExperimentConfig(fleet=0)
        with pytest.raises(ConfigurationError, match="dispatch"):
            ExperimentConfig(dispatch="")
        config = ExperimentConfig(fleet=2, dispatch="energy_aware")
        assert ExperimentConfig.from_dict(config.to_dict()) == config


def _random_process(kind: str):
    """One seeded random arrival process per hypothesis-drawn kind."""
    return {
        "poisson": lambda: arrivals.poisson(5.0),
        "bursty": lambda: arrivals.bursty(),
        "uniform": lambda: arrivals.uniform(0),
        "overlay": lambda: arrivals.diurnal(trough=0).overlay(
            arrivals.poisson(2.0)
        ),
    }[kind]()


class TestDispatchProperties:
    """Property suite: every policy conserves every random trace."""

    @given(
        seed=st.integers(0, 10_000),
        devices=st.integers(1, 5),
        policy=st.sampled_from(sorted(BUILTIN_POLICIES)),
        kind=st.sampled_from(["poisson", "bursty", "uniform", "overlay"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_splits_conserve_load(
        self, hh_runtime, seed, devices, policy, kind
    ):
        workload = _random_process(kind).materialize(
            slices=30, peak=10, seed=seed
        )
        fleet = Fleet([hh_runtime] * devices, dispatch=policy)
        splits = fleet.split(workload)
        assert len(splits) == devices
        for loads in splits:
            assert len(loads) == len(workload)
            assert all(
                isinstance(share, int) and share >= 0 for share in loads
            )
        for index, load in enumerate(workload.loads):
            assert sum(loads[index] for loads in splits) == load
