"""Multi-process tests for the work-stealing distributed sweep.

The acceptance regression lives here: a worker SIGKILLed mid-sweep is
stolen from, the sweep completes, and the aggregated export is
byte-identical to an uninterrupted single-process run — plus the CLI
faces of the coordinator (``repro status --json``) and the serve
daemon's typed refusal of coordinator verbs.  Real subprocesses and
ephemeral ports throughout; isolated cache/store directories keep
parallel CI jobs from colliding.
"""

from __future__ import annotations

import json
import time

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig
from repro.cli import main
from repro.dist import CoordinatorClient, SweepCoordinator
from repro.dist.executor import distributed_sweep, spawn_worker
from repro.service.client import RemoteError
from repro.store import Store

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS, slices=4)


def tiny_grid(seeds: int = 6) -> tuple:
    return ExperimentConfig(**TINY).sweep(
        seed=list(range(2025, 2025 + seeds))
    )


@pytest.fixture
def lut_cache(tmp_path, monkeypatch):
    """An isolated LUT cache that worker subprocesses inherit."""
    monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "lut"))
    return tmp_path / "lut"


class TestKilledWorker:
    def test_sigkilled_worker_is_stolen_from_and_export_matches(
        self, tmp_path, lut_cache
    ):
        """The differential acceptance test: SIGKILL mid-sweep, steal,
        finish, and export byte-identically to a single-process run."""
        grid = tiny_grid()
        # Reference first: an uninterrupted single-process sweep (this
        # also warms the shared LUT cache the workers will load from).
        reference = Engine().run_many(grid).to_json()

        store = Store(tmp_path / "store")
        coordinator = SweepCoordinator(
            grid, store, chunk_size=2, lease_s=4.0, log=lambda line: None
        )
        coordinator.start()
        victim = rescuer = None
        try:
            victim = spawn_worker(
                coordinator.host, coordinator.port, "victim",
                env={"REPRO_DIST_TEST_STALL_S": "300"},
            )
            # The victim claims a chunk, computes its first sub-batch
            # into the store, then parks without renewing.  Wait for
            # evidence of real mid-chunk work, then SIGKILL it.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if store.info()["entries"] > 0:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("victim never wrote a record to the store")
            victim.kill()
            victim.wait(timeout=30)

            rescuer = spawn_worker(
                coordinator.host, coordinator.port, "rescuer"
            )
            assert coordinator.wait(timeout=180), (
                f"sweep did not complete: {coordinator.status()}"
            )
            status = coordinator.status()
        finally:
            for process in (victim, rescuer):
                if process is not None:
                    if process.poll() is None:
                        process.kill()
                    process.wait(timeout=30)
                    process.stderr.close()
            coordinator.stop()

        assert status["chunks"]["stolen"] >= 1
        assert status["chunks"]["completed"] == status["chunks"]["total"]
        # The crash left no orphaned lease files behind.
        assert coordinator.leases.active() == []
        assert not list(coordinator.leases.root.glob("chunk-*"))
        # Resume from the store recomputes nothing and exports the
        # byte-identical result set.
        resumed = Engine(store=store, resume=True)
        assert resumed.run_many(grid).to_json() == reference
        assert resumed.stats.runs == 0

    def test_distributed_sweep_matches_single_process(
        self, tmp_path, lut_cache
    ):
        """The one-call executor: 2 live workers, same bytes out."""
        grid = tiny_grid(4)
        reference = Engine().run_many(grid).to_json()
        status: dict = {}
        results = distributed_sweep(
            grid, tmp_path / "store", workers=2, chunk_size=2,
            log=lambda line: None, timeout=300,
            status_sink=status.update,
        )
        assert results.to_json() == reference
        assert status["done"]
        assert status["configs"]["completed"] == len(grid)

    def test_traced_sweep_merges_one_trace_across_processes(
        self, tmp_path, lut_cache
    ):
        """A traced sweep writes one merged Perfetto-loadable trace:
        coordinator plus every worker on a shared time axis, exactly
        one completed ``worker.chunk`` span per chunk, and results
        still bit-identical to the untraced reference."""
        from repro.obs.tracing import Trace

        grid = tiny_grid(4)
        reference = Engine().run_many(grid).to_json()
        trace_path = tmp_path / "trace.json"
        results = distributed_sweep(
            grid, tmp_path / "store", workers=2, chunk_size=2,
            log=lambda line: None, timeout=300, trace=trace_path,
        )
        assert results.to_json() == reference

        trace = Trace.from_file(trace_path)
        procs = {s.proc for s in trace.spans}
        worker_procs = {p for p in procs if p.startswith("worker:")}
        assert "coordinator" in procs
        assert len(worker_procs) == 2

        # Exactly one completed chunk span per chunk, recorded by the
        # worker that ran it, with the engine's spans merged alongside.
        chunks = [s for s in trace.spans if s.name == "worker.chunk"]
        completed = [s for s in chunks if s.args.get("completed")]
        chunk_ids = sorted(s.args["chunk"] for s in completed)
        assert chunk_ids == sorted(set(chunk_ids))
        assert sum(s.args["configs"] for s in completed) == len(grid)
        assert {s.proc for s in chunks} <= worker_procs

        claims = [s for s in trace.spans if s.name == "worker.claim"]
        assert {s.proc for s in claims} == worker_procs
        names = {s.name for s in trace.spans}
        assert {"dist.sweep", "engine.run_many", "engine.run"} <= names

        # The written file is valid Chrome trace-event JSON with a
        # metadata track per process.
        payload = json.loads(trace_path.read_text())
        metas = [
            e for e in payload["traceEvents"] if e.get("ph") == "M"
        ]
        assert {m["args"]["name"] for m in metas} == procs


class TestCoordinatorCLI:
    def test_status_json_against_live_coordinator(
        self, tmp_path, capsys
    ):
        coordinator = SweepCoordinator(
            tiny_grid(), Store(tmp_path / "store"), log=lambda line: None
        )
        coordinator.start()
        try:
            code = main(
                ["status", "--port", str(coordinator.port), "--json"]
            )
            out = capsys.readouterr().out
            assert code == 0
            state = json.loads(out)
            assert state["chunks"]["total"] > 0
            assert state["chunks"]["completed"] == 0
            assert state["configs"]["total"] == len(coordinator.configs)
            assert state["workers"] == {}

            code = main(["status", "--port", str(coordinator.port)])
            text = capsys.readouterr().out
            assert code == 0
            assert "sweep coordinator" in text
            assert "stolen" in text
        finally:
            coordinator.stop()

    def test_sweep_worker_rejects_malformed_connect(self, capsys):
        code = main(["sweep-worker", "--connect", "no-port-here"])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")


class TestDaemonBoundary:
    def test_serve_daemon_refuses_coordinator_verbs(self, tmp_path):
        from repro.service.daemon import ServeDaemon

        daemon = ServeDaemon(
            port=0,
            engine=Engine(use_disk_cache=False),
            log=lambda line: None,
        )
        daemon.start()
        try:
            client = CoordinatorClient("127.0.0.1", daemon.port, "w0")
            with pytest.raises(RemoteError) as error:
                client.claim()
            assert error.value.code == "unsupported"
            # The refusal is an answer, not a shutdown: the daemon
            # still serves its own protocol afterwards.
            assert client.ping()
        finally:
            daemon.drain()
            daemon.stop()
