"""The distributed sweep executor: leases, coordinator, protocol v2.

Everything here is in-process and sleep-free: lease expiry runs on an
injectable manual clock, and the coordinator is driven through
``dispatch()`` directly — the wire plumbing it shares with the serve
daemon is pinned by ``test_service.py``, and the full multi-process
path (worker subprocesses, SIGKILL, byte-identical exports) lives in
``test_dist_integration.py``.
"""

from __future__ import annotations

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import ExperimentConfig
from repro.dist import LeaseManager, SweepCoordinator
from repro.errors import ProtocolError
from repro.service import protocol
from repro.store import Store

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS, slices=4)


class ManualClock:
    """A zero-argument clock the tests advance by hand."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_grid(seeds: int = 6) -> tuple:
    return ExperimentConfig(**TINY).sweep(
        seed=list(range(2025, 2025 + seeds))
    )


# -- protocol v2 -----------------------------------------------------------------


class TestProtocolV2:
    def test_dist_verbs_are_requestable(self):
        assert set(protocol.DIST_TYPES) <= set(protocol.REQUEST_TYPES)
        assert protocol.PROTOCOL_VERSION >= 2

    def test_dist_verbs_need_a_worker(self):
        for rtype in protocol.DIST_TYPES:
            with pytest.raises(ProtocolError, match="worker"):
                protocol.validate_request(
                    {"v": protocol.PROTOCOL_VERSION, "type": rtype}
                )

    def test_chunk_verbs_need_an_integer_chunk(self):
        for rtype in ("HEARTBEAT", "PROGRESS", "COMPLETE"):
            for chunk in (None, "3", 1.5, True):
                message = protocol.request(
                    rtype, worker="w", chunk=chunk, completed=0
                )
                with pytest.raises(ProtocolError, match="integer chunk"):
                    protocol.validate_request(message)

    def test_progress_needs_a_count(self):
        for completed in (None, -1, "4", True):
            message = protocol.request(
                "PROGRESS", worker="w", chunk=0, completed=completed
            )
            with pytest.raises(ProtocolError, match="completed"):
                protocol.validate_request(message)

    def test_new_error_codes_are_typed(self):
        for code in ("unknown_chunk", "stale_lease", "unsupported"):
            assert code in protocol.ERROR_CODES


# -- leases ----------------------------------------------------------------------


class TestLeases:
    @pytest.fixture
    def clock(self) -> ManualClock:
        return ManualClock()

    @pytest.fixture
    def leases(self, tmp_path, clock) -> LeaseManager:
        return LeaseManager(tmp_path / "leases", ttl_s=10.0, clock=clock)

    def test_claim_is_exclusive_while_live(self, leases, clock):
        granted = leases.claim(3, "alice")
        assert granted is not None
        assert granted.expires == clock() + 10.0
        # Nobody (not even the holder) can double-claim a live lease.
        assert leases.claim(3, "bob") is None
        assert leases.claim(3, "alice") is None

    def test_expired_lease_is_reclaimed(self, leases, clock):
        leases.claim(3, "alice")
        clock.advance(10.0)
        stolen = leases.claim(3, "bob")
        assert stolen is not None
        assert stolen.worker == "bob"
        # The old holder's renewal and release are now rejected.
        with pytest.raises(ProtocolError) as renew_error:
            leases.renew(3, "alice")
        assert renew_error.value.code == "stale_lease"
        with pytest.raises(ProtocolError) as release_error:
            leases.release(3, "alice")
        assert release_error.value.code == "stale_lease"

    def test_renewal_extends_the_deadline(self, leases, clock):
        leases.claim(3, "alice")
        clock.advance(9.0)
        renewed = leases.renew(3, "alice")
        assert renewed.expires == clock() + 10.0
        assert renewed.renewals == 1
        # The renewal carried the lease past its original deadline.
        clock.advance(9.0)
        assert not leases.holder(3).expired(clock())

    def test_renew_after_expiry_is_stale(self, leases, clock):
        leases.claim(3, "alice")
        clock.advance(10.0)
        with pytest.raises(ProtocolError) as error:
            leases.renew(3, "alice")
        assert error.value.code == "stale_lease"

    def test_unknown_chunk_is_typed(self, leases):
        for method in (leases.renew, leases.release):
            with pytest.raises(ProtocolError) as error:
                method(42, "alice")
            assert error.value.code == "unknown_chunk"

    def test_release_empties_the_directory(self, leases):
        leases.claim(0, "alice")
        leases.claim(1, "alice")
        leases.release(0, "alice")
        leases.release(1, "alice")
        assert leases.active() == []
        assert not list(leases.root.glob("chunk-*"))

    def test_corrupt_lease_file_is_reclaimable(self, leases):
        leases.claim(3, "alice")
        leases.path(3).write_text("not json")
        granted = leases.claim(3, "bob")
        assert granted is not None
        assert granted.worker == "bob"


# -- coordinator dispatch --------------------------------------------------------


class TestCoordinator:
    @pytest.fixture
    def clock(self) -> ManualClock:
        return ManualClock()

    @pytest.fixture
    def coordinator(self, tmp_path, clock) -> SweepCoordinator:
        return SweepCoordinator(
            tiny_grid(),
            Store(tmp_path / "store"),
            chunk_size=2,
            lease_s=10.0,
            clock=clock,
            log=lambda line: None,
        )

    def claim(self, coordinator, worker: str) -> dict:
        return coordinator.dispatch(
            protocol.request("CLAIM", worker=worker)
        )

    def drain(self, coordinator, worker: str) -> list:
        """CLAIM+COMPLETE until EMPTY; returns the completed chunk ids."""
        completed = []
        while True:
            reply = self.claim(coordinator, worker)
            if reply["type"] == "EMPTY":
                return completed
            coordinator.dispatch(
                protocol.request(
                    "COMPLETE", worker=worker, chunk=reply["chunk"]
                )
            )
            completed.append(reply["chunk"])

    def test_claim_grants_largest_chunk_first(self, coordinator):
        sizes = []
        worker = iter(f"w{i}" for i in range(100))
        while True:
            reply = self.claim(coordinator, next(worker))
            if reply["type"] == "EMPTY":
                break
            sizes.append(len(reply["configs"]))
        assert sizes == sorted(sizes, reverse=True)
        assert sum(sizes) == len(coordinator.configs)

    def test_chunk_reply_carries_everything_a_worker_needs(
        self, coordinator
    ):
        reply = self.claim(coordinator, "alice")
        assert reply["type"] == "CHUNK"
        assert reply["lease_s"] == 10.0
        assert reply["store"] == str(coordinator.store.root)
        rebuilt = [
            ExperimentConfig.from_dict(data) for data in reply["configs"]
        ]
        assert all(config in coordinator.configs for config in rebuilt)

    def test_complete_drains_the_sweep(self, coordinator):
        completed = self.drain(coordinator, "alice")
        assert coordinator.done
        status = coordinator.status()
        assert status["chunks"]["completed"] == len(completed)
        assert status["chunks"]["pending"] == 0
        assert status["configs"]["completed"] == len(coordinator.configs)
        # Done coordinator answers EMPTY+done, and leaves no lease files.
        reply = self.claim(coordinator, "bob")
        assert reply == {
            "v": protocol.PROTOCOL_VERSION,
            "type": "EMPTY",
            "done": True,
            "retry_s": reply["retry_s"],
        }
        assert coordinator.leases.active() == []

    def test_crashed_worker_is_stolen_from(self, coordinator, clock):
        victim = self.claim(coordinator, "victim")
        coordinator.dispatch(
            protocol.request(
                "PROGRESS", worker="victim", chunk=victim["chunk"],
                completed=1,
            )
        )
        # ... the victim dies here; its lease expires unrenewed ...
        clock.advance(10.0)
        completed = self.drain(coordinator, "rescuer")
        assert victim["chunk"] in completed
        assert coordinator.done
        status = coordinator.status()
        assert status["chunks"]["stolen"] == 1
        assert status["workers"]["rescuer"]["chunks_completed"] == len(
            completed
        )
        # No orphaned lease files — the crash left nothing behind.
        assert coordinator.leases.active() == []
        assert not list(coordinator.leases.root.glob("chunk-*"))

    def test_stale_holder_progress_and_complete_rejected(
        self, coordinator, clock
    ):
        victim = self.claim(coordinator, "victim")
        clock.advance(10.0)
        granted = []
        while victim["chunk"] not in granted:
            reply = self.claim(coordinator, "rescuer")
            assert reply["type"] == "CHUNK"  # fresh first, then the steal
            granted.append(reply["chunk"])
        for rtype in ("PROGRESS", "COMPLETE"):
            with pytest.raises(ProtocolError) as error:
                coordinator.dispatch(
                    protocol.request(
                        rtype, worker="victim", chunk=victim["chunk"],
                        completed=1,
                    )
                )
            assert error.value.code == "stale_lease"

    def test_heartbeat_renews(self, coordinator, clock):
        granted = self.claim(coordinator, "alice")
        clock.advance(9.0)
        reply = coordinator.dispatch(
            protocol.request(
                "HEARTBEAT", worker="alice", chunk=granted["chunk"]
            )
        )
        assert reply["expires"] == clock() + 10.0
        clock.advance(9.0)
        # Still held: another worker cannot claim it.
        holder = coordinator.leases.holder(granted["chunk"])
        assert holder.worker == "alice"
        assert not holder.expired(clock())

    def test_unknown_chunk_is_typed(self, coordinator):
        with pytest.raises(ProtocolError) as error:
            coordinator.dispatch(
                protocol.request("COMPLETE", worker="alice", chunk=99)
            )
        assert error.value.code == "unknown_chunk"

    def test_unserved_verbs_are_unsupported(self, coordinator):
        with pytest.raises(ProtocolError) as error:
            coordinator.dispatch(
                protocol.request("SUBMIT", config={}, label="x")
            )
        assert error.value.code == "unsupported"

    def test_progress_feeds_worker_throughput(self, coordinator, clock):
        granted = self.claim(coordinator, "alice")
        clock.advance(2.0)
        coordinator.dispatch(
            protocol.request(
                "PROGRESS", worker="alice", chunk=granted["chunk"],
                completed=2,
            )
        )
        workers = coordinator.status()["workers"]
        assert workers["alice"]["configs_completed"] == 2
        assert workers["alice"]["throughput_configs_s"] == pytest.approx(
            2 / 2.0
        )
        metrics = coordinator.metrics.values()
        assert metrics["repro_dist_sweep"]["configs_completed"] == 2
        assert metrics["repro_dist_worker,worker=alice"][
            "configs_completed"
        ] == 2

    def test_empty_grid_is_born_done(self, tmp_path):
        coordinator = SweepCoordinator(
            (), Store(tmp_path / "store"), log=lambda line: None
        )
        assert coordinator.done
