"""Tests for the unified experiment API (registries, config, engine,
result sets) — including the bit-for-bit equivalence of engine runs with
hand-constructed ``TimeSliceRuntime`` pipelines and the exactly-once LUT
memoization over a full grid."""

import json

import pytest

from repro.api import (
    ARCHITECTURES,
    Engine,
    ExperimentConfig,
    MODELS,
    POLICIES,
    Registry,
    ResultSet,
    RunRecord,
    SCENARIOS,
)
from repro.arch import HH_PIM
from repro.core import DataPlacementOptimizer, TimeSliceRuntime
from repro.core.runtime import default_time_slice_ns
from repro.errors import ConfigurationError, RegistryError
from repro.workloads import ScenarioCase, scenario
from repro.workloads.scenarios import Scenario

#: Very small resolution so grid tests stay fast.
TINY = dict(block_count=16, time_steps=1500)


# -- registries ---------------------------------------------------------------------


class TestRegistry:
    def test_round_trip(self):
        reg = Registry("thing")
        reg.register("Alpha", 1)
        assert reg.get("Alpha") == 1
        assert reg.get("alpha") == 1  # case-insensitive
        assert reg.canonical("ALPHA") == "Alpha"
        assert "alpha" in reg and "beta" not in reg
        assert reg.keys() == ["Alpha"]

    def test_duplicate_key_rejected(self):
        reg = Registry("thing")
        reg.register("a", 1)
        with pytest.raises(RegistryError):
            reg.register("a", 2)
        reg.register("a", 1)  # equal value: idempotent no-op
        reg.register("a", 2, overwrite=True)
        assert reg.get("a") == 2

    def test_unknown_key_lists_available(self):
        reg = Registry("thing")
        reg.register("only", 1)
        with pytest.raises(RegistryError, match="only"):
            reg.get("nope")

    def test_decorator_form(self):
        reg = Registry("factory")

        @reg.register("f")
        def factory():
            return 42

        assert reg.get("f") is factory

    def test_empty_key_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError):
            reg.register("  ", 1)

    def test_builtins_present(self):
        assert ARCHITECTURES.get("HH-PIM") is HH_PIM
        assert len(MODELS) >= 3
        assert "case1" in SCENARIOS and "low_constant" in SCENARIOS
        assert POLICIES.get("dynamic_lut").value == "dynamic_lut"

    def test_architecture_validator(self):
        with pytest.raises(RegistryError):
            ARCHITECTURES.register("bogus", object())

    def test_unregister(self):
        reg = Registry("thing")
        reg.register("x", 1)
        reg.unregister("x")
        assert "x" not in reg
        with pytest.raises(RegistryError):
            reg.unregister("x")

    def test_alias_tracks_overwrites(self):
        reg = Registry("thing")
        reg.register("Canon", 1)
        reg.alias("nickname", "canon")
        assert reg.get("nickname") == 1
        assert reg.canonical("nickname") == "Canon"
        reg.register("Canon", 2, overwrite=True)
        assert reg.get("nickname") == 2  # alias follows the overwrite
        assert "nickname" in reg
        assert reg.keys() == ["Canon"]  # aliases not listed

    def test_alias_of_unknown_key_rejected(self):
        reg = Registry("thing")
        with pytest.raises(RegistryError):
            reg.alias("nick", "ghost")

    def test_unregister_canonical_drops_dangling_aliases(self):
        reg = Registry("thing")
        reg.register("a", 1)
        reg.alias("b", "a")
        reg.unregister("a")
        assert "b" not in reg


# -- ExperimentConfig ---------------------------------------------------------------


class TestExperimentConfig:
    def test_defaults_validate(self):
        config = ExperimentConfig()
        assert config.validate() is config

    def test_dict_round_trip(self):
        config = ExperimentConfig(arch="Hybrid-PIM", scenario="case5",
                                  slices=7, t_slice_ns=1e8, **TINY)
        data = config.to_dict()
        assert data["arch"] == "Hybrid-PIM"
        assert ExperimentConfig.from_dict(data) == config
        assert json.loads(json.dumps(data)) == data  # JSON-safe

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="frobnicate"):
            ExperimentConfig.from_dict({"frobnicate": 1})

    @pytest.mark.parametrize("bad", [
        dict(slices=0),
        dict(peak=2, low=5),
        dict(low=0),
        dict(t_slice_ns=-1.0),
        dict(block_count=0),
        dict(time_steps=0),
        dict(granule_bytes=0),
        dict(peak_inferences=0),
        dict(arch=""),
        dict(model=None),
    ])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**bad)

    def test_validate_flags_unknown_keys(self):
        with pytest.raises(RegistryError):
            ExperimentConfig(arch="NoSuchFabric").validate()

    def test_sweep_order_and_shape(self):
        base = ExperimentConfig(**TINY)
        configs = base.sweep(arch=["HH-PIM", "Hybrid-PIM"],
                             scenario=["case1", "case2"])
        assert [c.label for c in configs] == [
            "HH-PIM/EfficientNet-B0/case1",
            "HH-PIM/EfficientNet-B0/case2",
            "Hybrid-PIM/EfficientNet-B0/case1",
            "Hybrid-PIM/EfficientNet-B0/case2",
        ]
        # scalar axes are singleton grids; no axes = the template itself
        assert base.sweep(scenario="case4")[0].scenario == "case4"
        assert base.sweep() == (base,)

    def test_sweep_rejects_unknown_axis(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig().sweep(banana=[1, 2])

    def test_sweep_rejects_empty_axis(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig().sweep(arch=[])

    def test_config_hashable(self):
        a = ExperimentConfig()
        b = ExperimentConfig()
        assert hash(a) == hash(b) and a == b


# -- Engine -------------------------------------------------------------------------


class TestEngine:
    def test_run_matches_hand_built_runtime(self):
        engine = Engine()
        config = ExperimentConfig(scenario="case3", slices=5, **TINY)
        via_engine = engine.run(config)

        t_slice = default_time_slice_ns(
            MODELS.get(config.model), **dict(zip(
                ("block_count", "time_steps"),
                (config.block_count, config.time_steps),
            ))
        )
        runtime = TimeSliceRuntime(
            HH_PIM, MODELS.get(config.model), t_slice_ns=t_slice,
            block_count=config.block_count, time_steps=config.time_steps,
        )
        by_hand = runtime.run(scenario(ScenarioCase.PERIODIC_SPIKE, slices=5))
        assert via_engine.total_energy_nj == by_hand.total_energy_nj
        assert via_engine.records == by_hand.records

    def test_lut_memoized_across_scenarios(self):
        engine = Engine()
        base = ExperimentConfig(slices=3, **TINY)
        for key in ("case1", "case2", "case5"):
            engine.run(base.replace(scenario=key))
        assert engine.stats.lut_builds == 1
        assert engine.stats.lut_hits == 2
        assert engine.stats.runs == 3
        assert engine.cached_runtimes == 1

    def test_second_run_many_performs_zero_dp_builds(self, tmp_path,
                                                     monkeypatch):
        """Regression: the persistent cache spans engines and processes.

        A second ``run_many`` over the same grid — even from a fresh
        engine, which models a fresh process — must be served entirely
        by the on-disk LUT cache: zero DP table constructions, including
        the time-slice sizing bootstrap.
        """
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        grid = ExperimentConfig(slices=3, **TINY).sweep(
            arch=["HH-PIM", "Hybrid-PIM"], scenario=["case1", "case2"],
        )
        cold = Engine()
        first = cold.run_many(grid)
        assert cold.stats.dp_builds > 0

        warm = Engine()
        second = warm.run_many(grid)
        assert warm.stats.dp_builds == 0
        assert warm.stats.lut_disk_hits == 3  # 2 runtimes + 1 t_slice
        for a, b in zip(first, second):
            assert a.result.total_energy_nj == b.result.total_energy_nj
            assert a.result.records == b.result.records

    def test_pooled_workers_consult_disk_cache(self, tmp_path, monkeypatch):
        """Pool workers must load cached LUTs instead of rebuilding."""
        monkeypatch.setenv("REPRO_LUT_CACHE", str(tmp_path / "cache"))
        grid = ExperimentConfig(slices=3, **TINY).sweep(
            arch=["HH-PIM", "Hybrid-PIM"], scenario=["case1", "case2"],
        )
        serial = Engine().run_many(grid)
        pooled_engine = Engine()
        pooled = pooled_engine.run_many(grid, max_workers=2)
        # The workers' DP-build deltas travel back with their results.
        assert pooled_engine.stats.dp_builds == 0
        for a, b in zip(serial, pooled):
            assert a.result.total_energy_nj == b.result.total_energy_nj

    def test_scenario_override(self):
        engine = Engine()
        trace = Scenario(case=ScenarioCase.RANDOM, loads=(1, 5, 2), peak=10)
        result = engine.run(ExperimentConfig(slices=3, **TINY), scenario=trace)
        assert result.scenario is trace

    def test_scenario_instance_registration(self):
        trace = Scenario(case=ScenarioCase.RANDOM, loads=(2, 2), peak=10)
        SCENARIOS.register("test-fixed-trace", trace, overwrite=True)
        try:
            engine = Engine()
            config = ExperimentConfig(scenario="test-fixed-trace", **TINY)
            assert engine.scenario(config) is trace
        finally:
            SCENARIOS.unregister("test-fixed-trace")

    def test_clear_resets_caches_and_stats(self):
        engine = Engine()
        engine.run(ExperimentConfig(slices=2, **TINY))
        engine.clear()
        assert engine.cached_runtimes == 0
        assert engine.stats.lut_builds == 0

    def test_run_many_empty(self):
        assert len(Engine().run_many([])) == 0

    def test_run_many_matches_sequential_and_pool(self):
        base = ExperimentConfig(slices=3, **TINY)
        configs = base.sweep(arch=["Baseline-PIM", "HH-PIM"],
                             scenario=["case1", "case5"])

        serial_engine = Engine()
        sequential = [serial_engine.run(c) for c in configs]

        batch = Engine().run_many(configs)
        pooled = Engine().run_many(configs, max_workers=2)

        for one, two, three in zip(sequential, batch, pooled):
            assert one.total_energy_nj == two.total_energy_nj
            assert one.total_energy_nj == three.total_energy_nj
            assert one.records == two.result.records == three.result.records
        # input order preserved
        assert [r.config for r in batch] == list(configs)
        assert [r.config for r in pooled] == list(configs)

    def test_pool_reuses_parent_cache(self):
        base = ExperimentConfig(slices=2, **TINY)
        engine = Engine()
        engine.run(base.replace(scenario="case1"))
        results = engine.run_many(
            base.sweep(scenario=["case1", "case2"]), max_workers=2
        )
        assert results[0].lut_cached  # served from the warm runtime
        assert engine.stats.lut_builds == 1  # HH-PIM runtime built once

    def test_pool_populates_parent_cache(self):
        """Worker-built runtimes ship back: a second batch rebuilds nothing."""
        base = ExperimentConfig(slices=2, **TINY)
        configs = base.sweep(arch=["Baseline-PIM", "HH-PIM"])
        engine = Engine()
        engine.run_many(configs, max_workers=2)
        assert engine.stats.lut_builds == 2
        assert engine.cached_runtimes == 2
        engine.run_many(configs, max_workers=2)
        assert engine.stats.lut_builds == 2  # nothing rebuilt
        # serial path reuses them too
        engine.run(configs[0])
        assert engine.stats.lut_builds == 2

    def test_pool_lut_cached_flags_match_serial(self):
        configs = ExperimentConfig(slices=2, **TINY).sweep(
            scenario=["case1", "case2", "case5"]
        )
        serial = Engine().run_many(configs)
        pooled = Engine().run_many(configs, max_workers=2)
        assert [r.lut_cached for r in serial] == [False, True, True]
        assert [r.lut_cached for r in pooled] == [False, True, True]


class TestGridAcceptance:
    """The ISSUE's acceptance grid: 3 archs x 3 models x 6 scenarios."""

    ARCHS = ("Baseline-PIM", "Hybrid-PIM", "HH-PIM")
    MODEL_NAMES = ("EfficientNet-B0", "MobileNetV2", "ResNet-18")
    CASES = tuple(f"case{i}" for i in range(1, 7))

    @pytest.fixture(scope="class")
    def grid_run(self):
        # Disk cache off: this fixture counts *actual* optimizer builds,
        # which a cache warmed by earlier tests would legitimately elide.
        engine = Engine(use_disk_cache=False)
        build_calls = []
        original = DataPlacementOptimizer.build_lut

        def counting(self, restrict_to=None):
            build_calls.append((self.spec.name, self.model.name))
            return original(self, restrict_to=restrict_to)

        DataPlacementOptimizer.build_lut = counting
        try:
            configs = ExperimentConfig(slices=4, **TINY).sweep(
                arch=self.ARCHS, model=self.MODEL_NAMES, scenario=self.CASES,
            )
            results = engine.run_many(configs)
        finally:
            DataPlacementOptimizer.build_lut = original
        return engine, configs, results, build_calls

    def test_shape_and_order(self, grid_run):
        _, configs, results, _ = grid_run
        assert len(results) == 54
        assert [r.config for r in results] == list(configs)

    def test_each_runtime_built_exactly_once(self, grid_run):
        engine, _, _, build_calls = grid_run
        assert engine.stats.lut_builds == 9      # 3 archs x 3 models
        assert engine.stats.lut_hits == 45       # the other 45 runs reuse
        assert engine.cached_runtimes == 9
        # Optimizer-level LUT constructions: one per (arch, model) pair
        # plus one bootstrap per model for the paper's time-slice sizing
        # (the bootstrap always runs on HH-PIM, so HH pairs count 2).
        from collections import Counter
        counts = Counter(build_calls)
        for arch in self.ARCHS:
            for model in self.MODEL_NAMES:
                expected = 2 if arch == "HH-PIM" else 1
                assert counts[(arch, model)] == expected, (arch, model)
        assert sum(counts.values()) == 9 + len(self.MODEL_NAMES)

    def test_energies_match_hand_built_runtimes_bit_for_bit(self, grid_run):
        _, configs, results, _ = grid_run
        runtimes = {}
        for record in results:
            config = record.config
            key = (config.arch, config.model)
            if key not in runtimes:
                model = MODELS.get(config.model)
                t_slice = default_time_slice_ns(
                    model, block_count=config.block_count,
                    time_steps=config.time_steps,
                )
                runtimes[key] = TimeSliceRuntime(
                    ARCHITECTURES.get(config.arch), model,
                    t_slice_ns=t_slice,
                    block_count=config.block_count,
                    time_steps=config.time_steps,
                )
            case = ScenarioCase(int(config.scenario.removeprefix("case")))
            by_hand = runtimes[key].run(
                scenario(case, slices=config.slices, seed=config.seed)
            )
            assert record.total_energy_nj == by_hand.total_energy_nj
            assert record.result.records == by_hand.records


# -- ResultSet ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def small_results():
    engine = Engine()
    configs = ExperimentConfig(slices=3, **TINY).sweep(
        arch=["Baseline-PIM", "HH-PIM"], scenario=["case1", "case2"],
    )
    return engine.run_many(configs)


class TestResultSet:
    def test_sequence_protocol(self, small_results):
        assert len(small_results) == 4
        assert isinstance(small_results[0], RunRecord)
        assert isinstance(small_results[1:3], ResultSet)
        combined = small_results + small_results
        assert len(combined) == 8

    def test_filter_by_axis(self, small_results):
        hh = small_results.filter(arch="HH-PIM")
        assert len(hh) == 2 and all(r.arch == "HH-PIM" for r in hh)
        both = small_results.filter(arch=["HH-PIM", "Baseline-PIM"],
                                    scenario="case1")
        assert len(both) == 2
        assert len(small_results.filter(
            predicate=lambda r: r.deadlines_met
        )) == 4

    def test_filter_unknown_axis(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.filter(banana="x")

    def test_aggregate_by_arch(self, small_results):
        stats = small_results.aggregate(by="arch")
        assert set(stats) == {"Baseline-PIM", "HH-PIM"}
        for entry in stats.values():
            assert entry.runs == 2
            assert entry.min_energy_nj <= entry.mean_energy_nj
            assert entry.mean_energy_nj <= entry.max_energy_nj
            assert entry.total_inferences > 0
            assert 0.0 <= entry.deadline_rate <= 1.0
            assert entry.mean_slice_busy_ns > 0

    def test_aggregate_unknown_axis(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.aggregate(by="banana")

    def test_best(self, small_results):
        best = small_results.best("total_energy_nj")
        assert best.total_energy_nj == min(
            r.total_energy_nj for r in small_results
        )

    def test_savings_vs(self, small_results):
        savings = small_results.savings_vs("HH-PIM")
        assert set(savings) == {"Baseline-PIM"}
        assert 0.0 < savings["Baseline-PIM"] < 1.0

    def test_savings_vs_missing_reference(self, small_results):
        with pytest.raises(ConfigurationError):
            small_results.filter(arch="Baseline-PIM").savings_vs("HH-PIM")

    def test_json_export(self, small_results, tmp_path):
        path = tmp_path / "runs.json"
        text = small_results.to_json(path)
        rows = json.loads(text)
        assert len(rows) == 4
        assert rows[0]["arch"] == "Baseline-PIM"
        assert json.loads(path.read_text()) == rows

    def test_csv_export(self, small_results, tmp_path):
        path = tmp_path / "runs.csv"
        text = small_results.to_csv(path)
        lines = text.strip().splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert lines[0].startswith("arch,model,scenario,policy")
        assert path.read_text() == text

    def test_empty_exports(self):
        empty = ResultSet(())
        assert json.loads(empty.to_json()) == []
        assert empty.to_csv() == ""
        assert empty.deadlines_met  # vacuous truth
        with pytest.raises(ConfigurationError):
            empty.best()

    def test_rejects_non_records(self):
        with pytest.raises(ConfigurationError):
            ResultSet([object()])
