"""Tests for the analysis layer (savings grid, figures, reporting).

The grid here runs at strongly reduced resolution (few blocks, short
scenarios) — the full-resolution numbers live in the benchmarks.
"""

import pytest

from repro.analysis import (
    TextTable,
    average_savings,
    compute_savings_grid,
    fig6_series,
    render_fig4,
    render_fig5,
    render_fig6,
    table_vi,
)
from repro.analysis.savings import BASELINE_NAMES, clear_caches
from repro.core.spaces import SpaceKind
from repro.errors import ConfigurationError
from repro.workloads import EFFICIENTNET_B0, ScenarioCase, scenario

GRID_KW = dict(
    models=(EFFICIENTNET_B0,),
    cases=(ScenarioCase.LOW_CONSTANT, ScenarioCase.HIGH_CONSTANT,
           ScenarioCase.PERIODIC_SPIKE, ScenarioCase.PERIODIC_SPIKE_FREQUENT,
           ScenarioCase.PULSING, ScenarioCase.RANDOM),
    slices=12,
    block_count=24,
)


@pytest.fixture(scope="module")
def grid():
    return compute_savings_grid(**GRID_KW)


class TestSavingsGrid:
    def test_grid_shape(self, grid):
        assert len(grid.cells) == 6
        assert grid.models() == ["EfficientNet-B0"]
        assert len(grid.cases()) == 6

    def test_savings_in_range(self, grid):
        for cell in grid.cells:
            for name in BASELINE_NAMES:
                assert -0.05 < cell.savings[name] < 1.0, (cell.case, name)

    def test_case1_beats_case2(self, grid):
        low = grid.cell("EfficientNet-B0", ScenarioCase.LOW_CONSTANT)
        high = grid.cell("EfficientNet-B0", ScenarioCase.HIGH_CONSTANT)
        for name in BASELINE_NAMES:
            assert low.savings[name] > high.savings[name]

    def test_average_savings_ordering(self, grid):
        averages = average_savings(grid)
        # The paper's ordering: savings vs Baseline > vs Hybrid > vs Hetero.
        assert averages["Baseline-PIM"] > averages["Heterogeneous-PIM"]
        assert averages["Hybrid-PIM"] > averages["Heterogeneous-PIM"]

    def test_table_vi_rows(self, grid):
        rows = table_vi(grid)
        assert set(rows) == {
            ScenarioCase.PERIODIC_SPIKE,
            ScenarioCase.PERIODIC_SPIKE_FREQUENT,
            ScenarioCase.PULSING,
            ScenarioCase.RANDOM,
        }
        for savings in rows.values():
            assert set(savings) == set(BASELINE_NAMES)

    def test_grid_cached(self, grid):
        again = compute_savings_grid(**GRID_KW)
        assert again is grid

    def test_missing_cell_rejected(self, grid):
        with pytest.raises(ConfigurationError):
            grid.cell("VGG", ScenarioCase.RANDOM)

    def test_cache_clearing(self, grid):
        clear_caches()
        fresh = compute_savings_grid(**GRID_KW)
        assert fresh is not grid
        assert fresh.cell(
            "EfficientNet-B0", ScenarioCase.RANDOM
        ).savings.keys() == grid.cell(
            "EfficientNet-B0", ScenarioCase.RANDOM
        ).savings.keys()


class TestFigures:
    def test_fig4_render(self):
        text = render_fig4([scenario(c, slices=20) for c in ScenarioCase])
        assert text.count("\n") == 5
        assert "Random Workload" in text

    def test_fig5_render(self, grid):
        text = render_fig5(grid)
        assert "EfficientNet-B0" in text
        assert "vs Baseline-PIM" in text
        assert "%" in text

    def test_fig6_series_monotone(self, hh_lut):
        series = fig6_series(hh_lut, points=40)
        energies = [p.e_task_normalized for p in series]
        assert energies[0] == pytest.approx(1.0)
        assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))

    def test_fig6_ends_in_lp_mram(self, hh_lut):
        series = fig6_series(hh_lut, points=40)
        final = series[-1].utilization
        assert final.get(SpaceKind.LP_MRAM, 0.0) == pytest.approx(1.0)

    def test_fig6_utilization_sums_to_one(self, hh_lut):
        for point in fig6_series(hh_lut, points=10):
            assert sum(point.utilization.values()) == pytest.approx(1.0)

    def test_fig6_render(self, hh_lut):
        text = render_fig6(hh_lut, points=8)
        assert "E_task" in text
        assert text.count("\n") == 8


class TestTextTable:
    def test_render_aligned(self):
        table = TextTable(["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 20)
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")

    def test_cell_count_mismatch(self):
        table = TextTable(["a"])
        with pytest.raises(ConfigurationError):
            table.add_row(1, 2)

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            TextTable([])

    def test_number_formatting(self):
        table = TextTable(["n"])
        table.add_row(1234567)
        assert "1,234,567" in table.render()
