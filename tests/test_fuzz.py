"""Tests for the seed-deterministic fuzz subsystem (repro.fuzz).

Covers the program generator (hypothesis-driven validity and
round-trip properties), the case generator's determinism and axis
coverage, the invariant harness on benign seeds, the injected-fault
acceptance loop (catch -> shrink -> persist -> replay), the store's
``fuzz`` kind, and the tier-1 auto-replay of persisted regressions.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import ExperimentConfig
from repro.api.engine import Engine
from repro.errors import ConfigurationError, FuzzError
from repro.fuzz import (
    FuzzCase,
    check_case,
    generate_case,
    generate_cases,
    replay_stored,
    report_json,
    run_fuzz,
)
from repro.fuzz.generator import (
    ARCHS,
    AUTOSCALERS,
    DISCIPLINES,
    DISPATCH,
    MODELS,
)
from repro.fuzz.programs import (
    COMBINATOR_OPS,
    LEAF_OPS,
    build_program,
    program_label,
    program_size,
    random_program,
)
from repro.fuzz.shrink import case_size, shrink_case
from repro.obs.events import EventLog, install, uninstall
from repro.store import Store
from repro.workloads.scenarios import Scenario

from _shared import SMALL_BLOCKS, SMALL_STEPS


@pytest.fixture(scope="module")
def engine():
    """One store-less engine per module: runtimes memoize across tests."""
    return Engine()


class TestPrograms:
    def test_random_program_is_deterministic(self):
        assert (
            random_program(random.Random(42))
            == random_program(random.Random(42))
        )

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_programs_always_materialize(self, seed):
        spec = random_program(random.Random(seed))
        scenario = build_program(spec).materialize(7, peak=6, seed=seed)
        assert len(scenario.loads) == 7
        assert all(0 <= load <= 6 for load in scenario.loads)
        assert program_label(spec)
        assert program_size(spec) >= 1

    def test_every_op_is_reachable(self):
        seen = set()
        rng = random.Random(0)

        def walk(spec):
            seen.add(spec["op"])
            for child in ("inner", "first", "second"):
                if child in spec:
                    walk(spec[child])

        for _ in range(500):
            walk(random_program(rng))
        assert seen >= set(LEAF_OPS)
        assert seen >= set(COMBINATOR_OPS)

    def test_unknown_op_raises(self):
        with pytest.raises(FuzzError, match="unknown program op"):
            build_program({"op": "sawtooth"})

    def test_missing_parameter_raises(self):
        with pytest.raises(FuzzError, match="missing parameter"):
            build_program({"op": "constant"})

    def test_non_dict_spec_raises(self):
        with pytest.raises(FuzzError, match="must be a dict"):
            build_program("poisson")


class TestScenarioRoundTrip:
    """Satellite: composed programs round-trip through Scenario.to_dict."""

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_program_scenario_round_trips(self, seed):
        case = generate_case(seed)
        scenario = case.scenario()
        payload = scenario.to_dict()
        rebuilt = Scenario(
            case=payload["case"],
            loads=tuple(payload["loads"]),
            peak=payload["peak"],
            name=payload["label"],
        )
        assert rebuilt.loads == scenario.loads
        assert rebuilt.peak == scenario.peak
        assert rebuilt.label == scenario.label
        # Re-materializing the program reproduces the same loads, so the
        # persisted (program, seed) pair is a faithful scenario record.
        assert case.scenario().loads == scenario.loads


class TestGenerator:
    def test_generate_cases_deterministic(self):
        assert generate_cases(5, 10) == generate_cases(5, 10)

    def test_batches_share_case_prefix(self):
        assert generate_cases(5, 10)[:3] == generate_cases(5, 3)

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_case_dict_round_trip(self, seed):
        case = generate_case(seed)
        assert FuzzCase.from_dict(case.to_dict()) == case

    def test_from_dict_rejects_unknown_fields(self):
        payload = generate_case(1).to_dict()
        payload["surprise"] = 1
        with pytest.raises(FuzzError, match="fields mismatch"):
            FuzzCase.from_dict(payload)

    def test_from_dict_rejects_missing_fields(self):
        payload = generate_case(1).to_dict()
        del payload["slices"]
        with pytest.raises(FuzzError, match="fields mismatch"):
            FuzzCase.from_dict(payload)

    def test_axes_are_all_reachable(self):
        cases = generate_cases(0, 200)
        for axis, values in (
            ("arch", ARCHS), ("model", MODELS), ("qos", DISCIPLINES),
            ("dispatch", DISPATCH), ("autoscaler", AUTOSCALERS),
        ):
            assert {getattr(case, axis) for case in cases} == set(values)
        assert {case.fleet for case in cases} == {1, 2, 3}
        assert any(case.max_fleet is not None for case in cases)

    def test_configs_are_valid(self):
        for case in generate_cases(2, 20):
            config = case.config("case1")
            assert config.fingerprint()

    def test_negative_count_raises(self):
        with pytest.raises(FuzzError, match="non-negative"):
            generate_cases(0, -1)


class TestHarness:
    def test_benign_cases_pass(self, engine):
        report = run_fuzz(0, 2, engine=engine)
        assert report.violation_count == 0
        assert not report.failures
        assert len(report.reports) == 2

    def test_report_json_is_seed_deterministic(self, engine):
        first = report_json(run_fuzz(3, 2, engine=engine))
        second = report_json(run_fuzz(3, 2, engine=engine))
        assert first == second

    def test_check_case_reports_engine_errors_as_findings(self, engine):
        case = generate_case(1)
        broken = FuzzCase.from_dict({**case.to_dict(), "arch": "NoSuchPIM"})
        violations = check_case(broken, engine)
        assert violations
        assert violations[0].invariant == "error"

    def test_injected_fault_caught_shrunk_persisted_replayed(
            self, engine, tmp_path, monkeypatch):
        """The acceptance loop: REPRO_FUZZ_TEST_BREAK=1 must be caught,
        shrunk to a minimal program, persisted, and replayed as a
        failure until the fault is gone."""
        monkeypatch.setenv("REPRO_FUZZ_TEST_BREAK", "1")
        store = Store(tmp_path / "store")
        report = run_fuzz(11, 1, engine=engine, store=store)
        assert report.violation_count >= 1
        failure = report.failures[0]
        assert any(
            v.invariant == "conservation" for v in failure.violations
        )
        # Shrunk to a minimal reproducer: a single-leaf program on the
        # simplest axes.
        assert failure.shrunk is not None
        assert program_size(failure.shrunk.program) == 1
        assert failure.shrunk.slices == 1
        assert failure.shrunk.fleet == 1
        assert failure.shrunk.batch == 1
        assert failure.shrunk.qos == "fifo"
        # Persisted as a fuzz- regression entry.
        assert failure.store_key is not None
        assert failure.store_key.startswith("fuzz-")
        rows = store.fuzz_rows()
        assert len(rows) == 1
        assert rows[0]["invariant"] == "conservation"
        # Replay fails while the fault is armed...
        replays = replay_stored(store, engine)
        assert len(replays) == 1 and replays[0].failed
        # ...and passes once it is fixed (env cleared).
        monkeypatch.delenv("REPRO_FUZZ_TEST_BREAK")
        replays = replay_stored(store, engine)
        assert len(replays) == 1 and not replays[0].failed

    def test_fuzz_failure_event_emitted(self, engine, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_TEST_BREAK", "1")
        lines = []
        log = install(EventLog("test-fuzz", sink=lines.append))
        try:
            run_fuzz(11, 1, engine=engine, store=Store(tmp_path / "s"),
                     shrink=False)
        finally:
            uninstall(log)
        failure_lines = [ln for ln in lines if "event=fuzz_failure" in ln]
        assert failure_lines
        assert "invariant=conservation" in failure_lines[0]


class TestShrink:
    def test_shrink_reaches_minimum_when_everything_fails(self):
        case = generate_case(99)
        shrunk = shrink_case(case, lambda candidate: True)
        assert program_size(shrunk.program) == 1
        assert shrunk.slices == 1
        assert shrunk.fleet == 1
        assert shrunk.batch == 1
        assert shrunk.max_fleet is None
        assert shrunk.qos == "fifo"
        assert shrunk.dispatch == "round_robin"
        assert shrunk.autoscaler == "fixed"
        assert case_size(shrunk) < case_size(case)

    def test_shrink_keeps_case_when_nothing_fails(self):
        case = generate_case(99)
        assert shrink_case(case, lambda candidate: False) == case

    def test_shrunk_case_still_valid(self):
        case = generate_case(123)
        shrunk = shrink_case(case, lambda candidate: True)
        assert shrunk.scenario().loads is not None
        assert shrunk.config("case1").fingerprint()


class TestScalarFallbackEvent:
    """Satellite: the silent vectorized->scalar QoS fallback is typed."""

    def test_fallback_emits_event(self, engine):
        from repro.qos.queueing import QoSSimulator, QueueDiscipline

        class NoVector(QueueDiscipline):
            name = "no-vector"

            def key(self, request):
                return (request.rid,)

        config = ExperimentConfig(
            scenario="case1", slices=3,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        runtime = engine.runtime(config)
        scenario = engine.scenario(config)
        lines = []
        log = install(EventLog("test-qos", sink=lines.append))
        try:
            result = QoSSimulator(
                runtime, discipline=NoVector()
            ).run_vectorized(scenario)
        finally:
            uninstall(log)
        assert result.total_requests == scenario.total_inferences
        fallback = [ln for ln in lines if "event=qos_scalar_fallback" in ln]
        assert len(fallback) == 1
        assert "discipline=NoVector" in fallback[0]
        assert "reason=no_vector_keys" in fallback[0]

    def test_vector_disciplines_do_not_emit(self, engine):
        from repro.qos.queueing import QoSSimulator

        config = ExperimentConfig(
            scenario="case1", slices=3,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        lines = []
        log = install(EventLog("test-qos", sink=lines.append))
        try:
            QoSSimulator(engine.runtime(config)).run_vectorized(
                engine.scenario(config)
            )
        finally:
            uninstall(log)
        assert not [ln for ln in lines if "qos_scalar_fallback" in ln]


class TestStoreFuzzKind:
    """Satellite: the store's fuzz kind (put/rows/entries/query/ls)."""

    def _entry(self, seed=1, invariant="conservation"):
        case = generate_case(seed)
        return {
            "seed": case.case_seed,
            "case": case.to_dict(),
            "original_case": None,
            "invariant": invariant,
            "detail": "synthetic",
            "violations": [{"invariant": invariant, "detail": "synthetic"}],
            "program_label": case.label,
        }

    def test_put_fuzz_round_trips(self, tmp_path):
        store = Store(tmp_path)
        key = store.put_fuzz(self._entry())
        assert key is not None and key.startswith("fuzz-")
        entries = store.fuzz_entries()
        assert len(entries) == 1
        assert entries[0]["key"] == key
        assert entries[0]["invariant"] == "conservation"
        assert FuzzCase.from_dict(entries[0]["case"]) == generate_case(1)

    def test_put_fuzz_is_idempotent(self, tmp_path):
        store = Store(tmp_path)
        assert store.put_fuzz(self._entry()) == store.put_fuzz(self._entry())
        assert len(store.fuzz_entries()) == 1

    def test_put_fuzz_validates_entry(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fuzz entry"):
            Store(tmp_path).put_fuzz({"invariant": "conservation"})
        with pytest.raises(ConfigurationError, match="fuzz entry"):
            Store(tmp_path).put_fuzz({"case": generate_case(1).to_dict()})

    def test_query_kind_fuzz_lists_entries(self, tmp_path):
        store = Store(tmp_path)
        store.put_fuzz(self._entry(1))
        store.put_fuzz(self._entry(2, invariant="determinism"))
        entries = store.query(kind="fuzz")
        assert len(entries) == 2
        assert [e["key"] for e in entries] == sorted(e["key"] for e in entries)
        only = store.query(
            kind="fuzz",
            predicate=lambda e: e["invariant"] == "determinism",
        )
        assert len(only) == 1
        assert store.query(kind="fuzz", limit=1) == entries[:1]

    def test_query_kind_fuzz_rejects_axes(self, tmp_path):
        with pytest.raises(ConfigurationError, match="axis"):
            Store(tmp_path).query(kind="fuzz", arch="HH-PIM")

    def test_default_query_skips_fuzz_entries(self, tmp_path):
        store = Store(tmp_path)
        store.put_fuzz(self._entry())
        assert len(store.query()) == 0

    def test_fuzz_rows_summarize(self, tmp_path):
        store = Store(tmp_path)
        store.put_fuzz(self._entry(7))
        rows = store.fuzz_rows()
        assert len(rows) == 1
        case = generate_case(7)
        assert rows[0]["seed"] == case.case_seed
        assert rows[0]["arch"] == case.arch
        assert rows[0]["slices"] == case.slices

    def test_info_counts_fuzz_entries(self, tmp_path):
        store = Store(tmp_path)
        store.put_fuzz(self._entry())
        assert store.info()["by_kind"]["fuzz"] == 1

    def test_render_store_lists_fuzz(self, tmp_path):
        from repro.analysis.sweeps import render_store

        store = Store(tmp_path)
        store.put_fuzz(self._entry())
        out = render_store(store, kind="fuzz")
        assert "Invariant" in out
        assert "conservation" in out
        assert "repro fuzz --replay" in out

    def test_render_store_empty_fuzz(self, tmp_path):
        from repro.analysis.sweeps import render_store

        out = render_store(Store(tmp_path), kind="fuzz")
        assert "no stored fuzz regressions" in out


class TestStoredRegressionReplay:
    """Tier-1 auto-replay: persisted fuzz regressions must stay green.

    The session store is isolated by conftest, so this replays exactly
    the regressions persisted by the machine's (or CI job's) store —
    any entry a fuzz run has filed must pass here before a change
    ships.
    """

    def test_stored_regressions_replay_clean(self, engine):
        reports = replay_stored(Store(), engine)
        failures = [report for report in reports if report.failed]
        assert failures == [], (
            "stored fuzz regressions still failing: "
            + ", ".join(
                f"{report.store_key} ({report.violations[0].invariant})"
                for report in failures
            )
        )
