"""Unit tests for the PIM ISA (encoding, instructions, queue, assembler)."""

import pytest

from repro.errors import (
    AssemblerError,
    DecodingError,
    EncodingError,
    QueueEmptyError,
    QueueFullError,
)
from repro.isa import (
    BROADCAST_MODULE,
    Category,
    ClusterId,
    Compute,
    ComputeOp,
    Config,
    ConfigOp,
    GateTarget,
    Halt,
    InstructionQueue,
    LoadOperands,
    Move,
    StoreResult,
    Sync,
    assemble,
    assemble_line,
    decode,
    decode_word,
    disassemble,
    encode_fields,
)

ALL_INSTRUCTIONS = [
    Compute(ClusterId.HP, 0, op=ComputeOp.MAC, count=123),
    Compute(ClusterId.LP, 3, op=ComputeOp.CLEAR, count=0),
    Compute(ClusterId.HP, BROADCAST_MODULE, op=ComputeOp.EMIT, count=0),
    LoadOperands(ClusterId.LP, 1, mram_count=17, sram_count=1000),
    StoreResult(ClusterId.HP, 2, address=0xFFFFF),
    Move(ClusterId.HP, 0, dst_module=3, block=200, count=16),
    Sync(ClusterId.LP, BROADCAST_MODULE),
    Config(ClusterId.HP, 1, op=ConfigOp.GATE_OFF, target=GateTarget.SRAM),
    Config(ClusterId.LP, 2, op=ConfigOp.GATE_ON, target=GateTarget.ALL),
    Halt(ClusterId.HP, 0),
]


class TestEncoding:
    @pytest.mark.parametrize("instruction", ALL_INSTRUCTIONS,
                             ids=lambda i: type(i).__name__ + str(i.module))
    def test_roundtrip(self, instruction):
        assert decode(instruction.encode()) == instruction

    def test_word_is_32bit(self):
        for instruction in ALL_INSTRUCTIONS:
            assert 0 <= instruction.encode() < 2**32

    def test_field_overflow_rejected(self):
        with pytest.raises(EncodingError):
            encode_fields(Category.COMPUTE, ClusterId.HP, 16, 0, 0)

    def test_immediate_overflow_rejected(self):
        with pytest.raises(EncodingError):
            Compute(ClusterId.HP, 0, count=1 << 20).encode()

    def test_load_count_overflow(self):
        with pytest.raises(EncodingError):
            LoadOperands(ClusterId.HP, 0, mram_count=1024).encode()

    def test_unknown_category_rejected(self):
        word = encode_fields(Category.HALT, ClusterId.HP, 0, 0, 0)
        bad = (word & ~(0x7 << 29)) | (0x7 << 29)
        with pytest.raises(DecodingError):
            decode(bad)

    def test_decode_word_fields(self):
        word = Compute(ClusterId.LP, 5, count=42).encode()
        fields = decode_word(word)
        assert fields["cluster"] is ClusterId.LP
        assert fields["module"] == 5
        assert fields["immediate"] == 42

    def test_oversized_word_rejected(self):
        with pytest.raises(DecodingError):
            decode_word(2**32)

    def test_move_targets_opposite_cluster(self):
        move = Move(ClusterId.HP, 0, dst_module=1)
        assert move.dst_cluster is ClusterId.LP
        assert ClusterId.LP.other is ClusterId.HP


class TestQueue:
    def test_fifo_order(self):
        queue = InstructionQueue(depth=4)
        queue.push(Sync(ClusterId.HP, 0))
        queue.push(Halt(ClusterId.HP, 0))
        assert isinstance(queue.pop(), Sync)
        assert isinstance(queue.pop(), Halt)

    def test_full_rejects(self):
        queue = InstructionQueue(depth=1)
        queue.push(Sync(ClusterId.HP, 0))
        with pytest.raises(QueueFullError):
            queue.push(Sync(ClusterId.HP, 0))

    def test_empty_rejects(self):
        with pytest.raises(QueueEmptyError):
            InstructionQueue().pop()

    def test_invalid_word_rejected_at_push(self):
        queue = InstructionQueue()
        with pytest.raises(DecodingError):
            queue.push_word(0xFFFFFFFF)

    def test_peek_does_not_remove(self):
        queue = InstructionQueue()
        queue.push(Sync(ClusterId.LP, 2))
        assert isinstance(queue.peek(), Sync)
        assert len(queue) == 1

    def test_counters(self):
        queue = InstructionQueue()
        queue.push(Sync(ClusterId.HP, 0))
        queue.pop()
        assert queue.total_pushed == 1
        assert queue.total_popped == 1

    def test_clear(self):
        queue = InstructionQueue()
        queue.push(Sync(ClusterId.HP, 0))
        queue.clear()
        assert queue.empty


class TestAssembler:
    def test_assemble_program(self):
        program = assemble(
            """
            # setup
            load    hp.0  mram=16 sram=16
            mac     hp.0  count=32
            emit    hp.0
            store   hp.0  addr=0x100
            move    hp.0  dst=2 block=5 count=8
            sync    hp.*
            gate_off lp.1 target=sram
            halt    hp.0
            """
        )
        assert len(program) == 8
        assert isinstance(program[0], LoadOperands)
        assert program[1].count == 32
        assert program[5].module == BROADCAST_MODULE

    def test_blank_and_comment_lines(self):
        assert assemble_line("") is None
        assert assemble_line("# only a comment") is None
        assert assemble_line("   ; semicolon comment") is None

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError):
            assemble_line("frobnicate hp.0", 3)

    def test_unknown_cluster(self):
        with pytest.raises(AssemblerError):
            assemble_line("mac xx.0", 1)

    def test_missing_target(self):
        with pytest.raises(AssemblerError):
            assemble_line("mac", 1)

    def test_unexpected_operand(self):
        with pytest.raises(AssemblerError):
            assemble_line("sync hp.0 bogus=1", 1)

    def test_bad_integer(self):
        with pytest.raises(AssemblerError):
            assemble_line("mac hp.0 count=banana", 1)

    def test_bad_gate_target(self):
        with pytest.raises(AssemblerError):
            assemble_line("gate_on hp.0 target=warp", 1)

    def test_hex_operands(self):
        instruction = assemble_line("store lp.3 addr=0xff")
        assert instruction.address == 0xFF

    @pytest.mark.parametrize("instruction", ALL_INSTRUCTIONS,
                             ids=lambda i: type(i).__name__ + str(i.module))
    def test_disassemble_reassemble_roundtrip(self, instruction):
        text = disassemble(instruction)
        again = assemble_line(text)
        assert again == instruction
