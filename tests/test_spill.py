"""Spill-mode sweeps: bounded memory, byte-identical exports.

``Engine.run_many(spill=True)`` streams completed records into the
experiment store chunk by chunk and hands back a
:class:`StoredResultSet` that re-reads them on demand, so a
thousands-of-configs sweep never holds more than a chunk of records in
memory.  The contract under test: the spilled path is *indistinguishable*
from the in-memory path (same records, byte-identical JSON/CSV exports)
while its peak allocation stays bounded.
"""

import tracemalloc

import pytest

from repro.api import Engine, ExperimentConfig, ResultSet, StoredResultSet
from repro.errors import ConfigurationError
from repro.store import Store

#: The sweep grid: 1000 configs over seeds x scenarios x peaks, all at
#: one tiny resolution so a single LUT serves every run.
GRID_SIZE = 1000


@pytest.fixture(scope="module")
def grid():
    base = ExperimentConfig(slices=8, block_count=16, time_steps=1500)
    configs = base.sweep(
        seed=list(range(250)), scenario=["case1", "case2"], peak=[2, 3]
    )
    assert len(configs) == GRID_SIZE
    return configs


@pytest.fixture(scope="module")
def engine():
    return Engine(use_disk_cache=False)


@pytest.fixture(scope="module")
def in_memory(engine, grid):
    return engine.run_many(grid)


@pytest.fixture(scope="module")
def spilled(engine, grid, tmp_path_factory):
    store = Store(tmp_path_factory.mktemp("spill-store"))
    return engine.run_many(grid, store=store, spill=True)


class TestEquivalence:
    def test_returns_stored_result_set(self, spilled, grid):
        assert isinstance(spilled, StoredResultSet)
        assert len(spilled) == len(grid)
        assert spilled.configs == grid

    def test_records_match_in_memory(self, spilled, in_memory):
        # lut_cached is provenance (the spilled pass ran on a warm
        # engine) — the experiment outcome must match exactly.
        for stored, computed in zip(spilled, in_memory.records):
            assert stored.config == computed.config
            assert stored.result == computed.result

    def test_json_export_byte_identical(self, spilled, in_memory):
        assert spilled.to_json() == in_memory.to_json()

    def test_csv_export_byte_identical(self, spilled, in_memory,
                                       tmp_path):
        mem_csv = tmp_path / "memory.csv"
        spill_csv = tmp_path / "spill.csv"
        in_memory.to_csv(mem_csv)
        spilled.to_csv(spill_csv)
        assert spill_csv.read_bytes() == mem_csv.read_bytes()

    def test_result_set_api_works_streamed(self, spilled, in_memory):
        assert spilled.total_energy_nj == in_memory.total_energy_nj
        assert spilled.best().config == in_memory.best().config
        agg_mem = in_memory.aggregate(by="scenario")
        assert spilled.aggregate(by="scenario") == agg_mem
        case1 = spilled.filter(scenario="case1")
        assert isinstance(case1, ResultSet)
        assert len(case1) == GRID_SIZE // 2

    def test_slicing_stays_lazy_and_add_materialises(self, spilled,
                                                     in_memory):
        head = spilled[:10]
        assert isinstance(head, StoredResultSet)
        assert len(head) == 10
        assert head[0].result == in_memory.records[0].result
        combined = spilled[:5] + spilled[5:10]
        assert isinstance(combined, ResultSet)
        assert [r.result for r in combined.records] == [
            r.result for r in in_memory.records[:10]
        ]


class TestBoundedMemory:
    def test_peak_allocation_bounded(self, engine, grid, tmp_path):
        """Spilling must not scale peak memory with the grid size.

        The in-memory pass holds all 1000 records at once; the spilled
        pass at most :attr:`Engine.SPILL_CHUNK`.  Measured peaks differ
        ~9x here; asserting 2x keeps the test robust while still
        failing if spill ever accumulates records.
        """
        engine.run_many(grid[:4])  # warm the LUT outside the window

        tracemalloc.start()
        in_memory = engine.run_many(grid)
        _, peak_in_memory = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del in_memory

        store = Store(tmp_path / "bounded")
        tracemalloc.start()
        engine.run_many(grid, store=store, spill=True)
        _, peak_spilled = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert peak_spilled < peak_in_memory / 2


class TestStoreInteraction:
    def test_spill_requires_store(self, engine, grid):
        with pytest.raises(ConfigurationError, match="needs an experiment"):
            engine.run_many(grid[:2], spill=True)

    def test_resume_serves_stored_without_recompute(self, engine, grid,
                                                    spilled):
        runs_before = engine.stats.runs
        again = engine.run_many(
            grid, store=spilled.store, resume=True, spill=True
        )
        assert engine.stats.runs == runs_before
        assert tuple(again) == tuple(spilled)

    def test_cleared_store_raises_on_access(self, engine, grid,
                                            tmp_path):
        store = Store(tmp_path / "cleared")
        results = engine.run_many(grid[:8], store=store, spill=True)
        store.clear()
        with pytest.raises(ConfigurationError,
                           match="spilled record missing"):
            results[0]
