"""Differential suite: vectorized DP/combine ≡ the scalar reference.

The vectorized production path must be *bit-identical* to the scalar
per-element translation of the paper's recurrences — same ``dp`` and
``count`` tables, same allocation-state rows, same chosen
:class:`~repro.core.lut.Placement` rows — across randomized spaces,
budgets and capacities.  ``REPRO_SCALAR_DP=1`` (or the :func:`scalar_dp`
context manager) selects the reference.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.arch import HH_PIM, HYBRID_PIM
from repro.core.combine import set_allocation_state, unique_allocation_rows
from repro.core.knapsack import (
    dp_build_count,
    knapsack_min_energy,
    scalar_dp,
    use_scalar_dp,
)
from repro.core.placement import DataPlacementOptimizer
from repro.core.spaces import SpaceKind, StorageSpace
from repro.workloads import EFFICIENTNET_B0


def make_space(kind, t, e, capacity):
    return StorageSpace(
        kind=kind,
        time_per_block_ns=t,
        dynamic_energy_per_block_nj=e,
        hold_static_energy_per_block_nj=0.0,
        access_static_energy_per_block_nj=0.0,
        capacity_blocks=capacity,
        full_static_power_mw=1.0,
        volatile=False,
    )


def random_instance(rng, kinds):
    """A randomized cluster: spaces with mixed bounded/unbounded caps."""
    spaces = [
        make_space(
            kind,
            t=rng.uniform(0.4, 9.0),
            e=rng.uniform(0.1, 25.0),
            capacity=rng.choice([1, 2, 3, 5, 8, 1000]),
        )
        for kind in kinds[: rng.randint(1, len(kinds))]
    ]
    t_steps = rng.randint(4, 70)
    max_blocks = rng.randint(2, 14)
    return spaces, t_steps, max_blocks


class TestKnapsackDifferential:
    @pytest.mark.parametrize("seed", range(12))
    def test_randomized_tables_bit_identical(self, seed):
        rng = random.Random(1000 + seed)
        kinds = [SpaceKind.HP_MRAM, SpaceKind.HP_SRAM, SpaceKind.LP_MRAM,
                 SpaceKind.LP_SRAM]
        spaces, t_steps, max_blocks = random_instance(rng, kinds)
        fast = knapsack_min_energy(
            spaces, t_steps=t_steps, max_blocks=max_blocks, time_step_ns=1.0
        )
        with scalar_dp():
            ref = knapsack_min_energy(
                spaces, t_steps=t_steps, max_blocks=max_blocks,
                time_step_ns=1.0,
            )
        assert np.array_equal(fast.dp, ref.dp)
        assert np.array_equal(fast.count, ref.count)

    def test_environment_variable_selects_scalar(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_DP", "1")
        assert use_scalar_dp()
        monkeypatch.setenv("REPRO_SCALAR_DP", "0")
        assert not use_scalar_dp()

    def test_context_manager_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_DP", "1")
        with scalar_dp(False):
            assert not use_scalar_dp()
        assert use_scalar_dp()

    def test_build_counter_increments_per_table(self):
        spaces = [make_space(SpaceKind.HP_SRAM, 1.0, 1.0, 1000)]
        before = dp_build_count()
        knapsack_min_energy(spaces, t_steps=5, max_blocks=2, time_step_ns=1.0)
        knapsack_min_energy(spaces, t_steps=5, max_blocks=2, time_step_ns=1.0)
        assert dp_build_count() == before + 2


class TestCombineDifferential:
    def tables(self, seed):
        rng = random.Random(seed)
        hp_spaces, t_steps, max_blocks = random_instance(
            rng, [SpaceKind.HP_MRAM, SpaceKind.HP_SRAM]
        )
        lp_spaces = [
            make_space(
                kind,
                t=rng.uniform(0.4, 9.0),
                e=rng.uniform(0.1, 25.0),
                capacity=rng.choice([2, 4, 1000]),
            )
            for kind in (SpaceKind.LP_MRAM, SpaceKind.LP_SRAM)
        ]
        hp = knapsack_min_energy(
            hp_spaces, t_steps=t_steps, max_blocks=max_blocks,
            time_step_ns=1.0,
        )
        lp = knapsack_min_energy(
            lp_spaces, t_steps=t_steps, max_blocks=max_blocks,
            time_step_ns=1.0,
        )
        return hp, lp, max_blocks

    @pytest.mark.parametrize("seed", range(8))
    def test_two_cluster_rows_identical(self, seed):
        hp, lp, blocks = self.tables(2000 + seed)
        fast = set_allocation_state(hp, lp, blocks)
        with scalar_dp():
            ref = set_allocation_state(hp, lp, blocks)
        assert fast == ref

    @pytest.mark.parametrize("seed", range(4))
    def test_single_cluster_rows_identical(self, seed):
        hp, _, blocks = self.tables(3000 + seed)
        fast = set_allocation_state(hp, None, blocks)
        with scalar_dp():
            ref = set_allocation_state(hp, None, blocks)
        assert fast == ref

    @pytest.mark.parametrize("seed", range(4))
    def test_unique_rows_are_first_occurrences(self, seed):
        hp, lp, blocks = self.tables(4000 + seed)
        unique = unique_allocation_rows(hp, lp, blocks)
        rows = set_allocation_state(hp, lp, blocks)
        seen = {}
        for row in rows:
            if row is None:
                continue
            key = tuple(sorted((k.value, v) for k, v in row.counts.items()))
            seen.setdefault(key, row)
        assert unique == list(seen.values())


class TestPlacementDifferential:
    @pytest.fixture(scope="class")
    def optimizer(self):
        return DataPlacementOptimizer(
            HH_PIM, EFFICIENTNET_B0, t_slice_ns=3.3e7,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )

    def test_lut_candidates_identical(self, optimizer):
        fast = optimizer.build_lut()
        with scalar_dp():
            ref = optimizer.build_lut()
        assert fast.candidates == ref.candidates

    def test_restricted_lut_identical(self, optimizer):
        mram = [SpaceKind.HP_MRAM, SpaceKind.LP_MRAM]
        fast = optimizer.build_lut(restrict_to=mram)
        with scalar_dp():
            ref = optimizer.build_lut(restrict_to=mram)
        assert fast.candidates == ref.candidates

    def test_single_cluster_architecture_identical(self):
        optimizer = DataPlacementOptimizer(
            HYBRID_PIM, EFFICIENTNET_B0, t_slice_ns=3.3e7,
            block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS,
        )
        fast = optimizer.build_lut()
        with scalar_dp():
            ref = optimizer.build_lut()
        assert fast.candidates == ref.candidates
