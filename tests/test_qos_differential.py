"""The zero-queueing differential: QoS simulator == fleet runtime.

With capacity well above load and ``batch=1``, the request-level
simulator must degenerate *exactly* to :class:`repro.serving.fleet.Fleet`:
same per-device :class:`~repro.core.runtime.SliceRecord` streams (bit for
bit — placement, movement, every energy term), same per-slice energy and
completed-request totals.  This anchors every QoS metric to the paper's
energy model the same way the scalar/vectorized differentials anchor the
fast paths.
"""

import pytest

from _shared import SMALL_BLOCKS, SMALL_STEPS
from repro.api import Engine, ExperimentConfig
from repro.qos import QoSSimulator
from repro.serving import BUILTIN_POLICIES, Fleet
from repro.workloads import ALL_CASES, scenario

TINY = dict(block_count=SMALL_BLOCKS, time_steps=SMALL_STEPS)

#: Fleet shapes the differential covers: the single device (the paper's
#: runtime) and a small fleet.
SHAPES = (1, 3)


@pytest.fixture(scope="module")
def engine():
    return Engine(use_disk_cache=False)


@pytest.fixture(scope="module")
def hh_runtime(engine):
    return engine.runtime(ExperimentConfig(**TINY))


@pytest.mark.parametrize("case", ALL_CASES, ids=lambda c: f"case{c.value}")
@pytest.mark.parametrize("devices", SHAPES)
def test_zero_queueing_matches_fleet(hh_runtime, case, devices):
    """Six Fig. 4 presets on HH-PIM: records equal, record for record."""
    workload = scenario(case, slices=20)
    fleet = Fleet([hh_runtime] * devices, dispatch="round_robin")
    fleet_result = fleet.run(workload)
    # the zero-queueing precondition: the fleet absorbs every slice
    assert fleet_result.deadlines_met

    qos = QoSSimulator(
        hh_runtime, devices=devices, dispatch="round_robin", batch=1
    ).run(workload)

    # record-for-record equality, device by device
    for device in range(devices):
        expected = list(fleet_result.device_results[device].records)
        assert qos.device_records[device] == expected

    # per-slice energy and completed totals match the fleet aggregates
    for index, stats in enumerate(qos.slices):
        slice_energy = sum(
            run.records[index].total_energy_nj
            for run in fleet_result.device_results
        )
        slice_tasks = sum(
            run.records[index].tasks_processed
            for run in fleet_result.device_results
        )
        assert stats.energy_nj == slice_energy
        assert stats.completed == slice_tasks

    assert len(qos.slices) == len(workload)  # no drain windows
    assert qos.completed == fleet_result.total_inferences
    assert qos.unfinished == 0
    # run totals: bit-identical when summed in the same (slice-major)
    # order; the fleet's device-major total differs only by float
    # summation order.
    slice_major_total = sum(
        sum(
            run.records[index].total_energy_nj
            for run in fleet_result.device_results
        )
        for index in range(len(workload))
    )
    assert qos.total_energy_nj == slice_major_total
    assert qos.total_energy_nj == pytest.approx(
        fleet_result.total_energy_nj, rel=1e-12
    )
    # zero queueing: every request inside the paper's 2T staging bound
    assert qos.deadline_miss_rate == 0.0
    assert qos.slo_attainment == 1.0


@pytest.mark.parametrize("dispatch", sorted(BUILTIN_POLICIES))
def test_differential_holds_for_every_dispatch(hh_runtime, dispatch):
    """The record equality is dispatch-agnostic (same policy both sides)."""
    workload = scenario(ALL_CASES[2], slices=15)
    fleet_result = Fleet([hh_runtime] * 3, dispatch=dispatch).run(workload)
    qos = QoSSimulator(hh_runtime, devices=3, dispatch=dispatch).run(workload)
    for device in range(3):
        assert (
            qos.device_records[device]
            == list(fleet_result.device_results[device].records)
        )


def test_differential_on_second_architecture(engine):
    """At least one more Table I architecture (fixed-policy path)."""
    runtime = engine.runtime(ExperimentConfig(arch="Hybrid-PIM", **TINY))
    workload = scenario(ALL_CASES[4], slices=15)
    fleet_result = Fleet([runtime] * 2).run(workload)
    qos = QoSSimulator(runtime, devices=2).run(workload)
    for device in range(2):
        assert (
            qos.device_records[device]
            == list(fleet_result.device_results[device].records)
        )
    assert qos.total_energy_nj == fleet_result.total_energy_nj


def test_engine_run_qos_matches_run_fleet(engine):
    """The engine-level differential: config in, identical records out."""
    config = ExperimentConfig(scenario="case3", fleet=2, slices=12, **TINY)
    fleet_result = engine.run_fleet(config)
    qos = engine.run_qos(config)
    for device in range(2):
        assert (
            qos.device_records[device]
            == list(fleet_result.device_results[device].records)
        )
