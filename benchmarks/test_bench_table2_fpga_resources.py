"""Table II — FPGA prototype resource utilisation."""

from repro.arch import HH_PIM
from repro.fpga import estimate_processor, table_ii_report

from _artifacts import write_artifact

#: (LUTs, FFs, BRAMs, DSPs) per Table II row.
PAPER_ROWS = {
    "RISC-V Rocket Core": (14_998, 9_762, 12, 4),
    "Peripherals": (4_704, 7_159, 0, 0),
    "System Interconnect": (5_237, 7_720, 0, 0),
    "HP-PIM Module": (968, 1_055, 32, 2),
    "HP-PIM Module Controller": (2_823, 875, 0, 0),
    "Total (HP-PIM module cluster)": (6_951, 5_460, 128, 8),
    "LP-PIM Module": (1_074, 1_094, 32, 2),
    "LP-PIM Module Controller": (2_149, 875, 0, 0),
    "Total (LP-PIM module cluster)": (6_680, 5_616, 128, 8),
}


def test_table2_reproduction(benchmark):
    report = benchmark.pedantic(table_ii_report, rounds=3, iterations=1)
    text = report.render()
    write_artifact("table2.txt", text)
    print("\n" + text)
    for name, resources in report.rows:
        expected = PAPER_ROWS[name]
        got = (resources.luts, resources.ffs, resources.brams, resources.dsps)
        assert got == expected, name


def test_full_processor_estimate(benchmark):
    report = benchmark(estimate_processor, HH_PIM)
    total = report.total
    # Core + both clusters; totals consistent with the itemised rows.
    assert total.luts == 14_998 + 4_704 + 5_237 + 6_951 + 6_680
    assert total.brams == 12 + 128 + 128
    assert total.dsps == 4 + 8 + 8
