"""Table III — latency comparison of HP-PIM and LP-PIM modules.

The values are *derived* through the NVSim-style estimator (technology
fit -> macro estimate), not transcribed, so this bench exercises the
whole memory-model chain.
"""

import pytest

from repro.analysis import TextTable
from repro.memory import NvSimModel, PE_45NM, SRAM_45NM, STT_MRAM_45NM
from repro.memory.technology import HP_VDD, LP_VDD

from _artifacts import write_artifact

PAPER = {
    # cluster: (mram_r, mram_w, sram_r, sram_w, pe)
    "HP-PIM (Vdd=1.2V)": (2.62, 11.81, 1.12, 1.12, 5.52),
    "LP-PIM (Vdd=0.8V)": (2.96, 14.65, 1.41, 1.41, 10.68),
}


def derive_table_iii():
    rows = {}
    for label, vdd in (("HP-PIM (Vdd=1.2V)", HP_VDD), ("LP-PIM (Vdd=0.8V)", LP_VDD)):
        mram = NvSimModel(STT_MRAM_45NM).estimate(64 * 1024, vdd)
        sram = NvSimModel(SRAM_45NM).estimate(64 * 1024, vdd)
        rows[label] = (
            mram.timing.read_ns, mram.timing.write_ns,
            sram.timing.read_ns, sram.timing.write_ns,
            PE_45NM.mac_latency(vdd),
        )
    return rows


def test_table3_reproduction(benchmark):
    rows = benchmark.pedantic(derive_table_iii, rounds=3, iterations=1)
    table = TextTable(["Latency (ns)", "MRAM Read", "MRAM Write",
                       "SRAM Read", "SRAM Write", "PE"])
    for label, values in rows.items():
        table.add_row(label, *[round(v, 2) for v in values])
    text = table.render()
    write_artifact("table3.txt", text)
    print("\n" + text)
    for label, expected in PAPER.items():
        for got, want in zip(rows[label], expected):
            assert got == pytest.approx(want, abs=1e-6)


def test_latency_shape_across_voltage(benchmark):
    """Sweep beyond the published points: latency grows monotonically as
    Vdd drops, for every component."""
    def sweep():
        voltages = [1.2, 1.1, 1.0, 0.9, 0.8]
        return {
            "mram": [STT_MRAM_45NM.read_latency(v) for v in voltages],
            "sram": [SRAM_45NM.read_latency(v) for v in voltages],
            "pe": [PE_45NM.mac_latency(v) for v in voltages],
        }
    curves = benchmark(sweep)
    for name, series in curves.items():
        assert series == sorted(series), name
