"""Benchmark artifact output, importable absolutely.

Benchmark modules import this with ``from _artifacts import
write_artifact`` (the benchmarks directory is on ``sys.path`` under
pytest's rootdir-style collection); relative imports like ``from
.conftest import ...`` break because the directory is not a package.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure next to the benchmarks."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n")
