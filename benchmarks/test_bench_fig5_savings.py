"""Fig. 5 — energy savings of HH-PIM over every baseline, all scenarios.

Regenerates the full grid (3 models x 6 cases x 4 architectures, 50 time
slices each) and asserts the paper's qualitative shape:

* HH-PIM saves energy against every baseline in (almost) every cell;
* Case 1 (constant low) is the best case, Case 2 (constant high) the worst;
* in Case 2 the margin over Heterogeneous-PIM nearly vanishes (paper: 3.72%);
* savings vs Baseline-PIM exceed savings vs Heterogeneous-PIM on average;
* ResNet-18 achieves the largest savings vs Baseline-PIM among the models.
"""

from repro.analysis import average_savings, render_fig5
from repro.analysis.savings import BASELINE_NAMES
from repro.workloads import ScenarioCase

from _artifacts import write_artifact

#: Paper reference points (EfficientNet-family headline numbers).
PAPER_CASE1 = {"Baseline-PIM": 0.8623, "Heterogeneous-PIM": 0.787,
               "Hybrid-PIM": 0.665}
PAPER_AVG = {"Baseline-PIM": 0.6043, "Heterogeneous-PIM": 0.363,
             "Hybrid-PIM": 0.4858}


def test_fig5_reproduction(savings_grid, benchmark):
    grid = benchmark.pedantic(lambda: savings_grid, rounds=1, iterations=1)
    text = render_fig5(grid)
    write_artifact("fig5.txt", text)
    print("\n" + text)

    # (a) HH-PIM wins everywhere (tolerance for the near-tie of Case 2
    # vs Heterogeneous-PIM, the paper's 3.72 % cell).
    for cell in grid.cells:
        for name in BASELINE_NAMES:
            floor = -0.02 if (
                cell.case is ScenarioCase.HIGH_CONSTANT
                and name == "Heterogeneous-PIM"
            ) else 0.0
            assert cell.savings[name] > floor, (cell.model, cell.case, name)

    # (b) Case 1 best / Case 2 worst for every model, vs Baseline.
    for model in grid.models():
        by_case = {
            case: grid.cell(model, case).savings["Baseline-PIM"]
            for case in grid.cases()
        }
        assert by_case[ScenarioCase.LOW_CONSTANT] == max(by_case.values())
        assert by_case[ScenarioCase.HIGH_CONSTANT] == min(by_case.values())

    # (c) Case 2 margin over Hetero-PIM nearly vanishes (paper: 3.72 %) —
    # at full load HH-PIM is forced into the same SRAM placements the
    # heterogeneous design uses.  Models with a larger non-PIM share
    # (MobileNetV2) retain some PIM slack, so we assert the near-tie on
    # the tightest model and a moderate bound on the rest.
    margins = {
        model: grid.cell(model, ScenarioCase.HIGH_CONSTANT).savings[
            "Heterogeneous-PIM"
        ]
        for model in grid.models()
    }
    assert min(margins.values()) < 0.10
    assert all(margin < 0.35 for margin in margins.values())

    # (d) Average ordering matches the paper's headline.
    averages = average_savings(grid)
    print("average savings:", {k: f"{v:.1%}" for k, v in averages.items()})
    print("paper averages: ", {k: f"{v:.1%}" for k, v in PAPER_AVG.items()})
    # Baseline-PIM is the weakest comparison point, as in the paper.
    assert averages["Baseline-PIM"] > averages["Hybrid-PIM"]
    assert averages["Baseline-PIM"] > averages["Heterogeneous-PIM"]
    # Magnitudes within 15 percentage points of the paper.  (The paper's
    # Hybrid-vs-Hetero ordering is not asserted: our Hetero margin runs a
    # few points above the published one — see EXPERIMENTS.md.)
    for name, value in PAPER_AVG.items():
        assert abs(averages[name] - value) < 0.15, name

    # (e) ResNet-18 shows the largest baseline savings (paper: "HH-PIM
    # achieved the highest energy savings over the baseline in ResNet-18").
    per_model = {
        model: sum(
            grid.cell(model, case).savings["Baseline-PIM"]
            for case in grid.cases()
        )
        for model in grid.models()
    }
    assert per_model["ResNet-18"] == max(per_model.values())


def test_case1_magnitudes(savings_grid, benchmark):
    cell = benchmark.pedantic(
        lambda: savings_grid.cell("EfficientNet-B0", ScenarioCase.LOW_CONSTANT),
        rounds=1, iterations=1,
    )
    print("Case 1 savings:", {k: f"{v:.1%}" for k, v in cell.savings.items()})
    print("paper:         ", {k: f"{v:.1%}" for k, v in PAPER_CASE1.items()})
    for name, value in PAPER_CASE1.items():
        assert abs(cell.savings[name] - value) < 0.20, name
