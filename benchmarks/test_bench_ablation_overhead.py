"""Ablation A2 — movement-overhead accounting and gating granularity.

Two design choices DESIGN.md calls out:

* the runtime folds placement-transition (data movement) overhead into
  ``t_constraint`` — this bench quantifies how much energy/time movement
  actually costs under the most reallocation-heavy scenario (pulsing);
* hold leakage is gated at sub-array granularity — this bench compares
  16 kB against whole-macro (64 kB) gating.
"""

from repro.analysis import TextTable
from repro.arch import HH_PIM
from repro.core import TimeSliceRuntime
from repro.core.runtime import (
    FINE_GRANULE_BYTES,
    MACRO_GRANULE_BYTES,
    default_time_slice_ns,
)
from repro.workloads import EFFICIENTNET_B0, ScenarioCase, scenario

from _artifacts import write_artifact


def test_movement_overhead_share(benchmark):
    def run():
        t_slice = default_time_slice_ns(EFFICIENTNET_B0)
        runtime = TimeSliceRuntime(HH_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice)
        return runtime, runtime.run(scenario(ScenarioCase.PULSING))
    runtime, result = benchmark.pedantic(run, rounds=1, iterations=1)

    movement_energy = sum(r.movement_energy_nj for r in result.records)
    movement_time = sum(r.movement.time_ns for r in result.records)
    total_energy = result.total_energy_nj
    total_time = runtime.t_slice_ns * len(result.records)
    blocks_moved = sum(r.movement.blocks_moved for r in result.records)

    table = TextTable(["metric", "value"])
    table.add_row("blocks moved (50 slices)", blocks_moved)
    table.add_row("movement energy share", f"{movement_energy / total_energy:.2%}")
    table.add_row("movement time share", f"{movement_time / total_time:.4%}")
    text = table.render()
    write_artifact("ablation_overhead.txt", text)
    print("\n" + text)

    # Pulsing forces repeated reallocation...
    assert blocks_moved > 0
    # ...yet the overhead stays marginal — which is exactly why the
    # paper's per-slice reallocation is viable.
    assert movement_energy / total_energy < 0.05
    assert movement_time / total_time < 0.01
    assert result.deadlines_met


def test_gating_granularity(benchmark):
    def run_both():
        t_slice = default_time_slice_ns(EFFICIENTNET_B0)
        results = {}
        for label, granule in (("16kB", FINE_GRANULE_BYTES),
                               ("64kB macro", MACRO_GRANULE_BYTES)):
            runtime = TimeSliceRuntime(
                HH_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice,
                granule_bytes=granule,
            )
            results[label] = runtime.run(
                scenario(ScenarioCase.HIGH_CONSTANT)
            ).total_energy_nj
        return results
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print("\nHH-PIM, Case 2 energy by gating granularity:", {
        k: f"{v / 1e6:.1f} mJ" for k, v in results.items()
    })
    # Finer gating can only help (less leakage held for the same placement).
    assert results["16kB"] <= results["64kB macro"] * 1.001
