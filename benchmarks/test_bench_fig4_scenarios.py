"""Fig. 4 — the six workload scenarios of the AI benchmark app."""

from repro.analysis import render_fig4
from repro.workloads import ALL_CASES, ScenarioCase, scenario

from _artifacts import write_artifact


def materialise():
    return [scenario(case, slices=50) for case in ALL_CASES]


def test_fig4_reproduction(benchmark):
    scenarios = benchmark.pedantic(materialise, rounds=3, iterations=1)
    text = render_fig4(scenarios)
    write_artifact("fig4.txt", text)
    print("\n" + text)
    by_case = {sc.case: sc for sc in scenarios}
    low = by_case[ScenarioCase.LOW_CONSTANT]
    high = by_case[ScenarioCase.HIGH_CONSTANT]
    assert set(low.loads) == {2}
    assert set(high.loads) == {10}
    # Spike cadence: case 4 spikes 2.5x as often as case 3.
    spikes3 = sum(1 for load in by_case[ScenarioCase.PERIODIC_SPIKE].loads
                  if load == 10)
    spikes4 = sum(1 for load in by_case[ScenarioCase.PERIODIC_SPIKE_FREQUENT].loads
                  if load == 10)
    assert spikes4 > 2 * spikes3
    # Pulsing alternates 5-slice blocks.
    pulsing = by_case[ScenarioCase.PULSING].loads
    assert pulsing[:5] == (10,) * 5 and pulsing[5:10] == (2,) * 5
    # Random is seeded/reproducible.
    assert by_case[ScenarioCase.RANDOM].loads == scenario(
        ScenarioCase.RANDOM, slices=50
    ).loads
