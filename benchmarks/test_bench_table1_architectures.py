"""Table I — developed specifications of the four PIM architectures."""

from repro.analysis import TextTable
from repro.arch import TABLE_I, PimFabric

from _artifacts import write_artifact


def render_table_i() -> str:
    table = TextTable(
        ["Architecture", "PIM Module Configuration", "Memory Types (per module)"]
    )
    for spec in TABLE_I:
        if spec.lp is None:
            modules = f"{spec.hp.module_count} HP-PIM"
        else:
            modules = (
                f"{spec.hp.module_count} HP-PIM + {spec.lp.module_count} LP-PIM"
            )
        mram = spec.hp.mram_capacity // 1024
        sram = spec.hp.sram_capacity // 1024
        memory = f"{sram}kB SRAM" if not mram else f"{mram}kB MRAM + {sram}kB SRAM"
        table.add_row(spec.name, modules, memory)
    return table.render()


def test_table1_reproduction(benchmark):
    text = benchmark.pedantic(render_table_i, rounds=3, iterations=1)
    write_artifact("table1.txt", text)
    print("\n" + text)
    assert "Baseline-PIM" in text and "HH-PIM" in text
    assert "64kB MRAM + 64kB SRAM" in text
    assert "128kB SRAM" in text
    # Every architecture instantiates cleanly into a fabric.
    for spec in TABLE_I:
        fabric = PimFabric(spec)
        assert sum(len(c) for c in fabric.clusters.values()) == 8


def test_fabric_construction_speed(benchmark):
    """Fabric instantiation is cheap enough for sweep tooling."""
    fabric = benchmark(PimFabric, TABLE_I[3])
    assert len(fabric.clusters) == 2
