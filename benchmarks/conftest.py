"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures at *full* resolution
(the default block count and time-step cap), unlike the unit tests.  The
expensive grid is computed once per session and shared; rendered artifacts
are written under ``benchmarks/output/`` for inspection.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import compute_savings_grid
from repro.core import DataPlacementOptimizer
from repro.core.runtime import default_time_slice_ns
from repro.arch import HH_PIM
from repro.workloads import EFFICIENTNET_B0

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def write_artifact(name: str, text: str) -> None:
    """Persist a rendered table/figure next to the benchmarks."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text + "\n")


@pytest.fixture(scope="session")
def savings_grid():
    """The full Fig. 5 grid: 3 models x 6 cases x 4 architectures."""
    return compute_savings_grid()


@pytest.fixture(scope="session")
def hh_effnet_lut():
    """Full-resolution HH-PIM LUT for EfficientNet-B0 (Fig. 6)."""
    t_slice = default_time_slice_ns(EFFICIENTNET_B0)
    optimizer = DataPlacementOptimizer(
        HH_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice
    )
    return optimizer, optimizer.build_lut()
