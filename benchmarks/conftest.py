"""Shared benchmark fixtures.

Benchmarks regenerate the paper's tables and figures at *full* resolution
(the default block count and time-step cap), unlike the unit tests.  The
expensive grid is computed once per session through the shared
:class:`repro.api.Engine` (so allocation LUTs are built exactly once per
(architecture, model) pair); rendered artifacts are written under
``benchmarks/output/`` for inspection.
"""

from __future__ import annotations

import pytest

from repro.analysis import compute_savings_grid
from repro.api import ExperimentConfig
from repro.api.engine import shared_engine
from repro.core.lutcache import temporary_cache_dir
from repro.store import temporary_store_dir


@pytest.fixture(scope="session", autouse=True)
def _isolated_lut_cache(tmp_path_factory):
    """Persistent LUT cache in a throwaway directory (hermetic runs)."""
    with temporary_cache_dir(tmp_path_factory.mktemp("lut-cache")):
        yield


@pytest.fixture(scope="session", autouse=True)
def _isolated_experiment_store(tmp_path_factory):
    """Default experiment store in a throwaway directory (hermetic runs)."""
    with temporary_store_dir(tmp_path_factory.mktemp("exp-store")):
        yield


@pytest.fixture(scope="session")
def savings_grid():
    """The full Fig. 5 grid: 3 models x 6 cases x 4 architectures."""
    return compute_savings_grid()


@pytest.fixture(scope="session")
def hh_effnet_lut():
    """Full-resolution HH-PIM LUT for EfficientNet-B0 (Fig. 6)."""
    runtime = shared_engine().runtime(
        ExperimentConfig(arch="HH-PIM", model="EfficientNet-B0")
    )
    return runtime.optimizer, runtime.lut
