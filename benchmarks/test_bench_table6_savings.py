"""Table VI — energy savings by HH-PIM for Cases 3-6.

The paper reports one number per (case, baseline); we average the three
models' cells, print the measured rows next to the published ones, and
assert the shape: all positive, and the vs-Baseline column dominates the
others in every case.
"""

from repro.analysis import TextTable, table_vi
from repro.analysis.savings import BASELINE_NAMES
from repro.workloads import ScenarioCase

from _artifacts import write_artifact

PAPER = {
    ScenarioCase.PERIODIC_SPIKE: (72.01, 55.78, 54.09),
    ScenarioCase.PERIODIC_SPIKE_FREQUENT: (61.46, 38.38, 47.60),
    ScenarioCase.PULSING: (48.94, 16.89, 42.10),
    ScenarioCase.RANDOM: (59.28, 34.14, 50.52),
}


def test_table6_reproduction(savings_grid, benchmark):
    rows = benchmark.pedantic(
        lambda: table_vi(savings_grid), rounds=1, iterations=1
    )
    table = TextTable(
        ["ES(%) over", "Baseline-PIM", "Hetero.-PIM", "H-PIM",
         "(paper B)", "(paper He)", "(paper H)"]
    )
    for case, savings in rows.items():
        paper = PAPER[case]
        table.add_row(
            f"Case {case.value}: {case.label}",
            round(savings["Baseline-PIM"] * 100, 2),
            round(savings["Heterogeneous-PIM"] * 100, 2),
            round(savings["Hybrid-PIM"] * 100, 2),
            paper[0], paper[1], paper[2],
        )
    text = table.render()
    write_artifact("table6.txt", text)
    print("\n" + text)

    for case, savings in rows.items():
        # Positive savings against every baseline in Cases 3-6.
        for name in BASELINE_NAMES:
            assert savings[name] > 0.0, (case, name)
        # vs Baseline dominates the other two columns (as in the paper).
        assert savings["Baseline-PIM"] >= savings["Heterogeneous-PIM"]
        assert savings["Baseline-PIM"] >= savings["Hybrid-PIM"]
        # Magnitudes within 20 percentage points of the published rows.
        paper = dict(zip(BASELINE_NAMES, PAPER[case]))
        for name in BASELINE_NAMES:
            assert abs(savings[name] * 100 - paper[name]) < 20, (case, name)

    # The pulsing case is the hardest of the four (smallest Hetero margin),
    # exactly as in the paper's Table VI.
    hetero = {case: savings["Heterogeneous-PIM"] for case, savings in rows.items()}
    assert hetero[ScenarioCase.PULSING] == min(hetero.values())
