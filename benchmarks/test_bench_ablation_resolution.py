"""Ablation A1 — LUT resolution limiting (the paper's 1 % rule).

The paper limits optimization resolution so that LUT construction stays
below 1 % of a time slice.  This bench sweeps the block count K and
measures (a) LUT construction cost and (b) how far the coarse peak drifts
from the fine-grained one — quantifying the accuracy/cost trade the rule
navigates.
"""

import time


from repro.analysis import TextTable
from repro.arch import HH_PIM
from repro.core import DataPlacementOptimizer
from repro.core.runtime import default_time_slice_ns
from repro.workloads import EFFICIENTNET_B0

from _artifacts import write_artifact

BLOCK_COUNTS = (15, 30, 60, 120, 240)


def build_at(block_count):
    t_slice = default_time_slice_ns(EFFICIENTNET_B0, block_count=block_count)
    optimizer = DataPlacementOptimizer(
        HH_PIM, EFFICIENTNET_B0, t_slice_ns=t_slice, block_count=block_count
    )
    start = time.perf_counter()
    lut = optimizer.build_lut()
    elapsed = time.perf_counter() - start
    return lut, elapsed


def test_resolution_sweep(benchmark):
    def sweep():
        return {k: build_at(k) for k in BLOCK_COUNTS}
    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    reference_peak = results[240][0].peak_placement.task_time_ns
    table = TextTable(["K (blocks)", "LUT build (s)", "peak task (ms)",
                       "peak drift vs K=240", "candidates"])
    for k in BLOCK_COUNTS:
        lut, elapsed = results[k]
        peak = lut.peak_placement.task_time_ns
        drift = abs(peak - reference_peak) / reference_peak
        table.add_row(k, round(elapsed, 2), round(peak / 1e6, 2),
                      f"{drift:.2%}", len(lut.candidates))
    text = table.render()
    write_artifact("ablation_resolution.txt", text)
    print("\n" + text)

    # Coarse grids stay within 10 % of the fine-grained peak; K>=60 within 5 %.
    for k in BLOCK_COUNTS:
        peak = results[k][0].peak_placement.task_time_ns
        drift = abs(peak - reference_peak) / reference_peak
        assert drift < (0.10 if k < 60 else 0.05), k

    # More blocks -> richer candidate sets (never poorer).
    candidate_counts = [len(results[k][0].candidates) for k in BLOCK_COUNTS]
    assert candidate_counts[-1] >= candidate_counts[0]


def test_one_percent_rule(benchmark):
    """At the default resolution, LUT construction costs well under 1 %
    of a time slice *budget-equivalent* — the paper's rule, interpreted
    for the host that would run initialization."""
    def build_default():
        return build_at(120)
    lut, elapsed = benchmark.pedantic(build_default, rounds=1, iterations=1)
    t_slice_s = default_time_slice_ns(EFFICIENTNET_B0) / 1e9
    print(f"LUT build {elapsed:.2f}s, time slice {t_slice_s * 100:.1f}s "
          f"per 100 slices")
    # Initialization is one-off; over the 50-slice benchmark horizon it
    # must stay below 1 % x 50 slices of wall budget.
    assert elapsed < 0.5 * t_slice_s * 50
    assert lut.peak_placement.task_time_ns > 0
