"""Table V — power consumption across memory types and PEs."""

import pytest

from repro.analysis import TextTable
from repro.energy import table_v_rows

from _artifacts import write_artifact

PAPER = {
    "HP-PIM": dict(mram_r=428.48, mram_w=133.78, mram_s=2.98,
                   sram_r=508.93, sram_w=500.0, sram_s=23.29,
                   pe_d=0.9, pe_s=0.48),
    "LP-PIM": dict(mram_r=179.05, mram_w=47.78, mram_s=0.84,
                   sram_r=177.3, sram_w=177.3, sram_s=5.45,
                   pe_d=0.51, pe_s=0.25),
}


def test_table5_reproduction(benchmark):
    rows = benchmark.pedantic(table_v_rows, rounds=3, iterations=1)
    table = TextTable(["Power (mW)", "MRAM R", "MRAM W", "MRAM static",
                       "SRAM R", "SRAM W", "SRAM static", "PE dyn", "PE static"])
    for row in rows:
        table.add_row(
            row.cluster,
            round(row.mram_read_mw, 2), round(row.mram_write_mw, 2),
            round(row.mram_static_mw, 2),
            round(row.sram_read_mw, 2), round(row.sram_write_mw, 2),
            round(row.sram_static_mw, 2),
            round(row.pe_dynamic_mw, 2), round(row.pe_static_mw, 2),
        )
    text = table.render()
    write_artifact("table5.txt", text)
    print("\n" + text)
    for row in rows:
        want = PAPER[row.cluster]
        assert row.mram_read_mw == pytest.approx(want["mram_r"], abs=1e-6)
        assert row.mram_write_mw == pytest.approx(want["mram_w"], abs=1e-6)
        assert row.mram_static_mw == pytest.approx(want["mram_s"], abs=1e-6)
        assert row.sram_read_mw == pytest.approx(want["sram_r"], abs=1e-6)
        assert row.sram_write_mw == pytest.approx(want["sram_w"], abs=1e-6)
        assert row.sram_static_mw == pytest.approx(want["sram_s"], abs=1e-6)
        assert row.pe_dynamic_mw == pytest.approx(want["pe_d"], abs=1e-9)
        assert row.pe_static_mw == pytest.approx(want["pe_s"], abs=1e-9)


def test_key_power_asymmetries(benchmark):
    """The asymmetries the placement algorithm exploits must hold:
    MRAM leaks far less than SRAM; LP dissipates less than HP."""
    hp, lp = benchmark(table_v_rows)
    assert hp.mram_static_mw < hp.sram_static_mw / 5
    assert lp.mram_static_mw < lp.sram_static_mw / 5
    assert lp.sram_read_mw < hp.sram_read_mw
    assert lp.pe_dynamic_mw < hp.pe_dynamic_mw
