"""Fig. 6 — memory utilisation and E_task across t_constraint.

Also covers ablation A3 (SRAM-for-weights vs MRAM-only peaks — the green
vs purple dots) and the paper's 43.17 % optimized-vs-unoptimized claim in
the long-t_constraint region.
"""

import pytest

from repro.analysis import fig6_series, render_fig6
from repro.arch import HH_PIM
from repro.core import DataPlacementOptimizer, SpaceKind
from repro.core.runtime import default_time_slice_ns
from repro.core.spaces import CORE_MAC_TIME_NS
from repro.workloads import TABLE_IV

from _artifacts import write_artifact


def test_fig6_reproduction(hh_effnet_lut, benchmark):
    optimizer, lut = hh_effnet_lut
    series = benchmark.pedantic(
        lambda: fig6_series(lut, points=120), rounds=1, iterations=1
    )
    text = render_fig6(lut, points=40)
    write_artifact("fig6.txt", text)
    print("\n" + text)

    # Peak point: SRAM of both clusters carries the weights, split close
    # to the paper's 16:9 (= 1.78) HP:LP ratio.
    peak = lut.peak_placement
    hp_sram = peak.count(SpaceKind.HP_SRAM)
    lp_sram = peak.count(SpaceKind.LP_SRAM)
    assert hp_sram > 0 and lp_sram > 0
    assert 1.4 < hp_sram / lp_sram < 2.3

    # E_task declines monotonically (quasi-linear with plateaus) and the
    # most relaxed region collapses onto LP-MRAM only, power-gating the rest.
    energies = [p.e_task_normalized for p in series]
    assert energies[0] == pytest.approx(1.0)
    assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))
    final = series[-1]
    assert final.utilization.get(SpaceKind.LP_MRAM, 0) == pytest.approx(1.0)

    # Optimized vs unoptimized in the relaxed region (paper: 43.17 %).
    window = lut.t_max_ns
    unoptimized = lut.peak_placement.task_energy_nj(window)
    optimized = lut.lookup(window, window_ns=window).task_energy_nj(window)
    reduction = 1 - optimized / unoptimized
    print(f"relaxed-region E_task reduction vs unoptimized: {reduction:.1%} "
          f"(paper: 43.17%)")
    assert reduction > 0.30


@pytest.mark.parametrize("model", TABLE_IV, ids=lambda m: m.name)
def test_peak_inference_times_match_paper(model, benchmark):
    """Green dot: 31.06 / 25.71 / 320.87 ms at 50 MHz."""
    def build():
        t_slice = default_time_slice_ns(model)
        optimizer = DataPlacementOptimizer(HH_PIM, model, t_slice_ns=t_slice)
        return optimizer.build_lut()
    lut = benchmark.pedantic(build, rounds=1, iterations=1)
    inference_ns = (lut.peak_placement.task_time_ns
                    + model.core_macs * CORE_MAC_TIME_NS)
    print(f"{model.name}: measured {inference_ns / 1e6:.2f} ms, "
          f"paper {model.peak_inference_ns / 1e6:.2f} ms")
    assert inference_ns == pytest.approx(model.peak_inference_ns, rel=0.03)


@pytest.mark.parametrize("model", TABLE_IV, ids=lambda m: m.name)
def test_mram_only_peak_is_slower(model, benchmark):
    """Purple dot (A3): storing weights in SRAM too beats MRAM-only.

    The paper measures a 1.43x gap; our operand-stream timing model
    yields ~1.13x — same direction, smaller magnitude (documented in
    EXPERIMENTS.md).
    """
    def build():
        t_slice = default_time_slice_ns(model)
        optimizer = DataPlacementOptimizer(HH_PIM, model, t_slice_ns=t_slice)
        full = optimizer.build_lut()
        mram = optimizer.build_lut(
            restrict_to=[SpaceKind.HP_MRAM, SpaceKind.LP_MRAM]
        )
        return full, mram
    full, mram = benchmark.pedantic(build, rounds=1, iterations=1)
    core_ns = model.core_macs * CORE_MAC_TIME_NS
    green = full.peak_placement.task_time_ns + core_ns
    purple = mram.peak_placement.task_time_ns + core_ns
    ratio = purple / green
    print(f"{model.name}: MRAM-only/peak inference ratio {ratio:.3f} "
          f"(paper {model.mram_only_inference_ns / model.peak_inference_ns:.3f})")
    assert ratio > 1.05
