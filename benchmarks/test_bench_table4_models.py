"""Table IV — TinyML model specs and PIM operation ratios."""

from repro.analysis import TextTable
from repro.workloads import TABLE_IV

from _artifacts import write_artifact

PAPER = {
    "EfficientNet-B0": (95_000, 3_245_000, 0.85),
    "MobileNetV2": (101_000, 2_528_000, 0.80),
    "ResNet-18": (256_000, 29_580_000, 0.75),
}


def render_table_iv() -> str:
    table = TextTable(["Model", "# Param", "# MAC", "PIM Operation"])
    for model in TABLE_IV:
        table.add_row(
            model.name, model.params, model.macs,
            f"{model.pim_ratio:.0%}",
        )
    return table.render()


def test_table4_reproduction(benchmark):
    text = benchmark.pedantic(render_table_iv, rounds=3, iterations=1)
    write_artifact("table4.txt", text)
    print("\n" + text)
    for model in TABLE_IV:
        params, macs, ratio = PAPER[model.name]
        assert model.params == params
        assert model.macs == macs
        assert model.pim_ratio == ratio


def test_backbone_stats(benchmark):
    """The synthetic layer-level backbones stay shape-consistent."""
    def all_stats():
        return {m.name: m.backbone_stats() for m in TABLE_IV}
    stats = benchmark(all_stats)
    for name, layers in stats.items():
        assert layers[-1].out_shape == (10,), name
        assert sum(s.macs for s in layers) > 100_000
