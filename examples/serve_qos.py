"""Request-level QoS: tail latency, SLOs and autoscaling on HH-PIM.

Simulates a bursty serving day at request granularity: individual
requests sampled from an MMPP arrival process, queued per device under
EDF, priced by the allocation LUT's placement decisions, and served by a
fleet that the queue-depth autoscaler grows and shrinks between slices.

Run with::

    PYTHONPATH=src python examples/serve_qos.py
"""

from repro.analysis import render_qos
from repro.api import Engine, ExperimentConfig

# Reduced optimizer resolution keeps the example snappy; drop the two
# overrides for paper-fidelity placements.
FAST = dict(block_count=24, time_steps=1500)


def main() -> None:
    engine = Engine()

    # A day of bursty traffic: calm baseline, sharp episodes beyond one
    # device's capacity, served under an SLO of 2 time slices.
    config = ExperimentConfig(
        scenario="bursty",
        slices=120,
        peak=16,
        fleet=1,
        max_fleet=6,
        autoscaler="queue_depth",
        qos="edf",
        dispatch="least_loaded",
        batch=2,
        slo=2.0,
        seed=2025,
        **FAST,
    ).validate()

    result = engine.run_qos(config)
    print(render_qos(result))

    # The same traffic on a fixed single device: the backlog piles up and
    # the tail blows through the SLO — the autoscaler is what holds p99.
    fixed = engine.run_qos(config.replace(autoscaler="fixed", max_fleet=None))
    print()
    print(
        f"fixed 1-device fleet for comparison: "
        f"SLO attainment {fixed.slo_attainment:.1%} "
        f"(vs {result.slo_attainment:.1%} autoscaled), "
        f"p99 {fixed.latency_percentiles_ns[2] / 1e6:.1f} ms "
        f"(vs {result.latency_percentiles_ns[2] / 1e6:.1f} ms), "
        f"energy {fixed.total_energy_nj / 1e6:.1f} mJ "
        f"(vs {result.total_energy_nj / 1e6:.1f} mJ)"
    )


if __name__ == "__main__":
    main()
