#!/usr/bin/env python3
"""Edge object detection: the paper's motivating workload.

The introduction motivates HH-PIM with "an edge device running a YOLO
model for real-time object detection [whose] processing demand [varies]
depending on the number of objects detected per video frame".  This
example synthesises such a trace — a street camera whose scene alternates
between empty road, passing pedestrians and rush-hour bursts — registers
it as a *custom scenario* (``@SCENARIOS.register``), and shows how the
dynamic placement tracks it: which memories hold the weights in every
time slice, when data moves, and what it saves.

Run:  python examples/object_detection_edge.py
"""

import random

from repro.api import Engine, ExperimentConfig, SCENARIOS
from repro.core.spaces import SpaceKind
from repro.workloads.scenarios import Scenario, ScenarioCase

BLOCKS, STEPS = 48, 6000

_GLYPH = {
    SpaceKind.HP_SRAM: "S",
    SpaceKind.HP_MRAM: "M",
    SpaceKind.LP_SRAM: "s",
    SpaceKind.LP_MRAM: "m",
}


@SCENARIOS.register("street-camera")
def street_camera_trace(slices: int = 60, peak: int = 10, low: int = 1,
                        seed: int = 7) -> Scenario:
    """Inference demand of a detector: one inference per tracked object.

    The three scene phases map onto bands of the configured [low, peak]
    range, so the factory stays valid for any knobs an
    :class:`ExperimentConfig` can carry.
    """
    rng = random.Random(seed)
    empty_band = (low, min(low + 1, peak))
    pedestrian_band = (min(3, peak), min(6, peak))
    rush_band = (max(low, peak - 2), peak)
    loads = []
    phase = "empty"
    for _ in range(slices):
        if phase == "empty" and rng.random() < 0.25:
            phase = "pedestrians"
        elif phase == "pedestrians" and rng.random() < 0.3:
            phase = "rush" if rng.random() < 0.4 else "empty"
        elif phase == "rush" and rng.random() < 0.35:
            phase = "pedestrians"
        loads.append(rng.randint(*{
            "empty": empty_band,
            "pedestrians": pedestrian_band,
            "rush": rush_band,
        }[phase]))
    return Scenario(case=ScenarioCase.RANDOM, loads=tuple(loads), peak=peak)


def placement_strip(counts: dict, width: int = 24) -> str:
    total = sum(counts.values()) or 1
    strip = ""
    for kind in (SpaceKind.HP_SRAM, SpaceKind.HP_MRAM,
                 SpaceKind.LP_SRAM, SpaceKind.LP_MRAM):
        strip += _GLYPH[kind] * round(counts.get(kind, 0) / total * width)
    return strip[:width].ljust(width)


def main() -> None:
    engine = Engine()
    # The engine always materialises scenarios with the config's knobs,
    # so the factory's own defaults (low=1, seed=7) must be restated here.
    base = ExperimentConfig(
        model="MobileNetV2", scenario="street-camera",
        slices=60, seed=7, low=1,
        block_count=BLOCKS, time_steps=STEPS,
    )
    trace = engine.scenario(base)
    t_slice = engine.resolve(base).t_slice_ns

    results = engine.run_many(base.sweep(arch=["HH-PIM", "Baseline-PIM"]))
    hh_result = results.filter(arch="HH-PIM")[0].result
    base_record = results.filter(arch="Baseline-PIM")[0]

    print(f"{base.model} street-camera trace, {len(trace)} slices of "
          f"{t_slice / 1e6:.1f} ms\n")
    print("slice load  placement (S=HP-SRAM M=HP-MRAM s=LP-SRAM m=LP-MRAM)"
          "   moved   slice energy")
    for record in hh_result.records:
        moved = (f"{record.movement.blocks_moved:3d} blk"
                 if record.movement.blocks_moved else "      -")
        print(f"{record.index:5d} {record.arrivals:4d}  "
              f"|{placement_strip(record.placement_counts)}|  {moved}   "
              f"{record.total_energy_nj / 1e6:8.2f} mJ")

    saving = 1 - hh_result.total_energy_nj / base_record.total_energy_nj
    print(f"\ntotal HH-PIM energy: {hh_result.total_energy_nj / 1e6:9.2f} mJ")
    print(f"total Baseline-PIM:  {base_record.total_energy_nj / 1e6:9.2f} mJ")
    print(f"energy saved:        {saving:.1%}   "
          f"(deadlines {'met' if hh_result.deadlines_met else 'MISSED'})")
    reallocations = sum(
        1 for r in hh_result.records if r.movement.blocks_moved
    )
    print(f"placement changes:   {reallocations} over {len(trace)} slices")


if __name__ == "__main__":
    main()
