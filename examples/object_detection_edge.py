#!/usr/bin/env python3
"""Edge object detection: the paper's motivating workload.

The introduction motivates HH-PIM with "an edge device running a YOLO
model for real-time object detection [whose] processing demand [varies]
depending on the number of objects detected per video frame".  This
example synthesises such a trace — a street camera whose scene alternates
between empty road, passing pedestrians and rush-hour bursts — and shows
how the dynamic placement tracks it: which memories hold the weights in
every time slice, when data moves, and what it saves.

Run:  python examples/object_detection_edge.py
"""

import random

from repro import (
    BASELINE_PIM,
    HH_PIM,
    MOBILENET_V2,
    TimeSliceRuntime,
    default_time_slice_ns,
)
from repro.core.spaces import SpaceKind
from repro.workloads.scenarios import Scenario, ScenarioCase

BLOCKS, STEPS = 48, 6000

_GLYPH = {
    SpaceKind.HP_SRAM: "S",
    SpaceKind.HP_MRAM: "M",
    SpaceKind.LP_SRAM: "s",
    SpaceKind.LP_MRAM: "m",
}


def street_camera_trace(slices: int = 60, seed: int = 7) -> Scenario:
    """Inference demand of a detector: one inference per tracked object."""
    rng = random.Random(seed)
    loads = []
    phase = "empty"
    for i in range(slices):
        if phase == "empty" and rng.random() < 0.25:
            phase = "pedestrians"
        elif phase == "pedestrians" and rng.random() < 0.3:
            phase = "rush" if rng.random() < 0.4 else "empty"
        elif phase == "rush" and rng.random() < 0.35:
            phase = "pedestrians"
        loads.append({
            "empty": rng.randint(1, 2),
            "pedestrians": rng.randint(3, 6),
            "rush": rng.randint(8, 10),
        }[phase])
    return Scenario(case=ScenarioCase.RANDOM, loads=tuple(loads), peak=10)


def placement_strip(counts: dict, width: int = 24) -> str:
    total = sum(counts.values()) or 1
    strip = ""
    for kind in (SpaceKind.HP_SRAM, SpaceKind.HP_MRAM,
                 SpaceKind.LP_SRAM, SpaceKind.LP_MRAM):
        strip += _GLYPH[kind] * round(counts.get(kind, 0) / total * width)
    return strip[:width].ljust(width)


def main() -> None:
    model = MOBILENET_V2
    trace = street_camera_trace()
    t_slice = default_time_slice_ns(model, block_count=BLOCKS, time_steps=STEPS)

    hh = TimeSliceRuntime(HH_PIM, model, t_slice_ns=t_slice,
                          block_count=BLOCKS, time_steps=STEPS)
    base = TimeSliceRuntime(BASELINE_PIM, model, t_slice_ns=t_slice,
                            block_count=BLOCKS, time_steps=STEPS)
    hh_result = hh.run(trace)
    base_result = base.run(trace)

    print(f"{model.name} street-camera trace, {len(trace)} slices of "
          f"{t_slice / 1e6:.1f} ms\n")
    print("slice load  placement (S=HP-SRAM M=HP-MRAM s=LP-SRAM m=LP-MRAM)"
          "   moved   slice energy")
    for record in hh_result.records:
        moved = (f"{record.movement.blocks_moved:3d} blk"
                 if record.movement.blocks_moved else "      -")
        print(f"{record.index:5d} {record.arrivals:4d}  "
              f"|{placement_strip(record.placement_counts)}|  {moved}   "
              f"{record.total_energy_nj / 1e6:8.2f} mJ")

    saving = 1 - hh_result.total_energy_nj / base_result.total_energy_nj
    print(f"\ntotal HH-PIM energy: {hh_result.total_energy_nj / 1e6:9.2f} mJ")
    print(f"total Baseline-PIM:  {base_result.total_energy_nj / 1e6:9.2f} mJ")
    print(f"energy saved:        {saving:.1%}   "
          f"(deadlines {'met' if hh_result.deadlines_met else 'MISSED'})")
    reallocations = sum(
        1 for r in hh_result.records if r.movement.blocks_moved
    )
    print(f"placement changes:   {reallocations} over {len(trace)} slices")


if __name__ == "__main__":
    main()
