#!/usr/bin/env python3
"""Design-space exploration: evaluate custom HH-PIM configurations.

The paper fixes the fabric at 4 HP + 4 LP modules (Table I).  The library
makes the fabric a parameter, so this example asks a question the paper
leaves open: *what is the best HP/LP module split for a given workload
mix?*  It sweeps 2+6, 4+4 and 6+2 module splits, runs the same scenarios
on each, and reports energy and deadline behaviour.

Run:  python examples/custom_architecture.py
"""

from repro import (
    ArchitectureSpec,
    ClusterSpec,
    EFFICIENTNET_B0,
    TimeSliceRuntime,
    ScenarioCase,
    default_time_slice_ns,
    scenario,
)
from repro.pim.module import ModuleKind

BLOCKS, STEPS = 48, 6000
KB = 1024


def custom_hh(hp_modules: int, lp_modules: int) -> ArchitectureSpec:
    """An HH-PIM variant with an arbitrary HP/LP module split."""
    return ArchitectureSpec(
        name=f"HH-PIM-{hp_modules}H{lp_modules}L",
        hp=ClusterSpec(ModuleKind.HP, hp_modules,
                       mram_capacity=64 * KB, sram_capacity=64 * KB),
        lp=ClusterSpec(ModuleKind.LP, lp_modules,
                       mram_capacity=64 * KB, sram_capacity=64 * KB),
    )


def main() -> None:
    model = EFFICIENTNET_B0
    # Size the slice once from the paper's 4+4 configuration so all the
    # variants face the same deadline.
    t_slice = default_time_slice_ns(model, block_count=BLOCKS, time_steps=STEPS)
    splits = [(2, 6), (4, 4), (6, 2)]
    cases = (ScenarioCase.LOW_CONSTANT, ScenarioCase.HIGH_CONSTANT,
             ScenarioCase.RANDOM)

    print(f"{model.name}, T = {t_slice / 1e6:.1f} ms; energies in mJ\n")
    header = f"{'architecture':<16}" + "".join(
        f"{case.name:>26}" for case in cases
    )
    print(header)
    print("-" * len(header))

    results = {}
    for hp_count, lp_count in splits:
        spec = custom_hh(hp_count, lp_count)
        runtime = TimeSliceRuntime(
            spec, model, t_slice_ns=t_slice,
            block_count=BLOCKS, time_steps=STEPS,
        )
        row = [f"{spec.name:<16}"]
        for case in cases:
            result = runtime.run(scenario(case))
            results[(spec.name, case)] = result
            flag = "" if result.deadlines_met else " !"
            row.append(f"{result.total_energy_nj / 1e6:24.2f}{flag:>2}")
        print("".join(row))

    print(
        "\n('!' marks missed deadlines.)\n\n"
        "The LP-heavy split (2H6L) spends least under low load but has\n"
        "trouble at the peak rate; the HP-heavy split (6H2L) meets every\n"
        "deadline with margin yet leaks more.  The paper's 4+4 design is\n"
        "the balanced point — and with this library, re-balancing for a\n"
        "different workload mix is a three-line change."
    )


if __name__ == "__main__":
    main()
