#!/usr/bin/env python3
"""Design-space exploration: evaluate custom HH-PIM configurations.

The paper fixes the fabric at 4 HP + 4 LP modules (Table I).  The
registry makes the fabric a plug-in: this example *registers* three
HP/LP module splits under their own names, fans one config template over
the (architecture x scenario) grid with ``sweep()``, and lets the engine
batch the whole thing — answering a question the paper leaves open:
*what is the best HP/LP split for a given workload mix?*

Run:  python examples/custom_architecture.py
"""

from repro import ArchitectureSpec, ClusterSpec
from repro.api import Engine, ExperimentConfig, register_architecture
from repro.pim.module import ModuleKind

BLOCKS, STEPS = 48, 6000
KB = 1024


def custom_hh(hp_modules: int, lp_modules: int) -> ArchitectureSpec:
    """Register an HH-PIM variant with an arbitrary HP/LP module split."""
    return register_architecture(ArchitectureSpec(
        name=f"HH-PIM-{hp_modules}H{lp_modules}L",
        hp=ClusterSpec(ModuleKind.HP, hp_modules,
                       mram_capacity=64 * KB, sram_capacity=64 * KB),
        lp=ClusterSpec(ModuleKind.LP, lp_modules,
                       mram_capacity=64 * KB, sram_capacity=64 * KB),
    ))


def main() -> None:
    engine = Engine()
    variants = [custom_hh(hp, lp).name for hp, lp in ((2, 6), (4, 4), (6, 2))]
    cases = ("case1", "case2", "case6")

    base = ExperimentConfig(
        model="EfficientNet-B0", block_count=BLOCKS, time_steps=STEPS,
    )
    # Size the slice once from the paper's 4+4 configuration so all the
    # variants face the same deadline (the engine memoizes this sizing).
    resolved = engine.resolve(base)
    print(f"{resolved.model.name}, T = {resolved.t_slice_ns / 1e6:.1f} ms; "
          f"energies in mJ\n")

    results = engine.run_many(base.sweep(arch=variants, scenario=cases))

    header = f"{'architecture':<16}" + "".join(
        f"{case:>26}" for case in cases
    )
    print(header)
    print("-" * len(header))
    for arch in variants:
        row = [f"{arch:<16}"]
        for case in cases:
            record = results.filter(arch=arch, scenario=case)[0]
            flag = "" if record.deadlines_met else " !"
            row.append(f"{record.total_energy_nj / 1e6:24.2f}{flag:>2}")
        print("".join(row))

    print(
        "\n('!' marks missed deadlines.)\n\n"
        "The LP-heavy split (2H6L) spends least under low load but has\n"
        "trouble at the peak rate; the HP-heavy split (6H2L) meets every\n"
        "deadline with margin yet leaks more.  The paper's 4+4 design is\n"
        "the balanced point — and with the registry, re-balancing for a\n"
        "different workload mix is one register_architecture() call."
    )


if __name__ == "__main__":
    main()
