#!/usr/bin/env python3
"""Quickstart: run HH-PIM against the baselines on one scenario.

Builds a time-slice runtime for every Table I architecture, replays the
periodic-spike workload (Fig. 4, Case 3) on EfficientNet-B0, and prints
the energy comparison — a miniature of the paper's Fig. 5.

Run:  python examples/quickstart.py
"""

from repro import (
    EFFICIENTNET_B0,
    TABLE_I,
    TimeSliceRuntime,
    ScenarioCase,
    default_time_slice_ns,
    scenario,
)

# Reduced optimizer resolution keeps this demo snappy (~seconds); the
# benchmarks use the full default resolution.
BLOCKS, STEPS = 48, 6000


def main() -> None:
    model = EFFICIENTNET_B0
    t_slice = default_time_slice_ns(model, block_count=BLOCKS, time_steps=STEPS)
    print(f"model: {model.name}  ({model.params:,} weights, "
          f"{model.macs / 1e6:.2f}M MACs, {model.pim_ratio:.0%} on PIM)")
    print(f"time slice T = {t_slice / 1e6:.1f} ms "
          f"(10 peak-rate inferences + headroom)\n")

    workload = scenario(ScenarioCase.PERIODIC_SPIKE)
    print(f"workload: {workload.case.label}, {len(workload)} slices, "
          f"{workload.total_inferences} inferences\n")

    results = {}
    for spec in TABLE_I:
        runtime = TimeSliceRuntime(
            spec, model, t_slice_ns=t_slice,
            block_count=BLOCKS, time_steps=STEPS,
        )
        result = runtime.run(workload)
        results[spec.name] = result
        print(f"{spec.name:<18} policy={result.policy.value:<22} "
              f"energy={result.total_energy_nj / 1e6:9.2f} mJ   "
              f"mean power={result.mean_power_mw:7.2f} mW   "
              f"deadlines {'OK' if result.deadlines_met else 'MISSED'}")

    hh = results["HH-PIM"].total_energy_nj
    print("\nHH-PIM energy savings:")
    for name, result in results.items():
        if name == "HH-PIM":
            continue
        saving = 1 - hh / result.total_energy_nj
        print(f"  vs {name:<18} {saving:6.1%}")


if __name__ == "__main__":
    main()
