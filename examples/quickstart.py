#!/usr/bin/env python3
"""Quickstart: run HH-PIM against the baselines on one scenario.

Fans one :class:`repro.api.ExperimentConfig` out over every registered
architecture, executes the batch through the :class:`repro.api.Engine`
(one allocation LUT per architecture, built exactly once), and prints
the energy comparison — a miniature of the paper's Fig. 5.

Run:  python examples/quickstart.py
"""

from repro.api import ARCHITECTURES, Engine, ExperimentConfig

# Reduced optimizer resolution keeps this demo snappy (~seconds); the
# benchmarks use the full default resolution.
BLOCKS, STEPS = 48, 6000


def main() -> None:
    engine = Engine()
    base = ExperimentConfig(
        model="EfficientNet-B0",
        scenario="case3",  # Fig. 4 periodic-spike pattern
        block_count=BLOCKS,
        time_steps=STEPS,
    )
    resolved = engine.resolve(base)
    model = resolved.model
    print(f"model: {model.name}  ({model.params:,} weights, "
          f"{model.macs / 1e6:.2f}M MACs, {model.pim_ratio:.0%} on PIM)")
    print(f"time slice T = {resolved.t_slice_ns / 1e6:.1f} ms "
          f"(10 peak-rate inferences + headroom)\n")

    workload = engine.scenario(base)
    print(f"workload: {workload.case.label}, {len(workload)} slices, "
          f"{workload.total_inferences} inferences\n")

    results = engine.run_many(base.sweep(arch=ARCHITECTURES.keys()))
    for record in results:
        print(f"{record.arch:<18} policy={record.policy:<22} "
              f"energy={record.total_energy_nj / 1e6:9.2f} mJ   "
              f"mean power={record.mean_power_mw:7.2f} mW   "
              f"deadlines {'OK' if record.deadlines_met else 'MISSED'}")

    print("\nHH-PIM energy savings:")
    for arch, saving in results.savings_vs("HH-PIM").items():
        print(f"  vs {arch:<18} {saving:6.1%}")
    print(f"\n(engine built {engine.stats.lut_builds} LUTs for "
          f"{engine.stats.runs} runs)")


if __name__ == "__main__":
    main()
