#!/usr/bin/env python3
"""Drive the PIM fabric from a RISC-V program, as the prototype does.

The paper's processor couples a RISC-V Rocket core to HH-PIM over AXI;
driver software issues dedicated PIM instructions through a memory-mapped
doorbell.  This example assembles such a driver kernel with the bundled
RV32IM assembler, runs it on the functional ISS, and shows the command
path end to end: core -> MMIO -> PIM instruction queue -> dual
controllers -> modules.

Run:  python examples/riscv_pim_driver.py
"""

from repro import HH_PIM, Processor
from repro.isa import (
    ClusterId,
    Compute,
    Config,
    ConfigOp,
    GateTarget,
    LoadOperands,
    Sync,
    disassemble,
)
from repro.riscv import asm


def build_pim_program():
    """The PIM command stream: load operands, MAC, gate idle memories."""
    stream = [
        # Fetch 16 weight operands from MRAM + 16 activations from SRAM
        # into every HP module, then run the MACs.
        LoadOperands(ClusterId.HP, 0xF, mram_count=16, sram_count=16),
        Compute(ClusterId.HP, 0xF, count=64),
        # The LP cluster takes a smaller share.
        LoadOperands(ClusterId.LP, 0xF, mram_count=8, sram_count=8),
        Compute(ClusterId.LP, 0xF, count=32),
        # Barrier, then power-gate the LP SRAM until the next burst.
        Sync(ClusterId.HP, 0xF),
        Sync(ClusterId.LP, 0xF),
        Config(ClusterId.LP, 0xF, op=ConfigOp.GATE_OFF, target=GateTarget.SRAM),
    ]
    return stream


def build_driver(words):
    """RV32IM kernel: poll the FULL flag, push each word, halt."""
    pushes = []
    for i, word in enumerate(words):
        pushes.append(f"""
        wait{i}:
            lw   t1, 4(a0)        # STATUS
            andi t1, t1, 1        # bit0 = full
            bne  t1, zero, wait{i}
            li   t0, {word}
            sw   t0, 0(a0)        # CMD doorbell
        """)
    source = "li a0, 0x40000000\n" + "\n".join(pushes) + "\nebreak\n"
    return asm(source)


def main() -> None:
    stream = build_pim_program()
    print("PIM command stream:")
    for instruction in stream:
        print(f"  {disassemble(instruction):<40} "
              f"0x{instruction.encode():08x}")

    driver = build_driver([i.encode() for i in stream])
    print(f"\nRV32IM driver kernel: {driver.size_bytes} bytes "
          f"({driver.size_bytes // 4} instructions)")

    processor = Processor(HH_PIM)
    processor.load_program(driver.to_bytes())
    summary = processor.run()

    print("\nexecution summary:")
    print(f"  core instructions retired : {summary['core_instructions']}")
    print(f"  PIM instructions issued   : {summary['pim_instructions']}")
    print(f"  core time                 : {summary['core_time_ns'] / 1e3:.2f} us")
    print(f"  PIM time                  : {summary['pim_time_ns'] / 1e3:.2f} us")
    print(f"  PIM energy                : {summary['pim_energy_nj']:.2f} nJ")

    hp = processor.fabric.cluster(ClusterId.HP)
    lp = processor.fabric.cluster(ClusterId.LP)
    print("\nper-module MACs executed:")
    for cluster in (hp, lp):
        for module in cluster.modules:
            print(f"  {module.name}: {module.pe.stats.macs} MACs, "
                  f"{module.memory_stats().reads} operand reads")
    from repro.memory.hybrid import BankKind
    gated = [
        module.name for module in lp.modules
        if not module.memory.bank(BankKind.SRAM).powered
    ]
    print(f"\nLP SRAM banks power-gated by the driver: {', '.join(gated)}")


if __name__ == "__main__":
    main()
