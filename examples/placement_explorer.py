#!/usr/bin/env python3
"""Placement explorer: Fig. 6 sweeps and voltage what-ifs.

Part 1 regenerates the paper's Fig. 6 for a chosen model: how the optimal
weight distribution walks from SRAM-heavy (peak performance) to
LP-MRAM-only (maximum efficiency) as the latency budget relaxes.  The
LUT comes from the :class:`repro.api.Engine`, so re-running for the same
model reuses the memoized optimizer state.

Part 2 goes beyond the paper: the calibrated technology model supports
*arbitrary* supply voltages, so we sweep the LP cluster's Vdd and watch
the peak/efficiency trade move — the kind of design-space exploration the
library enables.

Run:  python examples/placement_explorer.py [model-name]
"""

import sys

from repro.analysis import render_fig6
from repro.api import Engine, ExperimentConfig, MODELS
from repro.core.spaces import CORE_MAC_TIME_NS
from repro.memory import NvSimModel, SRAM_45NM, STT_MRAM_45NM
from repro.memory.technology import PE_45NM

BLOCKS, STEPS = 48, 6000


def part1_fig6(engine: Engine, model_name: str) -> None:
    model = MODELS.get(model_name)
    print(f"=== Fig. 6 sweep: {model.name} ===\n")
    runtime = engine.runtime(ExperimentConfig(
        arch="HH-PIM", model=model_name,
        block_count=BLOCKS, time_steps=STEPS,
    ))
    lut = runtime.lut
    print(render_fig6(lut, points=24))
    peak = lut.peak_placement
    inference_ms = (peak.task_time_ns + model.core_macs * CORE_MAC_TIME_NS) / 1e6
    print(f"\npeak-performance inference: {inference_ms:.2f} ms "
          f"(paper: {model.peak_inference_ns / 1e6:.2f} ms)")
    print(f"LUT candidates: {len(lut.candidates)} distinct placements\n")


def part2_voltage_sweep() -> None:
    print("=== LP-cluster voltage what-if (beyond the paper) ===\n")
    print("Vdd    SRAM read   MRAM read   PE MAC     SRAM static  MRAM static")
    for vdd in (0.7, 0.8, 0.9, 1.0, 1.1, 1.2):
        sram = NvSimModel(SRAM_45NM).estimate(64 * 1024, vdd)
        mram = NvSimModel(STT_MRAM_45NM).estimate(64 * 1024, vdd)
        print(f"{vdd:.1f}V   {sram.timing.read_ns:6.2f} ns   "
              f"{mram.timing.read_ns:6.2f} ns   "
              f"{PE_45NM.mac_latency(vdd):6.2f} ns   "
              f"{sram.power.static_mw:8.2f} mW   "
              f"{mram.power.static_mw:8.2f} mW")
    print(
        "\nLower Vdd slows every access but collapses leakage — the same\n"
        "trade the HP/LP split exploits at its two published points\n"
        "(1.2 V / 0.8 V), available here at any operating point."
    )


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "EfficientNet-B0"
    part1_fig6(Engine(), name)
    part2_voltage_sweep()


if __name__ == "__main__":
    main()
