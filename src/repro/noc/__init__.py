"""Interconnect substrate: AXI-style bursts and a lightweight NoC.

The paper's processor connects the Rocket core to HH-PIM over AXI and uses
µNoC, a lightweight edge-oriented Network-on-Chip, as the system
interconnect.  This package models both at the timing level: AXI bursts
with per-beat bandwidth and fixed channel latency, and a routed mesh-like
NoC graph whose hop latency composes with the AXI endpoints.
"""

from .axi import AxiBus, AxiTransaction, BurstType
from .unoc import MicroNoc, NocLink, NocNode

__all__ = [
    "AxiBus",
    "AxiTransaction",
    "BurstType",
    "MicroNoc",
    "NocLink",
    "NocNode",
]
