"""AXI-style burst transaction timing model.

HH-PIM "communicates with the core through the AXI protocol, offering high
bandwidth and low latency" (paper, Section IV-A).  We model the protocol
at the transaction level: an address phase of fixed latency followed by
one data beat per bus-width chunk, with INCR/WRAP/FIXED burst semantics
for address generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError, NocError


class BurstType(str, Enum):
    """AXI burst kinds."""

    FIXED = "fixed"
    INCR = "incr"
    WRAP = "wrap"


@dataclass(frozen=True)
class AxiTransaction:
    """One AXI read or write burst."""

    address: int
    length_bytes: int
    is_write: bool
    burst: BurstType = BurstType.INCR

    def __post_init__(self) -> None:
        if self.address < 0:
            raise NocError(f"negative AXI address {self.address}")
        if self.length_bytes <= 0:
            raise NocError(f"AXI burst length must be positive, got {self.length_bytes}")


class AxiBus:
    """An AXI port with fixed channel latency and per-beat throughput."""

    #: AXI4 caps a burst at 256 beats.
    MAX_BEATS = 256

    def __init__(
        self,
        data_width_bytes: int = 8,
        clock_ns: float = 20.0,
        address_phase_cycles: int = 2,
        beat_cycles: int = 1,
    ) -> None:
        if data_width_bytes <= 0 or (data_width_bytes & (data_width_bytes - 1)):
            raise ConfigurationError(
                f"AXI data width must be a positive power of two, got "
                f"{data_width_bytes}"
            )
        if clock_ns <= 0:
            raise ConfigurationError("AXI clock period must be positive")
        self.data_width_bytes = data_width_bytes
        self.clock_ns = clock_ns
        self.address_phase_cycles = address_phase_cycles
        self.beat_cycles = beat_cycles
        self.transactions = 0
        self.bytes_transferred = 0
        self.busy_time_ns = 0.0

    def beats_of(self, transaction: AxiTransaction) -> int:
        """Number of data beats the burst occupies."""
        beats = -(-transaction.length_bytes // self.data_width_bytes)
        if beats > self.MAX_BEATS:
            raise NocError(
                f"burst of {beats} beats exceeds AXI4 limit {self.MAX_BEATS}; "
                "split the transfer"
            )
        return beats

    def beat_addresses(self, transaction: AxiTransaction):
        """Per-beat addresses under the burst's addressing mode."""
        beats = self.beats_of(transaction)
        width = self.data_width_bytes
        base = transaction.address
        if transaction.burst is BurstType.FIXED:
            return [base] * beats
        if transaction.burst is BurstType.INCR:
            return [base + i * width for i in range(beats)]
        # WRAP: wrap within the naturally aligned window of the burst size.
        window = beats * width
        start = (base // window) * window
        return [start + ((base - start + i * width) % window) for i in range(beats)]

    def transfer_time_ns(self, transaction: AxiTransaction) -> float:
        """Latency of the whole burst (address phase + data beats)."""
        beats = self.beats_of(transaction)
        cycles = self.address_phase_cycles + beats * self.beat_cycles
        return cycles * self.clock_ns

    def submit(self, transaction: AxiTransaction) -> float:
        """Account one burst; returns its latency in ns."""
        elapsed = self.transfer_time_ns(transaction)
        self.transactions += 1
        self.bytes_transferred += transaction.length_bytes
        self.busy_time_ns += elapsed
        return elapsed

    def transfer(self, address: int, length_bytes: int, is_write: bool) -> float:
        """Convenience: submit possibly multiple bursts for a long transfer."""
        remaining = length_bytes
        cursor = address
        total = 0.0
        max_bytes = self.MAX_BEATS * self.data_width_bytes
        while remaining > 0:
            chunk = min(remaining, max_bytes)
            total += self.submit(
                AxiTransaction(address=cursor, length_bytes=chunk, is_write=is_write)
            )
            cursor += chunk
            remaining -= chunk
        return total
