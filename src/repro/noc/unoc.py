"""µNoC: a lightweight Network-on-Chip timing model.

The paper's SoC uses µNoC [Han et al., ISLPED'19], a minimal NoC optimised
for edge devices.  We model it as a graph of nodes and links with
per-hop router latency and per-link serialisation delay, plus shortest-path
routing (BFS over hop count — µNoC's topology is small and regular, so hop
count is the right metric).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..errors import ConfigurationError, NocError


@dataclass(frozen=True)
class NocNode:
    """One endpoint or router of the NoC."""

    name: str


@dataclass(frozen=True)
class NocLink:
    """A bidirectional link between two nodes."""

    a: str
    b: str
    width_bytes: int = 4
    link_cycles: int = 1


@dataclass
class TransferRecord:
    """One completed NoC transfer, for traffic analysis."""

    src: str
    dst: str
    length_bytes: int
    hops: int
    elapsed_ns: float


class MicroNoc:
    """Hop-count routed NoC with per-hop latency and serialisation."""

    def __init__(self, clock_ns: float = 20.0, router_cycles: int = 1) -> None:
        if clock_ns <= 0:
            raise ConfigurationError("NoC clock period must be positive")
        self.clock_ns = clock_ns
        self.router_cycles = router_cycles
        self._adjacency: dict = {}
        self._links: dict = {}
        self.history: list = []

    # -- topology construction ----------------------------------------------------

    def add_node(self, name: str) -> NocNode:
        """Add a node; idempotent for an existing name."""
        self._adjacency.setdefault(name, set())
        return NocNode(name)

    def add_link(self, link: NocLink) -> None:
        """Add a bidirectional link (both endpoints auto-created)."""
        if link.a == link.b:
            raise ConfigurationError(f"self-link on node {link.a!r}")
        if link.width_bytes <= 0 or link.link_cycles <= 0:
            raise ConfigurationError("link width and cycle count must be positive")
        self.add_node(link.a)
        self.add_node(link.b)
        self._adjacency[link.a].add(link.b)
        self._adjacency[link.b].add(link.a)
        self._links[frozenset((link.a, link.b))] = link

    @classmethod
    def edge_soc(cls, clock_ns: float = 20.0) -> "MicroNoc":
        """The paper's SoC topology: core, system memory, HH-PIM, peripherals.

        A small star-of-buses matching Fig. 3: the system interconnect in
        the middle, with the Rocket core, system SRAM, the HH-PIM fabric
        and the APB peripheral bridge attached.
        """
        noc = cls(clock_ns=clock_ns)
        hub = "interconnect"
        for endpoint, width in (
            ("core", 8),
            ("system_memory", 8),
            ("hhpim", 8),
            ("peripherals", 4),
            ("flash", 4),
        ):
            noc.add_link(NocLink(a=hub, b=endpoint, width_bytes=width))
        return noc

    # -- routing -----------------------------------------------------------------------

    def route(self, src: str, dst: str):
        """Shortest path (hop count) from ``src`` to ``dst``."""
        for name in (src, dst):
            if name not in self._adjacency:
                raise NocError(f"unknown NoC node {name!r}")
        if src == dst:
            return [src]
        frontier = deque([src])
        parents = {src: None}
        while frontier:
            here = frontier.popleft()
            for neighbour in sorted(self._adjacency[here]):
                if neighbour in parents:
                    continue
                parents[neighbour] = here
                if neighbour == dst:
                    path = [dst]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                frontier.append(neighbour)
        raise NocError(f"no route from {src!r} to {dst!r}")

    def _link_between(self, a: str, b: str) -> NocLink:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NocError(f"no link between {a!r} and {b!r}") from None

    # -- transfer timing -----------------------------------------------------------------

    def transfer_time_ns(self, src: str, dst: str, length_bytes: int) -> float:
        """Latency of moving ``length_bytes`` from ``src`` to ``dst``.

        Wormhole-style: the header pays router latency at every hop, and
        the payload serialises over the narrowest link on the path.
        """
        if length_bytes <= 0:
            raise NocError("transfer length must be positive")
        path = self.route(src, dst)
        hops = len(path) - 1
        if hops == 0:
            return 0.0
        narrowest = min(
            self._link_between(a, b).width_bytes
            for a, b in zip(path, path[1:])
        )
        slowest = max(
            self._link_between(a, b).link_cycles
            for a, b in zip(path, path[1:])
        )
        header_cycles = hops * self.router_cycles
        flits = -(-length_bytes // narrowest)
        payload_cycles = flits * slowest
        return (header_cycles + payload_cycles) * self.clock_ns

    def transfer(self, src: str, dst: str, length_bytes: int) -> float:
        """Account one transfer; returns its latency in ns."""
        elapsed = self.transfer_time_ns(src, dst, length_bytes)
        hops = len(self.route(src, dst)) - 1
        self.history.append(
            TransferRecord(
                src=src, dst=dst, length_bytes=length_bytes,
                hops=hops, elapsed_ns=elapsed,
            )
        )
        return elapsed

    @property
    def total_bytes(self) -> int:
        """Total payload bytes moved so far."""
        return sum(record.length_bytes for record in self.history)
