"""Cycle-level simulation: event queue, execution engine, traces.

The analytic runtime (:mod:`repro.core.runtime`) prices slices in closed
form; this package provides the *mechanistic* counterpart — a
deterministic event-driven engine that executes placements on real
:class:`~repro.pim.module.PIMModule` objects, charging bank and PE
statistics access-by-access.  Integration tests cross-validate the two:
the engine's measured dynamic energy must match the analytic model.
"""

from .events import Event, EventQueue
from .engine import CycleEngine, TaskExecution
from .trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "EventQueue",
    "CycleEngine",
    "TaskExecution",
    "TraceEvent",
    "TraceRecorder",
]
