"""Structured execution traces.

The engine emits one :class:`TraceEvent` per simulated action (task
start/finish, per-module phase, gating change), which the tests and the
examples use to inspect scheduling decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    time_ns: float
    kind: str
    subject: str
    detail: dict = field(default_factory=dict)


class TraceRecorder:
    """Collects trace events; optionally bounded to the newest N."""

    def __init__(self, limit: int | None = None) -> None:
        self.limit = limit
        self.events: list = []

    def emit(self, time_ns: float, kind: str, subject: str, **detail) -> TraceEvent:
        """Record one event."""
        event = TraceEvent(time_ns=time_ns, kind=kind, subject=subject,
                           detail=dict(detail))
        self.events.append(event)
        if self.limit is not None and len(self.events) > self.limit:
            del self.events[0]
        return event

    def of_kind(self, kind: str):
        """All events of one kind, in order."""
        return [event for event in self.events if event.kind == kind]

    def between(self, start_ns: float, end_ns: float):
        """Events within a time window (inclusive)."""
        return [
            event for event in self.events
            if start_ns <= event.time_ns <= end_ns
        ]

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()
