"""Deterministic discrete-event queue.

Events are ordered by (time, sequence): ties break by insertion order, so
simulations are reproducible regardless of dict/hash ordering.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import SimulationError


@dataclass(order=True)
class Event:
    """One scheduled event."""

    time_ns: float
    sequence: int
    action: object = field(compare=False)
    label: str = field(compare=False, default="")


class EventQueue:
    """A time-ordered event queue with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = 0
        self.now_ns = 0.0
        self.processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, delay_ns: float, action, label: str = "") -> Event:
        """Schedule ``action`` to run ``delay_ns`` after the current time."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay {delay_ns}")
        event = Event(
            time_ns=self.now_ns + delay_ns,
            sequence=self._sequence,
            action=action,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time_ns: float, action, label: str = "") -> Event:
        """Schedule ``action`` at an absolute time (not before now)."""
        if time_ns < self.now_ns:
            raise SimulationError(
                f"cannot schedule at {time_ns} before now {self.now_ns}"
            )
        return self.schedule(time_ns - self.now_ns, action, label)

    def step(self) -> Event:
        """Pop and run the next event; returns it."""
        if not self._heap:
            raise SimulationError("event queue exhausted")
        event = heapq.heappop(self._heap)
        self.now_ns = event.time_ns
        self.processed += 1
        event.action()
        return event

    def run(self, until_ns: float | None = None, max_events: int = 1_000_000):
        """Run until the queue drains, a horizon, or an event budget."""
        executed = 0
        while self._heap and executed < max_events:
            if until_ns is not None and self._heap[0].time_ns > until_ns:
                break
            self.step()
            executed += 1
        if executed >= max_events and self._heap:
            raise SimulationError(f"event budget {max_events} exhausted")
        if until_ns is not None and self.now_ns < until_ns and not self._heap:
            self.now_ns = until_ns
        return executed
