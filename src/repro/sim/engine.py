"""Cycle engine: execute placements mechanistically on PIM modules.

Where the analytic runtime prices a placement in closed form, the engine
walks the actual machinery: it stripes each space's blocks over the
cluster's modules, charges every weight/activation read and PE operation
on the real :class:`~repro.pim.module.PIMModule` objects (through their
fast accounting paths), serialises the MRAM and SRAM phases within each
module, and overlaps the two clusters — emitting a trace along the way.

The measured dynamic energy and completion time must agree with the
analytic model; the integration tests assert this to a tight tolerance,
which pins the two implementations against each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError
from ..memory.hybrid import BankKind
from ..pim.cluster import PIMCluster
from .events import EventQueue
from .trace import TraceRecorder


@dataclass(frozen=True)
class TaskExecution:
    """Result of executing one task (one inference's PIM work)."""

    task_time_ns: float
    per_cluster_time_ns: dict
    dynamic_energy_nj: float


class CycleEngine:
    """Executes placements on real clusters, with tracing."""

    def __init__(self, clusters: dict, latency_scale: float = 1.0) -> None:
        if not clusters:
            raise SimulationError("engine needs at least one cluster")
        self.clusters = clusters
        self.latency_scale = latency_scale
        self.queue = EventQueue()
        self.trace = TraceRecorder()

    def _cluster_of(self, kind) -> PIMCluster:
        try:
            return self.clusters[kind.cluster]
        except KeyError:
            raise SimulationError(
                f"no {kind.cluster.name} cluster for space {kind.value}"
            ) from None

    def execute_task(self, counts: dict, macs_per_block: float) -> TaskExecution:
        """Run one task under a placement; returns timing and energy.

        ``counts`` maps :class:`~repro.core.spaces.SpaceKind` to block
        counts; each block contributes ``macs_per_block`` MACs.  Within a
        cluster the MRAM-weight and SRAM-weight phases of one module
        serialise; modules and clusters run in parallel.
        """
        energy_before = {
            cid: cluster.total_energy_nj()
            for cid, cluster in self.clusters.items()
        }
        per_cluster_macs = {
            cid: {BankKind.MRAM: 0, BankKind.SRAM: 0} for cid in self.clusters
        }
        for kind, blocks in counts.items():
            if blocks < 0:
                raise SimulationError(f"negative block count for {kind}")
            macs = round(blocks * macs_per_block)
            per_cluster_macs[kind.cluster][kind.bank] += macs

        start_ns = self.queue.now_ns
        per_cluster_time = {}
        for cid, macs_by_bank in per_cluster_macs.items():
            cluster = self.clusters[cid]
            elapsed = cluster.run_mixed_macs(
                macs_by_bank[BankKind.MRAM], macs_by_bank[BankKind.SRAM]
            ) * self.latency_scale
            per_cluster_time[cid] = elapsed
            self.trace.emit(
                start_ns, "cluster_phase", cid.name,
                mram_macs=macs_by_bank[BankKind.MRAM],
                sram_macs=macs_by_bank[BankKind.SRAM],
                elapsed_ns=elapsed,
            )
        task_time = max(per_cluster_time.values()) if per_cluster_time else 0.0
        # Advance simulated time to the joint completion (cluster barrier).
        self.queue.schedule(task_time, lambda: None, label="task_complete")
        self.queue.run()
        dynamic = sum(
            self.clusters[cid].total_energy_nj() - energy_before[cid]
            for cid in self.clusters
        )
        self.trace.emit(
            self.queue.now_ns, "task_done", "engine",
            task_time_ns=task_time, dynamic_energy_nj=dynamic,
        )
        return TaskExecution(
            task_time_ns=task_time,
            per_cluster_time_ns=per_cluster_time,
            dynamic_energy_nj=dynamic,
        )

    def run_slice(self, counts: dict, macs_per_block: float, tasks: int):
        """Execute ``tasks`` back-to-back tasks; returns the executions."""
        if tasks < 0:
            raise SimulationError("task count must be non-negative")
        return [
            self.execute_task(counts, macs_per_block) for _ in range(tasks)
        ]
