"""Mapping: compile inference workloads onto PIM instruction streams.

The analysis layers price placements in closed form; this package emits
the *actual command streams* a placement implies — LOAD/COMPUTE/SYNC
sequences per module, MOVE sequences for placement transitions — and can
execute them through the real dual-controller fabric.  Integration tests
cross-check the executed timing against the analytic cost model.
"""

from .compiler import (
    CompiledInference,
    CompiledTransition,
    InferenceCompiler,
    ModuleWork,
)

__all__ = [
    "CompiledInference",
    "CompiledTransition",
    "InferenceCompiler",
    "ModuleWork",
]
