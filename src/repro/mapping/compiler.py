"""Compile placements into executable PIM instruction streams.

Given a :class:`~repro.core.lut.Placement` (per-space block counts) and a
model, the compiler produces the command stream one inference requires:

* per module, the operand LOADs (weights from the bank the placement
  chose, activations from the SRAM buffer) and the MAC COMPUTEs, chunked
  to the instruction format's field widths;
* cluster-level SYNC barriers at task boundaries;
* for a placement *transition*, the inter-cluster MOVE sequence the Data
  Allocator executes, plus CONFIG gating for spaces that become empty.

The emitted streams run on the real :class:`~repro.arch.processor.PimFabric`
(or through the MMIO doorbell from RISC-V code), and their executed cost is
cross-validated against the analytic model by the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.processor import PimFabric
from ..core.lut import Placement
from ..core.spaces import SpaceKind
from ..errors import PlacementError
from ..isa.encoding import ClusterId
from ..isa.instructions import (
    Compute,
    Config,
    ConfigOp,
    GateTarget,
    LoadOperands,
    Move,
    Sync,
)
from ..memory.hybrid import BankKind
from ..workloads.models import ModelSpec

#: Field-width limits of the instruction format.
MAX_MAC_COUNT = (1 << 20) - 1
MAX_LOAD_COUNT = (1 << 10) - 1
MAX_MOVE_COUNT = (1 << 8) - 1

_GATE_OF_BANK = {BankKind.MRAM: GateTarget.MRAM, BankKind.SRAM: GateTarget.SRAM}


@dataclass(frozen=True)
class ModuleWork:
    """The per-module share of one inference under a placement."""

    cluster: ClusterId
    module: int
    mram_macs: int
    sram_macs: int

    @property
    def total_macs(self) -> int:
        """MACs this module executes for the task."""
        return self.mram_macs + self.sram_macs


@dataclass(frozen=True)
class CompiledInference:
    """One inference compiled to an instruction stream."""

    model: str
    instructions: tuple
    work: tuple  # ModuleWork entries
    total_macs: int

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass(frozen=True)
class CompiledTransition:
    """A placement transition compiled to MOVE/CONFIG instructions."""

    instructions: tuple
    blocks_moved: int


@dataclass
class InferenceCompiler:
    """Emits instruction streams for placements on a given fabric shape."""

    model: ModelSpec
    block_count: int
    modules_per_cluster: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.block_count <= 0:
            raise PlacementError("block count must be positive")
        if not self.modules_per_cluster:
            self.modules_per_cluster = {ClusterId.HP: 4, ClusterId.LP: 4}

    @classmethod
    def for_fabric(cls, fabric: PimFabric, model: ModelSpec,
                   block_count: int) -> "InferenceCompiler":
        """Build a compiler matching a fabric's cluster shapes."""
        return cls(
            model=model,
            block_count=block_count,
            modules_per_cluster={
                cid: len(cluster) for cid, cluster in fabric.clusters.items()
            },
        )

    # -- work partitioning ------------------------------------------------------

    @property
    def macs_per_block(self) -> int:
        """MACs one weight block contributes to a task."""
        return max(1, round(self.model.pim_macs / self.block_count))

    def _stripe(self, blocks: int, ways: int):
        base, extra = divmod(blocks, ways)
        return [base + (1 if i < extra else 0) for i in range(ways)]

    def partition(self, placement: Placement):
        """Split a placement's MACs over the modules (round-robin blocks)."""
        per_module: dict = {}
        for kind, blocks in placement.counts.items():
            if blocks == 0:
                continue
            cluster = kind.cluster
            ways = self.modules_per_cluster.get(cluster, 0)
            if ways == 0:
                raise PlacementError(
                    f"placement uses {kind.value} but the fabric has no "
                    f"{cluster.name} cluster"
                )
            for module, share in enumerate(self._stripe(blocks, ways)):
                key = (cluster, module)
                mram, sram = per_module.get(key, (0, 0))
                macs = share * self.macs_per_block
                if kind.bank is BankKind.MRAM:
                    mram += macs
                else:
                    sram += macs
                per_module[key] = (mram, sram)
        return tuple(
            ModuleWork(cluster=cluster, module=module,
                       mram_macs=mram, sram_macs=sram)
            for (cluster, module), (mram, sram) in sorted(
                per_module.items(), key=lambda kv: (kv[0][0], kv[0][1])
            )
        )

    # -- code emission -----------------------------------------------------------

    @staticmethod
    def _emit_cluster(cluster: ClusterId, mram_macs: int, sram_macs: int):
        """Broadcast LOAD + COMPUTE chunks for one cluster's task share.

        Broadcast instructions (module = 0xF) let the command encoder
        stripe the counts over the cluster's modules, which then execute
        in parallel — the hardware's behaviour.  Every MAC consumes one
        weight operand (from the bank the placement chose) and one
        activation operand (SRAM buffer); chunks are sized so the 10-bit
        LOAD count fields never overflow.
        """
        instructions = []
        for macs, from_mram in ((mram_macs, True), (sram_macs, False)):
            left = macs
            while left > 0:
                chunk = min(left, MAX_LOAD_COUNT)
                instructions.append(
                    LoadOperands(
                        cluster, 0xF,
                        mram_count=chunk if from_mram else 0,
                        sram_count=chunk,
                    )
                )
                instructions.append(Compute(cluster, 0xF, count=chunk))
                left -= chunk
        return instructions

    def compile_inference(self, placement: Placement) -> CompiledInference:
        """The instruction stream of one inference under ``placement``."""
        work = self.partition(placement)
        per_cluster = {}
        for module_work in work:
            mram, sram = per_cluster.get(module_work.cluster, (0, 0))
            per_cluster[module_work.cluster] = (
                mram + module_work.mram_macs, sram + module_work.sram_macs
            )
        instructions: list = []
        for cluster in sorted(per_cluster, key=lambda c: c.value):
            mram, sram = per_cluster[cluster]
            instructions.extend(self._emit_cluster(cluster, mram, sram))
        for cluster in sorted(per_cluster, key=lambda c: c.value):
            instructions.append(Sync(cluster, 0xF))
        return CompiledInference(
            model=self.model.name,
            instructions=tuple(instructions),
            work=work,
            total_macs=sum(w.total_macs for w in work),
        )

    def compile_transition(
        self, old: Placement, new: Placement
    ) -> CompiledTransition:
        """MOVE/CONFIG stream realising a placement change.

        Inter-cluster block movements go through MOVE instructions (the
        Data Allocator path); spaces that end up empty are power-gated,
        and newly used spaces are un-gated first.
        """
        instructions: list = []
        moved = 0
        for kind in SpaceKind:
            before = old.counts.get(kind, 0)
            after = new.counts.get(kind, 0)
            if after > 0 and before == 0:
                instructions.append(
                    Config(kind.cluster, 0xF, op=ConfigOp.GATE_ON,
                           target=_GATE_OF_BANK[kind.bank])
                )
        # Net inter-cluster flow: blocks leaving one cluster for the other.
        flows = {}
        for cluster in (ClusterId.HP, ClusterId.LP):
            before = sum(
                old.counts.get(kind, 0) for kind in SpaceKind
                if kind.cluster is cluster
            )
            after = sum(
                new.counts.get(kind, 0) for kind in SpaceKind
                if kind.cluster is cluster
            )
            flows[cluster] = after - before
        for cluster, delta in flows.items():
            if delta >= 0:
                continue
            source = cluster
            outgoing = -delta
            moved += outgoing
            block = 0
            ways = self.modules_per_cluster.get(source, 1)
            while outgoing > 0:
                chunk = min(outgoing, MAX_MOVE_COUNT)
                instructions.append(
                    Move(source, block % ways, dst_module=block % ways,
                         block=block % 256, count=chunk)
                )
                outgoing -= chunk
                block += 1
        for kind in SpaceKind:
            if new.counts.get(kind, 0) == 0 and old.counts.get(kind, 0) > 0:
                instructions.append(
                    Config(kind.cluster, 0xF, op=ConfigOp.GATE_OFF,
                           target=_GATE_OF_BANK[kind.bank])
                )
        return CompiledTransition(
            instructions=tuple(instructions), blocks_moved=moved
        )

    # -- execution ---------------------------------------------------------------------

    def run_on_fabric(
        self, fabric: PimFabric, compiled: CompiledInference
    ) -> float:
        """Push the stream through the fabric's queue; returns elapsed ns."""
        elapsed = 0.0
        for instruction in compiled.instructions:
            if fabric.queue.full:
                elapsed += fabric.drain()
            fabric.queue.push(instruction)
        elapsed += fabric.drain()
        return elapsed
