"""Functional, power-gatable memory bank model.

A :class:`MemoryBank` is the unit the PIM module and the placement runtime
reason about: it stores real bytes (so functional tests can verify data
round-trips), charges the Table III latency and Table V power for every
access, and supports power gating.  Gating a volatile bank (SRAM) clears
its contents; gating a non-volatile bank (STT-MRAM) retains them — this is
the asymmetry the HH-PIM placement algorithm exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AddressError, ConfigurationError, PowerGatingError
from .nvsim import NvSimModel, NvSimResult
from .technology import MemoryTechnology


@dataclass
class BankStats:
    """Access and energy statistics accumulated by a bank."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    dynamic_energy_nj: float = 0.0
    static_energy_nj: float = 0.0
    powered_time_ns: float = 0.0
    gated_time_ns: float = 0.0

    @property
    def total_energy_nj(self) -> float:
        """Dynamic plus static energy, in nanojoules."""
        return self.dynamic_energy_nj + self.static_energy_nj

    def merge(self, other: "BankStats") -> "BankStats":
        """Return the element-wise sum of two stat records."""
        return BankStats(
            reads=self.reads + other.reads,
            writes=self.writes + other.writes,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            dynamic_energy_nj=self.dynamic_energy_nj + other.dynamic_energy_nj,
            static_energy_nj=self.static_energy_nj + other.static_energy_nj,
            powered_time_ns=self.powered_time_ns + other.powered_time_ns,
            gated_time_ns=self.gated_time_ns + other.gated_time_ns,
        )


@dataclass
class MemoryBank:
    """One memory macro: addressable bytes plus latency/energy accounting.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"hp0.mram"``).
    technology:
        The cell technology; decides volatility under power gating.
    capacity_bytes:
        Macro capacity.  Accesses beyond it raise :class:`AddressError`.
    vdd:
        Supply voltage; timing/power are derived through the NVSim-style
        estimator so a bank built at (64 kB, 1.2 V) reproduces Table III
        and Table V exactly.
    word_bytes:
        Access granularity.  Each :meth:`read`/:meth:`write` call moves one
        word and charges one access latency/energy, matching the per-access
        numbers of the paper's tables.
    """

    name: str
    technology: MemoryTechnology
    capacity_bytes: int
    vdd: float
    word_bytes: int = 1

    _data: bytearray = field(init=False, repr=False)
    _powered: bool = field(default=True, init=False)
    stats: BankStats = field(default_factory=BankStats, init=False)
    _estimate: NvSimResult = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"bank {self.name}: capacity must be positive, got "
                f"{self.capacity_bytes}"
            )
        if self.word_bytes <= 0 or self.capacity_bytes % self.word_bytes != 0:
            raise ConfigurationError(
                f"bank {self.name}: word size {self.word_bytes} must divide "
                f"capacity {self.capacity_bytes}"
            )
        self._data = bytearray(self.capacity_bytes)
        self._estimate = NvSimModel(self.technology).estimate(
            self.capacity_bytes, self.vdd
        )

    # -- derived characteristics -------------------------------------------------

    @property
    def read_latency_ns(self) -> float:
        """Latency of one read access (ns)."""
        return self._estimate.timing.read_ns

    @property
    def write_latency_ns(self) -> float:
        """Latency of one write access (ns)."""
        return self._estimate.timing.write_ns

    @property
    def read_energy_nj(self) -> float:
        """Dynamic energy of one read access (nJ)."""
        return self._estimate.read_energy_nj

    @property
    def write_energy_nj(self) -> float:
        """Dynamic energy of one write access (nJ)."""
        return self._estimate.write_energy_nj

    @property
    def static_power_mw(self) -> float:
        """Leakage power while powered on (mW)."""
        return self._estimate.power.static_mw

    @property
    def words(self) -> int:
        """Number of addressable words."""
        return self.capacity_bytes // self.word_bytes

    @property
    def powered(self) -> bool:
        """Whether the bank is currently powered on."""
        return self._powered

    @property
    def volatile(self) -> bool:
        """Whether power gating destroys the bank's contents."""
        return self.technology.volatile

    # -- power management ----------------------------------------------------------

    def power_off(self) -> None:
        """Gate the bank.  Volatile banks lose their contents."""
        if self._powered and self.volatile:
            self._data = bytearray(self.capacity_bytes)
        self._powered = False

    def power_on(self) -> None:
        """Un-gate the bank (wake-up latency is folded into access time)."""
        self._powered = True

    def account_idle(self, duration_ns: float) -> None:
        """Charge ``duration_ns`` of idle time at the current power state."""
        if duration_ns < 0:
            raise ConfigurationError("idle duration must be non-negative")
        if self._powered:
            self.stats.powered_time_ns += duration_ns
            self.stats.static_energy_nj += self.static_power_mw * duration_ns / 1000.0
        else:
            self.stats.gated_time_ns += duration_ns

    # -- functional accesses ---------------------------------------------------------

    def _check_access(self, address: int, length: int) -> None:
        if not self._powered:
            raise PowerGatingError(
                f"bank {self.name}: access while power-gated"
            )
        if address < 0 or address + length > self.capacity_bytes:
            raise AddressError(
                f"bank {self.name}: access [{address}, {address + length}) "
                f"outside capacity {self.capacity_bytes}"
            )

    def read(self, address: int, length: int | None = None) -> bytes:
        """Read ``length`` bytes (default: one word) starting at ``address``.

        Charges one read access per word touched and returns the data.
        """
        length = self.word_bytes if length is None else length
        self._check_access(address, length)
        accesses = max(1, -(-length // self.word_bytes))
        self.stats.reads += accesses
        self.stats.bytes_read += length
        elapsed = accesses * self.read_latency_ns
        self.stats.dynamic_energy_nj += accesses * self.read_energy_nj
        self.stats.powered_time_ns += elapsed
        self.stats.static_energy_nj += self.static_power_mw * elapsed / 1000.0
        return bytes(self._data[address : address + length])

    def write(self, address: int, data: bytes) -> float:
        """Write ``data`` at ``address``; returns the elapsed time in ns."""
        self._check_access(address, len(data))
        accesses = max(1, -(-len(data) // self.word_bytes))
        self._data[address : address + len(data)] = data
        self.stats.writes += accesses
        self.stats.bytes_written += len(data)
        elapsed = accesses * self.write_latency_ns
        self.stats.dynamic_energy_nj += accesses * self.write_energy_nj
        self.stats.powered_time_ns += elapsed
        self.stats.static_energy_nj += self.static_power_mw * elapsed / 1000.0
        return elapsed

    def charge_accesses(self, reads: int = 0, writes: int = 0) -> float:
        """Charge time/energy for bulk accesses without moving data.

        The cycle engine uses this fast path when simulating whole layers
        whose functional behaviour is validated elsewhere.  Returns the
        elapsed time in nanoseconds (reads and writes serialise on the
        bank's single port).
        """
        if reads < 0 or writes < 0:
            raise ConfigurationError("access counts must be non-negative")
        if (reads or writes) and not self._powered:
            raise PowerGatingError(f"bank {self.name}: access while power-gated")
        self.stats.reads += reads
        self.stats.writes += writes
        self.stats.bytes_read += reads * self.word_bytes
        self.stats.bytes_written += writes * self.word_bytes
        elapsed = reads * self.read_latency_ns + writes * self.write_latency_ns
        self.stats.dynamic_energy_nj += (
            reads * self.read_energy_nj + writes * self.write_energy_nj
        )
        self.stats.powered_time_ns += elapsed
        self.stats.static_energy_nj += self.static_power_mw * elapsed / 1000.0
        return elapsed

    def peek(self, address: int, length: int) -> bytes:
        """Read without charging latency/energy (testing/debug aid)."""
        if address < 0 or address + length > self.capacity_bytes:
            raise AddressError(
                f"bank {self.name}: peek [{address}, {address + length}) "
                f"outside capacity {self.capacity_bytes}"
            )
        return bytes(self._data[address : address + length])

    def reset_stats(self) -> None:
        """Zero the accumulated statistics (contents are untouched)."""
        self.stats = BankStats()
