"""Voltage-parameterised memory and PE technology models (45 nm).

The paper reports two operating points per component (Table III latencies,
Table V powers): the HP cluster at 1.2 V and the LP cluster at 0.8 V.  To
support sweeps beyond those two voltages — and to play the role NVSim plays
in the paper — each quantity is modelled with a physically-shaped
two-parameter law fitted *exactly* through both published points:

* **latency** follows the alpha-power delay law,
  ``t(V) = t_offset + t_scale * V / (V - V_TH)**ALPHA``;
* **dynamic power** is a quadratic-plus-linear CV²f-style fit,
  ``p(V) = a * V**2 + b * V``;
* **static (leakage) power** is exponential in V,
  ``p(V) = a * exp(b * V)``.

Because each law has two free coefficients and we fit through two points,
the published tables are reproduced bit-exactly at 1.2 V and 0.8 V, while
intermediate voltages interpolate smoothly.  Fits are valid over roughly
0.6–1.3 V; outside that range the models extrapolate and should be treated
as indicative only.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Threshold voltage assumed by the alpha-power delay law (45 nm bulk).
V_TH = 0.35
#: Velocity-saturation exponent of the alpha-power law.
ALPHA = 1.3

#: Operating voltages of the two clusters (paper, Section IV-A).
HP_VDD = 1.2
LP_VDD = 0.8

#: Reference macro capacity for the calibration points (64 kB per bank).
REFERENCE_CAPACITY_BYTES = 64 * 1024


def _alpha_power(v: float) -> float:
    """Basis function of the alpha-power delay law."""
    if v <= V_TH:
        raise ConfigurationError(
            f"supply voltage {v} V must exceed the threshold voltage {V_TH} V"
        )
    return v / (v - V_TH) ** ALPHA


@dataclass(frozen=True)
class _TwoPointLatencyFit:
    """Latency law fitted through (HP_VDD, hp_value) and (LP_VDD, lp_value)."""

    offset: float
    scale: float

    @classmethod
    def fit(cls, hp_value: float, lp_value: float) -> "_TwoPointLatencyFit":
        f_hp = _alpha_power(HP_VDD)
        f_lp = _alpha_power(LP_VDD)
        scale = (lp_value - hp_value) / (f_lp - f_hp)
        offset = hp_value - scale * f_hp
        return cls(offset=offset, scale=scale)

    def __call__(self, vdd: float) -> float:
        return self.offset + self.scale * _alpha_power(vdd)


@dataclass(frozen=True)
class _TwoPointDynamicFit:
    """Dynamic-power law ``a*V**2 + b*V`` through the two published points."""

    a: float
    b: float

    @classmethod
    def fit(cls, hp_value: float, lp_value: float) -> "_TwoPointDynamicFit":
        # Solve [V_hp^2 V_hp; V_lp^2 V_lp] [a b]^T = [hp lp]^T.
        det = HP_VDD**2 * LP_VDD - LP_VDD**2 * HP_VDD
        a = (hp_value * LP_VDD - lp_value * HP_VDD) / det
        b = (lp_value * HP_VDD**2 - hp_value * LP_VDD**2) / det
        return cls(a=a, b=b)

    def __call__(self, vdd: float) -> float:
        return self.a * vdd**2 + self.b * vdd


@dataclass(frozen=True)
class _TwoPointLeakageFit:
    """Leakage law ``a*exp(b*V)`` through the two published points."""

    a: float
    b: float

    @classmethod
    def fit(cls, hp_value: float, lp_value: float) -> "_TwoPointLeakageFit":
        if hp_value <= 0 or lp_value <= 0:
            raise ConfigurationError("leakage calibration points must be positive")
        b = math.log(hp_value / lp_value) / (HP_VDD - LP_VDD)
        a = hp_value / math.exp(b * HP_VDD)
        return cls(a=a, b=b)

    def __call__(self, vdd: float) -> float:
        return self.a * math.exp(self.b * vdd)


@dataclass(frozen=True)
class MemoryTechnology:
    """A memory technology calibrated at the paper's two operating points.

    All latency values are in nanoseconds and all power values in
    milliwatts, for a 64 kB macro at a 45 nm node.  ``volatile`` records
    whether the cell loses its contents when power-gated: SRAM does,
    STT-MRAM does not — this asymmetry is what lets HH-PIM gate MRAM banks
    between accesses while keeping their weights.
    """

    name: str
    volatile: bool
    write_endurance: float
    #: (HP value @1.2 V, LP value @0.8 V) calibration pairs.
    read_latency_ns: tuple
    write_latency_ns: tuple
    read_power_mw: tuple
    write_power_mw: tuple
    static_power_mw: tuple

    def _fit_latency(self, pair: tuple) -> _TwoPointLatencyFit:
        return _TwoPointLatencyFit.fit(*pair)

    def read_latency(self, vdd: float) -> float:
        """Read latency (ns) of a 64 kB macro at supply ``vdd``."""
        return self._fit_latency(self.read_latency_ns)(vdd)

    def write_latency(self, vdd: float) -> float:
        """Write latency (ns) of a 64 kB macro at supply ``vdd``."""
        return self._fit_latency(self.write_latency_ns)(vdd)

    def read_power(self, vdd: float) -> float:
        """Dynamic read power (mW) at supply ``vdd``."""
        return _TwoPointDynamicFit.fit(*self.read_power_mw)(vdd)

    def write_power(self, vdd: float) -> float:
        """Dynamic write power (mW) at supply ``vdd``."""
        return _TwoPointDynamicFit.fit(*self.write_power_mw)(vdd)

    def static_power(self, vdd: float) -> float:
        """Leakage power (mW) of a powered-on 64 kB macro at ``vdd``."""
        return _TwoPointLeakageFit.fit(*self.static_power_mw)(vdd)


@dataclass(frozen=True)
class PeTechnology:
    """Processing-element timing/power, calibrated like the memories.

    The PE performs one INT8 multiply-accumulate per operation; Table III
    gives its latency (5.52 ns @1.2 V, 10.68 ns @0.8 V) and Table V its
    dynamic/static power.
    """

    name: str
    mac_latency_ns: tuple
    dynamic_power_mw: tuple
    static_power_mw: tuple

    def mac_latency(self, vdd: float) -> float:
        """Latency (ns) of one MAC operation at supply ``vdd``."""
        return _TwoPointLatencyFit.fit(*self.mac_latency_ns)(vdd)

    def dynamic_power(self, vdd: float) -> float:
        """Dynamic power (mW) while computing at supply ``vdd``."""
        return _TwoPointDynamicFit.fit(*self.dynamic_power_mw)(vdd)

    def static_power(self, vdd: float) -> float:
        """Leakage power (mW) of a powered-on PE at supply ``vdd``."""
        return _TwoPointLeakageFit.fit(*self.static_power_mw)(vdd)


#: 45 nm 6T SRAM macro; calibration values are Table III / Table V rows.
SRAM_45NM = MemoryTechnology(
    name="SRAM",
    volatile=True,
    write_endurance=math.inf,
    read_latency_ns=(1.12, 1.41),
    write_latency_ns=(1.12, 1.41),
    read_power_mw=(508.93, 177.3),
    write_power_mw=(500.0, 177.3),
    static_power_mw=(23.29, 5.45),
)

#: 45 nm STT-MRAM macro; calibration values are Table III / Table V rows.
STT_MRAM_45NM = MemoryTechnology(
    name="STT-MRAM",
    volatile=False,
    write_endurance=1e12,
    read_latency_ns=(2.62, 2.96),
    write_latency_ns=(11.81, 14.65),
    read_power_mw=(428.48, 179.05),
    write_power_mw=(133.78, 47.78),
    static_power_mw=(2.98, 0.84),
)

#: 45 nm INT8 MAC processing element (Table III latency, Table V power).
PE_45NM = PeTechnology(
    name="PE",
    mac_latency_ns=(5.52, 10.68),
    dynamic_power_mw=(0.9, 0.51),
    static_power_mw=(0.48, 0.25),
)
