"""Hybrid MRAM + SRAM memory of one PIM module.

Each PIM module in the paper couples a 64 kB STT-MRAM bank with a 64 kB
SRAM bank (Table I).  :class:`HybridMemory` bundles the two banks, exposes
a flat address map (MRAM first, then SRAM) and implements the LOAD-state
synchronisation the paper describes: when a computation pulls operands from
*both* banks, the module must wait for the slower of the two reads before
the PE can start.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import AddressError, ConfigurationError
from .bank import BankStats, MemoryBank
from .technology import SRAM_45NM, STT_MRAM_45NM, MemoryTechnology


class BankKind(str, Enum):
    """The two bank roles inside a hybrid PIM-module memory."""

    MRAM = "mram"
    SRAM = "sram"


@dataclass(frozen=True)
class HybridAddress:
    """A decoded hybrid-memory address: which bank, and the offset in it."""

    bank: BankKind
    offset: int


class HybridMemory:
    """MRAM + SRAM bank pair with a flat address map.

    The flat map places MRAM at ``[0, mram_capacity)`` and SRAM at
    ``[mram_capacity, mram_capacity + sram_capacity)``; the PIM controller's
    address generator uses it to steer inter-module transfers.
    """

    def __init__(
        self,
        name: str,
        vdd: float,
        mram_capacity: int = 64 * 1024,
        sram_capacity: int = 64 * 1024,
        mram_technology: MemoryTechnology = STT_MRAM_45NM,
        sram_technology: MemoryTechnology = SRAM_45NM,
        word_bytes: int = 1,
    ) -> None:
        if mram_capacity < 0 or sram_capacity < 0:
            raise ConfigurationError("bank capacities must be non-negative")
        if mram_capacity == 0 and sram_capacity == 0:
            raise ConfigurationError(
                f"hybrid memory {name}: at least one bank must be present"
            )
        self.name = name
        self.vdd = vdd
        self.banks: dict[BankKind, MemoryBank] = {}
        if mram_capacity:
            self.banks[BankKind.MRAM] = MemoryBank(
                name=f"{name}.mram",
                technology=mram_technology,
                capacity_bytes=mram_capacity,
                vdd=vdd,
                word_bytes=word_bytes,
            )
        if sram_capacity:
            self.banks[BankKind.SRAM] = MemoryBank(
                name=f"{name}.sram",
                technology=sram_technology,
                capacity_bytes=sram_capacity,
                vdd=vdd,
                word_bytes=word_bytes,
            )
        self._mram_capacity = mram_capacity
        self._sram_capacity = sram_capacity

    # -- address map ------------------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the hybrid memory."""
        return self._mram_capacity + self._sram_capacity

    def bank(self, kind: BankKind) -> MemoryBank:
        """Return the bank of the given kind; raises if absent."""
        try:
            return self.banks[kind]
        except KeyError:
            raise AddressError(
                f"hybrid memory {self.name} has no {kind.value} bank"
            ) from None

    def decode(self, address: int) -> HybridAddress:
        """Map a flat address to (bank, offset)."""
        if 0 <= address < self._mram_capacity:
            return HybridAddress(BankKind.MRAM, address)
        if self._mram_capacity <= address < self.capacity_bytes:
            return HybridAddress(BankKind.SRAM, address - self._mram_capacity)
        raise AddressError(
            f"hybrid memory {self.name}: flat address {address} outside "
            f"[0, {self.capacity_bytes})"
        )

    def encode(self, decoded: HybridAddress) -> int:
        """Map (bank, offset) back to a flat address."""
        bank = self.bank(decoded.bank)
        if not 0 <= decoded.offset < bank.capacity_bytes:
            raise AddressError(
                f"hybrid memory {self.name}: offset {decoded.offset} outside "
                f"{decoded.bank.value} bank"
            )
        base = 0 if decoded.bank is BankKind.MRAM else self._mram_capacity
        return base + decoded.offset

    # -- functional access through the flat map ----------------------------------

    def read(self, address: int, length: int = 1) -> bytes:
        """Read ``length`` bytes through the flat map (single-bank only)."""
        where = self.decode(address)
        return self.bank(where.bank).read(where.offset, length)

    def write(self, address: int, data: bytes) -> float:
        """Write ``data`` through the flat map (single-bank only)."""
        where = self.decode(address)
        return self.bank(where.bank).write(where.offset, data)

    # -- LOAD-state synchronisation ----------------------------------------------

    def load_operands(self, counts: dict) -> float:
        """Time (ns) to load a mixed operand set in the LOAD state.

        ``counts`` maps :class:`BankKind` to the number of operands pulled
        from that bank.  The PIM module interface reads each bank serially
        (one port per bank), but the two banks proceed concurrently; the
        controller then synchronises on the slower stream, exactly as the
        paper's variable-operand LOAD logic does.
        """
        worst = 0.0
        for kind, count in counts.items():
            if count < 0:
                raise ConfigurationError("operand counts must be non-negative")
            if count == 0:
                continue
            bank = self.bank(BankKind(kind))
            worst = max(worst, count * bank.read_latency_ns)
        return worst

    # -- power management and accounting -------------------------------------------

    def power_off(self, kind: BankKind | None = None) -> None:
        """Gate one bank, or every bank when ``kind`` is None."""
        targets = [self.bank(kind)] if kind is not None else self.banks.values()
        for bank in targets:
            bank.power_off()

    def power_on(self, kind: BankKind | None = None) -> None:
        """Un-gate one bank, or every bank when ``kind`` is None."""
        targets = [self.bank(kind)] if kind is not None else self.banks.values()
        for bank in targets:
            bank.power_on()

    def account_idle(self, duration_ns: float) -> None:
        """Charge idle time on every bank at its current power state."""
        for bank in self.banks.values():
            bank.account_idle(duration_ns)

    def stats(self) -> BankStats:
        """Merged statistics of all banks."""
        merged = BankStats()
        for bank in self.banks.values():
            merged = merged.merge(bank.stats)
        return merged

    def reset_stats(self) -> None:
        """Zero statistics on every bank."""
        for bank in self.banks.values():
            bank.reset_stats()
