"""Memory subsystem: technology models, NVSim-style estimation, banks.

The paper obtains its memory latency (Table III) and power (Table V)
numbers from NVSim at a 45 nm node, evaluating SRAM and STT-MRAM macros at
1.2 V (HP cluster) and 0.8 V (LP cluster).  This package provides:

* :mod:`repro.memory.technology` — voltage-parameterised technology models
  for SRAM and STT-MRAM, calibrated so that the published operating points
  are reproduced exactly;
* :mod:`repro.memory.nvsim` — an NVSim-style analytical estimator that maps
  (technology, capacity, voltage) to access timing and power;
* :mod:`repro.memory.bank` — a functional, power-gatable memory bank that
  stores bytes and accounts for every access's latency and energy;
* :mod:`repro.memory.hybrid` — the MRAM + SRAM hybrid memory inside each
  PIM module.
"""

from .technology import (
    MemoryTechnology,
    PeTechnology,
    SRAM_45NM,
    STT_MRAM_45NM,
    PE_45NM,
    HP_VDD,
    LP_VDD,
)
from .nvsim import AccessTiming, AccessPower, NvSimModel, estimate
from .bank import BankStats, MemoryBank
from .hybrid import HybridMemory

__all__ = [
    "MemoryTechnology",
    "PeTechnology",
    "SRAM_45NM",
    "STT_MRAM_45NM",
    "PE_45NM",
    "HP_VDD",
    "LP_VDD",
    "AccessTiming",
    "AccessPower",
    "NvSimModel",
    "estimate",
    "BankStats",
    "MemoryBank",
    "HybridMemory",
]
