"""NVSim-style analytical memory estimator.

The paper feeds NVSim [Dong et al., TCAD'12] a 45 nm process, a 64 kB macro
and a supply voltage, and reads back access latencies (Table III) and
powers (Table V).  This module plays the same role: given a
:class:`~repro.memory.technology.MemoryTechnology`, a capacity and a
voltage it returns an :class:`AccessTiming` and :class:`AccessPower`.

Capacity scaling follows the standard first-order macro model NVSim itself
implements: word/bit-line delay and dynamic energy grow with the square
root of the mat area (so ``sqrt(capacity)``), while leakage grows linearly
with the number of cells.  At the 64 kB reference capacity the estimator
therefore reproduces the published tables exactly, and away from it the
trends are physically shaped.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .technology import REFERENCE_CAPACITY_BYTES, MemoryTechnology


@dataclass(frozen=True)
class AccessTiming:
    """Per-access latencies of a memory macro, in nanoseconds."""

    read_ns: float
    write_ns: float

    def __post_init__(self) -> None:
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise ConfigurationError("access latencies must be positive")


@dataclass(frozen=True)
class AccessPower:
    """Power profile of a memory macro, in milliwatts.

    ``read_mw``/``write_mw`` are drawn only while an access of that kind is
    in flight; ``static_mw`` is drawn whenever the macro is powered on.
    """

    read_mw: float
    write_mw: float
    static_mw: float

    @property
    def read_energy_nj(self) -> float:
        """Placeholder kept intentionally absent; energy needs a latency."""
        raise AttributeError(
            "energy per access depends on latency; use NvSimResult.read_energy_nj"
        )


@dataclass(frozen=True)
class NvSimResult:
    """Joint timing/power estimate for one (technology, capacity, vdd)."""

    technology: str
    capacity_bytes: int
    vdd: float
    timing: AccessTiming
    power: AccessPower

    @property
    def read_energy_nj(self) -> float:
        """Dynamic energy of one read access, in nanojoules."""
        return self.power.read_mw * self.timing.read_ns / 1000.0

    @property
    def write_energy_nj(self) -> float:
        """Dynamic energy of one write access, in nanojoules."""
        return self.power.write_mw * self.timing.write_ns / 1000.0


class NvSimModel:
    """Analytical estimator for a single memory technology.

    Example
    -------
    >>> from repro.memory import NvSimModel, SRAM_45NM
    >>> model = NvSimModel(SRAM_45NM)
    >>> result = model.estimate(capacity_bytes=64 * 1024, vdd=1.2)
    >>> round(result.timing.read_ns, 2)
    1.12
    """

    #: Exponent of the capacity scaling of latency and dynamic power.
    AREA_EXPONENT = 0.5

    def __init__(self, technology: MemoryTechnology) -> None:
        self.technology = technology

    def _area_factor(self, capacity_bytes: int) -> float:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity_bytes}"
            )
        return (capacity_bytes / REFERENCE_CAPACITY_BYTES) ** self.AREA_EXPONENT

    def _leak_factor(self, capacity_bytes: int) -> float:
        return capacity_bytes / REFERENCE_CAPACITY_BYTES

    def estimate(
        self,
        capacity_bytes: int,
        vdd: float,
        macro_bytes: int | None = REFERENCE_CAPACITY_BYTES,
    ) -> NvSimResult:
        """Estimate timing and power for ``capacity_bytes`` of memory.

        Capacities above ``macro_bytes`` are built by *banking* multiple
        macros (the usual practice — and what makes the paper's single
        Table III latency row apply to both its 64 kB and 128 kB
        configurations): per-access timing and dynamic power are those of
        one macro, while leakage grows with the number of macros.  Pass
        ``macro_bytes=None`` to force a single monolithic macro instead.
        """
        if macro_bytes is not None and macro_bytes <= 0:
            raise ConfigurationError("macro size must be positive")
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity_bytes}"
            )
        access_bytes = (
            capacity_bytes if macro_bytes is None
            else min(capacity_bytes, macro_bytes)
        )
        area = self._area_factor(access_bytes)
        leak = self._leak_factor(capacity_bytes)
        tech = self.technology
        timing = AccessTiming(
            read_ns=tech.read_latency(vdd) * area,
            write_ns=tech.write_latency(vdd) * area,
        )
        power = AccessPower(
            read_mw=tech.read_power(vdd) * area,
            write_mw=tech.write_power(vdd) * area,
            static_mw=tech.static_power(vdd) * leak,
        )
        return NvSimResult(
            technology=tech.name,
            capacity_bytes=capacity_bytes,
            vdd=vdd,
            timing=timing,
            power=power,
        )


def estimate(
    technology: MemoryTechnology, capacity_bytes: int, vdd: float
) -> NvSimResult:
    """Convenience wrapper: one-shot estimate without keeping a model."""
    return NvSimModel(technology).estimate(capacity_bytes, vdd)
