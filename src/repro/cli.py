"""Command-line interface: regenerate paper artifacts from the shell.

Usage::

    python -m repro table3                 # Table III latencies
    python -m repro table5                 # Table V power
    python -m repro fig4                   # Fig. 4 scenario strips
    python -m repro fig6 --model ResNet-18 # Fig. 6 sweep
    python -m repro run --case 3           # one scenario, all architectures
    python -m repro run --case 1 --json    # machine-readable run summary
    python -m repro sweep --model ResNet-18 --case 1 --case 2
    python -m repro sweep --store runs/ --shard 0/4   # fill shard 0 of 4
    python -m repro sweep --store runs/ --resume      # stitch, zero recompute
    python -m repro sweep --store runs/ --spill       # bounded-memory sweep
    python -m repro sweep --store runs/ --workers 4   # work-stealing pool
    python -m repro sweep-worker --connect HOST:PORT  # attach one worker
    python -m repro fleet --devices 4 --dispatch least_loaded --scenario bursty
    python -m repro qos --scenario bursty --autoscaler queue_depth --json
    python -m repro scenarios              # registered scenarios, previewed
    python -m repro bench --quick          # perf harness -> BENCH_*.json
    python -m repro trend --current out/   # compare vs committed baselines
    python -m repro cache info             # persistent LUT cache state
    python -m repro store info             # persistent experiment store
    python -m repro docs                   # regenerate docs/REGISTRY.md
    python -m repro list                   # registered specs
    python -m repro serve                  # resident daemon (warm engine)
    python -m repro submit --scenario bursty    # job to a running daemon
    python -m repro status --metrics       # scrape the daemon's metrics
    python -m repro shutdown               # drain the daemon and stop it
    python -m repro sweep --trace t.json   # record a Perfetto-loadable trace
    python -m repro profile t.json         # fold a trace into a phase table

Every experiment command goes through :class:`repro.api.Engine`, so
architectures, models and scenarios registered via :mod:`repro.api`
are immediately available on the command line.  Heavy artifacts accept
``--blocks/--steps`` to trade fidelity for speed, and ``--workers`` to
batch over a process pool (with ``sweep --store DIR`` it instead
spawns that many work-stealing worker processes; 0 starts a
coordinator alone for ``repro sweep-worker`` to attach to).  Library failures (bad configuration,
infeasible placements) exit with code 2 and a one-line error.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import (
    TextTable,
    render_fig4,
    render_fig6,
    render_fleet,
    render_qos,
    sparkline,
)
from .api import (
    ARCHITECTURES,
    AUTOSCALERS,
    DISPATCH,
    MODELS,
    POLICIES,
    QOS,
    SCENARIOS,
    ExperimentConfig,
)
from .api.engine import shared_engine
from .arch import TABLE_I
from .core import lutcache
from .core.placement import DEFAULT_BLOCK_COUNT, DEFAULT_TIME_STEPS
from .energy import table_v_rows
from .errors import ReproError
from .fpga import table_ii_report
from .workloads import ALL_CASES, TABLE_IV, scenario


def _cmd_table1(_args) -> str:
    table = TextTable(["Architecture", "Modules", "Memory per module"])
    for spec in TABLE_I:
        modules = f"{spec.hp.module_count} HP"
        if spec.lp:
            modules += f" + {spec.lp.module_count} LP"
        memory = []
        if spec.hp.mram_capacity:
            memory.append(f"{spec.hp.mram_capacity // 1024}kB MRAM")
        memory.append(f"{spec.hp.sram_capacity // 1024}kB SRAM")
        table.add_row(spec.name, modules, " + ".join(memory))
    return table.render()


def _cmd_table2(_args) -> str:
    return table_ii_report().render()


def _cmd_table3(_args) -> str:
    from .memory import NvSimModel, PE_45NM, SRAM_45NM, STT_MRAM_45NM
    from .memory.technology import HP_VDD, LP_VDD
    table = TextTable(["Latency (ns)", "MRAM R", "MRAM W", "SRAM R",
                       "SRAM W", "PE"])
    for label, vdd in (("HP-PIM (1.2V)", HP_VDD), ("LP-PIM (0.8V)", LP_VDD)):
        mram = NvSimModel(STT_MRAM_45NM).estimate(64 * 1024, vdd)
        sram = NvSimModel(SRAM_45NM).estimate(64 * 1024, vdd)
        table.add_row(label,
                      round(mram.timing.read_ns, 2),
                      round(mram.timing.write_ns, 2),
                      round(sram.timing.read_ns, 2),
                      round(sram.timing.write_ns, 2),
                      round(PE_45NM.mac_latency(vdd), 2))
    return table.render()


def _cmd_table4(_args) -> str:
    table = TextTable(["Model", "# Param", "# MAC", "PIM ops"])
    for model in TABLE_IV:
        table.add_row(model.name, model.params, model.macs,
                      f"{model.pim_ratio:.0%}")
    return table.render()


def _cmd_table5(_args) -> str:
    table = TextTable(["Power (mW)", "MRAM R/W", "MRAM static",
                       "SRAM R/W", "SRAM static", "PE dyn/static"])
    for row in table_v_rows():
        table.add_row(
            row.cluster,
            f"{row.mram_read_mw:.2f}/{row.mram_write_mw:.2f}",
            round(row.mram_static_mw, 2),
            f"{row.sram_read_mw:.2f}/{row.sram_write_mw:.2f}",
            round(row.sram_static_mw, 2),
            f"{row.pe_dynamic_mw:.2f}/{row.pe_static_mw:.2f}",
        )
    return table.render()


def _cmd_fig4(args) -> str:
    return render_fig4([scenario(case, slices=args.slices) for case in ALL_CASES])


def _cmd_fig6(args) -> str:
    config = ExperimentConfig(
        arch="HH-PIM", model=MODELS.canonical(args.model),
        block_count=args.blocks, time_steps=args.steps,
    )
    runtime = shared_engine().runtime(config)
    return render_fig6(runtime.lut, points=args.points)


def _base_config(args) -> ExperimentConfig:
    return ExperimentConfig(
        slices=args.slices, block_count=args.blocks, time_steps=args.steps,
        lut_cache=not getattr(args, "no_cache", False),
    )


def _resolve_axis(values, registry) -> list:
    """Canonicalise a repeatable CLI axis, defaulting to every key."""
    if not values:
        return registry.keys()
    return [registry.canonical(value) for value in values]


def _results_table(results) -> TextTable:
    """Per-run comparison table with savings against HH-PIM if present."""
    hh = {
        (r.model, r.scenario): r.total_energy_nj
        for r in results
        if r.arch == "HH-PIM"
    }
    table = TextTable(["Architecture", "Model", "Scenario", "Energy (mJ)",
                       "Mean power (mW)", "Deadlines", "Savings vs HH"])
    for record in results:
        reference = hh.get((record.model, record.scenario))
        if reference is None or record.arch == "HH-PIM":
            saving = "-"
        else:
            saving = f"{1 - reference / record.total_energy_nj:.1%}"
        table.add_row(
            record.arch,
            record.model,
            record.scenario,
            round(record.total_energy_nj / 1e6, 2),
            round(record.mean_power_mw, 2),
            "met" if record.deadlines_met else "MISSED",
            saving,
        )
    return table


def _cmd_run(args) -> str:
    import json

    engine = shared_engine()
    configs = _base_config(args).sweep(
        arch=_resolve_axis(args.arch, ARCHITECTURES),
        model=MODELS.canonical(args.model),
        scenario=f"case{args.case}",
    )
    results = engine.run_many(configs, max_workers=args.workers)
    if args.json:
        rows = results.to_rows()
        if args.records:
            # The full per-slice export (RunResult.to_dict), so
            # downstream tools never touch dataclass internals.
            for row, record in zip(rows, results):
                row["records"] = record.result.to_dict()["records"]
        return json.dumps(rows, indent=2)
    first = results[0]
    header = (
        f"{first.model}, Case {args.case} "
        f"({ALL_CASES[args.case - 1].label}), "
        f"{args.slices} slices of {first.result.t_slice_ns / 1e6:.1f} ms"
    )
    return header + "\n\n" + _results_table(results).render()


def _cmd_sweep(args) -> str:
    from .store import Store, parse_shard, select_shard

    # Reject malformed/out-of-range shards before any grid work so the
    # failure is a clean one-liner, not a traceback mid-expansion.
    if args.shard is not None:
        parse_shard(args.shard)
    engine = shared_engine()
    archs = _resolve_axis(args.arch, ARCHITECTURES)
    models = _resolve_axis(args.model, MODELS)
    cases = args.case or [case.value for case in ALL_CASES]
    configs = _base_config(args).sweep(
        arch=archs,
        model=models,
        scenario=[f"case{case}" for case in cases],
    )
    if args.shard:
        configs = select_shard(configs, args.shard)
    store = Store(args.store) if args.store else None
    if store is None and args.resume:
        raise ReproError("--resume needs --store DIR to resume from")
    if store is None and args.spill:
        raise ReproError("--spill needs --store DIR to spill records into")
    dist_status: dict = {}
    if store is not None and args.workers is not None:
        # With a store attached, --workers N means the work-stealing
        # executor: a coordinator plus N worker *processes* filling the
        # store (0 = coordinator only; attach via repro sweep-worker).
        from .dist.coordinator import DEFAULT_CHUNK_SIZE, DEFAULT_LEASE_S
        from .dist.executor import distributed_sweep

        results = distributed_sweep(
            configs,
            store,
            workers=args.workers,
            chunk_size=args.chunk or DEFAULT_CHUNK_SIZE,
            lease_s=args.lease or DEFAULT_LEASE_S,
            port=args.coordinator_port,
            status_sink=dist_status.update,
        )
    else:
        results = engine.run_many(
            configs, max_workers=args.workers, store=store,
            resume=args.resume, spill=args.spill,
        )
    if args.csv:
        results.to_csv(args.csv)
    if args.json:
        return results.to_json()

    grid_note = (
        f"shard {args.shard} of the grid: {len(results)} runs"
        if args.shard
        else f"{len(results)} runs "
        f"({len(archs)} architectures x {len(models)} models x "
        f"{len(cases)} scenarios)"
    )
    if dist_status:
        chunks = dist_status["chunks"]
        detail = (
            f"distributed over {len(dist_status['workers'])} workers: "
            f"{chunks['completed']} chunks done, {chunks['stolen']} stolen"
        )
    else:
        store_note = (
            f", store hits: {engine.stats.store_hits}, "
            f"misses: {engine.stats.store_misses}"
            if store is not None
            else ""
        )
        detail = (
            f"LUTs built: {engine.stats.lut_builds}, reused: "
            f"{engine.stats.lut_hits}, DP builds: {engine.stats.dp_builds}, "
            f"disk hits: {engine.stats.lut_disk_hits}" + store_note
        )
    lines = [
        grid_note + ", " + detail,
        "",
        _results_table(results).render(),
    ]
    aggregate = results.aggregate(by=args.by)
    summary = TextTable([args.by, "runs", "mean energy (mJ)",
                         "energy/inf (uJ)", "deadline rate"])
    for key, stats in aggregate.items():
        summary.add_row(
            key,
            stats.runs,
            round(stats.mean_energy_nj / 1e6, 2),
            round(stats.energy_per_inference_nj / 1e3, 2),
            f"{stats.deadline_rate:.0%}",
        )
    lines += ["", f"aggregate by {args.by}:", summary.render()]
    if args.csv:
        lines.append(f"\nwrote {len(results)} rows to {args.csv}")
    return "\n".join(lines)


def _cmd_fleet(args) -> str:
    import json

    engine = shared_engine()
    config = ExperimentConfig(
        arch=ARCHITECTURES.canonical(args.arch),
        model=MODELS.canonical(args.model),
        scenario=SCENARIOS.canonical(args.scenario),
        fleet=args.devices,
        dispatch=DISPATCH.canonical(args.dispatch),
        slices=args.slices,
        peak=args.peak,
        block_count=args.blocks,
        time_steps=args.steps,
        lut_cache=not args.no_cache,
    )
    result = engine.run_fleet(config)
    if args.json:
        return json.dumps(
            result.to_dict(include_records=args.records), indent=2
        )
    header = (
        f"{config.arch}/{config.model} x{args.devices} "
        f"({result.dispatch}), scenario {result.scenario.label}, "
        f"{len(result.scenario)} slices"
    )
    return header + "\n\n" + render_fleet(result)


def _qos_config(args) -> ExperimentConfig:
    """The fully keyed config behind ``repro qos`` and ``repro submit``."""
    return ExperimentConfig(
        arch=ARCHITECTURES.canonical(args.arch),
        model=MODELS.canonical(args.model),
        scenario=SCENARIOS.canonical(args.scenario),
        fleet=args.devices,
        max_fleet=args.max_devices,
        dispatch=DISPATCH.canonical(args.dispatch),
        qos=QOS.canonical(args.discipline),
        autoscaler=AUTOSCALERS.canonical(args.autoscaler),
        slo=args.slo,
        batch=args.batch,
        slices=args.slices,
        peak=args.peak,
        seed=args.seed,
        block_count=args.blocks,
        time_steps=args.steps,
        lut_cache=not args.no_cache,
    )


def _cmd_qos(args) -> str:
    import json

    engine = shared_engine()
    config = _qos_config(args)
    result = engine.run_qos(config)
    if args.json:
        return json.dumps(
            result.to_dict(include_records=args.records), indent=2
        )
    header = (
        f"{config.arch}/{config.model}, {args.devices}"
        f"->{config.max_fleet or args.devices} devices, "
        f"scenario {result.scenario.label}, "
        f"{result.total_requests} requests over "
        f"{len(result.scenario)} slices"
    )
    return header + "\n\n" + render_qos(result)


def _cmd_serve(args) -> str:
    """Run the resident serving daemon until SHUTDOWN or a signal."""
    from .service.daemon import ServeDaemon

    daemon = ServeDaemon(
        host=args.host,
        port=args.port,
        store=args.store,
        workers=args.workers,
        metrics_file=args.metrics_file,
        pidfile=args.pidfile,
        trace=args.trace,
    )
    final = daemon.run()
    jobs = final["jobs"]
    return (
        f"served {jobs['done'] + jobs['failed']} jobs "
        f"({jobs['failed']} failed) over {final['uptime_s']:.1f}s"
    )


def _cmd_submit(args) -> str:
    import json

    from .service.client import ServeClient

    client = ServeClient(host=args.host, port=args.port)
    job_id = client.submit(
        _qos_config(args), kind=args.kind, records=args.records
    )
    if args.no_wait:
        return job_id
    payload = client.result(job_id, timeout=args.timeout)
    if args.json:
        return json.dumps(payload, indent=2)
    result = payload["result"]
    if payload["kind"] == "qos":
        return (
            f"{job_id}: {result['completed']}/{result['total_requests']} "
            f"requests, SLO attainment {result['slo_attainment']:.1%}, "
            f"energy {result['total_energy_nj'] / 1e6:.2f} mJ"
        )
    row = payload["row"]
    return (
        f"{job_id}: {row['arch']}/{row['model']} on {row['scenario']}, "
        f"energy {row['total_energy_nj'] / 1e6:.2f} mJ, deadlines "
        + ("met" if row["deadlines_met"] else "MISSED")
    )


def _cmd_sweep_worker(args) -> str:
    """Attach one work-stealing worker to a running sweep coordinator."""
    import json

    from .dist.worker import run_worker

    host, sep, port = args.connect.rpartition(":")
    if not sep or not host or not port.isdigit():
        raise ReproError(
            f"--connect must look like HOST:PORT, got {args.connect!r}"
        )
    summary = run_worker(
        host, int(port), worker=args.id, max_workers=args.workers
    )
    if args.json:
        return json.dumps(summary)
    abandoned = (
        f", {summary['abandoned']} abandoned" if summary["abandoned"] else ""
    )
    return (
        f"{summary['worker']}: {summary['chunks']} chunks, "
        f"{summary['configs']} configs{abandoned}"
    )


def _cmd_profile(args) -> str:
    """Fold a recorded trace file into the per-phase profile table."""
    from .obs.profile import profile_file

    try:
        return profile_file(args.file)
    except (OSError, ValueError, KeyError) as error:
        raise ReproError(
            f"cannot profile {args.file}: {error}"
        ) from error


def _cmd_fuzz(args) -> str:
    """Fuzz the engine (or replay stored regressions) and report."""
    import json as _json

    from .fuzz import replay_stored, report_json, run_fuzz
    from .store import Store

    store = Store(args.store)
    if args.replay:
        reports = replay_stored(store)
        payload = {
            "replayed": len(reports),
            "failures": sum(1 for report in reports if report.failed),
            "reports": [report.to_dict() for report in reports],
        }
        if args.json:
            text = _json.dumps(payload, indent=2, sort_keys=True)
        else:
            lines = [f"replayed {len(reports)} stored fuzz regression(s)"]
            for report in reports:
                status = "FAIL" if report.failed else "ok"
                lines.append(
                    f"  [{status}] {report.store_key} "
                    f"seed={report.case.case_seed} "
                    f"program={report.case.label}"
                )
                for violation in report.violations:
                    lines.append(
                        f"         {violation.invariant}: {violation.detail}"
                    )
            text = "\n".join(lines)
        if payload["failures"]:
            print(text)
            raise ReproError(
                f"fuzz replay: {payload['failures']} of {len(reports)} "
                f"stored regression(s) still fail"
            )
        return text
    if args.cases < 0:
        raise ReproError(f"--cases must be non-negative, got {args.cases}")
    report = run_fuzz(
        args.seed, args.cases, store=store, shrink=not args.no_shrink
    )
    text = report_json(report) if args.json else report.render()
    if report.violation_count:
        print(text)
        raise ReproError(
            f"fuzz: {report.violation_count} invariant violation(s) across "
            f"{len(report.failures)} of {len(report.reports)} cases (seed "
            f"{args.seed}); failures persisted — inspect with "
            f"'repro store ls --kind fuzz', replay with 'repro fuzz "
            f"--replay'"
        )
    return text


def _render_coordinator_status(state: dict) -> str:
    """The text body ``repro status`` prints for a sweep coordinator."""
    chunks = state["chunks"]
    configs = state["configs"]
    lines = [
        f"sweep coordinator pid {state['pid']} at "
        f"{state['host']}:{state['port']}"
        + (", done" if state["done"] else ""),
        f"chunks: {chunks['completed']}/{chunks['total']} done, "
        f"{chunks['leased']} leased, {chunks['pending']} pending, "
        f"{chunks['stolen']} stolen",
        f"configs: {configs['completed']}/{configs['total']} "
        f"(store {state['store']}, lease {state['lease_s']:.0f}s)",
        f"obs: {state.get('spans_recorded', 0)} spans recorded, "
        f"{state.get('events_logged', 0)} events logged",
    ]
    for name, worker in state["workers"].items():
        lines.append(
            f"  {name}  {worker['chunks_completed']} chunks, "
            f"{worker['configs_completed']} configs, "
            f"{worker['throughput_configs_s']:.2f} configs/s"
        )
    return "\n".join(lines)


def _cmd_status(args) -> str:
    import json

    from .service.client import ServeClient

    client = ServeClient(host=args.host, port=args.port)
    if args.metrics:
        return client.metrics().rstrip("\n")
    state = client.status(args.job)
    if args.json:
        return json.dumps(state, indent=2)
    if "chunks" in state:  # a sweep coordinator answered, not a daemon
        return _render_coordinator_status(state)
    if args.job is not None:
        job = state["job"]
        wall = f", {job['wall_s']:.3f}s" if job["wall_s"] is not None else ""
        error = f" ({job['error']})" if job["error"] else ""
        return f"{job['job_id']}: {job['state']}{wall} [{job['label']}]{error}"
    jobs = state["jobs"]
    engine = state["engine"]
    lines = [
        f"daemon pid {state['pid']} at {state['host']}:{state['port']}, "
        f"up {state['uptime_s']:.1f}s"
        + (", draining" if state["draining"] else ""),
        f"jobs: {jobs['done']} done, {jobs['failed']} failed, "
        f"{jobs['running']} running, {jobs['pending']} queued",
        f"engine: {engine['runs']} runs, {engine['dp_builds']} DP builds, "
        f"{engine['lut_hits']} LUT hits ({engine['lut_hit_rate']:.0%}), "
        f"{engine['store_hits']} store hits",
        f"obs: {state.get('spans_recorded', 0)} spans recorded, "
        f"{state.get('events_logged', 0)} events logged",
    ]
    for job in state["recent"]:
        wall = f" {job['wall_s']:.3f}s" if job["wall_s"] is not None else ""
        lines.append(
            f"  {job['job_id']}  {job['state']:<8}{wall}  [{job['label']}]"
        )
    return "\n".join(lines)


def _cmd_shutdown(args) -> str:
    from .service.client import ServeClient

    client = ServeClient(host=args.host, port=args.port)
    if args.drain:
        done = client.drain(timeout=args.timeout)
        return (
            f"daemon at {args.host}:{args.port} drained ({done} jobs "
            f"done); still answering status/metrics"
        )
    client.shutdown(timeout=args.timeout)
    return f"daemon at {args.host}:{args.port} is draining and stopping"


def _cmd_scenarios(args) -> str:
    """Preview every registered scenario as a sparkline strip."""
    engine = shared_engine()
    keys = [SCENARIOS.canonical(args.only)] if args.only else SCENARIOS.keys()
    width = max(len(key) for key in keys)
    lines = []
    for key in keys:
        config = ExperimentConfig(
            scenario=key, slices=args.slices, peak=args.peak, low=args.low,
            seed=args.seed,
        )
        try:
            materialised = engine.scenario(config)
        except ReproError as error:
            lines.append(f"{key:<{width}}  (unavailable: {error})")
            continue
        lines.append(
            f"{key:<{width}}  "
            f"{sparkline(materialised.loads, materialised.peak)}  "
            f"(mean {materialised.mean_load:.1f}/slice, "
            f"peak {materialised.peak})"
        )
    return "\n".join(lines)


def _cmd_bench(args) -> str:
    import json

    from .perf import render_report, run_bench, write_reports

    report = run_bench(
        quick=args.quick,
        model=MODELS.canonical(args.model),
        block_count=args.blocks,
        time_steps=args.steps,
        repeats=args.repeats,
    )
    paths = write_reports(report, args.out)
    speedup = report["lut_build"]["speedup"]
    if args.min_speedup is not None and speedup < args.min_speedup:
        raise ReproError(
            f"perf gate failed: vectorized LUT build speedup {speedup:.2f}x "
            f"is below the required {args.min_speedup:.2f}x"
        )
    loop_speedup = report["runtime"]["speedup"]
    if (args.min_runtime_speedup is not None
            and loop_speedup < args.min_runtime_speedup):
        raise ReproError(
            f"perf gate failed: vectorized slice-loop speedup "
            f"{loop_speedup:.2f}x is below the required "
            f"{args.min_runtime_speedup:.2f}x"
        )
    qos_throughput = report["qos"]["requests_per_s"]
    if (args.min_qos_throughput is not None
            and qos_throughput < args.min_qos_throughput):
        raise ReproError(
            f"perf gate failed: QoS simulator throughput "
            f"{qos_throughput:.0f} requests/s is below the required "
            f"{args.min_qos_throughput:.0f}"
        )
    qos_speedup = report["qos"]["speedup"]
    if (args.min_qos_speedup is not None
            and qos_speedup < args.min_qos_speedup):
        raise ReproError(
            f"perf gate failed: vectorized QoS engine speedup "
            f"{qos_speedup:.2f}x is below the required "
            f"{args.min_qos_speedup:.2f}x"
        )
    resume_speedup = report["store"]["resume_speedup"]
    if (args.min_store_speedup is not None
            and resume_speedup < args.min_store_speedup):
        raise ReproError(
            f"perf gate failed: warm store-resume sweep is only "
            f"{resume_speedup:.2f}x faster than the cold sweep, below "
            f"the required {args.min_store_speedup:.2f}x"
        )
    serve_speedup = report["serve"]["speedup"]
    if (args.min_serve_speedup is not None
            and serve_speedup < args.min_serve_speedup):
        raise ReproError(
            f"perf gate failed: warm-daemon submissions are only "
            f"{serve_speedup:.2f}x faster than cold per-process engines, "
            f"below the required {args.min_serve_speedup:.2f}x"
        )
    dist_speedup = report["dist"]["speedup"]
    if (args.min_dist_speedup is not None
            and dist_speedup < args.min_dist_speedup):
        raise ReproError(
            f"perf gate failed: the {report['dist']['workers']}-worker "
            f"distributed sweep is only {dist_speedup:.2f}x faster than "
            f"one worker, below the required {args.min_dist_speedup:.2f}x"
        )
    obs_overhead = report["obs"]["disabled_overhead"]
    if (args.max_obs_overhead is not None
            and obs_overhead > args.max_obs_overhead):
        raise ReproError(
            f"perf gate failed: disabled-tracing instrumentation costs "
            f"{obs_overhead:.2%} of the untraced workload, above the "
            f"allowed {args.max_obs_overhead:.2%}"
        )
    if args.json:
        return json.dumps(report, indent=2, sort_keys=True)
    lines = [render_report(report), ""]
    lines += [f"wrote {path}" for path in paths]
    return "\n".join(lines)


def _cmd_trend(args) -> str:
    from pathlib import Path

    from .perf import compare_reports, render_markdown

    deltas = compare_reports(
        args.baseline, args.current, tolerance=args.tolerance
    )
    table = render_markdown(deltas, tolerance=args.tolerance)
    if args.summary:
        Path(args.summary).write_text(table)
    regressions = [delta for delta in deltas if delta.regressed]
    if regressions:
        worst = min(regressions, key=lambda delta: delta.ratio)
        raise ReproError(
            f"perf trend failed: {len(regressions)} of {len(deltas)} "
            f"sections regressed beyond {args.tolerance:.0%} (worst: "
            f"{worst.section} {worst.metric} at {worst.ratio:.2f}x of "
            f"baseline)\n\n{table}"
        )
    return table


def _cmd_store(args) -> str:
    from .analysis.sweeps import render_store
    from .store import Store

    store = Store(args.store)
    if args.action == "clear":
        removed = store.clear()
        return f"removed {removed} stored entries from {store.root}"
    if args.action == "ls":
        return render_store(
            store, by=args.by, kind=args.kind, limit=args.limit
        )
    state = store.info()
    kinds = ", ".join(
        f"{count} {kind}" for kind, count in state["by_kind"].items() if count
    ) or "none"
    lines = [
        f"path:        {state['path']}",
        "             (set REPRO_STORE or pass --store to relocate)",
        f"version:     v{state['version']}",
        f"entries:     {state['entries']} ({kinds}; "
        f"{state['bytes'] / 1024:.0f} kB)",
        f"quarantined: {state['quarantined']}",
    ]
    return "\n".join(lines)


def _cmd_docs(args) -> str:
    from pathlib import Path

    from . import docgen

    path = Path(args.out)
    if args.check:
        problems = docgen.audit_docstrings() + docgen.audit_registrations()
        if not docgen.registry_doc_is_fresh(path):
            problems.append(
                f"{path} is stale; regenerate it with `repro docs`"
            )
        if problems:
            raise ReproError(
                "docs gate failed:\n  " + "\n  ".join(problems)
            )
        return f"docs OK: {path} is fresh and the public API is documented"
    written = docgen.write_registry_doc(path)
    return f"wrote {written}"


def _cmd_cache(args) -> str:
    if args.action == "clear":
        removed = lutcache.clear()
        return f"removed {removed} cached LUT entries from {lutcache.cache_dir()}"
    state = lutcache.info()
    lines = [
        f"path:    {state['path']}",
        f"enabled: {state['enabled']} "
        "(set REPRO_LUT_CACHE=off to disable, or to a path to relocate)",
        f"version: v{state['version']}",
        f"entries: {state['entries']} ({state['bytes'] / 1024:.0f} kB)",
    ]
    return "\n".join(lines)


def _cmd_list(_args) -> str:
    lines = ["architectures:"]
    lines += [f"  {name}" for name in ARCHITECTURES.keys()]
    lines.append("models:")
    lines += [f"  {name}" for name in MODELS.keys()]
    lines.append("cases:")
    lines += [f"  {case.value}: {case.label}" for case in ALL_CASES]
    lines.append("scenarios:")
    lines += [f"  {name}" for name in SCENARIOS.keys()]
    lines.append("policies:")
    lines += [f"  {name}" for name in POLICIES.keys()]
    lines.append("dispatch policies:")
    lines += [f"  {name}" for name in DISPATCH.keys()]
    lines.append("queue disciplines:")
    lines += [f"  {name}" for name in QOS.keys()]
    lines.append("autoscalers:")
    lines += [f"  {name}" for name in AUTOSCALERS.keys()]
    return "\n".join(lines)


def _add_qos_config_args(parser) -> None:
    """The experiment-config flags shared by ``qos`` and ``submit``."""
    parser.add_argument("--devices", type=int, default=2,
                        help="initial fleet size (default: 2)")
    parser.add_argument("--max-devices", type=int, default=None,
                        help="autoscaler ceiling (default: --devices, i.e. "
                             "no growth)")
    parser.add_argument("--autoscaler", default="fixed",
                        help="capacity policy (fixed, threshold, queue_depth, "
                             "or a registered key)")
    parser.add_argument("--discipline", default="fifo",
                        help="queue discipline (fifo, priority, edf, or a "
                             "registered key)")
    parser.add_argument("--dispatch", default="round_robin",
                        help="dispatch policy splitting arrivals across "
                             "devices")
    parser.add_argument("--batch", type=int, default=1,
                        help="per-device batch size (requests served back to "
                             "back, completing together)")
    parser.add_argument("--slo", type=float, default=2.0,
                        help="latency SLO target in time slices (default: "
                             "the paper's 2T staging bound)")
    parser.add_argument("--arch", default="HH-PIM")
    parser.add_argument("--model", default="EfficientNet-B0")
    parser.add_argument("--scenario", default="bursty",
                        help="any registered scenario key (case1..case6, "
                             "poisson, bursty, diurnal, ...)")
    parser.add_argument("--peak", type=int, default=10,
                        help="scenario peak load per slice")
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument("--slices", type=int, default=50)
    parser.add_argument("--blocks", type=int, default=48)
    parser.add_argument("--steps", type=int, default=6000)
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent on-disk LUT cache")


def _add_client_args(parser) -> None:
    """The daemon-address flags shared by the serve client verbs."""
    from .service.daemon import DEFAULT_HOST, DEFAULT_PORT

    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"daemon address (default: {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"daemon TCP port (default: {DEFAULT_PORT})")


def _add_resolution_args(parser, blocks: int, steps: int) -> None:
    parser.add_argument("--slices", type=int, default=50)
    parser.add_argument("--blocks", type=int, default=blocks)
    parser.add_argument("--steps", type=int, default=steps)
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for batched runs")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the persistent on-disk LUT cache")


def _add_trace_arg(parser) -> None:
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="record spans and write the trace to FILE on "
                             "exit (Chrome trace JSON for Perfetto, or a "
                             "raw span dump for a .jsonl path)")


def _version() -> str:
    """The installed distribution version, or the source-tree fallback."""
    from importlib import metadata

    try:
        return metadata.version("repro-hhpim")
    except metadata.PackageNotFoundError:
        from . import __version__

        return f"{__version__} (source tree)"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HH-PIM (DAC 2025) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "table4", "table5", "list"):
        table = sub.add_parser(name)
        # Uniform resolution knobs: the analytic tables derive from the
        # technology model alone and ignore them, but scripts can pass
        # the same --blocks/--steps to every subcommand.
        table.add_argument("--blocks", type=int, default=DEFAULT_BLOCK_COUNT)
        table.add_argument("--steps", type=int, default=DEFAULT_TIME_STEPS)
    fig4 = sub.add_parser("fig4")
    fig4.add_argument("--slices", type=int, default=50)
    fig6 = sub.add_parser("fig6")
    fig6.add_argument("--model", default="EfficientNet-B0")
    fig6.add_argument("--blocks", type=int, default=DEFAULT_BLOCK_COUNT)
    fig6.add_argument("--steps", type=int, default=DEFAULT_TIME_STEPS)
    fig6.add_argument("--points", type=int, default=32)
    run = sub.add_parser("run", help="one scenario over selected architectures")
    run.add_argument("--model", default="EfficientNet-B0")
    run.add_argument("--case", type=int, default=3, choices=range(1, 7))
    run.add_argument("--arch", action="append", default=None,
                     help="architecture to run (repeatable; default: all)")
    run.add_argument("--json", action="store_true",
                     help="emit machine-readable per-run summaries")
    run.add_argument("--records", action="store_true",
                     help="with --json: include the full per-slice records")
    _add_resolution_args(run, blocks=48, steps=6000)
    _add_trace_arg(run)
    sweep = sub.add_parser(
        "sweep", help="grid over architectures x models x scenarios"
    )
    sweep.add_argument("--arch", action="append", default=None,
                       help="architecture axis (repeatable; default: all)")
    sweep.add_argument("--model", action="append", default=None,
                       help="model axis (repeatable; default: all)")
    sweep.add_argument("--case", action="append", type=int, default=None,
                       choices=range(1, 7),
                       help="scenario case axis (repeatable; default: all)")
    sweep.add_argument("--by", default="arch",
                       choices=("arch", "model", "scenario", "policy"),
                       help="aggregation axis for the summary table")
    sweep.add_argument("--json", action="store_true",
                       help="emit machine-readable per-run summaries")
    sweep.add_argument("--csv", metavar="FILE", default=None,
                       help="also write per-run rows to a CSV file")
    sweep.add_argument("--store", metavar="DIR", default=None,
                       help="persist every completed run into the "
                            "experiment store at DIR")
    sweep.add_argument("--shard", metavar="I/N", default=None,
                       help="run only the configs hash-assigned to shard "
                            "I of N (deterministic across processes)")
    sweep.add_argument("--resume", action="store_true",
                       help="with --store: serve already-stored configs "
                            "from the store instead of recomputing them")
    sweep.add_argument("--spill", action="store_true",
                       help="with --store: stream completed records to the "
                            "store instead of holding them all in memory "
                            "(bounded-RSS sweeps over huge grids)")
    sweep.add_argument("--chunk", type=int, default=None, metavar="N",
                       help="with --store --workers: configs per "
                            "work-stealing chunk (default: 8)")
    sweep.add_argument("--lease", type=float, default=None, metavar="S",
                       help="with --store --workers: seconds a chunk lease "
                            "lives without a heartbeat before another "
                            "worker may steal it (default: 30)")
    sweep.add_argument("--coordinator-port", type=int, default=0,
                       metavar="PORT",
                       help="with --store --workers: coordinator TCP port "
                            "(default: 0 = ephemeral; the bound port is "
                            "logged for repro sweep-worker --connect)")
    _add_resolution_args(sweep, blocks=48, steps=6000)
    _add_trace_arg(sweep)
    worker = sub.add_parser(
        "sweep-worker",
        help="attach one work-stealing worker to a running sweep "
             "coordinator (repro sweep --store DIR --workers N)",
    )
    worker.add_argument("--connect", metavar="HOST:PORT", required=True,
                        help="the coordinator's address (from its "
                             "event=listening log line)")
    worker.add_argument("--id", default=None, metavar="NAME",
                        help="worker identity in leases and telemetry "
                             "(default: w-<hostname>-<pid>)")
    worker.add_argument("--workers", type=int, default=None,
                        help="process-pool width for each chunk's batch")
    worker.add_argument("--json", action="store_true",
                        help="emit the final worker summary as JSON")
    fleet = sub.add_parser(
        "fleet", help="serve one scenario on a multi-device fleet"
    )
    fleet.add_argument("--devices", type=int, default=4,
                       help="fleet size (default: 4)")
    fleet.add_argument("--dispatch", default="round_robin",
                       help="dispatch policy (round_robin, least_loaded, "
                            "energy_aware, or a registered key)")
    fleet.add_argument("--arch", default="HH-PIM")
    fleet.add_argument("--model", default="EfficientNet-B0")
    fleet.add_argument("--scenario", default="case3",
                       help="any registered scenario key (case1..case6, "
                            "poisson, bursty, diurnal, ...)")
    fleet.add_argument("--peak", type=int, default=10,
                       help="scenario peak load per slice")
    fleet.add_argument("--json", action="store_true",
                       help="emit the machine-readable fleet summary")
    fleet.add_argument("--records", action="store_true",
                       help="with --json: include per-device slice records")
    # No --workers: the fleet shares one runtime, and its devices run
    # in-process (the vectorized slice loop, not LUT builds, dominates).
    fleet.add_argument("--slices", type=int, default=50)
    fleet.add_argument("--blocks", type=int, default=48)
    fleet.add_argument("--steps", type=int, default=6000)
    fleet.add_argument("--no-cache", action="store_true",
                       help="skip the persistent on-disk LUT cache")
    _add_trace_arg(fleet)
    qos = sub.add_parser(
        "qos", help="request-level QoS simulation: latency, SLOs, autoscaling"
    )
    _add_qos_config_args(qos)
    qos.add_argument("--json", action="store_true",
                     help="emit the machine-readable QoS summary")
    qos.add_argument("--records", action="store_true",
                     help="with --json: include per-device slice records")
    _add_trace_arg(qos)
    serve = sub.add_parser(
        "serve", help="resident serving daemon: warm engine behind a socket"
    )
    _add_client_args(serve)
    serve.add_argument("--workers", type=int, default=1,
                       help="job executor threads (default: 1; engine "
                            "access is serialized either way)")
    serve.add_argument("--store", metavar="DIR", default=None,
                       help="experiment store the daemon persists results "
                            "into (default: REPRO_STORE or the XDG cache)")
    serve.add_argument("--metrics-file", metavar="FILE", default=None,
                       help="append line-protocol metrics to FILE (a "
                            "Telegraf tail input can follow it)")
    serve.add_argument("--pidfile", metavar="FILE", default=None,
                       help="write the daemon pid to FILE while serving")
    _add_trace_arg(serve)
    submit = sub.add_parser(
        "submit", help="submit one experiment to a running serve daemon"
    )
    _add_client_args(submit)
    submit.add_argument("--kind", default="qos",
                        choices=("run", "fleet", "qos"),
                        help="execution path for the job (default: qos)")
    submit.add_argument("--no-wait", action="store_true",
                        help="print the job id immediately instead of "
                             "waiting for the result")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="seconds to wait for the result (default: 300)")
    _add_qos_config_args(submit)
    submit.add_argument("--json", action="store_true",
                        help="print the full result payload as JSON")
    submit.add_argument("--records", action="store_true",
                        help="include per-device records in the result")
    status = sub.add_parser(
        "status", help="inspect a running serve daemon (or one job)"
    )
    _add_client_args(status)
    status.add_argument("--job", metavar="ID", default=None,
                        help="show one job instead of the daemon summary")
    status.add_argument("--metrics", action="store_true",
                        help="print the metrics registry as InfluxDB line "
                             "protocol instead of the summary")
    status.add_argument("--json", action="store_true",
                        help="print the raw STATUS reply as JSON")
    shutdown = sub.add_parser(
        "shutdown", help="drain a running serve daemon and stop it"
    )
    _add_client_args(shutdown)
    shutdown.add_argument("--drain", action="store_true",
                          help="drain only: finish queued jobs and refuse "
                               "new ones, but keep the daemon up")
    shutdown.add_argument("--timeout", type=float, default=300.0,
                          help="seconds to wait for the drain (default: 300)")
    scenarios = sub.add_parser(
        "scenarios", help="preview registered workload scenarios"
    )
    scenarios.add_argument("--only", default=None,
                           help="preview a single scenario key")
    scenarios.add_argument("--slices", type=int, default=50)
    scenarios.add_argument("--peak", type=int, default=10)
    scenarios.add_argument("--low", type=int, default=2)
    scenarios.add_argument("--seed", type=int, default=2025)
    bench = sub.add_parser(
        "bench", help="perf harness: LUT build, cache, sweep, lookup timings"
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI-sized run: fewer repeats, smaller sweep grid")
    bench.add_argument("--model", default="EfficientNet-B0")
    bench.add_argument("--blocks", type=int, default=DEFAULT_BLOCK_COUNT)
    bench.add_argument("--steps", type=int, default=DEFAULT_TIME_STEPS)
    bench.add_argument("--repeats", type=int, default=None,
                       help="best-of repetitions per timing (default 3, 1 "
                            "with --quick)")
    bench.add_argument("--out", default=".",
                       help="directory for the BENCH_*.json artifacts")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="fail (exit 2) if the vectorized LUT build is "
                            "not this many times faster than the scalar "
                            "reference")
    bench.add_argument("--min-runtime-speedup", type=float, default=None,
                       help="fail (exit 2) if the vectorized slice loop is "
                            "not this many times faster than the scalar "
                            "reference")
    bench.add_argument("--min-qos-throughput", type=float, default=None,
                       help="fail (exit 2) if the QoS simulator falls below "
                            "this many simulated requests per second")
    bench.add_argument("--min-qos-speedup", type=float, default=None,
                       help="fail (exit 2) if the vectorized QoS engine is "
                            "not this many times faster than the per-event "
                            "scalar reference")
    bench.add_argument("--min-store-speedup", type=float, default=None,
                       help="fail (exit 2) if a warm store-resume sweep is "
                            "not this many times faster than the cold sweep")
    bench.add_argument("--min-serve-speedup", type=float, default=None,
                       help="fail (exit 2) if warm-daemon submissions are "
                            "not this many times faster than cold "
                            "per-process engines")
    bench.add_argument("--min-dist-speedup", type=float, default=None,
                       help="fail (exit 2) if the multi-worker distributed "
                            "sweep is not this many times faster than a "
                            "single worker under the same synthetic cost")
    bench.add_argument("--max-obs-overhead", type=float, default=None,
                       help="fail (exit 2) if the disabled tracing "
                            "instrumentation costs more than this fraction "
                            "of the untraced workload (e.g. 0.05)")
    bench.add_argument("--json", action="store_true",
                       help="print the full machine-readable report")
    trend = sub.add_parser(
        "trend", help="compare bench artifacts against committed baselines"
    )
    trend.add_argument("--baseline", metavar="DIR", default=".",
                       help="directory holding the committed BENCH_*.json "
                            "baselines (default: the repo root)")
    trend.add_argument("--current", metavar="DIR", required=True,
                       help="directory holding the fresh bench artifacts "
                            "(a `repro bench --out DIR` run)")
    trend.add_argument("--tolerance", type=float, default=0.30,
                       help="fractional slack before a lower headline "
                            "metric fails the trend (default: 0.30)")
    trend.add_argument("--summary", metavar="FILE", default=None,
                       help="also write the markdown delta table to FILE "
                            "(point it at $GITHUB_STEP_SUMMARY in CI)")
    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent LUT cache"
    )
    cache.add_argument("action", choices=("info", "clear"))
    store = sub.add_parser(
        "store", help="inspect or clear the persistent experiment store"
    )
    store.add_argument("action", choices=("info", "ls", "clear"))
    store.add_argument("--store", metavar="DIR", default=None,
                       help="store directory (default: REPRO_STORE or the "
                            "XDG cache)")
    store.add_argument("--by", default="arch",
                       choices=("arch", "model", "scenario", "policy",
                                "dispatch"),
                       help="aggregation axis for the ls summary table")
    store.add_argument("--kind", default=None,
                       choices=("run", "fleet", "qos", "fuzz"),
                       help="list only one record kind (qos renders the "
                            "stored QoS summary rows; fuzz the persisted "
                            "regression scenarios)")
    store.add_argument("--limit", type=int, default=None, metavar="N",
                       help="list at most N entries of the sorted order")
    docs = sub.add_parser(
        "docs", help="regenerate docs/REGISTRY.md from the live registries"
    )
    docs.add_argument("--out", metavar="FILE", default="docs/REGISTRY.md",
                      help="where the generated reference lives")
    docs.add_argument("--check", action="store_true",
                      help="exit 2 instead of writing when the reference is "
                           "stale or a public docstring is missing")
    profile = sub.add_parser(
        "profile", help="fold a --trace file into a per-phase time table"
    )
    profile.add_argument("file", metavar="FILE",
                         help="a trace written by --trace (Chrome trace "
                              "JSON or a .jsonl span dump)")
    fuzz = sub.add_parser(
        "fuzz", help="fuzz the engine with seeded scenario programs and "
                     "check conformance invariants"
    )
    fuzz.add_argument("--seed", type=int, default=0, metavar="N",
                      help="batch seed: same seed, same cases, same report "
                           "(default: 0)")
    fuzz.add_argument("--cases", type=int, default=25, metavar="K",
                      help="number of fuzz cases to generate (default: 25)")
    fuzz.add_argument("--replay", action="store_true",
                      help="re-check the store's persisted fuzz regressions "
                           "instead of generating new cases")
    fuzz.add_argument("--json", action="store_true",
                      help="emit the full machine-readable report")
    fuzz.add_argument("--store", metavar="DIR", default=None,
                      help="experiment store for persisting/replaying "
                           "failures (default: REPRO_STORE or the XDG "
                           "cache)")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip greedy minimization of failing cases")
    return parser


_HANDLERS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "fig4": _cmd_fig4,
    "fig6": _cmd_fig6,
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "sweep-worker": _cmd_sweep_worker,
    "fleet": _cmd_fleet,
    "qos": _cmd_qos,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "shutdown": _cmd_shutdown,
    "scenarios": _cmd_scenarios,
    "bench": _cmd_bench,
    "trend": _cmd_trend,
    "cache": _cmd_cache,
    "store": _cmd_store,
    "docs": _cmd_docs,
    "list": _cmd_list,
    "profile": _cmd_profile,
    "fuzz": _cmd_fuzz,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # `repro serve --trace` hands the file to the daemon (which owns its
    # tracer lifecycle); every other --trace command records here.
    trace_path = getattr(args, "trace", None)
    tracer = None
    if trace_path is not None and args.command != "serve":
        from .obs import tracing as obs_tracing

        tracer = obs_tracing.activate(proc="main")
    try:
        print(_HANDLERS[args.command](args))
    except KeyboardInterrupt:
        # Ctrl-C is a deliberate stop, not an error: the conventional
        # 128+SIGINT exit, one line, no traceback.  (`repro serve`
        # installs its own SIGINT handler for a clean drain; this
        # covers every other command.)
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as error:
        # Library failures (bad configs, infeasible placements, unknown
        # registry keys) are user errors: one line, no traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            from .obs import tracing as obs_tracing

            obs_tracing.deactivate()
            tracer.trace().write(trace_path)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
