"""Command-line interface: regenerate paper artifacts from the shell.

Usage::

    python -m repro table3                 # Table III latencies
    python -m repro table5                 # Table V power
    python -m repro fig4                   # Fig. 4 scenario strips
    python -m repro fig6 --model ResNet-18 # Fig. 6 sweep
    python -m repro run --case 3           # one scenario, all architectures
    python -m repro list                   # models / cases / architectures

Heavy artifacts accept ``--blocks/--steps`` to trade fidelity for speed
(the defaults match the benchmarks' full resolution).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import TextTable, render_fig4, render_fig6
from .arch import TABLE_I
from .core import DataPlacementOptimizer, TimeSliceRuntime
from .core.placement import DEFAULT_BLOCK_COUNT, DEFAULT_TIME_STEPS
from .core.runtime import default_time_slice_ns
from .arch.specs import HH_PIM
from .energy import table_v_rows
from .fpga import table_ii_report
from .workloads import ALL_CASES, TABLE_IV, ScenarioCase, model_by_name, scenario


def _cmd_table1(_args) -> str:
    table = TextTable(["Architecture", "Modules", "Memory per module"])
    for spec in TABLE_I:
        modules = f"{spec.hp.module_count} HP"
        if spec.lp:
            modules += f" + {spec.lp.module_count} LP"
        memory = []
        if spec.hp.mram_capacity:
            memory.append(f"{spec.hp.mram_capacity // 1024}kB MRAM")
        memory.append(f"{spec.hp.sram_capacity // 1024}kB SRAM")
        table.add_row(spec.name, modules, " + ".join(memory))
    return table.render()


def _cmd_table2(_args) -> str:
    return table_ii_report().render()


def _cmd_table3(_args) -> str:
    from .memory import NvSimModel, PE_45NM, SRAM_45NM, STT_MRAM_45NM
    from .memory.technology import HP_VDD, LP_VDD
    table = TextTable(["Latency (ns)", "MRAM R", "MRAM W", "SRAM R",
                       "SRAM W", "PE"])
    for label, vdd in (("HP-PIM (1.2V)", HP_VDD), ("LP-PIM (0.8V)", LP_VDD)):
        mram = NvSimModel(STT_MRAM_45NM).estimate(64 * 1024, vdd)
        sram = NvSimModel(SRAM_45NM).estimate(64 * 1024, vdd)
        table.add_row(label,
                      round(mram.timing.read_ns, 2),
                      round(mram.timing.write_ns, 2),
                      round(sram.timing.read_ns, 2),
                      round(sram.timing.write_ns, 2),
                      round(PE_45NM.mac_latency(vdd), 2))
    return table.render()


def _cmd_table4(_args) -> str:
    table = TextTable(["Model", "# Param", "# MAC", "PIM ops"])
    for model in TABLE_IV:
        table.add_row(model.name, model.params, model.macs,
                      f"{model.pim_ratio:.0%}")
    return table.render()


def _cmd_table5(_args) -> str:
    table = TextTable(["Power (mW)", "MRAM R/W", "MRAM static",
                       "SRAM R/W", "SRAM static", "PE dyn/static"])
    for row in table_v_rows():
        table.add_row(
            row.cluster,
            f"{row.mram_read_mw:.2f}/{row.mram_write_mw:.2f}",
            round(row.mram_static_mw, 2),
            f"{row.sram_read_mw:.2f}/{row.sram_write_mw:.2f}",
            round(row.sram_static_mw, 2),
            f"{row.pe_dynamic_mw:.2f}/{row.pe_static_mw:.2f}",
        )
    return table.render()


def _cmd_fig4(args) -> str:
    return render_fig4([scenario(case, slices=args.slices) for case in ALL_CASES])


def _cmd_fig6(args) -> str:
    model = model_by_name(args.model)
    t_slice = default_time_slice_ns(
        model, block_count=args.blocks, time_steps=args.steps
    )
    optimizer = DataPlacementOptimizer(
        HH_PIM, model, t_slice_ns=t_slice,
        block_count=args.blocks, time_steps=args.steps,
    )
    return render_fig6(optimizer.build_lut(), points=args.points)


def _cmd_run(args) -> str:
    model = model_by_name(args.model)
    case = ScenarioCase(args.case)
    t_slice = default_time_slice_ns(
        model, block_count=args.blocks, time_steps=args.steps
    )
    workload = scenario(case, slices=args.slices)
    table = TextTable(["Architecture", "Energy (mJ)", "Mean power (mW)",
                       "Deadlines", "Savings vs HH"])
    results = {}
    for spec in TABLE_I:
        runtime = TimeSliceRuntime(
            spec, model, t_slice_ns=t_slice,
            block_count=args.blocks, time_steps=args.steps,
        )
        results[spec.name] = runtime.run(workload)
    hh_energy = results["HH-PIM"].total_energy_nj
    for name, result in results.items():
        saving = (1 - hh_energy / result.total_energy_nj
                  if name != "HH-PIM" else 0.0)
        table.add_row(
            name,
            round(result.total_energy_nj / 1e6, 2),
            round(result.mean_power_mw, 2),
            "met" if result.deadlines_met else "MISSED",
            f"{saving:.1%}" if name != "HH-PIM" else "-",
        )
    header = (f"{model.name}, Case {case.value} ({case.label}), "
              f"{args.slices} slices of {t_slice / 1e6:.1f} ms")
    return header + "\n\n" + table.render()


def _cmd_list(_args) -> str:
    lines = ["architectures:"]
    lines += [f"  {spec.name}" for spec in TABLE_I]
    lines.append("models:")
    lines += [f"  {model.name}" for model in TABLE_IV]
    lines.append("cases:")
    lines += [f"  {case.value}: {case.label}" for case in ALL_CASES]
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HH-PIM (DAC 2025) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("table1", "table2", "table3", "table4", "table5", "list"):
        sub.add_parser(name)
    fig4 = sub.add_parser("fig4")
    fig4.add_argument("--slices", type=int, default=50)
    fig6 = sub.add_parser("fig6")
    fig6.add_argument("--model", default="EfficientNet-B0")
    fig6.add_argument("--blocks", type=int, default=DEFAULT_BLOCK_COUNT)
    fig6.add_argument("--steps", type=int, default=DEFAULT_TIME_STEPS)
    fig6.add_argument("--points", type=int, default=32)
    run = sub.add_parser("run")
    run.add_argument("--model", default="EfficientNet-B0")
    run.add_argument("--case", type=int, default=3, choices=range(1, 7))
    run.add_argument("--slices", type=int, default=50)
    run.add_argument("--blocks", type=int, default=48)
    run.add_argument("--steps", type=int, default=6000)
    return parser


_HANDLERS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "table4": _cmd_table4,
    "table5": _cmd_table5,
    "fig4": _cmd_fig4,
    "fig6": _cmd_fig6,
    "run": _cmd_run,
    "list": _cmd_list,
}


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    print(_HANDLERS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
