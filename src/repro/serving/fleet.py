"""The fleet runtime: N devices behind one arrival stream.

:class:`Fleet` scales the paper's single-device time-slice runtime out
to a multi-device serving deployment: one workload scenario arrives at
the fleet, a :class:`~repro.serving.dispatch.DispatchPolicy` splits each
slice's arrivals across the devices, and every device runs its share
through its own (vectorized) :class:`~repro.core.runtime.TimeSliceRuntime`.
The result is a :class:`FleetResult`: the per-device
:class:`~repro.core.runtime.RunResult`s plus aggregate energy, latency
and deadline statistics.

A 1-device fleet is *exactly* the single-device runtime: every arrival
lands on device 0, whose scenario is then load-for-load the input
scenario (the property suite asserts record-level equality).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.runtime import TimeSliceRuntime
from ..errors import ServingError
from ..workloads.scenarios import Scenario
from .dispatch import DeviceInfo, DispatchPolicy, make_policy

__all__ = ["Fleet", "FleetResult", "device_info"]


def device_info(index: int, runtime: TimeSliceRuntime) -> DeviceInfo:
    """Summarise one device for the dispatch layer.

    Capacity is how many peak-placement inferences fit in a slice;
    the energy signal is the reference placement's per-inference dynamic
    energy.  Both come straight off the runtime's LUT — no extra DP.
    """
    reference = runtime.reference_placement
    per_inference_ns = reference.task_time_ns + runtime.core_time_ns
    capacity = int(runtime.t_slice_ns // per_inference_ns) if per_inference_ns else 0
    return DeviceInfo(
        index=index,
        architecture=runtime.spec.name,
        capacity=max(1, capacity),
        energy_per_inference_nj=reference.dynamic_energy_nj,
    )


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one scenario served by a device fleet."""

    scenario: Scenario
    dispatch: str
    #: Per-device outcomes, in device order.
    device_results: tuple
    #: Per-device load splits (tuple of per-slice tuples), for audits.
    device_loads: tuple

    def __post_init__(self) -> None:
        if not self.device_results:
            raise ServingError("fleet result needs at least one device")

    def __len__(self) -> int:
        return len(self.device_results)

    # -- aggregates --------------------------------------------------------------

    @property
    def total_energy_nj(self) -> float:
        """Fleet energy over the whole run."""
        return sum(r.total_energy_nj for r in self.device_results)

    @property
    def total_inferences(self) -> int:
        """Inferences processed across the fleet."""
        return sum(r.total_inferences for r in self.device_results)

    @property
    def energy_per_inference_nj(self) -> float:
        """Mean fleet energy per processed inference."""
        inferences = self.total_inferences
        return self.total_energy_nj / inferences if inferences else 0.0

    @property
    def mean_power_mw(self) -> float:
        """Average fleet power: the devices run concurrently, so their
        mean powers add."""
        return sum(r.mean_power_mw for r in self.device_results)

    @property
    def deadlines_met(self) -> bool:
        """Whether every device met every slice deadline."""
        return all(r.deadlines_met for r in self.device_results)

    @property
    def deadline_rate(self) -> float:
        """Fraction of (device, slice) cells that met their deadline."""
        total = sum(len(r.records) for r in self.device_results)
        if not total:
            return 1.0
        met = sum(
            1
            for r in self.device_results
            for record in r.records
            if record.deadline_met
        )
        return met / total

    @property
    def device_utilization(self) -> tuple:
        """Per-device busy fraction of the run's wall time."""
        out = []
        for result in self.device_results:
            wall = result.t_slice_ns * len(result.records)
            busy = sum(record.busy_time_ns for record in result.records)
            out.append(busy / wall if wall else 0.0)
        return tuple(out)

    @property
    def load_imbalance(self) -> float:
        """Max/mean ratio of per-device inference shares (1.0 = even)."""
        shares = [r.total_inferences for r in self.device_results]
        mean = sum(shares) / len(shares)
        return max(shares) / mean if mean else 1.0

    # -- export ------------------------------------------------------------------

    def to_dict(self, include_records: bool = False) -> dict:
        """A plain-primitive summary for JSON export."""
        return {
            "scenario": self.scenario.to_dict(),
            "dispatch": self.dispatch,
            "devices": len(self.device_results),
            "total_energy_nj": self.total_energy_nj,
            "total_inferences": self.total_inferences,
            "energy_per_inference_nj": self.energy_per_inference_nj,
            "mean_power_mw": self.mean_power_mw,
            "deadlines_met": self.deadlines_met,
            "deadline_rate": self.deadline_rate,
            "load_imbalance": self.load_imbalance,
            "device_results": [
                result.to_dict(include_records=include_records)
                for result in self.device_results
            ],
        }


class Fleet:
    """N devices consuming one arrival stream through a dispatch policy.

    ``runtimes`` is one :class:`TimeSliceRuntime` per device — repeat an
    instance for a homogeneous fleet (runs are stateless, so sharing is
    safe and keeps the LUT singular), or mix architectures/models for a
    heterogeneous one.  ``dispatch`` is a policy name, instance or
    factory (see :mod:`repro.serving.dispatch`).
    """

    def __init__(self, runtimes, dispatch="round_robin") -> None:
        self.runtimes = tuple(runtimes)
        if not self.runtimes:
            raise ServingError("a fleet needs at least one device")
        for runtime in self.runtimes:
            if not isinstance(runtime, TimeSliceRuntime):
                raise ServingError(
                    f"fleet devices must be TimeSliceRuntime instances, "
                    f"got {type(runtime).__name__}"
                )
        self.policy: DispatchPolicy = make_policy(dispatch)
        self.devices = tuple(
            device_info(index, runtime)
            for index, runtime in enumerate(self.runtimes)
        )

    def __len__(self) -> int:
        return len(self.runtimes)

    def split(self, scenario: Scenario) -> tuple:
        """The per-device load split for a scenario (without running it).

        Returns one per-slice load tuple per device.  Enforces the
        dispatch contract per slice: one non-negative integer share per
        device, summing to the slice's arrivals.
        """
        self.policy.start(self.devices)
        n_devices = len(self.runtimes)
        per_device = [[] for _ in range(n_devices)]
        for index, load in enumerate(scenario.loads):
            shares = list(self.policy.assign(index, load))
            if len(shares) != n_devices:
                raise ServingError(
                    f"dispatch policy {self.policy.name!r} returned "
                    f"{len(shares)} shares for {n_devices} devices"
                )
            if any(
                not isinstance(s, int) or isinstance(s, bool) or s < 0
                for s in shares
            ):
                raise ServingError(
                    f"dispatch policy {self.policy.name!r} produced an "
                    f"invalid share in slice {index}: {shares}"
                )
            if sum(shares) != load:
                raise ServingError(
                    f"dispatch policy {self.policy.name!r} dropped or "
                    f"invented arrivals in slice {index}: "
                    f"{sum(shares)} != {load}"
                )
            for device, share in enumerate(shares):
                per_device[device].append(share)
        return tuple(tuple(loads) for loads in per_device)

    def run(self, scenario: Scenario) -> FleetResult:
        """Serve a scenario: split the stream, run every device."""
        device_loads = self.split(scenario)
        results = []
        for index, (runtime, loads) in enumerate(
            zip(self.runtimes, device_loads)
        ):
            share = replace(
                scenario,
                loads=loads,
                name=f"{scenario.label}@device{index}",
            )
            results.append(runtime.run(share))
        return FleetResult(
            scenario=scenario,
            dispatch=self.policy.name,
            device_results=tuple(results),
            device_loads=device_loads,
        )
