"""Dispatch policies: how a fleet splits one arrival stream.

A :class:`DispatchPolicy` decides, slice by slice, how many of the
slice's arrivals each device receives.  Policies are stateful over one
run (:meth:`DispatchPolicy.start` resets them), deterministic, and obey
one contract: the returned assignment has one non-negative entry per
device and sums to the slice's arrivals — :class:`repro.serving.fleet.Fleet`
enforces it.

Built-ins (also registered in :data:`repro.api.registry.DISPATCH`):

* :class:`RoundRobin` — arrivals dealt one at a time around the fleet;
* :class:`LeastLoaded` — each arrival goes to the device with the
  smallest cumulative assignment (JSQ over the whole run);
* :class:`EnergyAware` — devices are ranked by their per-inference
  energy at the reference placement and filled cheapest-first up to
  their per-slice capacity; overflow spills to the next-cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ServingError
from ..plugins import coerce_spec

__all__ = [
    "DeviceInfo",
    "DispatchPolicy",
    "RoundRobin",
    "LeastLoaded",
    "EnergyAware",
    "BUILTIN_POLICIES",
    "make_policy",
]


@dataclass(frozen=True)
class DeviceInfo:
    """What a dispatch policy may know about one device."""

    index: int
    architecture: str
    #: Inferences the device can complete within one time slice at its
    #: reference (peak) placement.
    capacity: int
    #: Per-inference dynamic energy at the reference placement (nJ) —
    #: the ranking signal of the energy-aware policy.
    energy_per_inference_nj: float


class DispatchPolicy:
    """Base class: split each slice's arrivals across the fleet."""

    #: Registry key / report label.
    name = "base"

    def start(self, devices: tuple) -> None:
        """Reset per-run state; ``devices`` are :class:`DeviceInfo`."""
        self._devices = devices

    def resize(self, devices: tuple) -> None:
        """Adopt a resized fleet mid-run (an autoscaler scale event).

        The default forgets per-run state (equivalent to a fresh
        :meth:`start`); stateful policies override it to carry their
        knowledge of the surviving devices across the resize.
        """
        self.start(devices)

    def assign(self, slice_index: int, arrivals: int) -> list:
        """Per-device arrival counts for one slice (sums to arrivals)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class RoundRobin(DispatchPolicy):
    """Deal arrivals one at a time around the fleet.

    The pointer survives across slices, so a single-arrival stream still
    spreads over every device instead of hammering device 0.
    """

    name = "round_robin"

    def start(self, devices: tuple) -> None:
        super().start(devices)
        self._next = 0

    def resize(self, devices: tuple) -> None:
        """Keep dealing from where the pointer was (wrapped if needed)."""
        self._devices = devices
        self._next %= len(devices)

    def assign(self, slice_index: int, arrivals: int) -> list:
        shares = [0] * len(self._devices)
        for _ in range(arrivals):
            shares[self._next] += 1
            self._next = (self._next + 1) % len(self._devices)
        return shares


class LeastLoaded(DispatchPolicy):
    """Join-the-shortest-queue on cumulative assigned inferences.

    Each arrival goes to the device with the fewest inferences assigned
    so far in the run (ties break on the lower device index), which
    keeps heterogeneous fleets balanced by realised load rather than by
    turn order.
    """

    name = "least_loaded"

    def start(self, devices: tuple) -> None:
        super().start(devices)
        self._assigned = [0] * len(devices)

    def resize(self, devices: tuple) -> None:
        """Carry the surviving devices' cumulative loads across a resize.

        Removed devices are the highest-indexed ones (the fleet's
        scale-down convention); newly added devices start at zero, so
        the next assignments flow to the fresh capacity first.
        """
        self._devices = devices
        counts = self._assigned[:len(devices)]
        self._assigned = counts + [0] * (len(devices) - len(counts))

    def assign(self, slice_index: int, arrivals: int) -> list:
        shares = [0] * len(self._devices)
        for _ in range(arrivals):
            target = min(
                range(len(self._devices)), key=lambda i: (self._assigned[i], i)
            )
            shares[target] += 1
            self._assigned[target] += 1
        return shares


class EnergyAware(DispatchPolicy):
    """Fill the cheapest devices first, up to their slice capacity.

    Devices are ordered by per-inference energy at their reference
    placement (ties: lower index).  Each slice is filled in that order;
    arrivals beyond the fleet's total capacity land on the cheapest
    device, where the deadline miss they cause is visible in its stats.
    """

    name = "energy_aware"

    def start(self, devices: tuple) -> None:
        super().start(devices)
        self._order = sorted(
            range(len(devices)),
            key=lambda i: (devices[i].energy_per_inference_nj, i),
        )

    def assign(self, slice_index: int, arrivals: int) -> list:
        shares = [0] * len(self._devices)
        remaining = arrivals
        for index in self._order:
            if remaining <= 0:
                break
            take = min(remaining, max(0, self._devices[index].capacity))
            shares[index] = take
            remaining -= take
        if remaining > 0:
            shares[self._order[0]] += remaining
        return shares


#: Built-in policies by their registry name.
BUILTIN_POLICIES = {
    RoundRobin.name: RoundRobin,
    LeastLoaded.name: LeastLoaded,
    EnergyAware.name: EnergyAware,
}


def make_policy(policy) -> DispatchPolicy:
    """Coerce a policy spec — name, class, factory or instance.

    Names resolve against the built-ins first, then against the api
    ``DISPATCH`` registry, so user-registered policies work by name in
    directly-constructed (e.g. heterogeneous) fleets too.
    """
    return coerce_spec(
        policy,
        base=DispatchPolicy,
        builtins=BUILTIN_POLICIES,
        registry_name="DISPATCH",
        kind="dispatch policy",
        error_cls=ServingError,
    )
