"""Fleet serving: many devices, one arrival stream.

The paper evaluates one device; this package scales the same time-slice
runtime to a fleet — N devices behind a pluggable dispatch policy,
consuming a single scenario and reporting aggregate energy / latency /
deadline statistics.  See :class:`Fleet`, :class:`FleetResult` and the
policies in :mod:`repro.serving.dispatch`.
"""

from .dispatch import (
    BUILTIN_POLICIES,
    DeviceInfo,
    DispatchPolicy,
    EnergyAware,
    LeastLoaded,
    RoundRobin,
    make_policy,
)
from .fleet import Fleet, FleetResult, device_info

__all__ = [
    "BUILTIN_POLICIES",
    "DeviceInfo",
    "DispatchPolicy",
    "EnergyAware",
    "LeastLoaded",
    "RoundRobin",
    "make_policy",
    "Fleet",
    "FleetResult",
    "device_info",
]
