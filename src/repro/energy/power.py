"""Table V: power consumption across memory types and PEs.

The rows are *derived* (not transcribed) through the calibrated
NVSim-style estimator at the two cluster operating points, so the
benchmark that regenerates Table V genuinely exercises the model chain:
technology fit -> estimator -> power numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.nvsim import NvSimModel
from ..memory.technology import (
    HP_VDD,
    LP_VDD,
    PE_45NM,
    REFERENCE_CAPACITY_BYTES,
    SRAM_45NM,
    STT_MRAM_45NM,
)


@dataclass(frozen=True)
class PowerRow:
    """One Table V row: a cluster's memory + PE power profile (mW)."""

    cluster: str
    vdd: float
    mram_read_mw: float
    mram_write_mw: float
    mram_static_mw: float
    sram_read_mw: float
    sram_write_mw: float
    sram_static_mw: float
    pe_dynamic_mw: float
    pe_static_mw: float


def power_row(cluster: str, vdd: float,
              capacity_bytes: int = REFERENCE_CAPACITY_BYTES) -> PowerRow:
    """Derive one row of Table V at an arbitrary operating point."""
    mram = NvSimModel(STT_MRAM_45NM).estimate(capacity_bytes, vdd)
    sram = NvSimModel(SRAM_45NM).estimate(capacity_bytes, vdd)
    return PowerRow(
        cluster=cluster,
        vdd=vdd,
        mram_read_mw=mram.power.read_mw,
        mram_write_mw=mram.power.write_mw,
        mram_static_mw=mram.power.static_mw,
        sram_read_mw=sram.power.read_mw,
        sram_write_mw=sram.power.write_mw,
        sram_static_mw=sram.power.static_mw,
        pe_dynamic_mw=PE_45NM.dynamic_power(vdd),
        pe_static_mw=PE_45NM.static_power(vdd),
    )


def table_v_rows():
    """The two published rows: HP-PIM at 1.2 V and LP-PIM at 0.8 V."""
    return (
        power_row("HP-PIM", HP_VDD),
        power_row("LP-PIM", LP_VDD),
    )
