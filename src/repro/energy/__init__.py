"""Energy: the Table V power model and component-level accounting."""

from .power import PowerRow, power_row, table_v_rows
from .accounting import EnergyAccount

__all__ = ["PowerRow", "power_row", "table_v_rows", "EnergyAccount"]
