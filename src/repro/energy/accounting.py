"""Component-level energy accounting.

:class:`EnergyAccount` aggregates named energy components (nanojoules),
supports merging across subsystems/slices, and renders percentage
breakdowns — the bookkeeping behind the Fig. 5 / Table VI comparisons.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import ConfigurationError


class EnergyAccount:
    """Named energy components with merge/scale/breakdown operations."""

    def __init__(self, components: dict | None = None) -> None:
        self._components: OrderedDict = OrderedDict()
        if components:
            for name, value in components.items():
                self.charge(name, value)

    def charge(self, component: str, energy_nj: float) -> None:
        """Add ``energy_nj`` to one component (negative charges rejected)."""
        if energy_nj < 0:
            raise ConfigurationError(
                f"negative energy charge {energy_nj} for {component!r}"
            )
        self._components[component] = self._components.get(component, 0.0) + energy_nj

    def __getitem__(self, component: str) -> float:
        return self._components.get(component, 0.0)

    def __contains__(self, component: str) -> bool:
        return component in self._components

    @property
    def components(self) -> dict:
        """A copy of the component map."""
        return dict(self._components)

    @property
    def total_nj(self) -> float:
        """Sum over all components."""
        return sum(self._components.values())

    def merge(self, other: "EnergyAccount") -> "EnergyAccount":
        """Component-wise sum of two accounts."""
        merged = EnergyAccount(self._components)
        for name, value in other._components.items():
            merged.charge(name, value)
        return merged

    def scaled(self, factor: float) -> "EnergyAccount":
        """A copy with every component multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ConfigurationError(f"negative scale factor {factor}")
        return EnergyAccount(
            {name: value * factor for name, value in self._components.items()}
        )

    def breakdown(self) -> dict:
        """Fraction of the total per component (empty account -> {})."""
        total = self.total_nj
        if total == 0:
            return {name: 0.0 for name in self._components}
        return {
            name: value / total for name, value in self._components.items()
        }

    def savings_vs(self, baseline: "EnergyAccount") -> float:
        """Fractional energy saving relative to a baseline account."""
        base = baseline.total_nj
        if base <= 0:
            raise ConfigurationError("baseline energy must be positive")
        return 1.0 - self.total_nj / base

    def render(self, unit: str = "nJ") -> str:
        """A small aligned text table of the components."""
        if not self._components:
            return "(empty account)"
        width = max(len(name) for name in self._components)
        lines = []
        for name, value in self._components.items():
            share = value / self.total_nj * 100 if self.total_nj else 0.0
            lines.append(f"{name:<{width}}  {value:>14.3f} {unit}  {share:5.1f}%")
        lines.append(f"{'total':<{width}}  {self.total_nj:>14.3f} {unit}")
        return "\n".join(lines)
