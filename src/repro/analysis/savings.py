"""Energy-savings grids: the machinery behind Fig. 5 and Table VI.

Runs the full comparison matrix — every Table I architecture, every
Table IV model, every Fig. 4 scenario over 50 time slices — and reports
HH-PIM's savings against each comparison architecture.  Results are
cached per (model, slices, seed, block_count) so that the Fig. 5 and
Table VI benchmarks share one grid computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..arch.specs import TABLE_I, ArchitectureSpec, HH_PIM
from ..core.placement import DEFAULT_BLOCK_COUNT
from ..core.runtime import RunResult, TimeSliceRuntime, default_time_slice_ns
from ..errors import ConfigurationError
from ..workloads.models import TABLE_IV, ModelSpec
from ..workloads.scenarios import ALL_CASES, ScenarioCase, scenario

#: Comparison architectures, in the paper's column order.
BASELINE_NAMES = ("Baseline-PIM", "Heterogeneous-PIM", "Hybrid-PIM")


@dataclass(frozen=True)
class SavingsCell:
    """HH-PIM's savings for one (model, scenario) against each baseline."""

    model: str
    case: ScenarioCase
    #: Baseline name -> fractional savings (0.6 == 60 %).
    savings: dict
    #: Architecture name -> total energy (nJ), including HH-PIM.
    energies: dict


@dataclass(frozen=True)
class SavingsGrid:
    """The full Fig. 5 grid: cells for every model and scenario."""

    cells: tuple
    slices: int

    def cell(self, model: str, case: ScenarioCase) -> SavingsCell:
        """Look one cell up."""
        for cell in self.cells:
            if cell.model == model and cell.case is case:
                return cell
        raise ConfigurationError(f"no cell for ({model}, {case})")

    def models(self):
        """Distinct model names, in Table IV order."""
        names = []
        for cell in self.cells:
            if cell.model not in names:
                names.append(cell.model)
        return names

    def cases(self):
        """Distinct scenario cases, in Fig. 4 order."""
        cases = []
        for cell in self.cells:
            if cell.case not in cases:
                cases.append(cell.case)
        return cases


_GRID_CACHE: dict = {}
_RUN_CACHE: dict = {}


def run_architecture(
    spec: ArchitectureSpec,
    model: ModelSpec,
    case: ScenarioCase,
    slices: int = 50,
    seed: int = 2025,
    block_count: int = DEFAULT_BLOCK_COUNT,
) -> RunResult:
    """Run one (architecture, model, scenario) cell, with caching."""
    key = (spec.name, model.name, case, slices, seed, block_count)
    if key not in _RUN_CACHE:
        runtime = _runtime_for(spec, model, block_count)
        _RUN_CACHE[key] = runtime.run(
            scenario(case, slices=slices, seed=seed)
        )
    return _RUN_CACHE[key]


_RUNTIME_CACHE: dict = {}
_TSLICE_CACHE: dict = {}


def _t_slice_for(model: ModelSpec, block_count: int) -> float:
    key = (model.name, block_count)
    if key not in _TSLICE_CACHE:
        _TSLICE_CACHE[key] = default_time_slice_ns(
            model, block_count=block_count
        )
    return _TSLICE_CACHE[key]


def _runtime_for(
    spec: ArchitectureSpec, model: ModelSpec, block_count: int
) -> TimeSliceRuntime:
    key = (spec.name, model.name, block_count)
    if key not in _RUNTIME_CACHE:
        _RUNTIME_CACHE[key] = TimeSliceRuntime(
            spec,
            model,
            t_slice_ns=_t_slice_for(model, block_count),
            block_count=block_count,
        )
    return _RUNTIME_CACHE[key]


def compute_savings_grid(
    models=TABLE_IV,
    cases=ALL_CASES,
    slices: int = 50,
    seed: int = 2025,
    block_count: int = DEFAULT_BLOCK_COUNT,
) -> SavingsGrid:
    """Compute (or fetch) the Fig. 5 savings grid."""
    key = (
        tuple(m.name for m in models), tuple(cases), slices, seed, block_count
    )
    if key in _GRID_CACHE:
        return _GRID_CACHE[key]
    cells = []
    for model in models:
        for case in cases:
            energies = {
                spec.name: run_architecture(
                    spec, model, case, slices, seed, block_count
                ).total_energy_nj
                for spec in TABLE_I
            }
            hh = energies[HH_PIM.name]
            savings = {
                name: 1.0 - hh / energies[name] for name in BASELINE_NAMES
            }
            cells.append(
                SavingsCell(
                    model=model.name, case=case,
                    savings=savings, energies=energies,
                )
            )
    grid = SavingsGrid(cells=tuple(cells), slices=slices)
    _GRID_CACHE[key] = grid
    return grid


def average_savings(grid: SavingsGrid) -> dict:
    """Mean savings per baseline over all models and cases.

    The paper's headline: "up to 60.43 %, 36.3 %, and 48.58 % compared to
    Baseline-PIM, Hetero.-PIM, and H-PIM" on average.
    """
    sums = {name: 0.0 for name in BASELINE_NAMES}
    for cell in grid.cells:
        for name in BASELINE_NAMES:
            sums[name] += cell.savings[name]
    return {name: value / len(grid.cells) for name, value in sums.items()}


def table_vi(grid: SavingsGrid) -> dict:
    """Table VI: per-case savings for Cases 3-6, averaged over models."""
    wanted = (
        ScenarioCase.PERIODIC_SPIKE,
        ScenarioCase.PERIODIC_SPIKE_FREQUENT,
        ScenarioCase.PULSING,
        ScenarioCase.RANDOM,
    )
    rows = {}
    models = grid.models()
    for case in wanted:
        sums = {name: 0.0 for name in BASELINE_NAMES}
        for model in models:
            cell = grid.cell(model, case)
            for name in BASELINE_NAMES:
                sums[name] += cell.savings[name]
        rows[case] = {
            name: value / len(models) for name, value in sums.items()
        }
    return rows


def clear_caches() -> None:
    """Drop all memoised grids/runs (tests use this for isolation)."""
    _GRID_CACHE.clear()
    _RUN_CACHE.clear()
    _RUNTIME_CACHE.clear()
    _TSLICE_CACHE.clear()
