"""Energy-savings grids: the machinery behind Fig. 5 and Table VI.

Runs the full comparison matrix — every Table I architecture, every
Table IV model, every Fig. 4 scenario over 50 time slices — and reports
HH-PIM's savings against each comparison architecture.  Execution goes
through the shared :class:`repro.api.Engine`, which memoizes allocation
LUTs per (architecture, model, resolution), so the whole grid computes
each knapsack table exactly once; computed grids and runs are
additionally cached here so the Fig. 5 and Table VI benchmarks share one
grid computation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.config import ExperimentConfig
from ..api.engine import shared_engine
from ..api.registry import ARCHITECTURES, MODELS, ensure_registered
from ..arch.specs import TABLE_I, ArchitectureSpec, HH_PIM
from ..core.placement import DEFAULT_BLOCK_COUNT
from ..core.runtime import RunResult
from ..errors import ConfigurationError
from ..workloads.models import TABLE_IV, ModelSpec
from ..workloads.scenarios import ALL_CASES, ScenarioCase

#: Comparison architectures, in the paper's column order.
BASELINE_NAMES = ("Baseline-PIM", "Heterogeneous-PIM", "Hybrid-PIM")


@dataclass(frozen=True)
class SavingsCell:
    """HH-PIM's savings for one (model, scenario) against each baseline."""

    model: str
    case: ScenarioCase
    #: Baseline name -> fractional savings (0.6 == 60 %).
    savings: dict
    #: Architecture name -> total energy (nJ), including HH-PIM.
    energies: dict


@dataclass(frozen=True)
class SavingsGrid:
    """The full Fig. 5 grid: cells for every model and scenario."""

    cells: tuple
    slices: int

    def cell(self, model: str, case: ScenarioCase) -> SavingsCell:
        """Look one cell up."""
        for cell in self.cells:
            if cell.model == model and cell.case is case:
                return cell
        raise ConfigurationError(f"no cell for ({model}, {case})")

    def models(self):
        """Distinct model names, in Table IV order."""
        names = []
        for cell in self.cells:
            if cell.model not in names:
                names.append(cell.model)
        return names

    def cases(self):
        """Distinct scenario cases, in Fig. 4 order."""
        cases = []
        for cell in self.cells:
            if cell.case not in cases:
                cases.append(cell.case)
        return cases


_GRID_CACHE: dict = {}
_RUN_CACHE: dict = {}


def _config_for(
    spec: ArchitectureSpec,
    model: ModelSpec,
    case: ScenarioCase,
    slices: int,
    seed: int,
    block_count: int,
) -> ExperimentConfig:
    ensure_registered(ARCHITECTURES, spec.name, spec)
    ensure_registered(MODELS, model.name, model)
    return ExperimentConfig(
        arch=spec.name,
        model=model.name,
        scenario=f"case{case.value}",
        slices=slices,
        seed=seed,
        block_count=block_count,
    )


def run_architecture(
    spec: ArchitectureSpec,
    model: ModelSpec,
    case: ScenarioCase,
    slices: int = 50,
    seed: int = 2025,
    block_count: int = DEFAULT_BLOCK_COUNT,
) -> RunResult:
    """Run one (architecture, model, scenario) cell, with caching.

    Thin wrapper over :meth:`repro.api.Engine.run`, kept for callers that
    hold spec objects rather than registry keys.
    """
    config = _config_for(spec, model, case, slices, seed, block_count)
    # The cache key carries the spec *objects*, not just the config's name
    # strings: a different spec reusing a builtin name must not be served
    # the old architecture's numbers.
    key = (spec, model, config)
    if key not in _RUN_CACHE:
        _RUN_CACHE[key] = shared_engine().run(config)
    return _RUN_CACHE[key]


def compute_savings_grid(
    models=TABLE_IV,
    cases=ALL_CASES,
    slices: int = 50,
    seed: int = 2025,
    block_count: int = DEFAULT_BLOCK_COUNT,
    max_workers: int | None = None,
) -> SavingsGrid:
    """Compute (or fetch) the Fig. 5 savings grid.

    The whole matrix is submitted as one :meth:`Engine.run_many` batch;
    pass ``max_workers`` to spread it over a process pool.
    """
    key = (
        tuple(m.name for m in models), tuple(cases), slices, seed, block_count
    )
    if key in _GRID_CACHE:
        return _GRID_CACHE[key]

    cache_keys = {}
    for model in models:
        for case in cases:
            for spec in TABLE_I:
                config = _config_for(
                    spec, model, case, slices, seed, block_count
                )
                cache_keys[(model.name, case, spec.name)] = (
                    spec, model, config
                )
    missing = [k for k in cache_keys.values() if k not in _RUN_CACHE]
    if missing:
        records = shared_engine().run_many(
            [config for _, _, config in missing], max_workers=max_workers
        )
        for cache_key, record in zip(missing, records):
            _RUN_CACHE[cache_key] = record.result

    cells = []
    for model in models:
        for case in cases:
            energies = {
                spec.name: _RUN_CACHE[
                    cache_keys[(model.name, case, spec.name)]
                ].total_energy_nj
                for spec in TABLE_I
            }
            hh = energies[HH_PIM.name]
            savings = {
                name: 1.0 - hh / energies[name] for name in BASELINE_NAMES
            }
            cells.append(
                SavingsCell(
                    model=model.name, case=case,
                    savings=savings, energies=energies,
                )
            )
    grid = SavingsGrid(cells=tuple(cells), slices=slices)
    _GRID_CACHE[key] = grid
    return grid


def average_savings(grid: SavingsGrid) -> dict:
    """Mean savings per baseline over all models and cases.

    The paper's headline: "up to 60.43 %, 36.3 %, and 48.58 % compared to
    Baseline-PIM, Hetero.-PIM, and H-PIM" on average.
    """
    sums = {name: 0.0 for name in BASELINE_NAMES}
    for cell in grid.cells:
        for name in BASELINE_NAMES:
            sums[name] += cell.savings[name]
    return {name: value / len(grid.cells) for name, value in sums.items()}


def table_vi(grid: SavingsGrid) -> dict:
    """Table VI: per-case savings for Cases 3-6, averaged over models."""
    wanted = (
        ScenarioCase.PERIODIC_SPIKE,
        ScenarioCase.PERIODIC_SPIKE_FREQUENT,
        ScenarioCase.PULSING,
        ScenarioCase.RANDOM,
    )
    rows = {}
    models = grid.models()
    for case in wanted:
        sums = {name: 0.0 for name in BASELINE_NAMES}
        for model in models:
            cell = grid.cell(model, case)
            for name in BASELINE_NAMES:
                sums[name] += cell.savings[name]
        rows[case] = {
            name: value / len(models) for name, value in sums.items()
        }
    return rows


def clear_caches() -> None:
    """Drop all memoised grids/runs and the shared engine's LUT cache.

    Also re-asserts the builtin Table I / Table IV registrations, undoing
    any latest-wins overwrite a spec-object helper performed under a
    builtin name, so subsequent key lookups reproduce the paper again.
    """
    _GRID_CACHE.clear()
    _RUN_CACHE.clear()
    shared_engine().clear()
    for spec in TABLE_I:
        ensure_registered(ARCHITECTURES, spec.name, spec)
    for model in TABLE_IV:
        ensure_registered(MODELS, model.name, model)
