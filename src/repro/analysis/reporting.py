"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from ..errors import ConfigurationError


class TextTable:
    """A minimal aligned text table (right-aligned numeric cells)."""

    def __init__(self, headers) -> None:
        if not headers:
            raise ConfigurationError("table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.rows: list = []

    def add_row(self, *cells) -> None:
        """Append one row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([self._format(cell) for cell in cells])

    @staticmethod
    def _format(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:,.2f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def render(self) -> str:
        """The aligned table as a string."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        def fmt(cells):
            return "  ".join(
                cell.rjust(w) if i else cell.ljust(w)
                for i, (cell, w) in enumerate(zip(cells, widths))
            )
        lines = [fmt(self.headers), "-" * (sum(widths) + 2 * (len(widths) - 1))]
        lines.extend(fmt(row) for row in self.rows)
        return "\n".join(lines)
