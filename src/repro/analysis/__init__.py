"""Analysis: savings grids (Fig. 5 / Table VI), figures, fleet and QoS reports."""

from .savings import (
    SavingsCell,
    SavingsGrid,
    compute_savings_grid,
    table_vi,
    average_savings,
)
from .figures import render_fig4, render_fig5, render_fig6, fig6_series, sparkline
from .fleet import fleet_table, render_fleet
from .qos import qos_strips, qos_table, render_qos
from .reporting import TextTable
from .sweeps import render_store, stored_results

__all__ = [
    "fleet_table",
    "render_fleet",
    "qos_table",
    "qos_strips",
    "render_qos",
    "sparkline",
    "SavingsCell",
    "SavingsGrid",
    "compute_savings_grid",
    "table_vi",
    "average_savings",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "fig6_series",
    "TextTable",
    "render_store",
    "stored_results",
]
