"""Analysis: energy-savings grids (Fig. 5 / Table VI) and figure renderers."""

from .savings import (
    SavingsCell,
    SavingsGrid,
    compute_savings_grid,
    table_vi,
    average_savings,
)
from .figures import render_fig4, render_fig5, render_fig6, fig6_series
from .reporting import TextTable

__all__ = [
    "SavingsCell",
    "SavingsGrid",
    "compute_savings_grid",
    "table_vi",
    "average_savings",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "fig6_series",
    "TextTable",
]
