"""Text renderers for the paper's figures.

* :func:`render_fig4` — the six workload patterns as sparkline strips;
* :func:`render_fig5` — grouped savings bars per model and scenario;
* :func:`fig6_series` / :func:`render_fig6` — the memory-utilisation and
  ``E_task`` sweep over ``t_constraint`` (the paper's headline figure).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lut import AllocationLUT
from ..core.spaces import SpaceKind
from ..errors import ConfigurationError
from ..workloads.scenarios import Scenario
from .savings import BASELINE_NAMES, SavingsGrid

_BLOCKS = " ▁▂▃▄▅▆▇█"


def sparkline(values, peak) -> str:
    """A unicode block-strip of ``values`` normalised to ``peak``."""
    chars = []
    for value in values:
        level = 0 if peak == 0 else round(value / peak * (len(_BLOCKS) - 1))
        chars.append(_BLOCKS[max(0, min(level, len(_BLOCKS) - 1))])
    return "".join(chars)


def render_fig4(scenarios) -> str:
    """Sparkline strip chart of load patterns (Fig. 4 and DSL-built)."""
    lines = []
    for sc in scenarios:
        if not isinstance(sc, Scenario):
            raise ConfigurationError("render_fig4 expects Scenario objects")
        if sc.case is not None:
            title = f"Case {sc.case.value} ({sc.case.label:<34})"
        else:
            title = f"{sc.label:<43}"
        lines.append(f"{title} {sparkline(sc.loads, sc.peak)}")
    return "\n".join(lines)


def render_fig5(grid: SavingsGrid) -> str:
    """Grouped text bars: savings per model, scenario and baseline."""
    lines = []
    for model in grid.models():
        lines.append(f"== {model} ==")
        for case in grid.cases():
            cell = grid.cell(model, case)
            for name in BASELINE_NAMES:
                saving = cell.savings[name] * 100
                bar = "#" * max(0, round(saving / 2))
                lines.append(
                    f"  Case {case.value}  vs {name:<18} "
                    f"{saving:6.2f}% |{bar}"
                )
        lines.append("")
    return "\n".join(lines).rstrip()


@dataclass(frozen=True)
class Fig6Point:
    """One sweep sample of Fig. 6."""

    t_constraint_ns: float
    utilization: dict
    e_task_nj: float
    e_task_normalized: float


def fig6_series(lut: AllocationLUT, points: int = 120):
    """The Fig. 6 series: utilisation mix and normalised ``E_task``.

    ``E_task`` at each ``t_constraint`` is the placement's dynamic energy
    plus the hold leakage of retaining it across the time slice — the
    paper's constant-``e_i`` convention, under which the curve declines
    quasi-linearly with plateaus and is normalised to the
    peak-performance point.  Placements are selected with the same
    metric, so the series is monotone non-increasing.
    """
    window = lut.t_max_ns
    lo = lut.min_feasible_t_ns
    hi = max(window, lo)
    peak_energy = None
    series = []
    for i in range(points):
        budget = lo + (hi - lo) * i / (points - 1)
        placement = lut.lookup(budget, window_ns=window)
        energy = placement.task_energy_nj(window)
        if peak_energy is None:
            peak_energy = energy
        series.append(
            Fig6Point(
                t_constraint_ns=budget,
                utilization=placement.utilization(),
                e_task_nj=energy,
                e_task_normalized=energy / peak_energy if peak_energy else 0.0,
            )
        )
    return series


_SPACE_ORDER = (
    SpaceKind.HP_SRAM, SpaceKind.HP_MRAM, SpaceKind.LP_SRAM, SpaceKind.LP_MRAM
)
_SPACE_GLYPH = {
    SpaceKind.HP_SRAM: "S",
    SpaceKind.HP_MRAM: "M",
    SpaceKind.LP_SRAM: "s",
    SpaceKind.LP_MRAM: "m",
}


def render_fig6(lut: AllocationLUT, points: int = 48, width: int = 40) -> str:
    """ASCII Fig. 6: per-sample utilisation strip plus the E_task curve.

    Each row is one ``t_constraint`` sample; the strip shows the block mix
    (S=HP-SRAM, M=HP-MRAM, s=LP-SRAM, m=LP-MRAM) and the right column the
    normalised task energy.
    """
    series = fig6_series(lut, points=points)
    lines = [
        "t_constraint (ms)  placement mix "
        "(S=HP-SRAM M=HP-MRAM s=LP-SRAM m=LP-MRAM)   E_task (norm.)"
    ]
    for point in series:
        strip = []
        for kind in _SPACE_ORDER:
            share = point.utilization.get(kind, 0.0)
            strip.append(_SPACE_GLYPH[kind] * round(share * width))
        strip_text = "".join(strip)[:width].ljust(width)
        lines.append(
            f"{point.t_constraint_ns / 1e6:>14.2f}     |{strip_text}|"
            f"   {point.e_task_normalized:8.3f}"
        )
    return "\n".join(lines)
