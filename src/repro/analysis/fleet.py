"""Fleet reporting: per-device tables and aggregate serving statistics."""

from __future__ import annotations

from ..errors import ConfigurationError
from ..serving.fleet import FleetResult
from .reporting import TextTable


def fleet_table(result: FleetResult) -> TextTable:
    """Per-device breakdown of one fleet run."""
    if not isinstance(result, FleetResult):
        raise ConfigurationError(
            f"fleet_table expects a FleetResult, got {type(result).__name__}"
        )
    table = TextTable([
        "Device", "Architecture", "Inferences", "Energy (mJ)",
        "Energy/inf (uJ)", "Mean power (mW)", "Busy", "Deadlines",
    ])
    utilization = result.device_utilization
    for index, run in enumerate(result.device_results):
        table.add_row(
            f"#{index}",
            run.architecture,
            run.total_inferences,
            round(run.total_energy_nj / 1e6, 2),
            round(run.energy_per_inference_nj / 1e3, 2),
            round(run.mean_power_mw, 2),
            f"{utilization[index]:.0%}",
            "met" if run.deadlines_met else "MISSED",
        )
    return table


def render_fleet(result: FleetResult) -> str:
    """The per-device table plus the fleet's aggregate line."""
    summary = (
        f"fleet of {len(result)} ({result.dispatch}), "
        f"scenario {result.scenario.label}: "
        f"{result.total_inferences} inferences, "
        f"{result.total_energy_nj / 1e6:.2f} mJ "
        f"({result.energy_per_inference_nj / 1e3:.2f} uJ/inf), "
        f"deadline rate {result.deadline_rate:.0%}, "
        f"load imbalance {result.load_imbalance:.2f}x"
    )
    return fleet_table(result).render() + "\n\n" + summary
