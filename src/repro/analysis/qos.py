"""QoS reporting: SLO summary tables and per-run serving strips."""

from __future__ import annotations

from ..errors import ConfigurationError
from ..qos.slo import QoSResult
from .figures import sparkline
from .reporting import TextTable


def _ms(value_ns) -> str:
    """Milliseconds with two decimals, or a dash for missing values."""
    return "-" if value_ns is None else f"{value_ns / 1e6:.2f}"


def qos_table(result: QoSResult) -> TextTable:
    """The run's SLO metrics, one row per statistic."""
    if not isinstance(result, QoSResult):
        raise ConfigurationError(
            f"qos_table expects a QoSResult, got {type(result).__name__}"
        )
    p50, p95, p99 = result.latency_percentiles_ns
    table = TextTable(["Metric", "Value"])
    table.add_row("requests", result.total_requests)
    table.add_row("completed", result.completed)
    table.add_row("unfinished", result.unfinished)
    table.add_row("p50 latency (ms)", _ms(p50))
    table.add_row("p95 latency (ms)", _ms(p95))
    table.add_row("p99 latency (ms)", _ms(p99))
    table.add_row("deadline miss rate", f"{result.deadline_miss_rate:.2%}")
    table.add_row("SLO attainment", f"{result.slo_attainment:.2%}")
    table.add_row("mean fleet size", f"{result.mean_fleet_size:.2f}")
    table.add_row("peak backlog", result.peak_backlog)
    table.add_row("mean utilization", f"{result.mean_utilization:.0%}")
    table.add_row("energy (mJ)", f"{result.total_energy_nj / 1e6:.2f}")
    table.add_row(
        "energy/request (uJ)", f"{result.energy_per_request_nj / 1e3:.2f}"
    )
    return table


def qos_strips(result: QoSResult) -> str:
    """Per-slice sparkline strips: load, fleet, backlog, p95, attainment."""
    slices = result.slices
    if not slices:
        return "(no service windows)"
    arrivals = [stats.arrivals for stats in slices]
    fleet = [stats.fleet_size for stats in slices]
    backlog = [stats.backlog for stats in slices]
    p95 = [
        0.0 if stats.p95_ns is None else stats.p95_ns / 1e6 for stats in slices
    ]
    attainment = [stats.slo_attainment for stats in slices]
    rows = [
        ("arrivals", arrivals, max(max(arrivals), 1)),
        ("fleet", fleet, max(max(fleet), 1)),
        ("backlog", backlog, max(max(backlog), 1)),
        ("p95 (ms)", p95, max(max(p95), 1e-9)),
        ("attainment", attainment, 1.0),
    ]
    width = max(len(label) for label, _, _ in rows)
    return "\n".join(
        f"{label:<{width}}  {sparkline(values, peak)}  "
        f"(max {max(values):g})"
        for label, values, peak in rows
    )


def render_qos(result: QoSResult) -> str:
    """The SLO table, the serving strips and the headline line."""
    headline = (
        f"{result.architecture}/{result.model} x{result.mean_fleet_size:.1f} "
        f"devices ({result.discipline}/{result.dispatch}/{result.autoscaler}"
        f", batch {result.batch}), scenario {result.scenario.label}: "
        f"{result.completed}/{result.total_requests} requests, "
        f"p95 {_ms(result.latency_percentiles_ns[1])} ms, "
        f"SLO attainment {result.slo_attainment:.1%}, "
        f"{result.total_energy_nj / 1e6:.2f} mJ"
    )
    return (
        qos_table(result).render()
        + "\n\n" + qos_strips(result)
        + "\n\n" + headline
    )
