"""Design-space sweep utilities.

The paper evaluates one fabric (4 HP + 4 LP, 64+64 kB).  These helpers
sweep the axes a designer would explore next — HP/LP module split, supply
voltage of the LP cluster, and time-slice length — through the shared
:class:`repro.api.Engine`, so LUTs are memoized across sweep points and
results are directly comparable with the Table I configurations.

:func:`stored_results` and :func:`render_store` close the loop with the
experiment store (:mod:`repro.store`): a grid filled by sharded
``repro sweep --store`` workers renders into per-run and aggregate
tables from disk alone — no engine, no recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..api.config import ExperimentConfig
from ..api.engine import shared_engine
from ..api.registry import ARCHITECTURES, MODELS, ensure_registered
from ..api.results import ResultSet
from ..arch.specs import ArchitectureSpec, ClusterSpec
from ..errors import ConfigurationError
from ..pim.module import ModuleKind
from ..workloads.models import ModelSpec
from ..workloads.scenarios import Scenario
from .reporting import TextTable

KB = 1024


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    label: str
    total_energy_nj: float
    mean_power_mw: float
    deadlines_met: bool
    peak_task_time_ns: float


def hh_variant(
    hp_modules: int,
    lp_modules: int,
    mram_kb: int = 64,
    sram_kb: int = 64,
) -> ArchitectureSpec:
    """An HH-PIM variant with arbitrary module split and bank sizes.

    The variant is registered in :data:`repro.api.ARCHITECTURES` under
    its generated name, so it is immediately runnable by key (CLI,
    configs, sweeps).
    """
    if hp_modules <= 0:
        raise ConfigurationError("need at least one HP module")
    lp = None
    if lp_modules > 0:
        lp = ClusterSpec(ModuleKind.LP, lp_modules,
                         mram_capacity=mram_kb * KB,
                         sram_capacity=sram_kb * KB)
    spec = ArchitectureSpec(
        name=f"HH-{hp_modules}H{lp_modules}L-{mram_kb}M{sram_kb}S",
        hp=ClusterSpec(ModuleKind.HP, hp_modules,
                       mram_capacity=mram_kb * KB,
                       sram_capacity=sram_kb * KB),
        lp=lp,
    )
    # The name encodes the geometry, so re-registration is a no-op.
    ARCHITECTURES.register(spec.name, spec)
    return spec


def _peak_task_time_ns(engine, config: ExperimentConfig) -> float:
    """Peak (latency-optimal) task time of a config's memoized runtime."""
    return engine.runtime(config).reference_placement.task_time_ns


def sweep_module_split(
    model: ModelSpec,
    workload: Scenario,
    splits=((2, 6), (4, 4), (6, 2), (8, 0)),
    block_count: int = 48,
    time_steps: int = 6000,
    t_slice_ns: float | None = None,
):
    """Evaluate HP/LP module splits under one workload.

    All variants face the same time slice (sized for the paper's 4+4
    reference unless overridden), so deadline behaviour is comparable.
    """
    engine = shared_engine()
    ensure_registered(MODELS, model.name, model)
    points = []
    for hp_count, lp_count in splits:
        spec = hh_variant(hp_count, lp_count)
        config = ExperimentConfig(
            arch=spec.name, model=model.name,
            t_slice_ns=t_slice_ns,
            block_count=block_count, time_steps=time_steps,
        )
        result = engine.run(config, scenario=workload)
        points.append(
            SweepPoint(
                label=spec.name,
                total_energy_nj=result.total_energy_nj,
                mean_power_mw=result.mean_power_mw,
                deadlines_met=result.deadlines_met,
                peak_task_time_ns=_peak_task_time_ns(engine, config),
            )
        )
    return points


def stored_results(store, predicate=None, **axes) -> ResultSet:
    """A :class:`ResultSet` reloaded from an experiment store.

    Thin, intention-revealing wrapper over
    :meth:`repro.store.Store.query`: the batch records land back in a
    deterministic order (config label, then key) and accept the same
    axis filters as :meth:`ResultSet.filter`, so every aggregation and
    export in the analysis layer works from disk without re-running a
    single experiment.
    """
    return store.query(predicate, **axes)


def render_store(store, by: str = "arch", kind: str | None = None,
                 limit: int | None = None) -> str:
    """Per-run and aggregate tables of a store's contents, from disk.

    The rendering a finished (possibly sharded, possibly multi-day)
    sweep is inspected with: every stored batch record as one row, then
    the same per-axis aggregate ``repro sweep`` prints — computed
    entirely from stored results.  ``kind`` restricts the listing to
    one record kind (``run``, ``fleet``, ``qos`` or ``fuzz`` — the
    latter two render the stored QoS summary rows and the persisted
    fuzz regression scenarios) and ``limit`` truncates it to the first
    N entries of the deterministic order; both back
    ``repro store ls --kind/--limit``.
    """
    state = store.info()
    header = (
        f"{state['entries']} stored entries at {state['path']} "
        f"({state['bytes'] / 1024:.0f} kB"
        + (f", {state['quarantined']} quarantined" if state["quarantined"]
           else "")
        + ")"
    )
    if kind == "qos":
        return "\n".join([header, ""] + _qos_listing(store, limit))
    if kind == "fuzz":
        return "\n".join([header, ""] + _fuzz_listing(store, limit))
    results = store.query(kind=kind, limit=limit)
    lines = [header]
    if not len(results):
        return lines[0]
    table = TextTable(["Kind", "Architecture", "Model", "Scenario",
                       "Devices", "Energy (mJ)", "Deadlines"])
    for record in results:
        table.add_row(
            record.kind,
            record.arch,
            record.model,
            record.scenario,
            record.devices,
            round(record.total_energy_nj / 1e6, 2),
            "met" if record.deadlines_met else "MISSED",
        )
    lines += ["", table.render()]
    summary = TextTable([by, "runs", "mean energy (mJ)", "energy/inf (uJ)",
                         "deadline rate"])
    for key, stats in results.aggregate(by=by).items():
        summary.add_row(
            key,
            stats.runs,
            round(stats.mean_energy_nj / 1e6, 2),
            round(stats.energy_per_inference_nj / 1e3, 2),
            f"{stats.deadline_rate:.0%}",
        )
    lines += ["", f"aggregate by {by}:", summary.render()]
    return "\n".join(lines)


def _qos_listing(store, limit: int | None) -> list:
    """The ``--kind qos`` table rows for :func:`render_store`."""
    rows = store.qos_rows(limit=limit)
    if not rows:
        return ["no stored qos entries"]
    table = TextTable(["Architecture", "Model", "Scenario", "Devices",
                       "Discipline", "Autoscaler", "Completed",
                       "SLO att.", "Energy (mJ)"])
    for row in rows:
        table.add_row(
            row["arch"],
            row["model"],
            row["scenario"],
            row["devices"],
            row["qos"],
            row["autoscaler"],
            row["completed"],
            f"{row['slo_attainment']:.1%}",
            round(row["total_energy_nj"] / 1e6, 2),
        )
    return [table.render()]


def _fuzz_listing(store, limit: int | None) -> list:
    """The ``--kind fuzz`` table rows for :func:`render_store`."""
    rows = store.fuzz_rows(limit=limit)
    if not rows:
        return ["no stored fuzz regressions"]
    table = TextTable(["Seed", "Invariant", "Program", "Architecture",
                       "Model", "Slices"])
    for row in rows:
        table.add_row(
            row["seed"],
            row["invariant"],
            row["program"],
            row["arch"],
            row["model"],
            row["slices"],
        )
    return [table.render(), "",
            "replay with: repro fuzz --replay"]


def sweep_time_slice(
    model: ModelSpec,
    workload: Scenario,
    scale_factors=(1.0, 1.5, 2.0, 3.0),
    block_count: int = 48,
    time_steps: int = 6000,
):
    """Evaluate HH-PIM under stretched time slices.

    A longer slice relaxes ``t_constraint`` at equal load, letting the
    placement sink deeper into LP-MRAM: energy per inference must be
    non-increasing in the slice length (asserted by the tests).
    """
    engine = shared_engine()
    ensure_registered(MODELS, model.name, model)
    reference = ExperimentConfig(
        arch="HH-PIM", model=model.name,
        block_count=block_count, time_steps=time_steps,
    )
    base = engine.resolve(reference).t_slice_ns
    points = []
    for factor in scale_factors:
        if factor <= 0:
            raise ConfigurationError("scale factors must be positive")
        config = reference.replace(t_slice_ns=base * factor)
        result = engine.run(config, scenario=workload)
        points.append(
            SweepPoint(
                label=f"T x {factor:g}",
                total_energy_nj=result.total_energy_nj,
                mean_power_mw=result.mean_power_mw,
                deadlines_met=result.deadlines_met,
                peak_task_time_ns=_peak_task_time_ns(engine, config),
            )
        )
    return points
