"""Exception hierarchy for the HH-PIM reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """An architecture, memory or workload configuration is invalid."""


class MemoryError_(ReproError):
    """Base class for memory-subsystem failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`MemoryError`.
    """


class AddressError(MemoryError_):
    """An access touched an address outside the bank's address range."""


class PowerGatingError(MemoryError_):
    """An access was attempted on a power-gated (sleeping) memory bank."""


class CapacityError(MemoryError_):
    """A placement or write exceeded the capacity of a storage space."""


class IsaError(ReproError):
    """Base class for PIM-ISA failures."""


class EncodingError(IsaError):
    """An instruction could not be encoded into its binary word format."""


class DecodingError(IsaError):
    """A binary word does not decode to a valid PIM instruction."""


class AssemblerError(IsaError):
    """A PIM assembly program contains a syntax or semantic error."""


class QueueFullError(IsaError):
    """The PIM instruction queue cannot accept another instruction."""


class QueueEmptyError(IsaError):
    """A fetch was attempted from an empty PIM instruction queue."""


class ControllerError(ReproError):
    """The PIM controller entered an inconsistent state."""


class StateTransitionError(ControllerError):
    """An illegal state-machine transition was requested."""


class NocError(ReproError):
    """The interconnect model rejected a transfer."""


class RiscvError(ReproError):
    """Base class for RISC-V ISS failures."""


class IllegalInstructionError(RiscvError):
    """The ISS fetched a word that does not decode to a supported opcode."""


class MmioError(RiscvError):
    """An MMIO access hit an unmapped address or violated access width."""


class SimulationError(ReproError):
    """The event/cycle simulation engine detected an inconsistency."""


class PlacementError(ReproError):
    """Base class for data-placement optimizer failures."""


class InfeasibleError(PlacementError):
    """No placement satisfies the requested time constraint.

    Corresponds to the grey "Not Possible" region of Fig. 6 in the paper:
    the requested ``t_constraint`` is below the peak-performance point of
    the architecture.
    """


class WorkloadError(ReproError):
    """A workload model or scenario description is invalid."""


class FuzzError(ReproError):
    """A fuzz program, case, or stored regression entry is invalid.

    Raised when a serialized program spec names an unknown operator or
    carries malformed parameters, and when a persisted ``fuzz-`` store
    entry cannot be reconstructed into a runnable case.
    """


class ServingError(ReproError):
    """The fleet serving layer was misconfigured or misbehaved.

    Raised for invalid fleet shapes (no devices, unknown dispatch
    policies) and for dispatch policies that violate the conservation
    contract (assignments must be non-negative and sum to the slice's
    arrivals).
    """


class QoSError(ServingError):
    """The request-level QoS subsystem was misconfigured or misbehaved.

    Raised for invalid request samples (negative timestamps, conflicting
    class mixes), queue disciplines and autoscalers that violate their
    contracts, and simulator budgets that are exhausted before the
    backlog drains.  Derives from :class:`ServingError` so fleet-level
    callers catch QoS failures too.
    """


class ServiceError(ReproError):
    """The resident serving daemon failed to start or operate.

    Raised for socket-level failures the daemon treats as fatal — a
    port already in use, an unwritable pidfile — and for client-side
    failures talking to a daemon (connection refused, a typed error
    reply).  Derives from :class:`ReproError` so the CLI's one-line
    exit-2 handling covers the serving subsystem too.
    """


class ProtocolError(ServiceError):
    """A wire message violated the serve protocol.

    Raised for unparseable frames (bad length prefix, invalid JSON,
    oversized payloads), unknown message types, missing required
    fields, and protocol-version mismatches.  Carries a machine-
    readable ``code`` so daemons can answer with a typed error reply
    instead of dropping the connection.
    """

    def __init__(self, message: str, code: str = "bad_message") -> None:
        super().__init__(message)
        self.code = code


class RegistryError(ConfigurationError):
    """A registry lookup or registration failed.

    Raised for unknown keys, duplicate registrations without
    ``overwrite=True``, and values that fail the registry's validation.
    Derives from :class:`ConfigurationError` so existing callers that
    catch configuration problems also catch registry misuse.
    """
