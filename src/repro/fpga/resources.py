"""Analytical FPGA resource model (Table II, Genesys2 Kintex-7).

The paper reports post-implementation utilisation of its prototype.  We
model each IP with per-instance base costs plus scaling rules:

* **BRAM** — module memories map to 36 Kb block RAMs, banked in groups of
  four (which is why a 128 kB hybrid memory occupies 32 BRAMs rather than
  the raw ``ceil(1 Mb / 36 Kb) = 29``);
* **DSP** — one INT8 MAC datapath consumes 2 DSP48 slices (multiplier +
  accumulate), 4 for the Rocket core's MUL/DIV unit;
* **LUT/FF** — per-IP constants calibrated to Table II, with a per-cluster
  interface-glue term that scales with module count (the MEM Interface
  Logic bandwidth scales with the number of modules).

At the paper's exact configuration the model reproduces Table II
bit-exactly; for other architectures it extrapolates along the stated
scaling rules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.specs import ArchitectureSpec
from ..pim.module import ModuleKind

#: Bits per Kintex-7 block RAM.
BRAM_BITS = 36 * 1024
#: Module memories are banked in groups of this many BRAMs.
BRAM_BANK_GROUP = 4


@dataclass(frozen=True)
class Resources:
    """One IP's resource vector."""

    luts: int
    ffs: int
    brams: int = 0
    dsps: int = 0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            luts=self.luts + other.luts,
            ffs=self.ffs + other.ffs,
            brams=self.brams + other.brams,
            dsps=self.dsps + other.dsps,
        )

    def scaled(self, factor: int) -> "Resources":
        """``factor`` identical instances."""
        return Resources(
            luts=self.luts * factor,
            ffs=self.ffs * factor,
            brams=self.brams * factor,
            dsps=self.dsps * factor,
        )


#: Fixed IPs of the SoC (Table II rows 1-3).
ROCKET_CORE = Resources(luts=14_998, ffs=9_762, brams=12, dsps=4)
PERIPHERALS = Resources(luts=4_704, ffs=7_159)
SYSTEM_INTERCONNECT = Resources(luts=5_237, ffs=7_720)

#: Per-module logic (excluding memory BRAMs), per flavour.  The LP module
#: spends more LUT/FF on the slower-domain synchronisers.
_MODULE_LOGIC = {
    ModuleKind.HP: Resources(luts=968, ffs=1_055, dsps=2),
    ModuleKind.LP: Resources(luts=1_074, ffs=1_094, dsps=2),
}

#: Per-cluster controller logic.  The HP controller carries the Data
#: Allocator's address generator sized for the faster domain.
_CONTROLLER = {
    ModuleKind.HP: Resources(luts=2_823, ffs=875),
    ModuleKind.LP: Resources(luts=2_149, ffs=875),
}

#: Per-module interface glue (CMD/MEM interface fan-out); calibrated so
#: the cluster totals reproduce Table II at 4 modules per cluster.
_GLUE_LUTS_PER_MODULE = {ModuleKind.HP: 64, ModuleKind.LP: 58}
_GLUE_FFS_PER_MODULE = {ModuleKind.HP: 91, ModuleKind.LP: 91}
_GLUE_LUTS_BASE = {ModuleKind.HP: 0, ModuleKind.LP: 3}
_GLUE_FFS_BASE = {ModuleKind.HP: 1, ModuleKind.LP: 1}


def brams_for(capacity_bytes: int) -> int:
    """BRAMs of a module memory: 36 Kb blocks, banked in groups of four."""
    if capacity_bytes <= 0:
        return 0
    raw = math.ceil(capacity_bytes * 8 / BRAM_BITS)
    return math.ceil(raw / BRAM_BANK_GROUP) * BRAM_BANK_GROUP


def module_resources(kind: ModuleKind, memory_bytes: int) -> Resources:
    """One PIM module: logic plus its memory BRAMs."""
    logic = _MODULE_LOGIC[kind]
    return Resources(
        luts=logic.luts,
        ffs=logic.ffs,
        brams=brams_for(memory_bytes),
        dsps=logic.dsps,
    )


def cluster_resources(kind: ModuleKind, module_count: int,
                      memory_bytes: int) -> Resources:
    """A module cluster: modules + controller + interface glue."""
    modules = module_resources(kind, memory_bytes).scaled(module_count)
    glue = Resources(
        luts=_GLUE_LUTS_BASE[kind] + _GLUE_LUTS_PER_MODULE[kind] * module_count,
        ffs=_GLUE_FFS_BASE[kind] + _GLUE_FFS_PER_MODULE[kind] * module_count,
    )
    return modules + _CONTROLLER[kind] + glue


@dataclass(frozen=True)
class ResourceReport:
    """A named utilisation report, Table II style."""

    rows: tuple  # (name, Resources) pairs

    @property
    def total(self) -> Resources:
        """Sum over all rows."""
        total = Resources(0, 0)
        for _, resources in self.rows:
            total = total + resources
        return total

    def render(self) -> str:
        """Aligned text table matching Table II's layout."""
        header = f"{'IPs':<34}{'LUTs':>8}{'FFs':>8}{'BRAMs':>8}{'DSPs':>6}"
        lines = [header, "-" * len(header)]
        for name, r in self.rows:
            brams = str(r.brams) if r.brams else "-"
            dsps = str(r.dsps) if r.dsps else "-"
            lines.append(
                f"{name:<34}{r.luts:>8,}{r.ffs:>8,}{brams:>8}{dsps:>6}"
            )
        total = self.total
        lines.append("-" * len(header))
        lines.append(
            f"{'Total':<34}{total.luts:>8,}{total.ffs:>8,}"
            f"{total.brams:>8}{total.dsps:>6}"
        )
        return "\n".join(lines)


def estimate_processor(spec: ArchitectureSpec) -> ResourceReport:
    """Resource report of a full processor built around ``spec``."""
    rows = [
        ("RISC-V Rocket Core", ROCKET_CORE),
        ("Peripherals", PERIPHERALS),
        ("System Interconnect", SYSTEM_INTERCONNECT),
    ]
    for _, cluster_spec in spec.cluster_specs():
        kind = cluster_spec.kind
        label = f"{kind.value.upper()}-PIM module cluster"
        rows.append(
            (
                label,
                cluster_resources(
                    kind,
                    cluster_spec.module_count,
                    cluster_spec.memory_per_module,
                ),
            )
        )
    return ResourceReport(rows=tuple(rows))


def table_ii_report() -> ResourceReport:
    """The exact Table II rows (HH-PIM prototype, itemised)."""
    hp_module = module_resources(ModuleKind.HP, 128 * 1024)
    lp_module = module_resources(ModuleKind.LP, 128 * 1024)
    return ResourceReport(
        rows=(
            ("RISC-V Rocket Core", ROCKET_CORE),
            ("Peripherals", PERIPHERALS),
            ("System Interconnect", SYSTEM_INTERCONNECT),
            ("HP-PIM Module", hp_module),
            ("HP-PIM Module Controller", _CONTROLLER[ModuleKind.HP]),
            (
                "Total (HP-PIM module cluster)",
                cluster_resources(ModuleKind.HP, 4, 128 * 1024),
            ),
            ("LP-PIM Module", lp_module),
            ("LP-PIM Module Controller", _CONTROLLER[ModuleKind.LP]),
            (
                "Total (LP-PIM module cluster)",
                cluster_resources(ModuleKind.LP, 4, 128 * 1024),
            ),
        )
    )
