"""FPGA resource estimation (Table II)."""

from .resources import (
    ResourceReport,
    Resources,
    estimate_processor,
    table_ii_report,
)

__all__ = [
    "ResourceReport",
    "Resources",
    "estimate_processor",
    "table_ii_report",
]
