"""Seeded generation of complete fuzz cases (program + experiment axes).

A :class:`FuzzCase` is the unit the harness checks: one serialized
arrival program plus every experiment axis the engine exposes — Table I
architecture, workload model, fleet size, dispatch policy, QoS
discipline, autoscaler, batching, and the SLO factor.  Axis values come
from fixed tuples (not live registries) so a fuzz run is a pure
function of its seed even when user plugins are registered.

Case seeds are drawn from one ``random.Random(seed)`` stream, and each
case is generated from its own ``random.Random(case_seed)`` — so a
single failing case replays from just its ``case_seed``, independent of
its position in the batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..api.config import ExperimentConfig
from ..errors import FuzzError
from .programs import build_program, program_label, random_program

__all__ = ["FuzzCase", "generate_case", "generate_cases"]

#: The experiment axes fuzz cases draw from (fixed builtins, for
#: seed-purity; see module docstring).
ARCHS = ("Baseline-PIM", "Heterogeneous-PIM", "Hybrid-PIM", "HH-PIM")
MODELS = ("EfficientNet-B0", "MobileNetV2", "ResNet-18")
DISCIPLINES = ("fifo", "priority", "edf")
DISPATCH = ("round_robin", "least_loaded", "energy_aware")
AUTOSCALERS = ("fixed", "threshold", "queue_depth")

#: Small LUT resolution shared by every fuzz case: bounds runtime
#: builds to one per (arch, model) pair, memoized across the batch.
FUZZ_BLOCKS = 24
FUZZ_STEPS = 3000

_CASE_FIELDS = (
    "case_seed", "program", "slices", "peak", "arch", "model", "fleet",
    "dispatch", "qos", "autoscaler", "max_fleet", "batch", "slo",
)


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed experiment: an arrival program plus config axes.

    Frozen and fully serializable (:meth:`to_dict` /
    :meth:`from_dict` round-trip exactly), because failing cases are
    persisted into the store and replayed by the tier-1 suite.
    """

    case_seed: int
    program: dict = field(hash=False)
    slices: int
    peak: int
    arch: str
    model: str
    fleet: int
    dispatch: str
    qos: str
    autoscaler: str
    max_fleet: int | None
    batch: int
    slo: float

    def to_dict(self) -> dict:
        """The JSON-ready dict form (the store's persistence format)."""
        return {name: getattr(self, name) for name in _CASE_FIELDS}

    @classmethod
    def from_dict(cls, payload: dict) -> "FuzzCase":
        """Rebuild a case from :meth:`to_dict` output.

        Raises :class:`~repro.errors.FuzzError` for missing or unknown
        fields, so a hand-edited store entry fails loudly at replay.
        """
        if not isinstance(payload, dict):
            raise FuzzError(f"fuzz case must be a dict, got {payload!r}")
        unknown = set(payload) - set(_CASE_FIELDS)
        missing = set(_CASE_FIELDS) - set(payload)
        if unknown or missing:
            raise FuzzError(
                f"fuzz case fields mismatch: missing {sorted(missing)!r}, "
                f"unknown {sorted(unknown)!r}"
            )
        return cls(**payload)

    @property
    def label(self) -> str:
        """The composed DSL name of the case's program."""
        return program_label(self.program)

    def scenario(self):
        """Materialize the program into a concrete scenario.

        All sampling randomness comes from ``case_seed``, so the same
        case always yields the same loads.
        """
        return build_program(self.program).materialize(
            self.slices, peak=self.peak, seed=self.case_seed,
            name=f"fuzz-{self.case_seed}",
        )

    def config(self, scenario_key: str) -> ExperimentConfig:
        """The experiment config running this case's axes.

        ``scenario_key`` names the registry entry the materialized
        scenario was registered under (the harness registers it for the
        duration of a check so the engine — and the store's
        content-addressing — resolve it like any preset).
        """
        return ExperimentConfig(
            arch=self.arch,
            model=self.model,
            scenario=scenario_key,
            slices=self.slices,
            peak=self.peak,
            seed=self.case_seed,
            block_count=FUZZ_BLOCKS,
            time_steps=FUZZ_STEPS,
            fleet=self.fleet,
            dispatch=self.dispatch,
            qos=self.qos,
            autoscaler=self.autoscaler,
            max_fleet=self.max_fleet,
            batch=self.batch,
            slo=self.slo,
        )


def generate_case(case_seed: int) -> FuzzCase:
    """The deterministic case for one seed (pure in ``case_seed``)."""
    rng = random.Random(case_seed)
    program = random_program(rng, max_depth=3)
    slices = rng.randint(3, 10)
    peak = rng.randint(4, 10)
    arch = rng.choice(ARCHS)
    model = rng.choice(MODELS)
    fleet = rng.randint(1, 3)
    dispatch = rng.choice(DISPATCH)
    qos = rng.choice(DISCIPLINES)
    autoscaler = rng.choice(AUTOSCALERS)
    max_fleet = None if rng.random() < 0.5 else fleet + rng.randint(1, 2)
    batch = rng.randint(1, 3)
    slo = round(rng.uniform(1.0, 3.0), 2)
    return FuzzCase(
        case_seed=case_seed,
        program=program,
        slices=slices,
        peak=peak,
        arch=arch,
        model=model,
        fleet=fleet,
        dispatch=dispatch,
        qos=qos,
        autoscaler=autoscaler,
        max_fleet=max_fleet,
        batch=batch,
        slo=slo,
    )


def generate_cases(seed: int, count: int) -> tuple:
    """``count`` cases from one batch seed, each with its own case seed.

    Case seeds are drawn up front from ``random.Random(seed)``, so case
    ``i`` of batch ``seed`` is identical across processes and across
    time regardless of how earlier cases executed.
    """
    if count < 0:
        raise FuzzError(f"case count must be non-negative, got {count!r}")
    rng = random.Random(seed)
    seeds = [rng.randrange(2**32) for _ in range(count)]
    return tuple(generate_case(case_seed) for case_seed in seeds)
