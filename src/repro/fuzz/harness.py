"""The invariant conformance harness: run fuzzed cases, check, persist.

Every generated :class:`~repro.fuzz.generator.FuzzCase` is pushed
through the real engine and checked against five invariants:

``conservation``
    Requests and tasks are conserved: the batch path processes exactly
    the scenario's total inferences, and the QoS path's
    ``completed + unfinished == total_requests`` with per-window
    arrival/completion series summing to the totals.
``determinism``
    Running the identical case twice produces bit-identical results
    (full ``to_dict`` payloads compared, floats included).
``scalar_differential``
    The vectorized fast paths are bit-identical to their scalar
    references: the slice runtime under
    :func:`~repro.core.runtime.scalar_runtime`, the QoS event loop
    under :func:`~repro.qos.queueing.scalar_qos`, and (capped per run —
    scalar LUT builds are ~1s each) the allocation DP under
    :func:`~repro.core.knapsack.scalar_dp` on a fresh engine.
``spill_resume``
    ``run_many`` exports are byte-identical across the in-memory,
    spill-to-store, and resume-from-store paths.
``slo_accounting``
    The windowed SLO series folds to the cumulative summary: percentile
    orderings hold per window, the last window's cumulative percentiles
    are the result's, overall attainment matches the window series, and
    the final backlog equals ``unfinished``.

An unexpected exception is reported as invariant ``error`` so a fuzzed
input that crashes the engine is still a finding, not a harness abort.

Failures are greedily shrunk (see :mod:`repro.fuzz.shrink`), persisted
into the experiment store as ``fuzz-`` entries, and announced through
the typed ``fuzz_failure`` event; :func:`replay_stored` re-checks every
persisted entry — the tier-1 suite calls it on every run, so a found
bug stays a failing test until fixed.

``REPRO_FUZZ_TEST_BREAK=1`` perturbs one accounting term (the QoS
completed count) inside the *harness*, never the engine — the
acceptance hook proving the catch → shrink → persist → replay loop
works end to end.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass

from ..api.engine import Engine
from ..api.registry import SCENARIOS
from ..core.knapsack import scalar_dp
from ..core.runtime import scalar_runtime
from ..errors import ReproError
from ..obs import events as _events
from ..qos.queueing import scalar_qos
from ..store.store import Store
from .generator import FuzzCase, generate_cases
from .shrink import shrink_case

__all__ = [
    "INVARIANTS",
    "Violation",
    "CaseReport",
    "FuzzReport",
    "check_case",
    "run_fuzz",
    "replay_stored",
]

#: The invariants the harness checks, in the order they are attempted.
INVARIANTS = (
    "conservation",
    "determinism",
    "scalar_differential",
    "spill_resume",
    "slo_accounting",
)

#: Scalar DP LUT builds cost ~1s; bound them per fuzz run.
DP_CHECK_LIMIT = 3


def _fault_injected() -> bool:
    """Whether the acceptance-test fault injection is armed."""
    value = os.environ.get("REPRO_FUZZ_TEST_BREAK", "").strip().lower()
    return value in {"1", "true", "yes", "on"}


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which invariant, and what disagreed."""

    invariant: str
    detail: str

    def to_dict(self) -> dict:
        """The JSON-ready form used in reports and store entries."""
        return {"invariant": self.invariant, "detail": self.detail}


def _check_batch(case: FuzzCase, config, scenario, engine, violations):
    """Batch-path invariants: task conservation, determinism, scalar
    runtime differential."""
    runner = engine.run_record if case.fleet == 1 else engine.run_fleet_record

    def snapshot():
        return runner(config, scenario=scenario).result.to_dict(
            include_records=True
        )

    first = snapshot()
    processed = first["total_inferences"]
    if processed != scenario.total_inferences:
        violations.append(Violation(
            "conservation",
            f"batch path processed {processed} tasks for "
            f"{scenario.total_inferences} scenario inferences",
        ))
    if first != snapshot():
        violations.append(Violation(
            "determinism", "batch path differs across identical runs"
        ))
    with scalar_runtime(True):
        scalar = snapshot()
    if first != scalar:
        violations.append(Violation(
            "scalar_differential",
            "vectorized slice runtime differs from the scalar reference",
        ))
    return first


def _check_qos(case: FuzzCase, config, scenario, engine, violations):
    """QoS-path invariants: request conservation (fault-injection
    point), determinism, scalar DES differential, SLO fold."""
    result = engine.run_qos(config, scenario=scenario)
    payload = result.to_dict()
    completed = payload["completed"] + (1 if _fault_injected() else 0)
    windows = payload["slices"]
    if completed + payload["unfinished"] != payload["total_requests"]:
        violations.append(Violation(
            "conservation",
            f"qos path: completed {completed} + unfinished "
            f"{payload['unfinished']} != total {payload['total_requests']}",
        ))
    if payload["total_requests"] != scenario.total_inferences:
        violations.append(Violation(
            "conservation",
            f"qos path sampled {payload['total_requests']} requests for "
            f"{scenario.total_inferences} scenario inferences",
        ))
    arrivals = sum(w["arrivals"] for w in windows)
    served = sum(w["completed"] for w in windows)
    if arrivals != payload["total_requests"] or served != payload["completed"]:
        violations.append(Violation(
            "conservation",
            f"qos windows book {arrivals} arrivals / {served} completions "
            f"for totals {payload['total_requests']} / {payload['completed']}",
        ))
    second = engine.run_qos(config, scenario=scenario).to_dict()
    if payload != second:
        violations.append(Violation(
            "determinism", "qos path differs across identical runs"
        ))
    with scalar_qos(True):
        scalar = engine.run_qos(config, scenario=scenario).to_dict()
    if payload != scalar:
        violations.append(Violation(
            "scalar_differential",
            "vectorized qos engine differs from the scalar DES",
        ))
    _check_slo_fold(payload, violations)


def _check_slo_fold(payload: dict, violations) -> None:
    """SLO accounting: the windowed series must fold to the summary."""
    windows = payload["slices"]
    for window in windows:
        for prefix in ("", "cumulative_"):
            p50 = window[f"{prefix}p50_ns"]
            p95 = window[f"{prefix}p95_ns"]
            p99 = window[f"{prefix}p99_ns"]
            if p50 is None or p95 is None or p99 is None:
                # A window with no completions yet has no percentiles.
                continue
            if not (p50 <= p95 <= p99):
                violations.append(Violation(
                    "slo_accounting",
                    f"window {window['index']}: {prefix}percentiles are "
                    f"unordered ({p50}, {p95}, {p99})",
                ))
                return
    if windows:
        last = windows[-1]
        for name in ("p50_ns", "p95_ns", "p99_ns"):
            if payload[name] != last[f"cumulative_{name}"]:
                violations.append(Violation(
                    "slo_accounting",
                    f"summary {name} {payload[name]} != last window's "
                    f"cumulative {last[f'cumulative_{name}']}",
                ))
                return
        if last["backlog"] != payload["unfinished"]:
            violations.append(Violation(
                "slo_accounting",
                f"final backlog {last['backlog']} != unfinished "
                f"{payload['unfinished']}",
            ))
            return
    misses = sum(w["slo_misses"] for w in windows)
    completed = payload["completed"]
    expected = 1.0 if completed == 0 else 1.0 - misses / completed
    if payload["slo_attainment"] != expected:
        violations.append(Violation(
            "slo_accounting",
            f"slo_attainment {payload['slo_attainment']} != folded "
            f"{expected} ({misses} misses / {completed} completed)",
        ))


def _check_spill(case: FuzzCase, config, engine, violations) -> None:
    """Export byte-identity across in-memory, spill, and resume paths.

    Runs ``run_many`` (which resolves the scenario through the
    registry, like a real sweep) against a throwaway store.
    """
    memory = engine.run_many((config,)).to_json()
    with tempfile.TemporaryDirectory(prefix="repro-fuzz-") as tmp:
        store = Store(tmp)
        spilled = engine.run_many((config,), store=store, spill=True).to_json()
        resumed = engine.run_many((config,), store=store, resume=True).to_json()
    if spilled != memory:
        violations.append(Violation(
            "spill_resume", "spill-mode export differs from in-memory export"
        ))
    if resumed != memory:
        violations.append(Violation(
            "spill_resume", "store-resumed export differs from in-memory export"
        ))


def _check_dp(case: FuzzCase, config, engine, dp_checked, violations) -> None:
    """Allocation-DP differential on a fresh engine, once per runtime
    key (scalar LUT builds are expensive), capped per fuzz run."""
    key = engine.resolve(config).key
    if key in dp_checked or len(dp_checked) >= DP_CHECK_LIMIT:
        return
    dp_checked.add(key)
    single = config.replace(fleet=1)
    vector = Engine(use_disk_cache=False).run_record(
        single, scenario=case.scenario()
    ).result.to_dict()
    with scalar_dp(True):
        scalar = Engine(use_disk_cache=False).run_record(
            single, scenario=case.scenario()
        ).result.to_dict()
    if vector != scalar:
        violations.append(Violation(
            "scalar_differential",
            "vectorized allocation DP differs from the scalar reference",
        ))


def check_case(case: FuzzCase, engine: Engine | None = None, *,
               dp_checked: set | None = None) -> list:
    """Run one case through every invariant; returns its violations.

    ``engine`` should be store-less (results must be computed, not
    resumed); one engine reused across cases memoizes runtimes.
    ``dp_checked`` carries the set of runtime keys whose DP
    differential already ran (see :data:`DP_CHECK_LIMIT`).  The
    materialized scenario is registered under
    ``fuzz-scenario-<case_seed>`` for the duration of the check so
    registry-resolving paths (``run_many``, the store's
    content-addressing) treat it like any preset.
    """
    engine = Engine() if engine is None else engine
    dp_checked = set() if dp_checked is None else dp_checked
    violations: list = []
    key = f"fuzz-scenario-{case.case_seed}"
    try:
        scenario = case.scenario()
        SCENARIOS.register(key, scenario, overwrite=True)
        try:
            config = case.config(key)
            _check_batch(case, config, scenario, engine, violations)
            _check_qos(case, config, scenario, engine, violations)
            _check_spill(case, config, engine, violations)
            _check_dp(case, config, engine, dp_checked, violations)
        finally:
            SCENARIOS.unregister(key)
    except ReproError as error:
        violations.append(Violation(
            "error", f"{type(error).__name__}: {error}"
        ))
    return violations


@dataclass(frozen=True)
class CaseReport:
    """One case's verdict: its violations, shrunk form, and store key."""

    case: FuzzCase
    violations: tuple
    shrunk: FuzzCase | None = None
    store_key: str | None = None

    @property
    def failed(self) -> bool:
        """Whether any invariant was violated."""
        return bool(self.violations)

    def to_dict(self) -> dict:
        """The JSON-ready form used in the CLI report."""
        return {
            "case_seed": self.case.case_seed,
            "program": self.case.label,
            "case": self.case.to_dict(),
            "violations": [v.to_dict() for v in self.violations],
            "shrunk": None if self.shrunk is None else self.shrunk.to_dict(),
            "store_key": self.store_key,
        }


@dataclass(frozen=True)
class FuzzReport:
    """A whole fuzz run: the batch seed and every case's report."""

    seed: int
    reports: tuple

    @property
    def violation_count(self) -> int:
        """Total invariant violations across the batch."""
        return sum(len(report.violations) for report in self.reports)

    @property
    def failures(self) -> tuple:
        """The failing case reports, in batch order."""
        return tuple(report for report in self.reports if report.failed)

    def to_dict(self) -> dict:
        """The JSON report (`repro fuzz --json`): seed-deterministic,
        no timestamps or host paths, so identical seeds diff empty."""
        return {
            "seed": self.seed,
            "cases": len(self.reports),
            "violations": self.violation_count,
            "failures": len(self.failures),
            "reports": [report.to_dict() for report in self.reports],
        }

    def render(self) -> str:
        """The human summary for the CLI."""
        lines = [
            f"fuzz seed={self.seed} cases={len(self.reports)} "
            f"violations={self.violation_count}"
        ]
        for report in self.reports:
            status = "FAIL" if report.failed else "ok"
            lines.append(
                f"  [{status}] seed={report.case.case_seed} "
                f"program={report.case.label}"
            )
            for violation in report.violations:
                lines.append(
                    f"         {violation.invariant}: {violation.detail}"
                )
            if report.shrunk is not None:
                lines.append(
                    f"         shrunk -> {report.shrunk.label} "
                    f"(slices={report.shrunk.slices}, "
                    f"fleet={report.shrunk.fleet})"
                )
            if report.store_key is not None:
                lines.append(f"         stored as {report.store_key}")
        return "\n".join(lines)


def _persist_failure(store: Store, case: FuzzCase, shrunk: FuzzCase | None,
                     violations) -> str | None:
    """Write one failure into the store as a ``fuzz-`` entry."""
    minimal = shrunk if shrunk is not None else case
    entry = {
        "seed": case.case_seed,
        "case": minimal.to_dict(),
        "original_case": case.to_dict() if shrunk is not None else None,
        "invariant": violations[0].invariant,
        "detail": violations[0].detail,
        "violations": [v.to_dict() for v in violations],
        "program_label": minimal.label,
    }
    return store.put_fuzz(entry)


def run_fuzz(seed: int, count: int, *, engine: Engine | None = None,
             store: Store | None = None, shrink: bool = True) -> FuzzReport:
    """Generate, check, shrink, and persist one fuzz batch.

    Pure in ``seed``/``count`` modulo the engine's correctness: the
    same seed produces the same cases, verdicts, and JSON report.
    Failures are shrunk to a minimal still-failing case (preserving the
    first violated invariant), persisted into ``store`` when one is
    given, and announced via the ``fuzz_failure`` event.
    """
    engine = Engine() if engine is None else engine
    dp_checked: set = set()
    reports = []
    for case in generate_cases(seed, count):
        violations = check_case(case, engine, dp_checked=dp_checked)
        shrunk = None
        store_key = None
        if violations:
            invariant = violations[0].invariant
            if shrink:
                def still_fails(candidate, _invariant=invariant):
                    found = check_case(
                        candidate, engine, dp_checked=dp_checked
                    )
                    return any(v.invariant == _invariant for v in found)
                shrunk = shrink_case(case, still_fails)
                if shrunk == case:
                    shrunk = None
            if store is not None:
                store_key = _persist_failure(store, case, shrunk, violations)
            _events.emit(
                "fuzz_failure",
                seed=case.case_seed,
                invariant=invariant,
                key=store_key or "",
            )
        reports.append(CaseReport(
            case=case,
            violations=tuple(violations),
            shrunk=shrunk,
            store_key=store_key,
        ))
    return FuzzReport(seed=seed, reports=tuple(reports))


def replay_stored(store: Store, engine: Engine | None = None) -> list:
    """Re-check every persisted fuzz regression entry.

    Returns one :class:`CaseReport` per stored entry (keyed by its
    store key), re-running the full invariant suite on the persisted
    minimal case.  The tier-1 suite asserts all of them pass — a fuzz
    finding stays a failing test until the engine is fixed.
    """
    engine = Engine() if engine is None else engine
    dp_checked: set = set()
    reports = []
    for entry in store.fuzz_entries():
        case = FuzzCase.from_dict(entry["case"])
        violations = check_case(case, engine, dp_checked=dp_checked)
        reports.append(CaseReport(
            case=case,
            violations=tuple(violations),
            store_key=entry.get("key"),
        ))
    return reports


def report_json(report: FuzzReport) -> str:
    """The canonical JSON encoding of a report (stable key order)."""
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)
