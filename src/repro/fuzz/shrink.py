"""Greedy shrinking of failing fuzz cases toward a minimal reproducer.

The shrinker repeatedly proposes strictly-smaller candidate cases
(program reductions first, then axis simplifications), keeps the first
candidate that *still fails* the original invariant, and stops when no
proposal survives — classic greedy descent, bounded by an attempt
budget so a pathological oracle cannot stall a fuzz run.

Program reductions replace a combinator with one of its children (and
recurse into subtrees); non-constant leaves collapse to ``constant(1)``.
Axis reductions walk every experiment knob toward its simplest value
(one slice, one device, FIFO, fixed scaling, ...).  The size metric
deliberately counts non-default knobs so a fully shrunk case reads as
"the one thing that matters".
"""

from __future__ import annotations

from dataclasses import replace

from .generator import FuzzCase
from .programs import program_size

__all__ = ["shrink_case", "case_size"]

#: Upper bound on oracle invocations per shrink (each runs the full
#: invariant suite on a candidate).
MAX_ATTEMPTS = 150


def case_size(case: FuzzCase) -> int:
    """The shrink metric: program nodes plus simplifiable axis knobs."""
    size = program_size(case.program)
    size += case.slices + case.fleet + case.batch
    size += 0 if case.max_fleet is None else 1
    size += int(case.qos != "fifo")
    size += int(case.dispatch != "round_robin")
    size += int(case.autoscaler != "fixed")
    size += int(case.arch != "HH-PIM")
    size += int(case.model != "EfficientNet-B0")
    size += int(case.slo != 2.0)
    size += int(case.peak != 4)
    return size


def _program_candidates(spec: dict):
    """Strictly smaller program specs, most aggressive first."""
    op = spec.get("op")
    if op in ("scaled", "clipped"):
        yield spec["inner"]
        for inner in _program_candidates(spec["inner"]):
            yield {**spec, "inner": inner}
    elif op in ("then", "overlay"):
        yield spec["first"]
        yield spec["second"]
        for first in _program_candidates(spec["first"]):
            yield {**spec, "first": first}
        for second in _program_candidates(spec["second"]):
            yield {**spec, "second": second}
    elif op != "constant":
        yield {"op": "constant", "level": 1.0}


def _candidates(case: FuzzCase):
    """Candidate reductions of one case, most aggressive first."""
    for program in _program_candidates(case.program):
        yield replace(case, program=program)
    if case.slices > 1:
        yield replace(case, slices=1)
        if case.slices > 2:
            yield replace(case, slices=case.slices // 2)
    if case.fleet > 1:
        yield replace(case, fleet=1)
    if case.max_fleet is not None:
        yield replace(case, max_fleet=None)
    if case.batch > 1:
        yield replace(case, batch=1)
    if case.qos != "fifo":
        yield replace(case, qos="fifo")
    if case.dispatch != "round_robin":
        yield replace(case, dispatch="round_robin")
    if case.autoscaler != "fixed":
        yield replace(case, autoscaler="fixed")
    if case.arch != "HH-PIM":
        yield replace(case, arch="HH-PIM")
    if case.model != "EfficientNet-B0":
        yield replace(case, model="EfficientNet-B0")
    if case.slo != 2.0:
        yield replace(case, slo=2.0)
    if case.peak != 4:
        yield replace(case, peak=4)


def shrink_case(case: FuzzCase, still_fails,
                max_attempts: int = MAX_ATTEMPTS) -> FuzzCase:
    """Greedily minimize ``case`` while ``still_fails(candidate)`` holds.

    ``still_fails`` is the oracle — typically "re-check and require the
    same invariant to fail".  Returns the smallest case found (possibly
    the original).  Each accepted reduction restarts the candidate
    scan, so reductions compose; the attempt budget bounds total oracle
    cost.
    """
    attempts = 0
    current = case
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if case_size(candidate) >= case_size(current):
                continue
            attempts += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
            if attempts >= max_attempts:
                break
    return current
