"""Seed-deterministic scenario fuzzing with invariant conformance.

The fuzz subsystem composes random-but-seeded arrival-process programs
and experiment configs (:mod:`repro.fuzz.generator`), runs them through
the real engine under five conformance invariants
(:mod:`repro.fuzz.harness`), greedily shrinks failures to minimal
reproducers (:mod:`repro.fuzz.shrink`), and persists them into the
experiment store as ``fuzz-`` regression entries that the tier-1 suite
replays on every run.  ``repro fuzz --seed N --cases K`` is the CLI
entry point; see ``docs/FUZZING.md`` for the workflow.
"""

from .generator import FuzzCase, generate_case, generate_cases
from .harness import (
    INVARIANTS,
    CaseReport,
    FuzzReport,
    Violation,
    check_case,
    replay_stored,
    report_json,
    run_fuzz,
)
from .programs import (
    build_program,
    program_label,
    program_size,
    random_program,
)
from .shrink import case_size, shrink_case

__all__ = [
    "FuzzCase",
    "generate_case",
    "generate_cases",
    "INVARIANTS",
    "CaseReport",
    "FuzzReport",
    "Violation",
    "check_case",
    "replay_stored",
    "report_json",
    "run_fuzz",
    "build_program",
    "program_label",
    "program_size",
    "random_program",
    "case_size",
    "shrink_case",
]
