"""Serializable arrival-process programs and their seeded generator.

A *program* is a JSON-ready nested dict describing one composition of
the :mod:`repro.workloads.arrivals` DSL: leaves name the generator zoo
(``constant``, ``periodic_spike``, ``pulsing``, ``uniform``,
``poisson``, ``bursty``, ``diurnal``, ``trace``) and interior nodes the
four combinators (``scaled``, ``clipped``, ``then``, ``overlay``).
:func:`build_program` turns a spec back into a live
:class:`~repro.workloads.arrivals.ArrivalProcess`;
:func:`random_program` draws a random spec from a caller-supplied
``random.Random`` so the whole fuzz pipeline is a pure function of its
seed.  Keeping the program as data (rather than a closure) is what
makes failures persistable, shrinkable, and replayable byte for byte.
"""

from __future__ import annotations

import random

from ..errors import FuzzError
from ..workloads import arrivals

__all__ = [
    "LEAF_OPS",
    "COMBINATOR_OPS",
    "build_program",
    "random_program",
    "program_label",
    "program_size",
]

#: Leaf operators and the arrivals-module factory parameters they carry.
LEAF_OPS = (
    "constant",
    "periodic_spike",
    "pulsing",
    "uniform",
    "poisson",
    "bursty",
    "diurnal",
    "trace",
)

#: Interior operators wrapping one (`inner`) or two (`first`/`second`)
#: child programs.
COMBINATOR_OPS = ("scaled", "clipped", "then", "overlay")


def _require(spec: dict, *names):
    missing = [name for name in names if name not in spec]
    if missing:
        raise FuzzError(
            f"program op {spec.get('op')!r} is missing parameter(s) "
            f"{', '.join(missing)}"
        )
    return [spec[name] for name in names]


def build_program(spec: dict) -> arrivals.ArrivalProcess:
    """The live :class:`ArrivalProcess` a program spec describes.

    Raises :class:`~repro.errors.FuzzError` for an unknown operator or
    missing parameters; parameter *values* are validated by the DSL
    factories themselves (which raise
    :class:`~repro.errors.WorkloadError`), so a stored entry edited by
    hand still fails loudly instead of sampling garbage.
    """
    if not isinstance(spec, dict) or "op" not in spec:
        raise FuzzError(f"program spec must be a dict with an 'op', got {spec!r}")
    op = spec["op"]
    if op == "constant":
        (level,) = _require(spec, "level")
        return arrivals.constant(level)
    if op == "periodic_spike":
        period, baseline, spike = _require(spec, "period", "baseline", "spike")
        return arrivals.periodic_spike(period, baseline=baseline, spike=spike)
    if op == "pulsing":
        high_len, low_len, high, low = _require(
            spec, "high_len", "low_len", "high", "low"
        )
        return arrivals.pulsing(high_len, low_len, high=high, low=low)
    if op == "uniform":
        low, high = _require(spec, "low", "high")
        return arrivals.uniform(low=low, high=high)
    if op == "poisson":
        (rate,) = _require(spec, "rate")
        return arrivals.poisson(rate)
    if op == "bursty":
        calm_rate, burst_rate, p_burst, p_calm = _require(
            spec, "calm_rate", "burst_rate", "p_burst", "p_calm"
        )
        return arrivals.bursty(
            calm_rate=calm_rate, burst_rate=burst_rate,
            p_burst=p_burst, p_calm=p_calm,
        )
    if op == "diurnal":
        trough, crest, period, phase = _require(
            spec, "trough", "crest", "period", "phase"
        )
        return arrivals.diurnal(
            trough=trough, crest=crest, period=period, phase=phase
        )
    if op == "trace":
        loads, label = _require(spec, "loads", "label")
        return arrivals.trace(loads, label=label)
    if op == "scaled":
        inner, factor = _require(spec, "inner", "factor")
        return build_program(inner).scaled(factor)
    if op == "clipped":
        inner, low, high = _require(spec, "inner", "low", "high")
        return build_program(inner).clipped(low=low, high=high)
    if op == "then":
        first, second, at = _require(spec, "first", "second", "at")
        return build_program(first).then(build_program(second), at=at)
    if op == "overlay":
        first, second = _require(spec, "first", "second")
        return build_program(first).overlay(build_program(second))
    raise FuzzError(f"unknown program op {op!r}")


def _random_leaf(rng: random.Random) -> dict:
    op = rng.choice(LEAF_OPS)
    if op == "constant":
        return {"op": op, "level": round(rng.uniform(0.0, 8.0), 3)}
    if op == "periodic_spike":
        return {
            "op": op,
            "period": rng.randint(2, 10),
            "baseline": round(rng.uniform(0.0, 3.0), 3),
            "spike": (
                None if rng.random() < 0.3
                else round(rng.uniform(3.0, 10.0), 3)
            ),
        }
    if op == "pulsing":
        return {
            "op": op,
            "high_len": rng.randint(1, 5),
            "low_len": rng.randint(1, 5),
            "high": (
                None if rng.random() < 0.3
                else round(rng.uniform(3.0, 10.0), 3)
            ),
            "low": round(rng.uniform(0.0, 3.0), 3),
        }
    if op == "uniform":
        low = rng.randint(0, 3)
        return {
            "op": op,
            "low": low,
            "high": None if rng.random() < 0.3 else rng.randint(low, 10),
        }
    if op == "poisson":
        return {"op": op, "rate": round(rng.uniform(0.2, 7.0), 3)}
    if op == "bursty":
        return {
            "op": op,
            "calm_rate": round(rng.uniform(0.2, 3.0), 3),
            "burst_rate": round(rng.uniform(3.0, 10.0), 3),
            "p_burst": round(rng.uniform(0.05, 0.5), 3),
            "p_calm": round(rng.uniform(0.05, 0.6), 3),
        }
    if op == "diurnal":
        trough = round(rng.uniform(0.0, 2.5), 3)
        return {
            "op": op,
            "trough": trough,
            "crest": (
                None if rng.random() < 0.3
                else round(rng.uniform(trough + 0.5, 10.0), 3)
            ),
            "period": None if rng.random() < 0.3 else rng.randint(2, 12),
            "phase": round(rng.uniform(0.0, 1.0), 3),
        }
    return {
        "op": "trace",
        "loads": [rng.randint(0, 8) for _ in range(rng.randint(1, 8))],
        "label": "fuzz-trace",
    }


def random_program(rng: random.Random, max_depth: int = 3) -> dict:
    """A random program spec, a pure function of ``rng``'s state.

    Depth-bounded: at ``max_depth`` only leaves are drawn, and interior
    nodes are biased toward leaves so typical programs stay small
    enough to run (and to shrink) quickly while still exercising every
    combinator across a batch of cases.
    """
    if max_depth <= 0 or rng.random() < 0.4:
        return _random_leaf(rng)
    op = rng.choice(COMBINATOR_OPS)
    if op == "scaled":
        return {
            "op": op,
            "inner": random_program(rng, max_depth - 1),
            "factor": round(rng.uniform(0.0, 2.5), 3),
        }
    if op == "clipped":
        low = round(rng.uniform(0.0, 2.0), 3)
        return {
            "op": op,
            "inner": random_program(rng, max_depth - 1),
            "low": low,
            "high": (
                None if rng.random() < 0.3
                else round(rng.uniform(low, 9.0), 3)
            ),
        }
    if op == "then":
        return {
            "op": op,
            "first": random_program(rng, max_depth - 1),
            "second": random_program(rng, max_depth - 1),
            "at": round(rng.uniform(0.1, 0.9), 3),
        }
    return {
        "op": "overlay",
        "first": random_program(rng, max_depth - 1),
        "second": random_program(rng, max_depth - 1),
    }


def program_label(spec: dict) -> str:
    """The composed DSL name for a spec (e.g. ``poisson+constant``)."""
    return build_program(spec).name


def program_size(spec: dict) -> int:
    """Node count of a spec — the shrinker's primary size metric."""
    op = spec.get("op")
    if op in ("scaled", "clipped"):
        return 1 + program_size(spec["inner"])
    if op in ("then", "overlay"):
        return 1 + program_size(spec["first"]) + program_size(spec["second"])
    return 1
