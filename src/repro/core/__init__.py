"""The paper's primary contribution: dynamic weight-placement optimization.

Pipeline (paper, Section III):

1. :mod:`repro.core.spaces` prices each of the four storage spaces
   (HP-MRAM / HP-SRAM / LP-MRAM / LP-SRAM): per-block time ``t_i`` and
   energy ``e_i`` for a given model and time slice;
2. :mod:`repro.core.knapsack` runs Algorithm 1 — the bottom-up DP — once
   per cluster;
3. :mod:`repro.core.combine` runs Algorithm 2 — the optimal
   ``(k_hp, k_lp)`` split per time constraint;
4. :mod:`repro.core.lut` compiles the result into the allocation-state
   LUT consulted at runtime (:mod:`repro.core.lutcache` persists built
   LUTs across processes);
5. :mod:`repro.core.placement` wraps 1-4 into
   :class:`~repro.core.placement.DataPlacementOptimizer`;
6. :mod:`repro.core.runtime` executes 50-time-slice scenarios with
   per-slice reallocation, movement-overhead accounting and power gating.
"""

from .spaces import (
    CORE_MAC_TIME_NS,
    PIM_LATENCY_SCALE,
    SpaceKind,
    StorageSpace,
    build_spaces,
)
from .knapsack import (
    ClusterDpResult,
    dp_build_count,
    knapsack_min_energy,
    reconstruct_counts,
    scalar_dp,
)
from .combine import CombinedRow, set_allocation_state, unique_allocation_rows
from .lut import AllocationLUT, Placement
from .placement import DataPlacementOptimizer, PlacementPolicy
from .runtime import RunResult, SliceRecord, TimeSliceRuntime

__all__ = [
    "CORE_MAC_TIME_NS",
    "PIM_LATENCY_SCALE",
    "SpaceKind",
    "StorageSpace",
    "build_spaces",
    "ClusterDpResult",
    "dp_build_count",
    "knapsack_min_energy",
    "reconstruct_counts",
    "scalar_dp",
    "CombinedRow",
    "set_allocation_state",
    "unique_allocation_rows",
    "AllocationLUT",
    "Placement",
    "DataPlacementOptimizer",
    "PlacementPolicy",
    "RunResult",
    "SliceRecord",
    "TimeSliceRuntime",
]
