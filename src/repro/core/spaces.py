"""Storage-space cost model: ``t_i`` and ``e_i`` for the knapsack.

The optimizer views HH-PIM as four *storage spaces* — HP-MRAM, HP-SRAM,
LP-MRAM and LP-SRAM — each with a computation time per weight ``t_i`` and
an energy per weight ``e_i`` (paper, Section III-A).  Weights are grouped
into *blocks* (the paper's resolution limiting) and costs are expressed
per block:

* ``t_i`` — the block's MACs, each taking ``max(weight_read,
  activation_read) + pe_mac`` (the module interface overlaps the two
  operand streams and synchronises on the slower one), striped over the
  cluster's modules, scaled by :data:`PIM_LATENCY_SCALE`;
* ``e_i`` — the block's dynamic energy (weight read + activation read +
  PE MAC, per MAC) plus a technology-dependent static term: volatile SRAM
  must stay powered for the whole time slice to retain weights, so its
  blocks carry a slice-long leakage share, while non-volatile MRAM can be
  power-gated between accesses and only leaks while being read.

Calibration
-----------
``PIM_LATENCY_SCALE`` maps the analytic per-MAC times onto the paper's
FPGA prototype, whose memory latencies were *scaled* onto the 50 MHz
clock (Section IV-A) by an unpublished factor.  We back the factor out of
the published peak inference times (Fig. 6: 31.06 / 25.71 / 320.87 ms for
the three models) together with a 1-MAC-per-cycle model for the non-PIM
share on the RISC-V core; a single scale of 7.215 reproduces all three
within 0.5 %.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..errors import ConfigurationError
from ..isa.encoding import ClusterId
from ..memory.hybrid import BankKind
from ..workloads.models import ModelSpec

#: FPGA-prototype latency scale (see module docstring for the derivation).
PIM_LATENCY_SCALE = 7.215

#: Non-PIM MACs run on the RISC-V core at one MAC per 50 MHz cycle.
CORE_MAC_TIME_NS = 20.0


class SpaceKind(str, Enum):
    """The four storage spaces of HH-PIM."""

    HP_MRAM = "hp_mram"
    HP_SRAM = "hp_sram"
    LP_MRAM = "lp_mram"
    LP_SRAM = "lp_sram"

    @property
    def cluster(self) -> ClusterId:
        """Which cluster this space belongs to."""
        return ClusterId.HP if self.value.startswith("hp") else ClusterId.LP

    @property
    def bank(self) -> BankKind:
        """Which bank kind backs this space."""
        return BankKind.MRAM if self.value.endswith("mram") else BankKind.SRAM

    @classmethod
    def of(cls, cluster: ClusterId, bank: BankKind) -> "SpaceKind":
        """The space for a (cluster, bank) pair."""
        return cls(f"{cluster.name.lower()}_{bank.value}")


@dataclass(frozen=True)
class StorageSpace:
    """One storage space, priced per weight block."""

    kind: SpaceKind
    #: t_i: wall time one block adds to its cluster's task time (ns).
    time_per_block_ns: float
    #: Dynamic energy one block adds to a task (nJ).
    dynamic_energy_per_block_nj: float
    #: Slice-long leakage a held block forces (nJ per block per slice);
    #: zero for non-volatile spaces.
    hold_static_energy_per_block_nj: float
    #: Leakage during the block's own access window (nJ per block).
    access_static_energy_per_block_nj: float
    #: How many blocks the space can physically hold.
    capacity_blocks: int
    #: Bank leakage power of the whole space when fully powered (mW).
    full_static_power_mw: float
    volatile: bool
    #: Modules the space is striped over.
    modules: int = 1
    #: Capacity of one module's bank (bytes).
    bank_capacity_bytes: int = 64 * 1024
    #: Size of one weight block (bytes).
    block_bytes: float = 1.0

    def hold_static_power_mw(
        self, blocks: int, granule_bytes: int = 16 * 1024
    ) -> float:
        """Leakage power of *holding* ``blocks`` in this space (mW).

        Volatile banks must stay powered to retain weights; leakage is
        charged at sub-array granularity (``granule_bytes``) per module —
        the paper's power gating "deactivates" unused memory, and NVSim
        macros gate at mat granularity.  Non-volatile spaces hold for
        free.
        """
        if blocks < 0:
            raise ConfigurationError("block count must be non-negative")
        if not self.volatile or blocks == 0:
            return 0.0
        per_module_bytes = blocks * self.block_bytes / self.modules
        granules = math.ceil(per_module_bytes / granule_bytes - 1e-12)
        powered = min(granules * granule_bytes, self.bank_capacity_bytes)
        fraction = powered / self.bank_capacity_bytes
        return self.full_static_power_mw * fraction

    @property
    def energy_per_block_nj(self) -> float:
        """``e_i``: the DP's per-block energy (dynamic + static share)."""
        return (
            self.dynamic_energy_per_block_nj
            + self.hold_static_energy_per_block_nj
            + self.access_static_energy_per_block_nj
        )

    def __post_init__(self) -> None:
        if self.time_per_block_ns <= 0:
            raise ConfigurationError(
                f"space {self.kind.value}: non-positive block time"
            )
        if self.capacity_blocks <= 0:
            raise ConfigurationError(
                f"space {self.kind.value}: non-positive capacity"
            )


def build_spaces(
    clusters: dict,
    model: ModelSpec,
    t_slice_ns: float,
    block_count: int,
    latency_scale: float = PIM_LATENCY_SCALE,
) -> list:
    """Price every storage space the given clusters offer.

    Parameters
    ----------
    clusters:
        Mapping of :class:`ClusterId` to :class:`PIMCluster` (one or two
        entries, per the architecture).
    model:
        The benchmark model whose weights are being placed.
    t_slice_ns:
        The time slice ``T``; volatile spaces charge their leakage over it.
    block_count:
        ``K``: number of weight blocks (the resolution-limited item count).
    latency_scale:
        FPGA-prototype latency scale (see module docstring).
    """
    if block_count <= 0:
        raise ConfigurationError("block count must be positive")
    if t_slice_ns <= 0:
        raise ConfigurationError("time slice must be positive")
    macs_per_block = model.pim_macs / block_count
    block_bytes = model.weight_bytes / block_count

    spaces = []
    for cluster_id, cluster in clusters.items():
        for bank_kind in (BankKind.MRAM, BankKind.SRAM):
            if bank_kind not in cluster.modules[0].memory.banks:
                continue
            bank = cluster.modules[0].memory.bank(bank_kind)
            kind = SpaceKind.of(cluster_id, bank_kind)
            modules = len(cluster)
            mac_time = cluster.mac_time_ns(bank_kind) * latency_scale
            time_per_block = macs_per_block * mac_time / modules
            dynamic = macs_per_block * cluster.mac_dynamic_energy_nj(bank_kind)
            capacity_bytes = bank.capacity_bytes * modules
            capacity_blocks = int(capacity_bytes // max(1.0, block_bytes))
            full_static = bank.static_power_mw * modules
            static_per_byte_mw = bank.static_power_mw / bank.capacity_bytes
            if bank.technology.volatile:
                hold = static_per_byte_mw * block_bytes * t_slice_ns / 1000.0
                access = 0.0
            else:
                hold = 0.0
                # Only the accessed module's bank leaks, and only while the
                # block streams through it; the block's busy time on its one
                # module is time_per_block * modules (t_i is the averaged
                # contribution to cluster completion time).
                access = (
                    bank.static_power_mw * time_per_block * modules / 1000.0
                )
            spaces.append(
                StorageSpace(
                    kind=kind,
                    time_per_block_ns=time_per_block,
                    dynamic_energy_per_block_nj=dynamic,
                    hold_static_energy_per_block_nj=hold,
                    access_static_energy_per_block_nj=access,
                    capacity_blocks=max(1, capacity_blocks),
                    full_static_power_mw=full_static,
                    volatile=bank.technology.volatile,
                    modules=modules,
                    bank_capacity_bytes=bank.capacity_bytes,
                    block_bytes=block_bytes,
                )
            )
    if not spaces:
        raise ConfigurationError("no storage spaces available")
    return spaces


def core_time_ns(model: ModelSpec) -> float:
    """Time of the non-PIM share of one inference on the RISC-V core."""
    return model.core_macs * CORE_MAC_TIME_NS
