"""Time-slice runtime: dynamic reallocation over a workload scenario.

Implements the paper's runtime discipline (Section III-A):

* inference requests arriving during slice ``s`` are buffered and
  processed during slice ``s + 1`` (latency bound ``2T``);
* at each slice boundary the runtime derives ``t_constraint`` from the
  task count, *including the data-movement overhead* of switching from
  the previous placement, and consults the allocation LUT;
* unused memories are power-gated: non-volatile MRAM retains its weights
  while gated, volatile SRAM must stay powered (at sub-array granularity)
  wherever it holds weights;
* the comparison architectures run the same loop with their fixed
  policies (Table I), which is how Fig. 5 / Table VI compare energies.

Two drivers share the accounting core.  The *scalar* reference path
(:meth:`TimeSliceRuntime.run_scalar`) is the paper-faithful slice-by-
slice loop; the *vectorized* production path
(:meth:`TimeSliceRuntime.run_vectorized`) resolves the whole scenario
against the LUT at once — placement selection and movement collapse to a
memoized walk over the scenario's distinct ``(tasks, previous
placement)`` transitions, and the per-slice busy/idle/energy columns are
assembled as NumPy gathers over the resulting state table.  Both paths
produce bit-identical :class:`SliceRecord` streams (the accounting
arithmetic is executed exactly once per distinct state, by the same
code); the scalar path is selected with ``REPRO_SCALAR_RUNTIME=1`` or
the :func:`scalar_runtime` context manager, mirroring the
``REPRO_SCALAR_DP`` switch of :mod:`repro.core.knapsack`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..arch.specs import ArchitectureSpec, HH_PIM
from ..errors import ConfigurationError, InfeasibleError
from ..memory.hybrid import BankKind
from ..workloads.models import ModelSpec
from ..workloads.scenarios import Scenario
from ..workloads.tasks import TaskBuffer
from .lut import Placement
from .placement import (
    DEFAULT_BLOCK_COUNT,
    DEFAULT_TIME_STEPS,
    DataPlacementOptimizer,
    MovementEstimate,
    PlacementPolicy,
)
from .spaces import CORE_MAC_TIME_NS, SpaceKind

#: Default power-gating granularity (sub-array level), applied uniformly
#: to every architecture so that comparisons isolate the placement
#: algorithm rather than the gating hardware.  Pass ``granule_bytes`` to
#: :class:`TimeSliceRuntime` to study coarser gating (see the ablation
#: benchmarks).
FINE_GRANULE_BYTES = 16 * 1024

#: Macro-level gating (whole 64 kB banks), for gating-granularity
#: ablations.
MACRO_GRANULE_BYTES = 64 * 1024

#: Programmatic override of the REPRO_SCALAR_RUNTIME environment switch.
_FORCE_SCALAR_RUNTIME: bool | None = None


def use_scalar_runtime() -> bool:
    """Whether the scalar reference slice loop is selected."""
    if _FORCE_SCALAR_RUNTIME is not None:
        return _FORCE_SCALAR_RUNTIME
    value = os.environ.get("REPRO_SCALAR_RUNTIME", "").strip().lower()
    return value in {"1", "true", "yes", "on"}


@contextmanager
def scalar_runtime(enabled: bool = True):
    """Force the scalar (or vectorized) slice loop for the enclosed block."""
    global _FORCE_SCALAR_RUNTIME
    previous = _FORCE_SCALAR_RUNTIME
    _FORCE_SCALAR_RUNTIME = enabled
    try:
        yield
    finally:
        _FORCE_SCALAR_RUNTIME = previous


@dataclass(frozen=True)
class SliceRecord:
    """Accounting of one time slice."""

    index: int
    arrivals: int
    tasks_processed: int
    t_constraint_ns: float
    placement_counts: dict
    movement: MovementEstimate
    busy_time_ns: float
    idle_time_ns: float
    dynamic_energy_nj: float
    hold_static_energy_nj: float
    access_static_energy_nj: float
    buffer_static_energy_nj: float
    pe_static_energy_nj: float
    movement_energy_nj: float
    deadline_met: bool

    @property
    def total_energy_nj(self) -> float:
        """All energy components of the slice."""
        return (
            self.dynamic_energy_nj
            + self.hold_static_energy_nj
            + self.access_static_energy_nj
            + self.buffer_static_energy_nj
            + self.pe_static_energy_nj
            + self.movement_energy_nj
        )

    def to_dict(self) -> dict:
        """A plain-primitive record for JSON export.

        Placement counts are keyed by the space's string value
        (``hp_sram`` etc.) and the movement estimate is flattened, so
        downstream tools never touch library dataclasses.
        """
        return {
            "index": self.index,
            "arrivals": self.arrivals,
            "tasks_processed": self.tasks_processed,
            "t_constraint_ns": self.t_constraint_ns,
            "placement_counts": {
                kind.value: blocks
                for kind, blocks in self.placement_counts.items()
            },
            "blocks_moved": self.movement.blocks_moved,
            "movement_time_ns": self.movement.time_ns,
            "movement_energy_nj": self.movement_energy_nj,
            "busy_time_ns": self.busy_time_ns,
            "idle_time_ns": self.idle_time_ns,
            "dynamic_energy_nj": self.dynamic_energy_nj,
            "hold_static_energy_nj": self.hold_static_energy_nj,
            "access_static_energy_nj": self.access_static_energy_nj,
            "buffer_static_energy_nj": self.buffer_static_energy_nj,
            "pe_static_energy_nj": self.pe_static_energy_nj,
            "total_energy_nj": self.total_energy_nj,
            "deadline_met": self.deadline_met,
        }


@dataclass
class RunResult:
    """Outcome of one scenario run on one architecture."""

    architecture: str
    model: str
    scenario: Scenario
    t_slice_ns: float
    policy: PlacementPolicy
    records: list = field(default_factory=list)

    @property
    def total_energy_nj(self) -> float:
        """Energy over the whole run."""
        return sum(record.total_energy_nj for record in self.records)

    @property
    def total_inferences(self) -> int:
        """Inferences processed."""
        return sum(record.tasks_processed for record in self.records)

    @property
    def energy_per_inference_nj(self) -> float:
        """Mean energy per processed inference."""
        inferences = self.total_inferences
        return self.total_energy_nj / inferences if inferences else 0.0

    @property
    def mean_power_mw(self) -> float:
        """Average power over the run."""
        duration = self.t_slice_ns * len(self.records)
        return self.total_energy_nj / duration * 1000.0 if duration else 0.0

    @property
    def deadlines_met(self) -> bool:
        """Whether every slice finished its tasks within the slice."""
        return all(record.deadline_met for record in self.records)

    def to_dict(self, include_records: bool = True) -> dict:
        """A plain-primitive summary (plus per-slice records) for export.

        This is the supported machine-readable surface of a run —
        ``repro run --json --records`` emits it verbatim — so downstream
        tools never reach into dataclass internals.
        """
        data = {
            "architecture": self.architecture,
            "model": self.model,
            "scenario": self.scenario.to_dict(),
            "t_slice_ns": self.t_slice_ns,
            "policy": self.policy.value,
            "slices": len(self.records),
            "total_energy_nj": self.total_energy_nj,
            "total_inferences": self.total_inferences,
            "energy_per_inference_nj": self.energy_per_inference_nj,
            "mean_power_mw": self.mean_power_mw,
            "deadlines_met": self.deadlines_met,
        }
        if include_records:
            data["records"] = [record.to_dict() for record in self.records]
        return data


def default_time_slice_ns(
    model: ModelSpec,
    peak_inferences: int = 10,
    block_count: int = DEFAULT_BLOCK_COUNT,
    time_steps: int = DEFAULT_TIME_STEPS,
    headroom: float = 1.05,
) -> float:
    """The paper's time-slice sizing: 10 peak-rate inferences on HH-PIM.

    "The time slice ... was set to allow up to 10 inferences per time
    slice, representing the scenario in which HH-PIM operates at maximum
    performance" — one full inference is the PIM task plus the non-PIM
    share on the core, at HH-PIM's peak placement.  ``headroom`` keeps a
    small scheduling margin above the exact peak rate so that placement
    switches (data movement) and time quantisation cannot push a full-load
    slice over its deadline.
    """
    if peak_inferences <= 0:
        raise ConfigurationError("peak inference count must be positive")
    if headroom < 1.0:
        raise ConfigurationError("headroom must be >= 1")
    # Bootstrap: the optimizer needs a T for pricing hold leakage, but the
    # peak task time is leakage-independent, so any positive T works here.
    bootstrap = DataPlacementOptimizer(
        HH_PIM, model, t_slice_ns=1e9, block_count=block_count,
        time_steps=time_steps,
    )
    peak = bootstrap.build_lut().peak_placement
    core_ns = model.core_macs * CORE_MAC_TIME_NS
    return peak_inferences * (peak.task_time_ns + core_ns) * headroom


class TimeSliceRuntime:
    """Runs workload scenarios on one architecture with its policy."""

    def __init__(
        self,
        spec: ArchitectureSpec,
        model: ModelSpec,
        t_slice_ns: float | None = None,
        policy: PlacementPolicy | None = None,
        block_count: int = DEFAULT_BLOCK_COUNT,
        time_steps: int = DEFAULT_TIME_STEPS,
        peak_inferences: int = 10,
        granule_bytes: int = FINE_GRANULE_BYTES,
    ) -> None:
        self.spec = spec
        self.model = model
        self.policy = policy if policy is not None else PlacementPolicy.default_for(spec)
        if t_slice_ns is None:
            t_slice_ns = default_time_slice_ns(
                model, peak_inferences, block_count, time_steps
            )
        self.t_slice_ns = t_slice_ns
        self.optimizer = DataPlacementOptimizer(
            spec, model, t_slice_ns=t_slice_ns,
            block_count=block_count, time_steps=time_steps,
            granule_bytes=granule_bytes,
        )
        if self.policy is PlacementPolicy.DYNAMIC_LUT:
            # The paper builds the LUT once, at application initialization.
            self.lut = self.optimizer.build_lut()
            self._fixed = None
        else:
            self.lut = None
            self._fixed = self.optimizer.fixed_placement(self.policy)

    @property
    def reference_placement(self) -> Placement:
        """The runtime's anchor placement without recomputation.

        For the dynamic policy this is the LUT's peak (latency-optimal)
        placement; for fixed policies it is the installed placement
        itself.  Exposed so callers (sweeps, the experiment engine) never
        need to rebuild a LUT just to inspect the placement.
        """
        if self.lut is not None:
            return self.lut.peak_placement
        return self._fixed

    # -- per-slice placement selection ------------------------------------------

    @property
    def core_time_ns(self) -> float:
        """Per-inference time of the non-PIM share on the RISC-V core."""
        return self.model.core_macs * CORE_MAC_TIME_NS

    def _select_placement(self, tasks: int, prev_counts: dict):
        """Pick the slice's placement and price the transition.

        ``t_constraint`` bounds the *whole* task — the PIM portion plus
        the non-PIM share that runs on the core — so the LUT is consulted
        with ``t_constraint - core_time``.  For the dynamic policy this
        also implements the paper's movement-overhead correction: the
        cost of switching placements shrinks the per-task budget, so the
        lookup is repeated once with the corrected budget.
        """
        if self._fixed is not None:
            movement = self.optimizer.movement(prev_counts, self._fixed.counts)
            t_constraint = self.t_slice_ns / max(tasks, 1)
            return self._fixed, movement, t_constraint

        t_constraint = self.t_slice_ns / max(tasks, 1)
        placement = self._lookup_clamped(t_constraint - self.core_time_ns)
        movement = self.optimizer.movement(prev_counts, placement.counts)
        corrected = (self.t_slice_ns - movement.time_ns) / max(tasks, 1)
        if corrected <= 0:
            raise InfeasibleError(
                "movement overhead exceeds the time slice"
            )
        if corrected < t_constraint:
            refined = self._lookup_clamped(corrected - self.core_time_ns)
            if refined.counts != placement.counts:
                placement = refined
                movement = self.optimizer.movement(prev_counts, placement.counts)
        return placement, movement, corrected

    def _lookup_clamped(self, t_constraint_ns: float) -> Placement:
        try:
            return self.lut.lookup(max(0.0, t_constraint_ns))
        except InfeasibleError:
            # Below the peak-performance point: run flat out (the paper's
            # grey region cannot be satisfied; best effort is the peak).
            return self.lut.peak_placement

    # -- energy helpers ---------------------------------------------------------------

    def _cluster_busy_ns(self, counts: dict, tasks: int) -> dict:
        busy = {cluster_id: 0.0 for cluster_id in self.optimizer.clusters}
        for kind, blocks in counts.items():
            busy[kind.cluster] += (
                blocks * self.optimizer.space(kind).time_per_block_ns * tasks
            )
        return busy

    def _pe_static_energy_nj(self, busy_by_cluster: dict) -> float:
        total = 0.0
        for cluster_id, busy_ns in busy_by_cluster.items():
            cluster = self.optimizer.clusters[cluster_id]
            pe_static = cluster.modules[0].pe.static_power_mw
            total += pe_static * len(cluster) * busy_ns / 1000.0
        return total

    def _buffer_static_energy_nj(self, counts: dict, busy_by_cluster: dict) -> float:
        """Leakage of SRAM used purely as the activation I/O buffer.

        Clusters whose SRAM holds no weights still power one sub-array per
        module while computing (activations stream through it); clusters
        whose SRAM already holds weights pay nothing extra (the hold
        leakage covers the powered arrays).
        """
        total = 0.0
        for cluster_id, busy_ns in busy_by_cluster.items():
            if busy_ns <= 0:
                continue
            sram_kind = SpaceKind.of(cluster_id, BankKind.SRAM)
            try:
                space = self.optimizer.space(sram_kind)
            except Exception:
                continue
            if counts.get(sram_kind, 0) > 0:
                continue
            granule_fraction = min(
                1.0, self.optimizer.granule_bytes / space.bank_capacity_bytes
            )
            total += space.full_static_power_mw * granule_fraction * busy_ns / 1000.0
        return total

    # -- the pure accounting core -----------------------------------------------------

    def _account_slice(self, placement: Placement, movement: MovementEstimate,
                       tasks: int, t_constraint: float) -> tuple:
        """Account one slice: the numeric fields of its :class:`SliceRecord`.

        Pure in (placement, movement, tasks, t_constraint) — no slice
        index, no buffer state — which is what lets the vectorized
        driver execute it exactly once per distinct state and share the
        result across every slice in that state, bit for bit.

        Returns ``(busy_total, idle, dynamic, hold, access,
        buffer_static, pe_static, deadline_met)``.
        """
        counts = placement.counts
        busy_by_cluster = self._cluster_busy_ns(counts, tasks)
        busy = max(busy_by_cluster.values()) if busy_by_cluster else 0.0
        busy_total = busy + tasks * self.core_time_ns + movement.time_ns
        idle = max(0.0, self.t_slice_ns - busy_total)
        task_latency = placement.task_time_ns + self.core_time_ns
        slack = self.optimizer.time_step_ns
        deadline_met = (
            busy_total <= self.t_slice_ns + tasks * slack + 1e-6
            and task_latency <= t_constraint + slack
        )

        dynamic = tasks * placement.dynamic_energy_nj
        hold = placement.hold_static_power_mw * self.t_slice_ns / 1000.0
        access = tasks * self.optimizer.mram_access_static_energy_nj(counts)
        buffer_static = self._buffer_static_energy_nj(counts, busy_by_cluster)
        pe_static = self._pe_static_energy_nj(busy_by_cluster)
        return (
            busy_total, idle, dynamic, hold, access, buffer_static,
            pe_static, deadline_met,
        )

    def _boot_counts(self) -> dict:
        """Boot placement: fixed policies install theirs; the dynamic
        policy starts in the most energy-efficient state (nothing to do
        yet)."""
        if self._fixed is not None:
            return dict(self._fixed.counts)
        return dict(self.lut.most_relaxed_placement.counts)

    def _empty_result(self, scenario: Scenario) -> RunResult:
        return RunResult(
            architecture=self.spec.name,
            model=self.model.name,
            scenario=scenario,
            t_slice_ns=self.t_slice_ns,
            policy=self.policy,
        )

    # -- drivers ------------------------------------------------------------------------

    def run(self, scenario: Scenario) -> RunResult:
        """Execute a scenario; returns per-slice records and totals.

        Dispatches to the vectorized driver unless the scalar reference
        loop is forced (``REPRO_SCALAR_RUNTIME=1`` / :func:`scalar_runtime`).
        Both drivers produce bit-identical records.
        """
        if use_scalar_runtime():
            return self.run_scalar(scenario)
        return self.run_vectorized(scenario)

    def run_scalar(self, scenario: Scenario) -> RunResult:
        """The paper-faithful slice-by-slice reference loop."""
        result = self._empty_result(scenario)
        buffer = TaskBuffer(model=self.model)
        prev_counts = self._boot_counts()

        for index, load in enumerate(scenario.loads):
            buffer.arrive(load)
            tasks = len(buffer.advance_slice())
            placement, movement, t_constraint = self._select_placement(
                tasks, prev_counts
            )
            (
                busy_total, idle, dynamic, hold, access, buffer_static,
                pe_static, deadline_met,
            ) = self._account_slice(placement, movement, tasks, t_constraint)

            result.records.append(
                SliceRecord(
                    index=index,
                    arrivals=load,
                    tasks_processed=tasks,
                    t_constraint_ns=t_constraint,
                    placement_counts=dict(placement.counts),
                    movement=movement,
                    busy_time_ns=busy_total,
                    idle_time_ns=idle,
                    dynamic_energy_nj=dynamic,
                    hold_static_energy_nj=hold,
                    access_static_energy_nj=access,
                    buffer_static_energy_nj=buffer_static,
                    pe_static_energy_nj=pe_static,
                    movement_energy_nj=movement.energy_nj,
                    deadline_met=deadline_met,
                )
            )
            prev_counts = dict(placement.counts)
        return result

    def run_vectorized(self, scenario: Scenario) -> RunResult:
        """Resolve the whole scenario against the LUT as arrays.

        The slice loop's state is ``(tasks, previous placement)``: the
        selected placement, its movement cost, the corrected
        ``t_constraint`` and every energy term depend on nothing else.
        A scenario therefore visits only a handful of distinct states
        (at most ``peak + 1`` task counts times the number of LUT
        placements), however many slices it has.  The driver walks the
        scenario once to resolve each *distinct* transition exactly once
        — placement lookup, movement pricing and the accounting core all
        run per state, not per slice — then broadcasts the per-state
        numeric columns over the slice axis with NumPy gathers.

        Record equality with :meth:`run_scalar` is structural: the same
        arithmetic runs once per state here and once per slice there,
        so the floats are bit-identical (asserted by the differential
        suite).
        """
        result = self._empty_result(scenario)
        loads = scenario.loads
        if not loads:
            return result

        # The task buffer's steady-state identity: arrivals registered in
        # slice s are returned by that slice's advance (the double-buffer
        # hand-off happens inside the slice), so tasks[i] == loads[i].
        # The differential suite pins this equivalence against the scalar
        # loop's real TaskBuffer.
        boot_counts = self._boot_counts()
        boot_key = tuple(sorted(
            (kind.value, blocks) for kind, blocks in boot_counts.items()
        ))

        # -- phase 1: memoized transition walk ------------------------------
        # states[sid] = (placement, movement, t_constraint, accounting row)
        transitions: dict = {}
        states: list = []
        state_keys: list = []
        state_ids = np.empty(len(loads), dtype=np.intp)
        prev_key, prev_counts = boot_key, boot_counts
        for index, load in enumerate(loads):
            memo_key = (load, prev_key)
            sid = transitions.get(memo_key)
            if sid is None:
                placement, movement, t_constraint = self._select_placement(
                    load, prev_counts
                )
                row = self._account_slice(
                    placement, movement, load, t_constraint
                )
                sid = len(states)
                states.append((placement, movement, t_constraint, row))
                state_keys.append(tuple(sorted(
                    (kind.value, blocks)
                    for kind, blocks in placement.counts.items()
                )))
                transitions[memo_key] = sid
            state_ids[index] = sid
            prev_key = state_keys[sid]
            prev_counts = states[sid][0].counts

        # -- phase 2: broadcast the state table over the slice axis ---------
        # One gather expands the per-state numeric rows to per-slice rows;
        # ``tolist`` converts back to Python floats in bulk (float64 ->
        # float is exact, so the columns stay bit-identical to the scalar
        # path's values).
        numeric = np.array(
            [
                (t_constraint, movement.energy_nj) + row[:7]
                for placement, movement, t_constraint, row in states
            ],
            dtype=np.float64,
        )[state_ids].tolist()
        deadlines = [states[sid][3][7] for sid in state_ids]

        records = result.records
        for index, load in enumerate(loads):
            placement, movement, _, _ = states[state_ids[index]]
            (
                t_constraint, movement_energy, busy_total, idle, dynamic,
                hold, access, buffer_static, pe_static,
            ) = numeric[index]
            records.append(
                SliceRecord(
                    index=index,
                    arrivals=load,
                    tasks_processed=load,
                    t_constraint_ns=t_constraint,
                    placement_counts=dict(placement.counts),
                    movement=movement,
                    busy_time_ns=busy_total,
                    idle_time_ns=idle,
                    dynamic_energy_nj=dynamic,
                    hold_static_energy_nj=hold,
                    access_static_energy_nj=access,
                    buffer_static_energy_nj=buffer_static,
                    pe_static_energy_nj=pe_static,
                    movement_energy_nj=movement_energy,
                    deadline_met=deadlines[index],
                )
            )
        return result
