"""Time-slice runtime: dynamic reallocation over a workload scenario.

Implements the paper's runtime discipline (Section III-A):

* inference requests arriving during slice ``s`` are buffered and
  processed during slice ``s + 1`` (latency bound ``2T``);
* at each slice boundary the runtime derives ``t_constraint`` from the
  task count, *including the data-movement overhead* of switching from
  the previous placement, and consults the allocation LUT;
* unused memories are power-gated: non-volatile MRAM retains its weights
  while gated, volatile SRAM must stay powered (at sub-array granularity)
  wherever it holds weights;
* the comparison architectures run the same loop with their fixed
  policies (Table I), which is how Fig. 5 / Table VI compare energies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.specs import ArchitectureSpec, HH_PIM
from ..errors import ConfigurationError, InfeasibleError
from ..memory.hybrid import BankKind
from ..workloads.models import ModelSpec
from ..workloads.scenarios import Scenario
from ..workloads.tasks import TaskBuffer
from .lut import Placement
from .placement import (
    DEFAULT_BLOCK_COUNT,
    DEFAULT_TIME_STEPS,
    DataPlacementOptimizer,
    MovementEstimate,
    PlacementPolicy,
)
from .spaces import CORE_MAC_TIME_NS, SpaceKind

#: Default power-gating granularity (sub-array level), applied uniformly
#: to every architecture so that comparisons isolate the placement
#: algorithm rather than the gating hardware.  Pass ``granule_bytes`` to
#: :class:`TimeSliceRuntime` to study coarser gating (see the ablation
#: benchmarks).
FINE_GRANULE_BYTES = 16 * 1024

#: Macro-level gating (whole 64 kB banks), for gating-granularity
#: ablations.
MACRO_GRANULE_BYTES = 64 * 1024


@dataclass(frozen=True)
class SliceRecord:
    """Accounting of one time slice."""

    index: int
    arrivals: int
    tasks_processed: int
    t_constraint_ns: float
    placement_counts: dict
    movement: MovementEstimate
    busy_time_ns: float
    idle_time_ns: float
    dynamic_energy_nj: float
    hold_static_energy_nj: float
    access_static_energy_nj: float
    buffer_static_energy_nj: float
    pe_static_energy_nj: float
    movement_energy_nj: float
    deadline_met: bool

    @property
    def total_energy_nj(self) -> float:
        """All energy components of the slice."""
        return (
            self.dynamic_energy_nj
            + self.hold_static_energy_nj
            + self.access_static_energy_nj
            + self.buffer_static_energy_nj
            + self.pe_static_energy_nj
            + self.movement_energy_nj
        )


@dataclass
class RunResult:
    """Outcome of one scenario run on one architecture."""

    architecture: str
    model: str
    scenario: Scenario
    t_slice_ns: float
    policy: PlacementPolicy
    records: list = field(default_factory=list)

    @property
    def total_energy_nj(self) -> float:
        """Energy over the whole run."""
        return sum(record.total_energy_nj for record in self.records)

    @property
    def total_inferences(self) -> int:
        """Inferences processed."""
        return sum(record.tasks_processed for record in self.records)

    @property
    def energy_per_inference_nj(self) -> float:
        """Mean energy per processed inference."""
        inferences = self.total_inferences
        return self.total_energy_nj / inferences if inferences else 0.0

    @property
    def mean_power_mw(self) -> float:
        """Average power over the run."""
        duration = self.t_slice_ns * len(self.records)
        return self.total_energy_nj / duration * 1000.0 if duration else 0.0

    @property
    def deadlines_met(self) -> bool:
        """Whether every slice finished its tasks within the slice."""
        return all(record.deadline_met for record in self.records)


def default_time_slice_ns(
    model: ModelSpec,
    peak_inferences: int = 10,
    block_count: int = DEFAULT_BLOCK_COUNT,
    time_steps: int = DEFAULT_TIME_STEPS,
    headroom: float = 1.05,
) -> float:
    """The paper's time-slice sizing: 10 peak-rate inferences on HH-PIM.

    "The time slice ... was set to allow up to 10 inferences per time
    slice, representing the scenario in which HH-PIM operates at maximum
    performance" — one full inference is the PIM task plus the non-PIM
    share on the core, at HH-PIM's peak placement.  ``headroom`` keeps a
    small scheduling margin above the exact peak rate so that placement
    switches (data movement) and time quantisation cannot push a full-load
    slice over its deadline.
    """
    if peak_inferences <= 0:
        raise ConfigurationError("peak inference count must be positive")
    if headroom < 1.0:
        raise ConfigurationError("headroom must be >= 1")
    # Bootstrap: the optimizer needs a T for pricing hold leakage, but the
    # peak task time is leakage-independent, so any positive T works here.
    bootstrap = DataPlacementOptimizer(
        HH_PIM, model, t_slice_ns=1e9, block_count=block_count,
        time_steps=time_steps,
    )
    peak = bootstrap.build_lut().peak_placement
    core_ns = model.core_macs * CORE_MAC_TIME_NS
    return peak_inferences * (peak.task_time_ns + core_ns) * headroom


class TimeSliceRuntime:
    """Runs workload scenarios on one architecture with its policy."""

    def __init__(
        self,
        spec: ArchitectureSpec,
        model: ModelSpec,
        t_slice_ns: float | None = None,
        policy: PlacementPolicy | None = None,
        block_count: int = DEFAULT_BLOCK_COUNT,
        time_steps: int = DEFAULT_TIME_STEPS,
        peak_inferences: int = 10,
        granule_bytes: int = FINE_GRANULE_BYTES,
    ) -> None:
        self.spec = spec
        self.model = model
        self.policy = policy if policy is not None else PlacementPolicy.default_for(spec)
        if t_slice_ns is None:
            t_slice_ns = default_time_slice_ns(
                model, peak_inferences, block_count, time_steps
            )
        self.t_slice_ns = t_slice_ns
        self.optimizer = DataPlacementOptimizer(
            spec, model, t_slice_ns=t_slice_ns,
            block_count=block_count, time_steps=time_steps,
            granule_bytes=granule_bytes,
        )
        if self.policy is PlacementPolicy.DYNAMIC_LUT:
            # The paper builds the LUT once, at application initialization.
            self.lut = self.optimizer.build_lut()
            self._fixed = None
        else:
            self.lut = None
            self._fixed = self.optimizer.fixed_placement(self.policy)

    @property
    def reference_placement(self) -> Placement:
        """The runtime's anchor placement without recomputation.

        For the dynamic policy this is the LUT's peak (latency-optimal)
        placement; for fixed policies it is the installed placement
        itself.  Exposed so callers (sweeps, the experiment engine) never
        need to rebuild a LUT just to inspect the placement.
        """
        if self.lut is not None:
            return self.lut.peak_placement
        return self._fixed

    # -- per-slice placement selection ------------------------------------------

    @property
    def core_time_ns(self) -> float:
        """Per-inference time of the non-PIM share on the RISC-V core."""
        return self.model.core_macs * CORE_MAC_TIME_NS

    def _select_placement(self, tasks: int, prev_counts: dict):
        """Pick the slice's placement and price the transition.

        ``t_constraint`` bounds the *whole* task — the PIM portion plus
        the non-PIM share that runs on the core — so the LUT is consulted
        with ``t_constraint - core_time``.  For the dynamic policy this
        also implements the paper's movement-overhead correction: the
        cost of switching placements shrinks the per-task budget, so the
        lookup is repeated once with the corrected budget.
        """
        if self._fixed is not None:
            movement = self.optimizer.movement(prev_counts, self._fixed.counts)
            t_constraint = self.t_slice_ns / max(tasks, 1)
            return self._fixed, movement, t_constraint

        t_constraint = self.t_slice_ns / max(tasks, 1)
        placement = self._lookup_clamped(t_constraint - self.core_time_ns)
        movement = self.optimizer.movement(prev_counts, placement.counts)
        corrected = (self.t_slice_ns - movement.time_ns) / max(tasks, 1)
        if corrected <= 0:
            raise InfeasibleError(
                "movement overhead exceeds the time slice"
            )
        if corrected < t_constraint:
            refined = self._lookup_clamped(corrected - self.core_time_ns)
            if refined.counts != placement.counts:
                placement = refined
                movement = self.optimizer.movement(prev_counts, placement.counts)
        return placement, movement, corrected

    def _lookup_clamped(self, t_constraint_ns: float) -> Placement:
        try:
            return self.lut.lookup(max(0.0, t_constraint_ns))
        except InfeasibleError:
            # Below the peak-performance point: run flat out (the paper's
            # grey region cannot be satisfied; best effort is the peak).
            return self.lut.peak_placement

    # -- energy helpers ---------------------------------------------------------------

    def _cluster_busy_ns(self, counts: dict, tasks: int) -> dict:
        busy = {cluster_id: 0.0 for cluster_id in self.optimizer.clusters}
        for kind, blocks in counts.items():
            busy[kind.cluster] += (
                blocks * self.optimizer.space(kind).time_per_block_ns * tasks
            )
        return busy

    def _pe_static_energy_nj(self, busy_by_cluster: dict) -> float:
        total = 0.0
        for cluster_id, busy_ns in busy_by_cluster.items():
            cluster = self.optimizer.clusters[cluster_id]
            pe_static = cluster.modules[0].pe.static_power_mw
            total += pe_static * len(cluster) * busy_ns / 1000.0
        return total

    def _buffer_static_energy_nj(self, counts: dict, busy_by_cluster: dict) -> float:
        """Leakage of SRAM used purely as the activation I/O buffer.

        Clusters whose SRAM holds no weights still power one sub-array per
        module while computing (activations stream through it); clusters
        whose SRAM already holds weights pay nothing extra (the hold
        leakage covers the powered arrays).
        """
        total = 0.0
        for cluster_id, busy_ns in busy_by_cluster.items():
            if busy_ns <= 0:
                continue
            sram_kind = SpaceKind.of(cluster_id, BankKind.SRAM)
            try:
                space = self.optimizer.space(sram_kind)
            except Exception:
                continue
            if counts.get(sram_kind, 0) > 0:
                continue
            granule_fraction = min(
                1.0, self.optimizer.granule_bytes / space.bank_capacity_bytes
            )
            total += space.full_static_power_mw * granule_fraction * busy_ns / 1000.0
        return total

    # -- main loop ------------------------------------------------------------------------

    def run(self, scenario: Scenario) -> RunResult:
        """Execute a scenario; returns per-slice records and totals."""
        result = RunResult(
            architecture=self.spec.name,
            model=self.model.name,
            scenario=scenario,
            t_slice_ns=self.t_slice_ns,
            policy=self.policy,
        )
        buffer = TaskBuffer(model=self.model)
        # Boot placement: fixed policies install theirs; the dynamic policy
        # starts in the most energy-efficient state (nothing to do yet).
        if self._fixed is not None:
            prev_counts = dict(self._fixed.counts)
        else:
            prev_counts = dict(self.lut.most_relaxed_placement.counts)

        for index, load in enumerate(scenario.loads):
            buffer.arrive(load)
            tasks = len(buffer.advance_slice())
            placement, movement, t_constraint = self._select_placement(
                tasks, prev_counts
            )
            counts = placement.counts
            busy_by_cluster = self._cluster_busy_ns(counts, tasks)
            busy = max(busy_by_cluster.values()) if busy_by_cluster else 0.0
            busy_total = busy + tasks * self.core_time_ns + movement.time_ns
            idle = max(0.0, self.t_slice_ns - busy_total)
            task_latency = placement.task_time_ns + self.core_time_ns
            slack = self.optimizer.time_step_ns
            deadline_met = (
                busy_total <= self.t_slice_ns + tasks * slack + 1e-6
                and task_latency <= t_constraint + slack
            )

            dynamic = tasks * placement.dynamic_energy_nj
            hold = placement.hold_static_power_mw * self.t_slice_ns / 1000.0
            access = tasks * self.optimizer.mram_access_static_energy_nj(counts)
            buffer_static = self._buffer_static_energy_nj(counts, busy_by_cluster)
            pe_static = self._pe_static_energy_nj(busy_by_cluster)

            result.records.append(
                SliceRecord(
                    index=index,
                    arrivals=load,
                    tasks_processed=tasks,
                    t_constraint_ns=t_constraint,
                    placement_counts=dict(counts),
                    movement=movement,
                    busy_time_ns=busy_total,
                    idle_time_ns=idle,
                    dynamic_energy_nj=dynamic,
                    hold_static_energy_nj=hold,
                    access_static_energy_nj=access,
                    buffer_static_energy_nj=buffer_static,
                    pe_static_energy_nj=pe_static,
                    movement_energy_nj=movement.energy_nj,
                    deadline_met=deadline_met,
                )
            )
            prev_counts = dict(counts)
        return result
