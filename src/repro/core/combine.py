"""Algorithm 2: optimal cross-cluster split of the weight blocks.

The HP and LP clusters compute in parallel, so a placement is feasible at
time budget ``t`` when *each* cluster finishes within ``t``.  For every
``t`` Algorithm 2 scans the candidate splits ``(k_hp, k_lp = K - k_hp)``
and keeps the split minimising ``dp_hp[n/2][t][k_hp] +
dp_lp[n/2][t][k_lp]``, producing the ``allocation_state`` rows that the
LUT compiles (paper, Section III-B).

The scan is vectorised: the whole ``(t, k_hp)`` plane is formed by adding
the HP final table to the *column-reversed* LP final table and taking the
argmin along ``k_hp``; path reconstruction then walks the count traces of
every feasible budget at once.  Unlike the paper's pseudo-code we include
the degenerate splits ``k_hp = 0`` and ``k_lp = 0`` — Fig. 6's "LP-MRAM
only" region *is* the ``k_hp = 0`` split, so the pseudo-code's 1-based
loop is read as an off-by-one simplification.

A per-``t`` scalar reference (selected with ``REPRO_SCALAR_DP=1``, like
the knapsack DP's) is kept for differential testing;
:func:`unique_allocation_rows` is the LUT builder's fast path, which
deduplicates identical placements *before* the expensive per-row
evaluation instead of after.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlacementError
from .knapsack import ClusterDpResult, reconstruct_counts, use_scalar_dp


@dataclass(frozen=True)
class CombinedRow:
    """``allocation_state[t]``: the optimal placement at time budget ``t``."""

    t_step: int
    k_hp: int
    k_lp: int
    energy_nj: float
    #: Per-space block counts (SpaceKind -> blocks).
    counts: dict

    @property
    def total_blocks(self) -> int:
        """Total blocks placed (always ``K`` for feasible rows)."""
        return self.k_hp + self.k_lp


def _validate_tables(
    hp: ClusterDpResult,
    lp: ClusterDpResult | None,
    total_blocks: int,
) -> None:
    if total_blocks <= 0:
        raise PlacementError("total block count must be positive")
    if total_blocks > hp.max_blocks:
        raise PlacementError(
            f"HP table only covers {hp.max_blocks} blocks, need {total_blocks}"
        )
    if lp is not None and total_blocks > lp.max_blocks:
        raise PlacementError(
            f"LP table only covers {lp.max_blocks} blocks, need {total_blocks}"
        )
    if lp is not None and lp.t_steps != hp.t_steps:
        raise PlacementError("HP and LP tables must share the time axis")


def set_allocation_state(
    hp: ClusterDpResult,
    lp: ClusterDpResult | None,
    total_blocks: int,
):
    """Build the allocation-state rows for every time budget.

    Returns a list of length ``t_steps + 1`` whose entries are
    :class:`CombinedRow` or ``None`` where no feasible placement exists
    (the grey region of Fig. 6).  ``lp`` may be ``None`` for single-cluster
    architectures (Baseline-/Hybrid-PIM), in which case all blocks go to
    the HP cluster.
    """
    _validate_tables(hp, lp, total_blocks)
    if use_scalar_dp():
        return _set_allocation_state_scalar(hp, lp, total_blocks)
    t_idx, k_hp, energies, counts_columns = _solve_splits(hp, lp, total_blocks)
    rows: list = [None] * (hp.t_steps + 1)
    for position, t in enumerate(t_idx):
        rows[t] = _build_row(
            position, t, k_hp, total_blocks, energies, counts_columns
        )
    return rows


def unique_allocation_rows(
    hp: ClusterDpResult,
    lp: ClusterDpResult | None,
    total_blocks: int,
):
    """The distinct placements of the allocation state, in budget order.

    Consecutive budgets overwhelmingly select the same placement, so the
    full ``t_steps + 1`` row list collapses to a handful of distinct
    placements.  This returns only the *first* row of each distinct
    per-space count vector — exactly the rows
    :class:`~repro.core.lut.AllocationLUT` would keep after its own
    dedupe — so the LUT builder evaluates dozens of rows instead of tens
    of thousands.
    """
    _validate_tables(hp, lp, total_blocks)
    t_idx, k_hp, energies, counts_columns = _solve_splits(hp, lp, total_blocks)
    if len(t_idx) == 0:
        return []
    matrix = np.stack([column for _, column in counts_columns], axis=1)
    _, first = np.unique(matrix, axis=0, return_index=True)
    return [
        _build_row(
            int(position), int(t_idx[position]), k_hp, total_blocks,
            energies, counts_columns,
        )
        for position in np.sort(first)
    ]


def _build_row(
    position, t, k_hp, total_blocks, energies, counts_columns
) -> CombinedRow:
    """Materialise one feasible budget's :class:`CombinedRow`."""
    split = int(k_hp[position])
    return CombinedRow(
        t_step=int(t),
        k_hp=split,
        k_lp=total_blocks - split,
        energy_nj=float(energies[position]),
        counts={
            kind: int(column[position]) for kind, column in counts_columns
        },
    )


def _solve_splits(
    hp: ClusterDpResult,
    lp: ClusterDpResult | None,
    total_blocks: int,
):
    """Optimal split and per-space counts for every feasible budget.

    Returns ``(t_idx, k_hp, energies, counts_columns)`` where ``t_idx``
    holds the feasible budgets (ascending), ``k_hp``/``energies`` the
    chosen split and its energy per feasible budget, and
    ``counts_columns`` is a list of ``(SpaceKind, per-budget counts)``
    pairs covering every space of both clusters.
    """
    t_count = hp.t_steps + 1
    if lp is None:
        energy = hp.dp[-1][:, total_blocks]
        t_idx = np.nonzero(np.isfinite(energy))[0]
        k_hp = np.full(len(t_idx), total_blocks, dtype=np.int64)
        counts_columns = _reconstruct_many(hp, t_idx, k_hp)
        return t_idx, k_hp, energy[t_idx], counts_columns

    # combined[t, k_hp] = hp[t, k_hp] + lp[t, K - k_hp]
    combined = (
        hp.dp[-1][:, : total_blocks + 1]
        + lp.dp[-1][:, : total_blocks + 1][:, ::-1]
    )
    best = np.argmin(combined, axis=1)
    energy = combined[np.arange(t_count), best]
    t_idx = np.nonzero(np.isfinite(energy))[0]
    k_hp = best[t_idx].astype(np.int64)
    counts_columns = _reconstruct_many(hp, t_idx, k_hp)
    counts_columns += _reconstruct_many(lp, t_idx, total_blocks - k_hp)
    return t_idx, k_hp, energy[t_idx], counts_columns


def _reconstruct_many(table: ClusterDpResult, t_idx, k_idx):
    """Vectorised path tracing: per-space counts for many budgets at once.

    The same walk as :func:`~repro.core.knapsack.reconstruct_counts`,
    with every budget's ``(t, k)`` cursor advanced in lockstep.
    """
    t = np.asarray(t_idx, dtype=np.int64).copy()
    k = np.asarray(k_idx, dtype=np.int64).copy()
    columns = []
    for i in range(len(table.spaces), 0, -1):
        taken = table.count[i][t, k].astype(np.int64)
        columns.append((table.spaces[i - 1].kind, taken))
        t -= taken * table.step_counts[i - 1]
        k -= taken
    if np.any(k != 0):
        raise PlacementError(
            "reconstruction lost blocks (inconsistent count trace)"
        )
    return columns


def _set_allocation_state_scalar(
    hp: ClusterDpResult,
    lp: ClusterDpResult | None,
    total_blocks: int,
):
    """Per-``t`` reference implementation of Algorithm 2."""
    rows = []
    for t in range(hp.t_steps + 1):
        if lp is None:
            energy = hp.dp[-1, t, total_blocks]
            if not np.isfinite(energy):
                rows.append(None)
                continue
            counts = reconstruct_counts(hp, t, total_blocks)
            rows.append(
                CombinedRow(
                    t_step=t,
                    k_hp=total_blocks,
                    k_lp=0,
                    energy_nj=float(energy),
                    counts=counts,
                )
            )
            continue

        hp_row = hp.energy_row(t)[: total_blocks + 1]
        lp_row = lp.energy_row(t)[: total_blocks + 1]
        # combined[k_hp] = hp[k_hp] + lp[K - k_hp]
        combined = hp_row + lp_row[::-1]
        best = int(np.argmin(combined))
        min_energy = combined[best]
        if not np.isfinite(min_energy):
            rows.append(None)
            continue
        k_hp = best
        k_lp = total_blocks - best
        counts = reconstruct_counts(hp, t, k_hp)
        counts.update(reconstruct_counts(lp, t, k_lp))
        rows.append(
            CombinedRow(
                t_step=t,
                k_hp=k_hp,
                k_lp=k_lp,
                energy_nj=float(min_energy),
                counts=counts,
            )
        )
    return rows
