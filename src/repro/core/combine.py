"""Algorithm 2: optimal cross-cluster split of the weight blocks.

The HP and LP clusters compute in parallel, so a placement is feasible at
time budget ``t`` when *each* cluster finishes within ``t``.  For every
``t`` Algorithm 2 scans the candidate splits ``(k_hp, k_lp = K - k_hp)``
and keeps the split minimising ``dp_hp[n/2][t][k_hp] +
dp_lp[n/2][t][k_lp]``, producing the ``allocation_state`` rows that the
LUT compiles (paper, Section III-B).

The scan is vectorised: at each ``t`` the HP energy row (indexed by
``k_hp``) is added to the *reversed* LP energy row (indexed by
``K - k_hp``) and the argmin taken.  Unlike the paper's pseudo-code we
include the degenerate splits ``k_hp = 0`` and ``k_lp = 0`` — Fig. 6's
"LP-MRAM only" region *is* the ``k_hp = 0`` split, so the pseudo-code's
1-based loop is read as an off-by-one simplification.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PlacementError
from .knapsack import ClusterDpResult, reconstruct_counts


@dataclass(frozen=True)
class CombinedRow:
    """``allocation_state[t]``: the optimal placement at time budget ``t``."""

    t_step: int
    k_hp: int
    k_lp: int
    energy_nj: float
    #: Per-space block counts (SpaceKind -> blocks).
    counts: dict

    @property
    def total_blocks(self) -> int:
        """Total blocks placed (always ``K`` for feasible rows)."""
        return self.k_hp + self.k_lp


def set_allocation_state(
    hp: ClusterDpResult,
    lp: ClusterDpResult | None,
    total_blocks: int,
):
    """Build the allocation-state rows for every time budget.

    Returns a list of length ``t_steps + 1`` whose entries are
    :class:`CombinedRow` or ``None`` where no feasible placement exists
    (the grey region of Fig. 6).  ``lp`` may be ``None`` for single-cluster
    architectures (Baseline-/Hybrid-PIM), in which case all blocks go to
    the HP cluster.
    """
    if total_blocks <= 0:
        raise PlacementError("total block count must be positive")
    if total_blocks > hp.max_blocks:
        raise PlacementError(
            f"HP table only covers {hp.max_blocks} blocks, need {total_blocks}"
        )
    if lp is not None and total_blocks > lp.max_blocks:
        raise PlacementError(
            f"LP table only covers {lp.max_blocks} blocks, need {total_blocks}"
        )
    if lp is not None and lp.t_steps != hp.t_steps:
        raise PlacementError("HP and LP tables must share the time axis")

    rows = []
    for t in range(hp.t_steps + 1):
        if lp is None:
            energy = hp.dp[-1, t, total_blocks]
            if not np.isfinite(energy):
                rows.append(None)
                continue
            counts = reconstruct_counts(hp, t, total_blocks)
            rows.append(
                CombinedRow(
                    t_step=t,
                    k_hp=total_blocks,
                    k_lp=0,
                    energy_nj=float(energy),
                    counts=counts,
                )
            )
            continue

        hp_row = hp.energy_row(t)[: total_blocks + 1]
        lp_row = lp.energy_row(t)[: total_blocks + 1]
        # combined[k_hp] = hp[k_hp] + lp[K - k_hp]
        combined = hp_row + lp_row[::-1]
        best = int(np.argmin(combined))
        min_energy = combined[best]
        if not np.isfinite(min_energy):
            rows.append(None)
            continue
        k_hp = best
        k_lp = total_blocks - best
        counts = reconstruct_counts(hp, t, k_hp)
        counts.update(reconstruct_counts(lp, t, k_lp))
        rows.append(
            CombinedRow(
                t_step=t,
                k_hp=k_hp,
                k_lp=k_lp,
                energy_nj=float(min_energy),
                counts=counts,
            )
        )
    return rows
