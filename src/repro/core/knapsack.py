"""Algorithm 1: per-cluster bottom-up dynamic programming.

Solves the paper's hybrid unbounded / multiple-choice knapsack for one
cluster: place exactly ``k`` weight blocks into the cluster's storage
spaces so that the summed computation time stays within the budget ``t``
while energy is minimal.  The recurrence (Eq. 2 of the paper)::

    dp[i][t][k] = dp[i-1][t][k]                            if t_i * 1 > t
    dp[i][t][k] = min(dp[i-1][t][k],
                      dp[i][t - t_i][k - 1] + e_i)         otherwise

``count[i][t][k]`` traces the number of blocks taken from space ``i`` on
the optimal path (the paper's path-tracing variable); it also lets us
enforce per-space capacity limits, which the hardware imposes even though
the paper's formulation leaves them implicit.

Time is discretised to ``time_step_ns``; per-space step counts are rounded
*up*, so a placement the DP declares feasible is feasible in continuous
time too (the discretisation is conservative).

Two implementations share this module: the *scalar* reference — a
paper-faithful per-element translation of the recurrence — and the
*vectorized* production path, which runs the same update order through
whole-array NumPy operations and produces bit-identical tables.  The
scalar path is selected with ``REPRO_SCALAR_DP=1`` (or the
:func:`scalar_dp` context manager) and exists for differential testing
and as the baseline of the ``repro bench`` perf gate.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError, PlacementError
from ..obs.tracing import span as _span

#: Process-wide count of DP table constructions, for cache verification
#: (a warm persistent-cache run must leave this untouched).
_DP_BUILDS = 0

#: Programmatic override of the REPRO_SCALAR_DP environment switch.
_FORCE_SCALAR: bool | None = None


def dp_build_count() -> int:
    """How many DP tables this process has actually computed."""
    return _DP_BUILDS


def use_scalar_dp() -> bool:
    """Whether the scalar reference implementation is selected."""
    if _FORCE_SCALAR is not None:
        return _FORCE_SCALAR
    value = os.environ.get("REPRO_SCALAR_DP", "").strip().lower()
    return value in {"1", "true", "yes", "on"}


@contextmanager
def scalar_dp(enabled: bool = True):
    """Force the scalar (or vectorized) path for the enclosed block."""
    global _FORCE_SCALAR
    previous = _FORCE_SCALAR
    _FORCE_SCALAR = enabled
    try:
        yield
    finally:
        _FORCE_SCALAR = previous


@dataclass(frozen=True)
class ClusterDpResult:
    """The DP table of one cluster.

    ``dp[i, t, k]`` is the minimum energy (nJ) of storing exactly ``k``
    blocks in the first ``i`` spaces within time budget ``t`` steps;
    ``count[i, t, k]`` is how many of those blocks the optimal path put in
    space ``i``.
    """

    spaces: tuple
    dp: np.ndarray
    count: np.ndarray
    time_step_ns: float
    step_counts: tuple

    @property
    def t_steps(self) -> int:
        """Largest representable time budget, in steps."""
        return self.dp.shape[1] - 1

    @property
    def max_blocks(self) -> int:
        """``K``: the block-count dimension of the table."""
        return self.dp.shape[2] - 1

    def energy_row(self, t_step: int) -> np.ndarray:
        """``dp[n][t][:]`` — energies over all block counts at budget ``t``."""
        return self.dp[-1, t_step, :]


def _step_count(time_ns: float, time_step_ns: float) -> int:
    """Quantise a block time to steps (round-to-nearest, minimum 1).

    Rounding to nearest keeps the *accumulated* quantisation error of a
    many-block placement near zero; rounding up would inflate task times
    by up to ``K`` steps.  Runtime deadline checks allow one step of
    slack to absorb the residual error.
    """
    steps = round(time_ns / time_step_ns)
    return max(1, steps)


def knapsack_min_energy(
    spaces,
    t_steps: int,
    max_blocks: int,
    time_step_ns: float,
) -> ClusterDpResult:
    """Run Algorithm 1 over one cluster's storage spaces.

    Parameters
    ----------
    spaces:
        The cluster's :class:`~repro.core.spaces.StorageSpace` list (the
        paper's ``i = 1 .. n/2`` iteration space).
    t_steps:
        Number of discrete time steps spanning the time-slice range ``T``.
    max_blocks:
        ``K`` for this cluster (every block could land here).
    time_step_ns:
        Duration of one step.
    """
    if not spaces:
        raise ConfigurationError("knapsack needs at least one storage space")
    if t_steps <= 0 or max_blocks <= 0 or time_step_ns <= 0:
        raise ConfigurationError("t_steps, max_blocks and step must be positive")

    global _DP_BUILDS
    _DP_BUILDS += 1

    n = len(spaces)
    # Stored (space, k, t) so each budget row dp[i, k, :] is contiguous;
    # the public dp[i, t, k] orientation is a transposed view of this.
    dp = np.full((n + 1, max_blocks + 1, t_steps + 1), np.inf)
    count = np.zeros((n + 1, max_blocks + 1, t_steps + 1), dtype=np.int32)
    # Base condition (Algorithm 1, line 3): zero blocks cost zero energy.
    dp[:, 0, :] = 0.0

    step_counts = tuple(
        _step_count(space.time_per_block_ns, time_step_ns) for space in spaces
    )

    with _span(
        "core.dp_build", spaces=n, t_steps=t_steps, blocks=max_blocks,
        scalar=use_scalar_dp(),
    ):
        if use_scalar_dp():
            _dp_scalar(spaces, t_steps, max_blocks, step_counts, dp, count)
        else:
            _dp_vectorized(
                spaces, t_steps, max_blocks, step_counts, dp, count
            )
    return ClusterDpResult(
        spaces=tuple(spaces),
        dp=dp.transpose(0, 2, 1),
        count=count.transpose(0, 2, 1),
        time_step_ns=time_step_ns,
        step_counts=step_counts,
    )


def _dp_vectorized(spaces, t_steps, max_blocks, step_counts, dp, count):
    """Whole-row NumPy form of the recurrence (the production path).

    Every update compares a shifted budget row against the running
    minimum with the same strict ``<`` and the same ascending take-count
    order as the scalar reference, so the tables come out bit-identical.
    """
    for i, space in enumerate(spaces, start=1):
        ti = step_counts[i - 1]
        ei = space.energy_per_block_nj
        cap = space.capacity_blocks
        # Carry the previous space's solutions (Algorithm 1, lines 12-13).
        dp[i] = dp[i - 1]
        count[i] = 0
        cur, cnt, prev = dp[i], count[i], dp[i - 1]
        if cap >= max_blocks:
            # Paper-faithful unbounded recurrence: the capacity can never
            # bind, so dp[i][t-ti][k-1] + e_i extends any optimal prefix.
            # The k-1 dependency is within space i, so k stays a loop while
            # the whole time axis moves per iteration.
            if ti > t_steps:
                continue
            for k in range(1, max_blocks + 1):
                candidate = cur[k - 1, : t_steps + 1 - ti] + ei
                dst = cur[k, ti:]
                take = candidate < dst
                if np.any(take):
                    dst[take] = candidate[take]
                    cdst = cnt[k, ti:]
                    cdst[take] = cnt[k - 1, : t_steps + 1 - ti][take] + 1
        else:
            # Bounded variant: extending the *minimum-energy* path would
            # lose capacity-feasible but energy-dominated prefixes, so
            # take-j choices extend dp[i-1] directly.  Each j updates the
            # whole (k, t) plane at once — k >= j and t >= j * t_i.
            for j in range(1, cap + 1):
                shift = j * ti
                if shift > t_steps:
                    break
                candidate = (
                    prev[: max_blocks + 1 - j, : t_steps + 1 - shift] + j * ei
                )
                dst = cur[j:, shift:]
                take = candidate < dst
                if np.any(take):
                    dst[take] = candidate[take]
                    cnt[j:, shift:][take] = j


def _dp_scalar(spaces, t_steps, max_blocks, step_counts, dp, count):
    """Per-element reference translation of the recurrence (Eq. 2)."""
    for i, space in enumerate(spaces, start=1):
        ti = step_counts[i - 1]
        ei = space.energy_per_block_nj
        cap = space.capacity_blocks
        dp[i] = dp[i - 1]
        count[i] = 0
        cur, cnt, prev = dp[i], count[i], dp[i - 1]
        if cap >= max_blocks:
            if ti > t_steps:
                continue
            for k in range(1, max_blocks + 1):
                for t in range(ti, t_steps + 1):
                    candidate = cur[k - 1, t - ti] + ei
                    if candidate < cur[k, t]:
                        cur[k, t] = candidate
                        cnt[k, t] = cnt[k - 1, t - ti] + 1
        else:
            for k in range(1, max_blocks + 1):
                for j in range(1, min(cap, k) + 1):
                    shift = j * ti
                    if shift > t_steps:
                        break
                    extend = j * ei
                    for t in range(shift, t_steps + 1):
                        candidate = prev[k - j, t - shift] + extend
                        if candidate < cur[k, t]:
                            cur[k, t] = candidate
                            cnt[k, t] = j


def reconstruct_counts(result: ClusterDpResult, t_step: int, blocks: int):
    """Per-space block counts of the optimal path at ``(t_step, blocks)``.

    Walks the ``count`` trace from the last space backwards: at each space
    the trace says how many blocks the optimal path placed there; the
    remaining blocks and time budget move to the previous space.
    """
    if not 0 <= t_step <= result.t_steps:
        raise PlacementError(f"t_step {t_step} outside table")
    if not 0 <= blocks <= result.max_blocks:
        raise PlacementError(f"block count {blocks} outside table")
    if not np.isfinite(result.dp[-1, t_step, blocks]):
        raise PlacementError(
            f"state (t={t_step}, k={blocks}) is infeasible"
        )
    counts = {}
    t, k = t_step, blocks
    for i in range(len(result.spaces), 0, -1):
        taken = int(result.count[i, t, k])
        counts[result.spaces[i - 1].kind] = taken
        t -= taken * result.step_counts[i - 1]
        k -= taken
    if k != 0:
        raise PlacementError(
            f"reconstruction lost {k} blocks (inconsistent count trace)"
        )
    return counts


def cluster_time_ns(result: ClusterDpResult, counts: dict) -> float:
    """Continuous-time completion time of a per-space placement."""
    total = 0.0
    for space in result.spaces:
        total += counts.get(space.kind, 0) * space.time_per_block_ns
    return total


def cluster_dynamic_energy_nj(result: ClusterDpResult, counts: dict) -> float:
    """Continuous-time dynamic energy of a per-space placement (per task)."""
    total = 0.0
    for space in result.spaces:
        total += counts.get(space.kind, 0) * space.dynamic_energy_per_block_nj
    return total
