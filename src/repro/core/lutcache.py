"""Persistent, cross-process allocation-LUT cache.

The paper's runtime story builds the allocation LUT once per
application initialization; :class:`~repro.api.engine.Engine` already
memoizes runtimes within one process, but that memory evaporates between
CLI invocations and is never shared with ``run_many``'s process-pool
workers.  This module adds the missing layer: a content-addressed
on-disk store keyed by a stable hash of everything a LUT build depends
on (architecture spec, model, policy, time slice, optimizer resolution,
gating granularity), so any process on the machine reuses any other
process's build.

Design points:

* **Content addressing.**  Keys are canonicalised (dataclasses to field
  dicts, enums to ``(type, value)`` pairs, floats to ``repr`` so every
  bit participates) and SHA-256 hashed; a changed spec, model or knob
  lands on a different entry automatically.
* **Versioning.**  Entries live under a ``v{CACHE_VERSION}`` directory
  and carry the version + fingerprint in their payload; bumping
  :data:`CACHE_VERSION` after an algorithm change orphans stale entries
  without any migration logic.
* **Concurrent writers.**  Writes go to a unique temp file in the cache
  directory followed by :func:`os.replace`, so parallel sweep workers
  racing on the same entry each produce a complete file and the last
  rename wins atomically.
* **Failure tolerance.**  A missing, corrupt, version-skewed or
  unreadable entry is a miss; an unwritable cache directory silently
  degrades to building without persistence.

Controls: the ``REPRO_LUT_CACHE`` environment variable points the cache
somewhere else, or disables it entirely when set to ``0``/``off``;
:class:`~repro.api.config.ExperimentConfig` exposes a per-experiment
``lut_cache`` knob and the CLI a ``--no-cache`` flag plus ``repro cache
{info,clear}``.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from pathlib import Path

from ..obs.tracing import span as _span

#: Bump when a change alters what cached payloads contain or mean.
CACHE_VERSION = 1

_OFF_VALUES = {"0", "off", "no", "false", "disabled"}


@dataclass
class CacheStats:
    """Observable cache behaviour of this process (tests assert on it)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    write_failures: int = 0

    def reset(self) -> None:
        self.hits = self.misses = self.writes = self.write_failures = 0


#: Process-wide counters, reset via ``stats.reset()`` in tests.
stats = CacheStats()


def enabled() -> bool:
    """Whether the persistent cache is globally enabled."""
    value = os.environ.get("REPRO_LUT_CACHE", "").strip().lower()
    return value not in _OFF_VALUES


def cache_dir() -> Path:
    """The cache root: ``REPRO_LUT_CACHE`` or the XDG cache default."""
    override = os.environ.get("REPRO_LUT_CACHE", "").strip()
    if override and override.lower() not in _OFF_VALUES:
        return Path(override).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME", "").strip()
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-hhpim" / "lut"


@contextmanager
def temporary_cache_dir(path):
    """Point the cache at ``path`` for the enclosed block.

    Routes through ``REPRO_LUT_CACHE`` (restored on exit) so forked
    process-pool workers inherit the redirection.  Used by benchmarks
    for guaranteed cold/warm pairs and by the test suites for hermetic
    runs.
    """
    previous = os.environ.get("REPRO_LUT_CACHE")
    os.environ["REPRO_LUT_CACHE"] = str(path)
    try:
        yield Path(path)
    finally:
        if previous is None:
            os.environ.pop("REPRO_LUT_CACHE", None)
        else:
            os.environ["REPRO_LUT_CACHE"] = previous


# -- content addressing ----------------------------------------------------------


def _canonical(obj):
    """Reduce a key object to JSON-serialisable canonical form.

    Dataclasses flatten to ``{type, field: value}`` dicts, enums to
    ``[type, value]`` pairs and floats to ``repr`` strings (so every bit
    of a time slice or latency scale participates in the address).
    """
    if is_dataclass(obj) and not isinstance(obj, type):
        flat = {
            field.name: _canonical(getattr(obj, field.name))
            for field in fields(obj)
        }
        flat["__type__"] = type(obj).__qualname__
        return flat
    if isinstance(obj, Enum):
        return [type(obj).__qualname__, _canonical(obj.value)]
    if isinstance(obj, bool) or obj is None or isinstance(obj, (int, str)):
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(json.dumps(_canonical(item)) for item in obj)
    if isinstance(obj, dict):
        return {
            json.dumps(_canonical(key)): _canonical(value)
            for key, value in obj.items()
        }
    raise TypeError(
        f"cannot canonicalise {type(obj).__qualname__} for cache addressing"
    )


def fingerprint(*parts) -> str:
    """The stable content address of a key tuple."""
    canonical = json.dumps(
        _canonical(parts), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _entry_path(digest: str) -> Path:
    return cache_dir() / f"v{CACHE_VERSION}" / f"{digest}.pkl"


# -- load / store ----------------------------------------------------------------


def load(digest: str):
    """The cached value for a fingerprint, or ``None`` on any miss."""
    path = _entry_path(digest)
    try:
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
    except Exception:
        # Missing, truncated, unpicklable, permission-denied: all misses.
        stats.misses += 1
        return None
    if (
        not isinstance(payload, dict)
        or payload.get("version") != CACHE_VERSION
        or payload.get("fingerprint") != digest
    ):
        stats.misses += 1
        return None
    stats.hits += 1
    return payload["value"]


def store(digest: str, value) -> bool:
    """Persist a value under its fingerprint; False if the write failed.

    The payload is written to a unique sibling temp file and atomically
    renamed into place, so concurrent writers (sweep workers racing on
    the same LUT) never expose a partial entry.
    """
    path = _entry_path(digest)
    payload = {
        "version": CACHE_VERSION,
        "fingerprint": digest,
        "value": value,
    }
    temp = path.with_name(f".{path.name}.{uuid.uuid4().hex}.tmp")
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(temp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, path)
    except OSError:
        stats.write_failures += 1
        try:
            temp.unlink(missing_ok=True)
        except OSError:
            pass
        return False
    stats.writes += 1
    return True


def fetch_or_build(key_parts: tuple, builder):
    """The cached value for a key, building and persisting on a miss.

    Returns ``(value, source)`` with ``source`` one of ``"disk"`` (served
    from the cache), ``"stored"`` (built and persisted) or ``"built"``
    (built; persisting failed or the cache is unwritable).
    """
    with _span("lutcache.fetch_or_build", kind=str(key_parts[0])) as sp:
        digest = fingerprint(*key_parts)
        value = load(digest)
        if value is not None:
            sp.annotate(source="disk")
            return value, "disk"
        value = builder()
        source = "stored" if store(digest, value) else "built"
        sp.annotate(source=source)
        return value, source


# -- maintenance -----------------------------------------------------------------


def _entries():
    root = cache_dir()
    if not root.is_dir():
        return
    for version_dir in sorted(root.glob("v*")):
        if version_dir.is_dir():
            yield from sorted(version_dir.glob("*.pkl"))


def info() -> dict:
    """A serialisable snapshot of the cache for ``repro cache info``."""
    entries = list(_entries())
    total = 0
    for entry in entries:
        try:
            total += entry.stat().st_size
        except OSError:
            pass
    return {
        "path": str(cache_dir()),
        "enabled": enabled(),
        "version": CACHE_VERSION,
        "entries": len(entries),
        "bytes": total,
        "hits": stats.hits,
        "misses": stats.misses,
        "writes": stats.writes,
    }


def clear() -> int:
    """Delete every cache entry (all versions); returns the count."""
    removed = 0
    for entry in list(_entries()):
        try:
            entry.unlink()
            removed += 1
        except OSError:
            pass
    root = cache_dir()
    if root.is_dir():
        for version_dir in root.glob("v*"):
            try:
                version_dir.rmdir()
            except OSError:
                pass
    return removed
