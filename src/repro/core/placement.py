"""The end-to-end data-placement optimizer.

:class:`DataPlacementOptimizer` wires the whole Section III pipeline for
one (architecture, model, time slice) triple:

1. price the storage spaces (:func:`repro.core.spaces.build_spaces`),
2. run Algorithm 1 per cluster (:func:`repro.core.knapsack.knapsack_min_energy`),
3. run Algorithm 2 (:func:`repro.core.combine.set_allocation_state`),
4. evaluate every row in continuous time and compile the
   :class:`~repro.core.lut.AllocationLUT`.

It also provides the comparison groups' *fixed* policies (Table I):
Baseline-/Heterogeneous-PIM place weights for minimum latency once and
never move them; Hybrid-PIM fixes all weights in MRAM, H-PIM style.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from enum import Enum

from ..arch.specs import ArchitectureSpec
from ..errors import ConfigurationError, InfeasibleError, PlacementError
from ..isa.encoding import ClusterId
from ..pim.cluster import PIMCluster
from ..workloads.models import ModelSpec
from .combine import set_allocation_state, unique_allocation_rows
from .knapsack import knapsack_min_energy, use_scalar_dp
from .lut import AllocationLUT, Placement
from .spaces import PIM_LATENCY_SCALE, SpaceKind, StorageSpace, build_spaces

#: Default number of weight blocks (the paper's resolution limiting: K is
#: reduced from raw weight counts to keep LUT construction under 1 % of a
#: time slice).
DEFAULT_BLOCK_COUNT = 120

#: Cap on the number of time steps spanning one time slice.  The actual
#: step is derived from the block times (see ``_choose_time_step``) so
#: that spaces with different speeds stay distinguishable after
#: quantisation; the cap bounds DP memory/time, mirroring the paper's
#: resolution limiting.
DEFAULT_TIME_STEPS = 24000

#: Time-step granularity relative to the fastest space's block time.
TIME_QUANT = 12

#: Sub-array power-gating granularity for hold leakage (bytes).
DEFAULT_GRANULE_BYTES = 16 * 1024


class PlacementPolicy(str, Enum):
    """How an architecture chooses its weight placement."""

    #: The proposed HH-PIM behaviour: re-consult the LUT every slice.
    DYNAMIC_LUT = "dynamic_lut"
    #: Conventional behaviour: one latency-optimal placement, never moved.
    FIXED_LATENCY_OPTIMAL = "fixed_latency_optimal"
    #: H-PIM behaviour: all weights in MRAM, SRAM reserved for I/O.
    FIXED_MRAM_ONLY = "fixed_mram_only"

    @classmethod
    def default_for(cls, spec: ArchitectureSpec) -> "PlacementPolicy":
        """The paper's policy for each Table I architecture."""
        if spec.name == "HH-PIM":
            return cls.DYNAMIC_LUT
        if spec.name == "Hybrid-PIM":
            return cls.FIXED_MRAM_ONLY
        return cls.FIXED_LATENCY_OPTIMAL


@dataclass(frozen=True)
class MovementEstimate:
    """Cost of transitioning between two placements."""

    blocks_moved: int
    time_ns: float
    energy_nj: float


class DataPlacementOptimizer:
    """Builds and evaluates allocation LUTs for one architecture/model."""

    def __init__(
        self,
        spec: ArchitectureSpec,
        model: ModelSpec,
        t_slice_ns: float,
        block_count: int = DEFAULT_BLOCK_COUNT,
        time_steps: int = DEFAULT_TIME_STEPS,
        latency_scale: float = PIM_LATENCY_SCALE,
        granule_bytes: int = DEFAULT_GRANULE_BYTES,
    ) -> None:
        if t_slice_ns <= 0:
            raise ConfigurationError("time slice must be positive")
        if block_count <= 0 or time_steps <= 0:
            raise ConfigurationError("block count and time steps must be positive")
        self.spec = spec
        self.model = model
        self.t_slice_ns = t_slice_ns
        self.block_count = block_count
        self.time_steps = time_steps
        self.latency_scale = latency_scale
        self.granule_bytes = granule_bytes

        self.clusters = {
            cluster_id: PIMCluster(
                cluster_id=cluster_id,
                kind=cluster_spec.kind,
                module_count=cluster_spec.module_count,
                mram_capacity=cluster_spec.mram_capacity,
                sram_capacity=cluster_spec.sram_capacity,
            )
            for cluster_id, cluster_spec in spec.cluster_specs()
        }
        self.spaces = build_spaces(
            self.clusters, model, t_slice_ns, block_count, latency_scale
        )
        self._space_by_kind = {space.kind: space for space in self.spaces}
        total_capacity = sum(space.capacity_blocks for space in self.spaces)
        if total_capacity < block_count:
            raise InfeasibleError(
                f"{model.name} does not fit {spec.name}: "
                f"{block_count} blocks > capacity {total_capacity}"
            )
        self.time_step_ns, self.time_steps = self._choose_time_step()

    def _choose_time_step(self):
        """Pick a time step fine enough to separate the spaces' speeds.

        The step is ``1/TIME_QUANT`` of the fastest space's block time so
        that quantisation cannot collapse two spaces with different
        speeds onto the same step count; ``time_steps`` then spans the
        slice, bounded by the configured cap (the paper's resolution
        limit).
        """
        fastest = min(space.time_per_block_ns for space in self.spaces)
        step = fastest / TIME_QUANT
        steps = math.ceil(self.t_slice_ns / step)
        if steps > self.time_steps:
            steps = self.time_steps
            step = self.t_slice_ns / steps
        return step, steps

    # -- space helpers -----------------------------------------------------------

    def space(self, kind: SpaceKind) -> StorageSpace:
        """The priced space of the given kind."""
        try:
            return self._space_by_kind[kind]
        except KeyError:
            raise PlacementError(
                f"{self.spec.name} has no {kind.value} space"
            ) from None

    def cluster_spaces(self, cluster_id: ClusterId):
        """The spaces belonging to one cluster, MRAM first."""
        spaces = [s for s in self.spaces if s.kind.cluster is cluster_id]
        return sorted(spaces, key=lambda s: s.kind.bank.value)

    # -- LUT construction ----------------------------------------------------------

    def build_lut(self, restrict_to=None) -> AllocationLUT:
        """Run Algorithms 1+2 and compile the allocation LUT.

        ``restrict_to`` optionally limits the usable spaces (e.g. MRAM
        kinds only for the H-PIM comparison / the purple dot of Fig. 6).

        Candidate placements are generated under *two* pricings of
        ``e_i`` — the hold-amortised energy (relaxed budgets) and the
        dynamic-only energy (tight budgets, where leakage windows are
        short) — and the LUT's evaluation layer ranks the merged set with
        the exact granule-level hold power.  A single linear pricing
        systematically misses one end of the spectrum.
        """
        allowed = set(restrict_to) if restrict_to is not None else None

        def cluster_table(cluster_id, dynamic_only):
            spaces = self.cluster_spaces(cluster_id)
            if allowed is not None:
                spaces = [s for s in spaces if s.kind in allowed]
            if not spaces:
                return None
            if dynamic_only:
                spaces = [
                    replace(s, hold_static_energy_per_block_nj=0.0)
                    for s in spaces
                ]
            return knapsack_min_energy(
                spaces,
                t_steps=self.time_steps,
                max_blocks=self.block_count,
                time_step_ns=self.time_step_ns,
            )

        placements = []
        for dynamic_only in (False, True):
            hp_table = cluster_table(ClusterId.HP, dynamic_only)
            lp_table = (
                cluster_table(ClusterId.LP, dynamic_only)
                if ClusterId.LP in self.clusters
                else None
            )
            if hp_table is None:
                if lp_table is None:
                    raise PlacementError("no usable spaces after restriction")
                # Single-cluster LP-only restriction: 1-cluster path.
                hp_table, lp_table = lp_table, None
            if use_scalar_dp():
                rows = set_allocation_state(
                    hp_table, lp_table, self.block_count
                )
            else:
                # Fast path: dedupe the distinct placements before the
                # per-row continuous-time evaluation; the LUT keeps the
                # same first-occurrence rows either way.
                rows = unique_allocation_rows(
                    hp_table, lp_table, self.block_count
                )
            placements.extend(
                self._evaluate_row(row) for row in rows if row is not None
            )
        return AllocationLUT(
            placements, self.time_step_ns, t_max_ns=self.t_slice_ns
        )

    def _evaluate_row(self, row) -> Placement:
        counts = dict(row.counts)
        task_time = self.task_time_ns(counts)
        dynamic = sum(
            self.space(kind).dynamic_energy_per_block_nj * blocks
            for kind, blocks in counts.items()
        )
        hold = self.hold_static_power_mw(counts)
        return Placement(
            t_budget_ns=row.t_step * self.time_step_ns,
            counts=counts,
            task_time_ns=task_time,
            dp_energy_nj=row.energy_nj,
            dynamic_energy_nj=dynamic,
            hold_static_power_mw=hold,
            k_hp=row.k_hp,
            k_lp=row.k_lp,
        )

    # -- evaluation helpers -------------------------------------------------------------

    def task_time_ns(self, counts: dict) -> float:
        """Task completion time: clusters in parallel, spaces serialised."""
        per_cluster = {cluster_id: 0.0 for cluster_id in self.clusters}
        for kind, blocks in counts.items():
            per_cluster[kind.cluster] += (
                blocks * self.space(kind).time_per_block_ns
            )
        return max(per_cluster.values()) if per_cluster else 0.0

    def dynamic_energy_nj(self, counts: dict) -> float:
        """Per-task dynamic energy of a placement."""
        return sum(
            self.space(kind).dynamic_energy_per_block_nj * blocks
            for kind, blocks in counts.items()
        )

    def hold_static_power_mw(self, counts: dict) -> float:
        """Leakage power of holding a placement between tasks."""
        return sum(
            self.space(kind).hold_static_power_mw(blocks, self.granule_bytes)
            for kind, blocks in counts.items()
        )

    def mram_access_static_energy_nj(self, counts: dict) -> float:
        """Per-task MRAM leakage (powered only during its accesses)."""
        return sum(
            self.space(kind).access_static_energy_per_block_nj * blocks
            for kind, blocks in counts.items()
            if not self.space(kind).volatile
        )

    # -- fixed placements for the comparison groups ----------------------------------------

    def fixed_placement(self, policy: PlacementPolicy) -> Placement:
        """The placement a non-adaptive architecture would keep forever."""
        if policy is PlacementPolicy.FIXED_MRAM_ONLY:
            mram_kinds = [
                s.kind for s in self.spaces if s.kind.bank.value == "mram"
            ]
            if not mram_kinds:
                raise PlacementError(
                    f"{self.spec.name} has no MRAM for an MRAM-only policy"
                )
            lut = self.build_lut(restrict_to=mram_kinds)
            return lut.peak_placement
        if policy is PlacementPolicy.FIXED_LATENCY_OPTIMAL:
            return self.build_lut().peak_placement
        raise PlacementError(f"{policy} is not a fixed policy")

    # -- movement overhead ------------------------------------------------------------------

    def movement(self, old_counts: dict, new_counts: dict) -> MovementEstimate:
        """Price the transition between two placements.

        Blocks leaving a space are read once from it; blocks entering a
        space are written once to it.  Streams to distinct modules run in
        parallel over the MEM Interface Logic, so time divides by the
        destination space's module count; energy counts every access.
        """
        kinds = set(old_counts) | set(new_counts)
        moved_out = {}
        moved_in = {}
        for kind in kinds:
            delta = new_counts.get(kind, 0) - old_counts.get(kind, 0)
            if delta > 0:
                moved_in[kind] = delta
            elif delta < 0:
                moved_out[kind] = -delta
        blocks_moved = sum(moved_in.values())
        if blocks_moved != sum(moved_out.values()):
            raise PlacementError(
                "placement transition does not conserve blocks"
            )
        if blocks_moved == 0:
            return MovementEstimate(0, 0.0, 0.0)

        time_ns = 0.0
        energy_nj = 0.0
        for kind, blocks in moved_out.items():
            space = self.space(kind)
            bank = self.clusters[kind.cluster].modules[0].memory.bank(kind.bank)
            accesses_per_block = math.ceil(space.block_bytes)
            reads = blocks * accesses_per_block
            energy_nj += reads * bank.read_energy_nj
            time_ns += (
                reads * bank.read_latency_ns * self.latency_scale / space.modules
            )
        for kind, blocks in moved_in.items():
            space = self.space(kind)
            bank = self.clusters[kind.cluster].modules[0].memory.bank(kind.bank)
            accesses_per_block = math.ceil(space.block_bytes)
            writes = blocks * accesses_per_block
            energy_nj += writes * bank.write_energy_nj
            time_ns += (
                writes * bank.write_latency_ns * self.latency_scale / space.modules
            )
        return MovementEstimate(
            blocks_moved=blocks_moved, time_ns=time_ns, energy_nj=energy_nj
        )
