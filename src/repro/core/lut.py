"""The allocation-state Look-up Table.

"Algorithm 1 and Algorithm 2 are performed only once during the
application initialization phase to construct a Look-up Table for the
final output, allocation_state.  This LUT allows rapid determination of
the optimal weight placement state for varying t_constraint values
required at each time slice during application runtime." — paper,
Section III-B.

A :class:`Placement` row additionally carries the *evaluated* (not just
DP-estimated) task time and energy, so runtime accounting and Fig. 6
plotting work directly off the LUT.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..errors import InfeasibleError, PlacementError
from .spaces import SpaceKind


@dataclass(frozen=True)
class Placement:
    """One LUT row: the placement chosen for a time budget."""

    #: Inclusive lower edge of the budget this row was solved for (ns).
    t_budget_ns: float
    #: Per-space block counts.
    counts: dict
    #: Evaluated task completion time (ns): max over clusters of the
    #: serialised per-cluster space times.
    task_time_ns: float
    #: DP objective value (nJ) — e_i-based, for reference.
    dp_energy_nj: float
    #: Evaluated per-task dynamic energy (nJ).
    dynamic_energy_nj: float
    #: Hold-leakage power of the placement (mW) — volatile spaces that
    #: keep weights must stay powered.
    hold_static_power_mw: float
    k_hp: int
    k_lp: int

    @property
    def total_blocks(self) -> int:
        """Blocks placed."""
        return sum(self.counts.values())

    def count(self, kind: SpaceKind) -> int:
        """Blocks in one space (0 if the space is absent)."""
        return self.counts.get(kind, 0)

    def utilization(self) -> dict:
        """Fraction of blocks per space (Fig. 6's left axis)."""
        total = self.total_blocks
        if total == 0:
            return {kind: 0.0 for kind in self.counts}
        return {kind: blocks / total for kind, blocks in self.counts.items()}

    def task_energy_nj(self, t_window_ns: float) -> float:
        """``E_task`` over a window: dynamic + hold leakage for the window.

        Fig. 6 plots this with ``t_window_ns = t_constraint``: a task that
        owns a window of that length pays the placement's hold leakage
        over it.
        """
        if t_window_ns < 0:
            raise PlacementError("energy window must be non-negative")
        return (
            self.dynamic_energy_nj
            + self.hold_static_power_mw * t_window_ns / 1000.0
        )


class AllocationLUT:
    """``allocation_state``: time budget -> :class:`Placement`.

    The DP rows are compressed to the *unique* candidate placements they
    contain, and a lookup selects — among the candidates whose evaluated
    task time satisfies the budget — the one minimising the evaluated
    task energy ``dynamic + hold_power * window``.  This evaluation layer
    corrects the DP's linearised leakage share with the true sub-array
    (granule-level) hold power, so the runtime never adopts a placement
    the linear approximation mis-ranked.
    """

    def __init__(self, placements, time_step_ns: float, t_max_ns: float) -> None:
        if time_step_ns <= 0:
            raise PlacementError("LUT time step must be positive")
        if t_max_ns <= 0:
            raise PlacementError("LUT time range must be positive")
        self.time_step_ns = time_step_ns
        self.t_max_ns = t_max_ns
        # Unique candidate placements, sorted by evaluated task time.
        seen = {}
        for placement in placements:
            if placement is None:
                continue
            key = tuple(
                sorted((k.value, v) for k, v in placement.counts.items())
            )
            if key not in seen:
                seen[key] = placement
        if not seen:
            raise InfeasibleError(
                "no feasible placement at any budget: the model does not "
                "fit this architecture's storage or time range"
            )
        self.candidates = sorted(
            seen.values(), key=lambda p: p.task_time_ns
        )
        self._candidate_times = [p.task_time_ns for p in self.candidates]

    def __len__(self) -> int:
        return len(self.candidates)

    @property
    def min_feasible_t_ns(self) -> float:
        """Tightest satisfiable PIM task-time budget (green dot)."""
        return self.candidates[0].task_time_ns

    @property
    def peak_placement(self) -> Placement:
        """The placement at the peak-performance point."""
        return self.candidates[0]

    @property
    def most_relaxed_placement(self) -> Placement:
        """The energy-optimal placement under an unlimited budget."""
        return self.lookup(float("inf"))

    def lookup(
        self, t_constraint_ns: float, window_ns: float | None = None
    ) -> Placement:
        """The optimal placement for a runtime ``t_constraint``.

        ``t_constraint_ns`` bounds the placement's evaluated task time;
        ``window_ns`` (default: the constraint itself) is the time window
        over which hold leakage is charged when ranking candidates —
        the runtime passes the full per-task wall window.  Raises
        :class:`InfeasibleError` inside the grey region of Fig. 6.
        """
        if t_constraint_ns < 0:
            raise PlacementError("t_constraint must be non-negative")
        if t_constraint_ns < self._candidate_times[0]:
            raise InfeasibleError(
                f"t_constraint {t_constraint_ns:.0f} ns below the peak-"
                f"performance point {self._candidate_times[0]:.0f} ns"
            )
        limit = bisect.bisect_right(self._candidate_times, t_constraint_ns)
        window = t_constraint_ns if window_ns is None else window_ns
        if window == float("inf"):
            # Rank by hold power first, dynamic energy second.
            return min(
                self.candidates[:limit],
                key=lambda p: (p.hold_static_power_mw, p.dynamic_energy_nj),
            )
        return min(
            self.candidates[:limit],
            key=lambda p: p.task_energy_nj(window),
        )

    def sweep(self, points: int = 200):
        """(budget, Placement) pairs over the feasible range, for Fig. 6."""
        lo = self._candidate_times[0]
        hi = max(self._candidate_times[-1], self.t_max_ns)
        result = []
        for i in range(points):
            budget = lo + (hi - lo) * i / (points - 1)
            result.append((budget, self.lookup(budget)))
        return result
