"""Architecture specifications and processor assembly.

:mod:`repro.arch.specs` defines :class:`ArchitectureSpec` and the four
Table I presets (Baseline-, Heterogeneous-, Hybrid- and HH-PIM);
:mod:`repro.arch.processor` assembles a full processor — RISC-V core, NoC,
instruction queue, controllers and clusters — around any spec.
"""

from .specs import (
    ArchitectureSpec,
    ClusterSpec,
    BASELINE_PIM,
    HETEROGENEOUS_PIM,
    HYBRID_PIM,
    HH_PIM,
    TABLE_I,
)
from .processor import PimFabric, Processor

__all__ = [
    "ArchitectureSpec",
    "ClusterSpec",
    "BASELINE_PIM",
    "HETEROGENEOUS_PIM",
    "HYBRID_PIM",
    "HH_PIM",
    "TABLE_I",
    "PimFabric",
    "Processor",
]
