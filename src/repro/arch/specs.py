"""Architecture specifications: the four PIM designs of Table I.

+------------------+---------------------------+------------------------------+
| Architecture     | PIM module configuration  | Memory types (per module)    |
+==================+===========================+==============================+
| Baseline-PIM     | 8 HP-PIM                  | 128 kB SRAM                  |
| Heterogeneous-PIM| 4 HP-PIM + 4 LP-PIM       | 128 kB SRAM                  |
| Hybrid-PIM       | 8 HP-PIM                  | 64 kB MRAM + 64 kB SRAM      |
| HH-PIM           | 4 HP-PIM + 4 LP-PIM       | 64 kB MRAM + 64 kB SRAM      |
+------------------+---------------------------+------------------------------+
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..isa.encoding import ClusterId
from ..pim.module import ModuleKind

KB = 1024


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster's composition."""

    kind: ModuleKind
    module_count: int
    mram_capacity: int
    sram_capacity: int

    def __post_init__(self) -> None:
        if self.module_count <= 0:
            raise ConfigurationError("cluster needs at least one module")
        if self.mram_capacity < 0 or self.sram_capacity < 0:
            raise ConfigurationError("capacities must be non-negative")
        if self.mram_capacity == 0 and self.sram_capacity == 0:
            raise ConfigurationError("a module needs at least one memory bank")

    @property
    def memory_per_module(self) -> int:
        """Total bytes of memory in one module."""
        return self.mram_capacity + self.sram_capacity


@dataclass(frozen=True)
class ArchitectureSpec:
    """A full PIM architecture: an HP cluster and an optional LP cluster."""

    name: str
    hp: ClusterSpec
    lp: ClusterSpec | None = None

    def __post_init__(self) -> None:
        if self.hp.kind is not ModuleKind.HP:
            raise ConfigurationError("the 'hp' cluster must use HP modules")
        if self.lp is not None and self.lp.kind is not ModuleKind.LP:
            raise ConfigurationError("the 'lp' cluster must use LP modules")

    @property
    def heterogeneous(self) -> bool:
        """Whether the design mixes HP and LP clusters."""
        return self.lp is not None

    @property
    def hybrid(self) -> bool:
        """Whether modules carry MRAM in addition to SRAM."""
        clusters = [self.hp] + ([self.lp] if self.lp else [])
        return any(c.mram_capacity > 0 for c in clusters)

    @property
    def total_modules(self) -> int:
        """Module count over all clusters."""
        return self.hp.module_count + (self.lp.module_count if self.lp else 0)

    def cluster_specs(self):
        """(ClusterId, ClusterSpec) pairs present in this architecture."""
        pairs = [(ClusterId.HP, self.hp)]
        if self.lp is not None:
            pairs.append((ClusterId.LP, self.lp))
        return pairs

    def total_capacity(self) -> dict:
        """Total MRAM/SRAM bytes across the fabric."""
        mram = sum(s.mram_capacity * s.module_count for _, s in self.cluster_specs())
        sram = sum(s.sram_capacity * s.module_count for _, s in self.cluster_specs())
        return {"mram": mram, "sram": sram}


#: Table I row 1 — 8 HP modules, SRAM only.
BASELINE_PIM = ArchitectureSpec(
    name="Baseline-PIM",
    hp=ClusterSpec(ModuleKind.HP, 8, mram_capacity=0, sram_capacity=128 * KB),
)

#: Table I row 2 — 4 HP + 4 LP modules, SRAM only.
HETEROGENEOUS_PIM = ArchitectureSpec(
    name="Heterogeneous-PIM",
    hp=ClusterSpec(ModuleKind.HP, 4, mram_capacity=0, sram_capacity=128 * KB),
    lp=ClusterSpec(ModuleKind.LP, 4, mram_capacity=0, sram_capacity=128 * KB),
)

#: Table I row 3 — 8 HP modules, hybrid 64 kB MRAM + 64 kB SRAM.
HYBRID_PIM = ArchitectureSpec(
    name="Hybrid-PIM",
    hp=ClusterSpec(ModuleKind.HP, 8, mram_capacity=64 * KB, sram_capacity=64 * KB),
)

#: Table I row 4 — the proposed HH-PIM.
HH_PIM = ArchitectureSpec(
    name="HH-PIM",
    hp=ClusterSpec(ModuleKind.HP, 4, mram_capacity=64 * KB, sram_capacity=64 * KB),
    lp=ClusterSpec(ModuleKind.LP, 4, mram_capacity=64 * KB, sram_capacity=64 * KB),
)

#: All four rows of Table I, in the paper's order.
TABLE_I = (BASELINE_PIM, HETEROGENEOUS_PIM, HYBRID_PIM, HH_PIM)
