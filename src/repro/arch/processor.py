"""Processor assembly: core + NoC + PIM fabric (Fig. 3).

:class:`PimFabric` instantiates the clusters and controllers of an
:class:`~repro.arch.specs.ArchitectureSpec` and dispatches instruction
words from the shared PIM Instruction Queue to the right cluster
controller.  :class:`Processor` adds the RV32IM core, the MMIO map and the
µNoC interconnect, reproducing the end-to-end command path of the paper's
prototype: core store → AXI/NoC → doorbell → queue → controller → module.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..controller.controller import PIMController
from ..isa.encoding import ClusterId
from ..isa.queue import InstructionQueue
from ..noc.unoc import MicroNoc
from ..pim.cluster import PIMCluster
from ..riscv.cpu import Cpu
from ..riscv.mmio import MmioBus, PimMmioBridge, RamRegion
from .specs import ArchitectureSpec

#: Default MMIO map of the prototype SoC.
RAM_BASE = 0x0000_0000
RAM_SIZE = 256 * 1024
PIM_BRIDGE_BASE = 0x4000_0000


class PimFabric:
    """Clusters + controllers + shared instruction queue for one spec."""

    def __init__(self, spec: ArchitectureSpec, queue_depth: int = 64) -> None:
        self.spec = spec
        self.queue = InstructionQueue(depth=queue_depth)
        self.clusters: dict = {}
        self.controllers: dict = {}
        for cluster_id, cluster_spec in spec.cluster_specs():
            cluster = PIMCluster(
                cluster_id=cluster_id,
                kind=cluster_spec.kind,
                module_count=cluster_spec.module_count,
                mram_capacity=cluster_spec.mram_capacity,
                sram_capacity=cluster_spec.sram_capacity,
            )
            self.clusters[cluster_id] = cluster
            self.controllers[cluster_id] = PIMController(cluster)
        if len(self.clusters) == 2:
            self.controllers[ClusterId.HP].connect_peer(self.clusters[ClusterId.LP])
            self.controllers[ClusterId.LP].connect_peer(self.clusters[ClusterId.HP])

    def cluster(self, cluster_id: ClusterId) -> PIMCluster:
        """The cluster with the given id; raises if the spec lacks it."""
        try:
            return self.clusters[cluster_id]
        except KeyError:
            raise ConfigurationError(
                f"{self.spec.name} has no {cluster_id.name} cluster"
            ) from None

    def controller(self, cluster_id: ClusterId) -> PIMController:
        """The controller of the given cluster."""
        self.cluster(cluster_id)
        return self.controllers[cluster_id]

    def drain(self) -> float:
        """Execute every queued instruction; returns elapsed ns.

        The two controllers run concurrently — each processes its own
        cluster's instructions in order, and the fabric completes when the
        slower controller finishes, matching the dual-controller design.
        """
        per_cluster_time = {cluster_id: 0.0 for cluster_id in self.clusters}
        while not self.queue.empty:
            instruction = self.queue.pop()
            controller = self.controller(instruction.cluster)
            per_cluster_time[instruction.cluster] += controller.execute(instruction)
        return max(per_cluster_time.values()) if per_cluster_time else 0.0

    def total_energy_nj(self) -> float:
        """Total energy over all clusters so far."""
        return sum(c.total_energy_nj() for c in self.clusters.values())

    def account_idle(self, duration_ns: float) -> None:
        """Charge idle time on every cluster."""
        for cluster in self.clusters.values():
            cluster.account_idle(duration_ns)

    def reset_stats(self) -> None:
        """Zero statistics on every cluster."""
        for cluster in self.clusters.values():
            cluster.reset_stats()


class Processor:
    """The full SoC of Fig. 3: RV32IM core, NoC, and a PIM fabric."""

    def __init__(
        self,
        spec: ArchitectureSpec,
        clock_ns: float = 20.0,
        ram_size: int = RAM_SIZE,
        queue_depth: int = 64,
    ) -> None:
        self.spec = spec
        self.fabric = PimFabric(spec, queue_depth=queue_depth)
        self.noc = MicroNoc.edge_soc(clock_ns=clock_ns)
        self.bus = MmioBus()
        self.ram = self.bus.map(RamRegion(RAM_BASE, ram_size))
        self.bridge = self.bus.map(
            PimMmioBridge(PIM_BRIDGE_BASE, self.fabric.queue)
        )
        self.cpu = Cpu(self.bus, reset_pc=RAM_BASE, clock_ns=clock_ns)
        self.clock_ns = clock_ns

    def load_program(self, image: bytes, offset: int = 0) -> None:
        """Load a binary image into RAM at ``offset``."""
        self.ram.load_blob(offset, image)
        self.cpu.state.pc = RAM_BASE + offset

    def run(self, max_instructions: int = 1_000_000) -> dict:
        """Run the core to completion, then drain the PIM queue.

        Returns a summary dict with core/PIM timing and instruction
        counts.  The core and the PIM fabric overlap in the real design;
        the paper's inference-time model (and ours) charges
        ``core_time + pim_time`` for the serial issue-execute pattern the
        driver kernels use.
        """
        core_instructions = self.cpu.run(max_instructions=max_instructions)
        pim_time_ns = self.fabric.drain()
        core_time_ns = self.cpu.elapsed_ns
        # Doorbell stores traverse the NoC from the core to the fabric.
        pushed = self.fabric.queue.total_popped
        noc_time_ns = sum(
            self.noc.transfer("core", "hhpim", 4) for _ in range(pushed)
        ) if pushed else 0.0
        return {
            "core_instructions": core_instructions,
            "pim_instructions": pushed,
            "core_time_ns": core_time_ns,
            "pim_time_ns": pim_time_ns,
            "noc_time_ns": noc_time_ns,
            "total_time_ns": core_time_ns + pim_time_ns,
            "pim_energy_nj": self.fabric.total_energy_nj(),
        }
