"""Performance harness: reproducible timings behind ``repro bench``.

The harness times the paths the ROADMAP cares about — LUT construction
(vectorized vs the scalar reference, cold vs persistent-cache warm),
sweep throughput through the experiment engine, and per-slice lookup
latency — and writes machine-readable ``BENCH_*.json`` artifacts that CI
uploads and gates on.  :mod:`repro.perf.trend` compares a fresh run's
headline metrics against the committed baselines so CI also catches
*relative* drift, not just absolute-floor violations.
"""

from .bench import (
    BENCH_PREFIX,
    default_bench_settings,
    render_report,
    run_bench,
    write_reports,
)
from .trend import (
    DEFAULT_TOLERANCE,
    HEADLINE_METRICS,
    TrendDelta,
    compare_reports,
    render_markdown,
)

__all__ = [
    "BENCH_PREFIX",
    "default_bench_settings",
    "render_report",
    "run_bench",
    "write_reports",
    "DEFAULT_TOLERANCE",
    "HEADLINE_METRICS",
    "TrendDelta",
    "compare_reports",
    "render_markdown",
]
