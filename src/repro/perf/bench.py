"""The ``repro bench`` measurement sections.

Ten sections, each emitted as one ``BENCH_<section>.json``:

``lut_build``
    Wall time of a full allocation-LUT construction on the vectorized
    production path vs the ``REPRO_SCALAR_DP`` scalar reference —
    the CI perf gate fails when the reported ``speedup`` drops below
    ``--min-speedup``.
``lut_cache``
    Cold materialisation (build + persist) vs warm load of the same
    runtime from the persistent cache, in an isolated cache directory;
    ``warm_dp_builds`` must be zero or the cache is broken.
``sweep``
    Engine ``run_many`` throughput over a small grid: a cold pass, a
    warm in-memory pass on the same engine, and a fresh-engine pass
    served purely by the disk cache (``disk_warm_dp_builds == 0`` is the
    cross-process zero-rebuild property).
``lookup``
    Mean per-slice ``AllocationLUT.lookup`` latency over budgets
    spanning the feasible range — the paper's O(log n) runtime claim.
``runtime``
    Slice-loop throughput over a long bursty scenario: the vectorized
    driver vs the ``REPRO_SCALAR_RUNTIME`` scalar reference — the CI
    perf gate fails when ``speedup`` drops below
    ``--min-runtime-speedup``.
``qos``
    Request-level QoS throughput over an overloaded bursty scenario
    with EDF queueing, batching and queue-depth autoscaling all
    engaged: the vectorized batch engine vs the ``REPRO_SCALAR_QOS``
    per-event scalar reference on the same request stream — the CI
    perf gate fails when ``requests_per_s`` (vectorized) drops below
    ``--min-qos-throughput`` or ``speedup`` drops below
    ``--min-qos-speedup``.
``store``
    Experiment-store resume: a cold sweep computing + persisting every
    run into an empty store vs a fresh engine resuming the same grid
    purely from stored entries — ``warm_runs_executed`` must be zero
    and the CI perf gate fails when ``resume_speedup`` drops below
    ``--min-store-speedup``.
``serve``
    Resident-daemon serving: a batch of QoS configs submitted to a warm
    in-process :class:`~repro.service.daemon.ServeDaemon` (one LUT
    build amortised across every job) vs the same batch on cold
    per-process engines (the floor of a fresh CLI invocation per
    config, interpreter startup excluded) — ``warm_dp_builds`` must be
    zero and the CI perf gate fails when ``speedup`` drops below
    ``--min-serve-speedup``.
``dist``
    Work-stealing sweep executor scheduling: the same seed grid through
    :func:`~repro.dist.executor.distributed_sweep` with one worker vs a
    four-worker pool, both under an identical synthetic per-config cost
    (``REPRO_DIST_RUN_STALL_S``, a sleep the workers honour after each
    run).  Sleeps overlap across worker processes regardless of core
    count, so the measured ``speedup`` reflects how well the
    claim/lease/complete loop keeps N workers busy — not the machine —
    and the CI perf gate fails when it drops below
    ``--min-dist-speedup``.
``obs``
    Tracing overhead: the disabled null-span fast path timed directly
    (``null_span_ns``) plus the QoS workload untraced vs under an
    active tracer.  ``disabled_overhead`` estimates the fraction of
    the untraced wall the instrumentation costs when tracing is off —
    the CI gate fails when it exceeds ``--max-obs-overhead``.

All timings are best-of-``repeats`` :func:`time.perf_counter` walls.
"""

from __future__ import annotations

import json
import os
import platform
import tempfile
import time
from pathlib import Path

import numpy as np

from ..api.config import ExperimentConfig
from ..api.engine import Engine
from ..api.registry import MODELS
from ..arch.specs import HH_PIM
from ..core import lutcache
from ..core.knapsack import scalar_dp
from ..core.placement import (
    DEFAULT_BLOCK_COUNT,
    DEFAULT_TIME_STEPS,
    DataPlacementOptimizer,
)
from ..core.runtime import default_time_slice_ns, scalar_runtime
from ..qos.queueing import QoSSimulator, scalar_qos
from ..qos.requests import sample_request_batch
from ..workloads.arrivals import bursty

#: Common prefix of every benchmark artifact file.
BENCH_PREFIX = "BENCH_"


def default_bench_settings(quick: bool = False) -> dict:
    """The knobs a bench run needs, scaled down under ``--quick``.

    ``--quick`` trims repeats and the sweep grid for CI latency but keeps
    the LUT build at the requested (default: full) resolution — the perf
    gate is only meaningful against the real construction cost.
    """
    return {
        "quick": quick,
        "repeats": 1 if quick else 3,
        "sweep_archs": ["HH-PIM", "Hybrid-PIM"] if quick
        else ["Baseline-PIM", "Heterogeneous-PIM", "Hybrid-PIM", "HH-PIM"],
        "sweep_cases": ["case1", "case3"] if quick
        else ["case1", "case2", "case3", "case4", "case5", "case6"],
        "sweep_slices": 10 if quick else 50,
        "sweep_blocks": 24 if quick else 48,
        "sweep_steps": 1500 if quick else 6000,
        "lookups": 2000 if quick else 20000,
        "runtime_slices": 2000 if quick else 10000,
        "qos_slices": 400 if quick else 1000,
        "serve_cases": ["case1", "case2", "case3"] if quick
        else ["case1", "case2", "case3", "case4", "case5", "case6"],
        "serve_slices": 8 if quick else 20,
        "dist_workers": 4,
        "dist_configs": 24 if quick else 32,
        "dist_chunk": 1,
        # Big enough that overlapped sleeps dominate the serialized
        # worker-spawn ramp even on a single core; identical for both
        # passes, so the speedup isolates executor scheduling.
        "dist_stall_s": 1.0,
        "obs_slices": 200 if quick else 500,
        "obs_null_calls": 100_000 if quick else 500_000,
    }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _metadata(settings: dict) -> dict:
    return {
        "created_unix": time.time(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": np.__version__,
        "quick": settings["quick"],
    }


# -- sections --------------------------------------------------------------------


def bench_lut_build(
    model_name: str,
    block_count: int,
    time_steps: int,
    repeats: int,
) -> dict:
    """Vectorized vs scalar-reference LUT construction on HH-PIM."""
    model = MODELS.get(model_name)
    t_slice_ns = default_time_slice_ns(
        model, block_count=block_count, time_steps=time_steps
    )
    optimizer = DataPlacementOptimizer(
        HH_PIM,
        model,
        t_slice_ns=t_slice_ns,
        block_count=block_count,
        time_steps=time_steps,
    )
    built = {}

    def build() -> None:
        built["lut"] = optimizer.build_lut()

    vectorized_s = _best_of(build, repeats)
    with scalar_dp():
        # The scalar reference is orders of magnitude slower; one
        # repetition bounds bench latency without hurting the gate.
        scalar_s = _best_of(optimizer.build_lut, 1)
    return {
        "arch": "HH-PIM",
        "model": model.name,
        "block_count": block_count,
        "time_steps": optimizer.time_steps,
        "t_slice_ns": t_slice_ns,
        "vectorized_s": vectorized_s,
        "scalar_s": scalar_s,
        "speedup": scalar_s / vectorized_s,
        "lut_candidates": len(built["lut"]),
    }


def bench_lut_cache(
    model_name: str,
    block_count: int,
    time_steps: int,
) -> dict:
    """Cold build-and-persist vs warm load from the persistent cache.

    Runs against a throwaway cache directory so the measurement is
    always a true cold/warm pair, regardless of the user's cache state.
    """
    config = ExperimentConfig(
        model=MODELS.canonical(model_name),
        block_count=block_count,
        time_steps=time_steps,
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as tmp:
        with lutcache.temporary_cache_dir(tmp):
            cold_engine = Engine()
            cold_s = _best_of(lambda: cold_engine.runtime(config), 1)
            cold_builds = cold_engine.stats.dp_builds

            warm_engine = Engine()
            warm_s = _best_of(lambda: warm_engine.runtime(config), 1)
            warm_builds = warm_engine.stats.dp_builds
            entries = lutcache.info()
    return {
        "model": config.model,
        "block_count": block_count,
        "time_steps": time_steps,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_dp_builds": cold_builds,
        "warm_dp_builds": warm_builds,
        "load_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "cache_entries": entries["entries"],
        "cache_bytes": entries["bytes"],
    }


def bench_sweep(settings: dict, model_name: str) -> dict:
    """Engine ``run_many`` throughput: cold, memory-warm and disk-warm."""
    grid = ExperimentConfig(
        model=MODELS.canonical(model_name),
        slices=settings["sweep_slices"],
        block_count=settings["sweep_blocks"],
        time_steps=settings["sweep_steps"],
    ).sweep(arch=settings["sweep_archs"], scenario=settings["sweep_cases"])

    with tempfile.TemporaryDirectory(prefix="repro-bench-sweep-") as tmp:
        with lutcache.temporary_cache_dir(tmp):
            engine = Engine()
            cold_s = _best_of(lambda: engine.run_many(grid), 1)
            cold_builds = engine.stats.dp_builds
            warm_s = _best_of(lambda: engine.run_many(grid), 1)

            fresh = Engine()
            disk_warm_s = _best_of(lambda: fresh.run_many(grid), 1)
            disk_builds = fresh.stats.dp_builds
            disk_hits = fresh.stats.lut_disk_hits
    return {
        "runs": len(grid),
        "archs": settings["sweep_archs"],
        "cases": settings["sweep_cases"],
        "slices": settings["sweep_slices"],
        "cold_s": cold_s,
        "cold_runs_per_s": len(grid) / cold_s,
        "cold_dp_builds": cold_builds,
        "warm_s": warm_s,
        "warm_runs_per_s": len(grid) / warm_s,
        "disk_warm_s": disk_warm_s,
        "disk_warm_runs_per_s": len(grid) / disk_warm_s,
        "disk_warm_dp_builds": disk_builds,
        "disk_warm_disk_hits": disk_hits,
    }


def bench_lookup(model_name: str, lookups: int) -> dict:
    """Mean per-slice LUT lookup latency over the feasible budget range."""
    engine = Engine(use_disk_cache=False)
    runtime = engine.runtime(
        ExperimentConfig(
            model=MODELS.canonical(model_name),
            block_count=24,
            time_steps=1500,
        )
    )
    lut = runtime.lut
    budgets = np.linspace(
        lut.min_feasible_t_ns, runtime.t_slice_ns, lookups
    ).tolist()
    start = time.perf_counter()
    for budget in budgets:
        lut.lookup(budget)
    elapsed = time.perf_counter() - start
    return {
        "model": MODELS.canonical(model_name),
        "lookups": lookups,
        "lut_candidates": len(lut),
        "total_s": elapsed,
        "mean_us": elapsed / lookups * 1e6,
        "lookups_per_s": lookups / elapsed,
    }


def bench_runtime(model_name: str, slices: int, repeats: int) -> dict:
    """Slice-loop throughput: vectorized driver vs the scalar reference.

    Runs a long bursty (MMPP) scenario — the shape a serving deployment
    sees — on an HH-PIM runtime at reduced optimizer resolution, so the
    measurement isolates the slice loop rather than LUT construction.
    """
    engine = Engine(use_disk_cache=False)
    runtime = engine.runtime(
        ExperimentConfig(
            model=MODELS.canonical(model_name),
            block_count=24,
            time_steps=1500,
        )
    )
    workload = bursty().materialize(slices=slices, peak=10, seed=2025)

    vectorized_s = _best_of(lambda: runtime.run_vectorized(workload), repeats)
    with scalar_runtime():
        scalar_s = _best_of(lambda: runtime.run(workload), 1)
    return {
        "arch": "HH-PIM",
        "model": MODELS.canonical(model_name),
        "scenario": workload.label,
        "slices": slices,
        "vectorized_s": vectorized_s,
        "vectorized_slices_per_s": slices / vectorized_s,
        "scalar_s": scalar_s,
        "scalar_slices_per_s": slices / scalar_s,
        "speedup": scalar_s / vectorized_s,
    }


def bench_qos(model_name: str, slices: int, repeats: int) -> dict:
    """Vectorized vs scalar-reference QoS throughput under serving stress.

    A heavily overloaded bursty scenario on a capacity-constrained
    fleet (the queue-depth autoscaler saturates at four devices, so
    backlogs run deep) with EDF queueing and batch-8 service — every
    QoS mechanism on the clock at once, at serving-stress request
    volume.  The request stream is sampled once and replayed through
    both engines, so the metric isolates the simulator, not the
    sampler, and the two passes are a true like-for-like
    (bit-identical) pair.
    """
    engine = Engine(use_disk_cache=False)
    runtime = engine.runtime(
        ExperimentConfig(
            model=MODELS.canonical(model_name),
            block_count=24,
            time_steps=1500,
        )
    )
    workload = bursty(calm_rate=40.0, burst_rate=160.0).materialize(
        slices=slices, peak=200, seed=2025
    )
    requests = sample_request_batch(workload, runtime.t_slice_ns, seed=2025)
    out = {}

    def simulate() -> None:
        # Fresh simulator per repetition: policies and autoscalers are
        # stateful over one run.
        simulator = QoSSimulator(
            runtime,
            devices=2,
            max_devices=4,
            autoscaler="queue_depth",
            discipline="edf",
            batch=8,
        )
        out["result"] = simulator.run(workload, requests=requests)

    vectorized_s = _best_of(simulate, repeats)
    result = out["result"]
    with scalar_qos():
        # The per-event reference is the slow side; one repetition
        # bounds bench latency without hurting the gate.
        scalar_s = _best_of(simulate, 1)
    return {
        "arch": "HH-PIM",
        "model": MODELS.canonical(model_name),
        "scenario": workload.label,
        "slices": slices,
        "requests": len(requests),
        "windows": len(result.slices),
        "completed": result.completed,
        "unfinished": result.unfinished,
        "slo_attainment": result.slo_attainment,
        "mean_fleet_size": result.mean_fleet_size,
        "vectorized_s": vectorized_s,
        "scalar_s": scalar_s,
        "wall_s": vectorized_s,
        "requests_per_s": len(requests) / vectorized_s,
        "scalar_requests_per_s": len(requests) / scalar_s,
        "windows_per_s": len(result.slices) / vectorized_s,
        "speedup": scalar_s / vectorized_s,
    }


def bench_store(settings: dict, model_name: str) -> dict:
    """Cold compute-and-persist sweep vs warm resume from the store.

    Both passes run the same grid as :func:`bench_sweep` against a
    throwaway store *and* a throwaway LUT cache, so the cold number is a
    true first-contact sweep and the warm number is a pure store resume
    (a fresh engine, zero scenario runs, zero DP builds).
    """
    from ..store import Store

    grid = ExperimentConfig(
        model=MODELS.canonical(model_name),
        slices=settings["sweep_slices"],
        block_count=settings["sweep_blocks"],
        time_steps=settings["sweep_steps"],
    ).sweep(arch=settings["sweep_archs"], scenario=settings["sweep_cases"])

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        with lutcache.temporary_cache_dir(Path(tmp) / "lut"):
            store = Store(Path(tmp) / "store")
            cold_engine = Engine(store=store)
            cold_s = _best_of(lambda: cold_engine.run_many(grid), 1)

            warm_engine = Engine(store=store)
            warm_s = _best_of(lambda: warm_engine.run_many(grid), 1)
            state = store.info()
    return {
        "runs": len(grid),
        "archs": settings["sweep_archs"],
        "cases": settings["sweep_cases"],
        "slices": settings["sweep_slices"],
        "cold_s": cold_s,
        "cold_runs_per_s": len(grid) / cold_s,
        "cold_store_misses": cold_engine.stats.store_misses,
        "warm_s": warm_s,
        "warm_runs_per_s": len(grid) / warm_s,
        "warm_store_hits": warm_engine.stats.store_hits,
        "warm_runs_executed": warm_engine.stats.runs,
        "warm_dp_builds": warm_engine.stats.dp_builds,
        "resume_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "store_entries": state["entries"],
        "store_bytes": state["bytes"],
    }


def bench_serve(settings: dict, model_name: str) -> dict:
    """Warm resident-daemon submissions vs cold per-process engines.

    The cold pass runs each QoS config on its own fresh engine — the
    cost floor of one CLI invocation per config, minus interpreter
    startup.  The warm pass stands up an in-process
    :class:`~repro.service.daemon.ServeDaemon` (no store, no disk
    cache, so memoization is the *only* advantage), primes it with one
    submission, then times the same batch end to end over the real wire
    protocol.  Every timed job reuses the first submission's LUT:
    ``warm_dp_builds`` must be zero.
    """
    from ..service.client import ServeClient
    from ..service.daemon import ServeDaemon

    configs = [
        ExperimentConfig(
            model=MODELS.canonical(model_name),
            scenario=case,
            slices=settings["serve_slices"],
            block_count=settings["sweep_blocks"],
            time_steps=settings["sweep_steps"],
        )
        for case in settings["serve_cases"]
    ]

    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        with lutcache.temporary_cache_dir(Path(tmp) / "lut"):

            def cold_pass() -> None:
                for config in configs:
                    Engine(use_disk_cache=False).run_qos(config)

            cold_s = _best_of(cold_pass, 1)

            daemon = ServeDaemon(
                port=0,
                engine=Engine(use_disk_cache=False),
                log=lambda line: None,
            )
            daemon.start()
            try:
                client = ServeClient(port=daemon.port)
                start = time.perf_counter()
                client.result(client.submit(configs[0]))
                warmup_s = time.perf_counter() - start
                dp_before = daemon.engine.stats.dp_builds
                start = time.perf_counter()
                for job_id in [client.submit(c) for c in configs]:
                    client.result(job_id)
                warm_s = time.perf_counter() - start
                warm_dp_builds = daemon.engine.stats.dp_builds - dp_before
                stats = daemon.engine.stats_snapshot()
            finally:
                daemon.drain()
                daemon.stop()
    return {
        "jobs": len(configs),
        "cases": settings["serve_cases"],
        "slices": settings["serve_slices"],
        "cold_s": cold_s,
        "cold_jobs_per_s": len(configs) / cold_s,
        "warmup_s": warmup_s,
        "warm_s": warm_s,
        "warm_jobs_per_s": len(configs) / warm_s,
        "warm_dp_builds": warm_dp_builds,
        "daemon_lut_builds": stats["lut_builds"],
        "daemon_lut_hits": stats["lut_hits"],
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


def bench_dist(settings: dict, model_name: str) -> dict:
    """1-worker vs N-worker distributed sweep under a synthetic run cost.

    Both passes push the same seed grid through
    :func:`~repro.dist.executor.distributed_sweep` into throwaway
    stores, with ``REPRO_DIST_RUN_STALL_S`` charging every config an
    identical sleep after it computes.  Sleeps overlap across worker
    processes even on one core, so the 4-worker pass beats the 1-worker
    baseline exactly as far as the coordinator keeps its pool fed —
    a serialized claim loop, leaked lease, or blocking COMPLETE path
    shows up directly as lost speedup.  The shared LUT disk cache is
    warmed first so neither pass pays DP construction.
    """
    from ..dist.executor import distributed_sweep

    workers = settings["dist_workers"]
    stall_s = settings["dist_stall_s"]
    grid = ExperimentConfig(
        model=MODELS.canonical(model_name),
        slices=4,
        block_count=16,
        time_steps=1500,
    ).sweep(seed=list(range(2025, 2025 + settings["dist_configs"])))
    env = {"REPRO_DIST_RUN_STALL_S": repr(stall_s)}
    status = {"baseline": {}, "dist": {}}

    with tempfile.TemporaryDirectory(prefix="repro-bench-dist-") as tmp:
        with lutcache.temporary_cache_dir(Path(tmp) / "lut"):
            # One build primes the disk cache every worker inherits
            # (the whole grid shares a runtime key — seeds only vary
            # the workload sample, not the LUT).
            Engine().runtime(grid[0])

            baseline_s = _best_of(
                lambda: distributed_sweep(
                    grid,
                    Path(tmp) / "store-baseline",
                    workers=1,
                    chunk_size=settings["dist_chunk"],
                    env=env,
                    log=lambda line: None,
                    status_sink=status["baseline"].update,
                ),
                1,
            )
            dist_s = _best_of(
                lambda: distributed_sweep(
                    grid,
                    Path(tmp) / "store-pool",
                    workers=workers,
                    chunk_size=settings["dist_chunk"],
                    env=env,
                    log=lambda line: None,
                    status_sink=status["dist"].update,
                ),
                1,
            )
    chunks = status["dist"].get("chunks", {})
    return {
        "configs": len(grid),
        "workers": workers,
        "chunk_size": settings["dist_chunk"],
        "run_stall_s": stall_s,
        "cores": os.cpu_count(),
        "baseline_s": baseline_s,
        "baseline_runs_per_s": len(grid) / baseline_s,
        "dist_s": dist_s,
        "dist_runs_per_s": len(grid) / dist_s,
        "chunks_completed": chunks.get("completed", 0),
        "chunks_stolen": chunks.get("stolen", 0),
        "pool_workers_seen": len(status["dist"].get("workers", {})),
        "speedup": baseline_s / dist_s if dist_s > 0 else float("inf"),
    }


def bench_obs(settings: dict, model_name: str) -> dict:
    """Tracing overhead: the null-span path and an enabled-tracer pass.

    The observability contract is *near-zero cost when off*: every
    instrumented call site pays one module-global read and a reused
    null context manager.  This section times that disabled path
    directly (``null_span_ns`` over a tight calibration loop), runs the
    QoS workload untraced and with an active tracer
    (``enabled_overhead``), and folds the two into
    ``disabled_overhead`` — the estimated fraction of the untraced wall
    the instrumentation costs with tracing off (span count × null-span
    cost / wall), which the CI gate pins below ``--max-obs-overhead``.
    """
    from ..obs import tracing as obs_tracing

    engine = Engine(use_disk_cache=False)
    runtime = engine.runtime(
        ExperimentConfig(
            model=MODELS.canonical(model_name),
            block_count=24,
            time_steps=1500,
        )
    )
    slices = settings["obs_slices"]
    workload = bursty(calm_rate=40.0, burst_rate=160.0).materialize(
        slices=slices, peak=200, seed=2025
    )
    requests = sample_request_batch(workload, runtime.t_slice_ns, seed=2025)

    def simulate() -> None:
        simulator = QoSSimulator(
            runtime,
            devices=2,
            max_devices=4,
            autoscaler="queue_depth",
            discipline="edf",
            batch=8,
        )
        simulator.run(workload, requests=requests)

    # The disabled fast path, timed directly: one global read plus the
    # shared null context manager per call site.
    calls = settings["obs_null_calls"]
    null_span = obs_tracing.span

    def null_loop() -> None:
        for _ in range(calls):
            with null_span("bench.null"):
                pass

    null_s = _best_of(null_loop, settings["repeats"])
    null_span_ns = null_s * 1e9 / calls

    untraced_s = _best_of(simulate, settings["repeats"])
    tracer = obs_tracing.activate(proc="bench")
    try:
        enabled_s = _best_of(simulate, settings["repeats"])
    finally:
        obs_tracing.deactivate()
    spans_recorded = tracer.spans_recorded
    disabled_overhead = (
        spans_recorded * null_span_ns / (untraced_s * 1e9)
        if untraced_s > 0
        else 0.0
    )
    return {
        "model": MODELS.canonical(model_name),
        "scenario": workload.label,
        "slices": slices,
        "requests": len(requests),
        "null_calls": calls,
        "null_span_ns": null_span_ns,
        "null_spans_per_s": calls / null_s if null_s > 0 else float("inf"),
        "untraced_s": untraced_s,
        "enabled_s": enabled_s,
        "spans_recorded": spans_recorded,
        "enabled_overhead": (
            enabled_s / untraced_s - 1.0 if untraced_s > 0 else 0.0
        ),
        "disabled_overhead": disabled_overhead,
    }


# -- orchestration ---------------------------------------------------------------


def run_bench(
    quick: bool = False,
    model: str = "EfficientNet-B0",
    block_count: int = DEFAULT_BLOCK_COUNT,
    time_steps: int = DEFAULT_TIME_STEPS,
    repeats: int | None = None,
) -> dict:
    """Run every section; returns ``{section: metrics}`` plus metadata."""
    settings = default_bench_settings(quick)
    if repeats is not None:
        settings["repeats"] = repeats
    report = {
        "meta": _metadata(settings),
        "lut_build": bench_lut_build(
            model, block_count, time_steps, settings["repeats"]
        ),
        "lut_cache": bench_lut_cache(model, block_count, time_steps),
        "sweep": bench_sweep(settings, model),
        "lookup": bench_lookup(model, settings["lookups"]),
        "runtime": bench_runtime(
            model, settings["runtime_slices"], settings["repeats"]
        ),
        "qos": bench_qos(
            model, settings["qos_slices"], settings["repeats"]
        ),
        "store": bench_store(settings, model),
        "serve": bench_serve(settings, model),
        "dist": bench_dist(settings, model),
        "obs": bench_obs(settings, model),
    }
    # A machine-relative companion to requests_per_s: QoS requests
    # simulated per scalar-reference slice on the same box, so the perf
    # trajectory can separate simulator regressions from runner speed.
    scalar_rate = report["runtime"]["scalar_slices_per_s"]
    report["qos"]["requests_per_scalar_slice"] = (
        report["qos"]["requests_per_s"] / scalar_rate if scalar_rate else 0.0
    )
    return report


def write_reports(report: dict, out_dir) -> list:
    """Write one ``BENCH_<section>.json`` per section; returns the paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for section, metrics in report.items():
        if section == "meta":
            continue
        path = out / f"{BENCH_PREFIX}{section}.json"
        payload = {"bench": section, **report["meta"], "metrics": metrics}
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        paths.append(path)
    return paths


def render_report(report: dict) -> str:
    """Human-readable summary of a bench report."""
    build = report["lut_build"]
    cache = report["lut_cache"]
    sweep = report["sweep"]
    lookup = report["lookup"]
    loop = report["runtime"]
    qos = report["qos"]
    store = report["store"]
    serve = report["serve"]
    dist = report["dist"]
    obs = report["obs"]
    lines = [
        (
            f"LUT build ({build['arch']}/{build['model']}, "
            f"K={build['block_count']}, T={build['time_steps']} steps): "
            f"vectorized {build['vectorized_s'] * 1e3:.1f} ms, "
            f"scalar reference {build['scalar_s'] * 1e3:.1f} ms, "
            f"speedup {build['speedup']:.1f}x"
        ),
        (
            f"LUT cache: cold build+persist {cache['cold_s'] * 1e3:.1f} ms "
            f"({cache['cold_dp_builds']} DP builds), warm load "
            f"{cache['warm_s'] * 1e3:.1f} ms ({cache['warm_dp_builds']} DP "
            f"builds), load speedup {cache['load_speedup']:.1f}x"
        ),
        (
            f"sweep ({sweep['runs']} runs): cold "
            f"{sweep['cold_runs_per_s']:.1f} runs/s, memory-warm "
            f"{sweep['warm_runs_per_s']:.1f} runs/s, disk-warm "
            f"{sweep['disk_warm_runs_per_s']:.1f} runs/s "
            f"({sweep['disk_warm_dp_builds']} DP builds on the warm pass)"
        ),
        (
            f"lookup ({lookup['lut_candidates']}-candidate LUT): "
            f"{lookup['mean_us']:.2f} us/lookup "
            f"({lookup['lookups_per_s']:,.0f} lookups/s)"
        ),
        (
            f"runtime ({loop['slices']}-slice {loop['scenario']}): "
            f"vectorized {loop['vectorized_slices_per_s']:,.0f} slices/s, "
            f"scalar reference {loop['scalar_slices_per_s']:,.0f} slices/s, "
            f"speedup {loop['speedup']:.1f}x"
        ),
        (
            f"qos ({qos['requests']} requests over {qos['windows']} "
            f"windows, mean fleet {qos['mean_fleet_size']:.1f}): "
            f"vectorized {qos['requests_per_s']:,.0f} requests/s, "
            f"scalar reference {qos['scalar_requests_per_s']:,.0f} "
            f"requests/s, speedup {qos['speedup']:.1f}x "
            f"({qos['slo_attainment']:.0%} SLO attainment)"
        ),
        (
            f"store ({store['runs']} runs): cold compute+persist "
            f"{store['cold_s'] * 1e3:.1f} ms, warm resume "
            f"{store['warm_s'] * 1e3:.1f} ms "
            f"({store['warm_runs_executed']} runs recomputed), "
            f"resume speedup {store['resume_speedup']:.1f}x"
        ),
        (
            f"serve ({serve['jobs']} qos jobs): cold per-process "
            f"{serve['cold_s'] * 1e3:.1f} ms, warm daemon "
            f"{serve['warm_s'] * 1e3:.1f} ms "
            f"({serve['warm_dp_builds']} DP builds while warm), "
            f"speedup {serve['speedup']:.1f}x"
        ),
        (
            f"dist ({dist['configs']} configs, "
            f"+{dist['run_stall_s'] * 1e3:.0f} ms synthetic cost each): "
            f"1 worker {dist['baseline_s']:.2f} s, {dist['workers']} "
            f"workers {dist['dist_s']:.2f} s "
            f"({dist['chunks_completed']} chunks, "
            f"{dist['chunks_stolen']} stolen), "
            f"speedup {dist['speedup']:.1f}x"
        ),
        (
            f"obs ({obs['requests']} requests, {obs['spans_recorded']} "
            f"spans when traced): null span {obs['null_span_ns']:.0f} ns, "
            f"disabled overhead {obs['disabled_overhead']:.2%}, "
            f"enabled overhead {obs['enabled_overhead']:.1%}"
        ),
    ]
    return "\n".join(lines)
