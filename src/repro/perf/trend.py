"""Perf-trend comparison: current bench artifacts vs committed baselines.

``repro trend`` reads two directories of ``BENCH_<section>.json``
artifacts — the committed baselines at the repo root and a fresh
``repro bench --out`` run — and compares each section's *headline*
metric (the one number its CI gate watches).  Every headline metric is
higher-is-better (a speedup or a rate), so a section **regresses** when

    ``current < baseline * (1 - tolerance)``

with the default tolerance of 30%.  The comparison renders as a
markdown delta table for ``$GITHUB_STEP_SUMMARY`` and the CLI exits
non-zero when any section regresses, turning silent perf drift into a
red check without gating on absolute numbers (which vary by runner).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from ..errors import ReproError
from .bench import BENCH_PREFIX

__all__ = [
    "DEFAULT_TOLERANCE",
    "HEADLINE_METRICS",
    "TrendDelta",
    "compare_reports",
    "render_markdown",
]

#: Per-section headline metric — the number the CI perf gate watches.
#: All of them are higher-is-better (a speedup or a throughput rate).
HEADLINE_METRICS: dict[str, str] = {
    "lut_build": "speedup",
    "lut_cache": "load_speedup",
    "sweep": "disk_warm_runs_per_s",
    "lookup": "lookups_per_s",
    "runtime": "speedup",
    "qos": "speedup",
    "store": "resume_speedup",
    "serve": "speedup",
    "dist": "speedup",
    "obs": "null_spans_per_s",
}

#: Fractional slack before a lower headline metric counts as a
#: regression; runner-to-runner jitter stays well inside 30%.
DEFAULT_TOLERANCE = 0.30


@dataclass(frozen=True)
class TrendDelta:
    """One section's baseline-vs-current headline comparison."""

    #: Bench section name (``lut_build``, ``qos``, ...).
    section: str
    #: The headline metric compared, from :data:`HEADLINE_METRICS`.
    metric: str
    #: Baseline value of the headline metric.
    baseline: float
    #: Current value of the headline metric.
    current: float
    #: ``current / baseline`` (``inf`` when the baseline is zero).
    ratio: float
    #: True when the current value fell below the tolerance band.
    regressed: bool


def _load_metrics(directory: Path, section: str) -> dict | None:
    """The ``metrics`` payload of one artifact, or None when absent."""
    path = directory / f"{BENCH_PREFIX}{section}.json"
    if not path.is_file():
        return None
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"unreadable bench artifact {path}: {exc}") from exc
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        raise ReproError(f"bench artifact {path} has no metrics object")
    return metrics


def compare_reports(
    baseline_dir,
    current_dir,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[TrendDelta]:
    """Compare every section's headline metric across two artifact dirs.

    Sections with no committed baseline are skipped (new sections land
    green and start gating once their artifact is committed); a section
    with a baseline but no current artifact is an error — the bench run
    silently lost coverage.
    """
    baseline_root = Path(baseline_dir)
    current_root = Path(current_dir)
    if not 0.0 <= tolerance < 1.0:
        raise ReproError(
            f"trend tolerance must be in [0, 1), got {tolerance}"
        )
    deltas = []
    for section, metric in HEADLINE_METRICS.items():
        baseline = _load_metrics(baseline_root, section)
        if baseline is None:
            continue
        current = _load_metrics(current_root, section)
        if current is None:
            raise ReproError(
                f"bench section {section!r} has a committed baseline but "
                f"no current artifact in {current_root}"
            )
        for side, metrics in (("baseline", baseline), ("current", current)):
            if metric not in metrics:
                raise ReproError(
                    f"bench section {section!r} {side} artifact is missing "
                    f"its headline metric {metric!r}"
                )
        base_value = float(baseline[metric])
        cur_value = float(current[metric])
        ratio = cur_value / base_value if base_value else float("inf")
        deltas.append(
            TrendDelta(
                section=section,
                metric=metric,
                baseline=base_value,
                current=cur_value,
                ratio=ratio,
                regressed=cur_value < base_value * (1.0 - tolerance),
            )
        )
    if not deltas:
        raise ReproError(
            f"no bench baselines found in {baseline_root} "
            f"(expected {BENCH_PREFIX}<section>.json files)"
        )
    return deltas


def render_markdown(
    deltas: list[TrendDelta],
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """GitHub-flavoured markdown delta table for the CI step summary."""
    lines = [
        "## Perf trend",
        "",
        f"Regression threshold: headline metric below "
        f"{(1.0 - tolerance) * 100.0:.0f}% of its committed baseline.",
        "",
        "| section | metric | baseline | current | ratio | status |",
        "| --- | --- | ---: | ---: | ---: | --- |",
    ]
    for delta in deltas:
        status = "🔴 regressed" if delta.regressed else "✅ ok"
        lines.append(
            f"| {delta.section} | {delta.metric} "
            f"| {delta.baseline:,.2f} | {delta.current:,.2f} "
            f"| {delta.ratio:.2f}x | {status} |"
        )
    regressions = [d.section for d in deltas if d.regressed]
    lines.append("")
    if regressions:
        lines.append(
            f"**{len(regressions)} section(s) regressed:** "
            + ", ".join(regressions)
        )
    else:
        lines.append("All sections within tolerance.")
    return "\n".join(lines) + "\n"
