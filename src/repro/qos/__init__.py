"""Request-level QoS: queueing, SLO accounting and autoscaling.

The slice runtime and the fleet answer "how much energy does a load
pattern cost?"; this package answers the serving questions — what tail
latency do individual requests see, which SLOs hold, and how big must
the fleet be?  It layers a seed-deterministic, request-level
discrete-event simulator (:class:`QoSSimulator`) on the existing stack:
requests are sampled from any scenario (:mod:`repro.qos.requests`),
queued per device under FIFO / priority / EDF disciplines with
configurable batching (:mod:`repro.qos.queueing`), priced by the
allocation LUT's placement decisions, scored by streaming percentile and
SLO series (:mod:`repro.qos.slo`), and capacity-managed by pluggable
autoscalers (:mod:`repro.qos.autoscale`).

With zero queueing the simulator degenerates *exactly* to
:class:`repro.serving.fleet.Fleet` — same per-slice records, bit for bit
— so every QoS number stays anchored to the paper's energy model.
"""

from .autoscale import (
    Autoscaler,
    BUILTIN_AUTOSCALERS,
    Fixed,
    QueueDepthTarget,
    ScaleObservation,
    Threshold,
    make_autoscaler,
)
from .queueing import (
    BUILTIN_DISCIPLINES,
    EarliestDeadline,
    Fifo,
    Priority,
    QoSSimulator,
    QueueDiscipline,
    make_discipline,
)
from .requests import (
    DEFAULT_CLASSES,
    INTERACTIVE_MIX,
    Request,
    RequestClass,
    sample_requests,
)
from .slo import PERCENTILES, QoSResult, QoSSliceStats, SloAccountant, percentile

__all__ = [
    "Autoscaler",
    "BUILTIN_AUTOSCALERS",
    "Fixed",
    "QueueDepthTarget",
    "ScaleObservation",
    "Threshold",
    "make_autoscaler",
    "BUILTIN_DISCIPLINES",
    "EarliestDeadline",
    "Fifo",
    "Priority",
    "QoSSimulator",
    "QueueDiscipline",
    "make_discipline",
    "DEFAULT_CLASSES",
    "INTERACTIVE_MIX",
    "Request",
    "RequestClass",
    "sample_requests",
    "PERCENTILES",
    "QoSResult",
    "QoSSliceStats",
    "SloAccountant",
    "percentile",
]
