"""Request-level QoS: queueing, SLO accounting and autoscaling.

The slice runtime and the fleet answer "how much energy does a load
pattern cost?"; this package answers the serving questions — what tail
latency do individual requests see, which SLOs hold, and how big must
the fleet be?  It layers a seed-deterministic, request-level
discrete-event simulator (:class:`QoSSimulator`) on the existing stack:
requests are sampled from any scenario (:mod:`repro.qos.requests`),
queued per device under FIFO / priority / EDF disciplines with
configurable batching (:mod:`repro.qos.queueing`), priced by the
allocation LUT's placement decisions, scored by streaming percentile and
SLO series (:mod:`repro.qos.slo`), and capacity-managed by pluggable
autoscalers (:mod:`repro.qos.autoscale`).

With zero queueing the simulator degenerates *exactly* to
:class:`repro.serving.fleet.Fleet` — same per-slice records, bit for bit
— so every QoS number stays anchored to the paper's energy model.

Two engines share the simulator's semantics: the *vectorized* batch
engine (columnar :class:`RequestBatch` streams, one lexsort per queue,
memoized placement prices, array SLO folds) is the production path; the
original per-event discrete-event loop is the scalar reference, selected
with ``REPRO_SCALAR_QOS=1`` or :func:`scalar_qos` — mirroring
``REPRO_SCALAR_DP`` / ``REPRO_SCALAR_RUNTIME``.  Both produce
bit-identical results; the differential suite pins it.
"""

from .autoscale import (
    Autoscaler,
    BUILTIN_AUTOSCALERS,
    Fixed,
    QueueDepthTarget,
    ScaleObservation,
    Threshold,
    make_autoscaler,
)
from .queueing import (
    BUILTIN_DISCIPLINES,
    EarliestDeadline,
    Fifo,
    Priority,
    QoSSimulator,
    QueueDiscipline,
    make_discipline,
    scalar_qos,
    use_scalar_qos,
)
from .requests import (
    DEFAULT_CLASSES,
    INTERACTIVE_MIX,
    Request,
    RequestBatch,
    RequestClass,
    sample_request_batch,
    sample_requests,
)
from .slo import PERCENTILES, QoSResult, QoSSliceStats, SloAccountant, percentile

__all__ = [
    "Autoscaler",
    "BUILTIN_AUTOSCALERS",
    "Fixed",
    "QueueDepthTarget",
    "ScaleObservation",
    "Threshold",
    "make_autoscaler",
    "BUILTIN_DISCIPLINES",
    "EarliestDeadline",
    "Fifo",
    "Priority",
    "QoSSimulator",
    "QueueDiscipline",
    "make_discipline",
    "scalar_qos",
    "use_scalar_qos",
    "DEFAULT_CLASSES",
    "INTERACTIVE_MIX",
    "Request",
    "RequestBatch",
    "RequestClass",
    "sample_request_batch",
    "sample_requests",
    "PERCENTILES",
    "QoSResult",
    "QoSSliceStats",
    "SloAccountant",
    "percentile",
]
