"""SLO accounting: streaming latency percentiles and attainment series.

The simulator feeds one :class:`SloAccountant` as the run unfolds: each
service window reports its completions, and the accountant maintains

* **per-slice** latency percentiles (p50/p95/p99 over the window's
  completions), deadline misses and SLO attainment;
* **cumulative** (streaming) percentiles over every completion so far —
  an exact online computation (one sorted-merge per window), so two
  runs with the same seed produce bit-identical series;
* per-slice fleet/energy/utilization/backlog columns for the autoscaler
  and the reports.

Percentiles use the nearest-rank definition (the smallest value with at
least ``q`` of the mass at or below it): exact, deterministic and free of
interpolation noise.  The run's outcome is packaged as a
:class:`QoSResult` — per-slice :class:`QoSSliceStats`, per-device
:class:`~repro.core.runtime.SliceRecord` streams (bit-comparable to the
fleet runtime's records), and the overall summary — with a
plain-primitive :meth:`QoSResult.to_dict` for JSON export.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..errors import QoSError
from ..workloads.scenarios import Scenario

__all__ = [
    "percentile",
    "SloAccountant",
    "QoSSliceStats",
    "QoSResult",
    "PERCENTILES",
]

#: The latency quantiles every report carries.
PERCENTILES = (0.50, 0.95, 0.99)


def percentile(ordered, q: float):
    """Nearest-rank percentile of an ascending sequence (None if empty).

    Accepts any ascending sequence — a list or a NumPy array (arrays are
    ambiguous under ``bool()``, so emptiness is length-based).
    """
    if not 0.0 < q <= 1.0:
        raise QoSError(f"percentile rank must lie in (0, 1], got {q!r}")
    if len(ordered) == 0:
        return None
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class QoSSliceStats:
    """One service window's QoS outcome."""

    index: int
    #: Scenario requests newly arrived for this window (re-staged
    #: requests from a scale-down are not re-counted, so the series
    #: sums to the run's total requests).
    arrivals: int
    #: Requests completed during this window.
    completed: int
    #: Requests still queued when the window closed.
    backlog: int
    #: Devices provisioned for this window.
    fleet_size: int
    #: Energy booked by the provisioned devices this window (nJ).
    energy_nj: float
    #: Mean busy fraction of the provisioned devices.
    utilization: float
    #: Window latency percentiles (ns); None when nothing completed.
    p50_ns: float | None
    p95_ns: float | None
    p99_ns: float | None
    #: Cumulative (streaming) percentiles over the run so far.
    cumulative_p50_ns: float | None
    cumulative_p95_ns: float | None
    cumulative_p99_ns: float | None
    #: Hard-deadline misses among this window's completions.
    deadline_misses: int
    #: Per-class SLO misses among this window's completions.
    slo_misses: int
    #: Fraction of this window's completions inside their SLO (1.0 when
    #: nothing completed: an empty window violates nothing).
    slo_attainment: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "arrivals": self.arrivals,
            "completed": self.completed,
            "backlog": self.backlog,
            "fleet_size": self.fleet_size,
            "energy_nj": self.energy_nj,
            "utilization": self.utilization,
            "p50_ns": self.p50_ns,
            "p95_ns": self.p95_ns,
            "p99_ns": self.p99_ns,
            "cumulative_p50_ns": self.cumulative_p50_ns,
            "cumulative_p95_ns": self.cumulative_p95_ns,
            "cumulative_p99_ns": self.cumulative_p99_ns,
            "deadline_misses": self.deadline_misses,
            "slo_misses": self.slo_misses,
            "slo_attainment": self.slo_attainment,
        }


class SloAccountant:
    """Streams completions into per-slice and cumulative QoS series.

    ``slo_ns`` is the base SLO latency target; each request's effective
    target is ``slo_ns * request.cls.slo_factor``.  ``tolerance_ns`` is
    the runtime's time-quantisation slack: completions within it of their
    bound still count as met, mirroring the slice runtime's deadline
    accounting.

    ``on_window`` is an optional streaming callback invoked with each
    :class:`QoSSliceStats` the moment its window is folded in, so live
    observers (the serving daemon's metrics exporter) see the series as
    it is produced.  It runs after the stats are final and its return
    value is ignored — observing a run never alters it.
    """

    def __init__(self, slo_ns: float, tolerance_ns: float = 0.0,
                 on_window=None) -> None:
        if slo_ns <= 0:
            raise QoSError(f"SLO target must be positive, got {slo_ns!r}")
        if tolerance_ns < 0:
            raise QoSError(
                f"tolerance must be non-negative, got {tolerance_ns!r}"
            )
        self.slo_ns = slo_ns
        self.tolerance_ns = tolerance_ns
        self.on_window = on_window
        #: Ascending latencies of every completion so far (streaming,
        #: float64 — merged once per window).
        self._latencies = np.empty(0, dtype=np.float64)
        self.slices: list = []
        self.completed = 0
        self.deadline_misses = 0
        self.slo_misses = 0

    def observe_window(
        self,
        index: int,
        arrivals: int,
        completions,
        backlog: int,
        fleet_size: int,
        energy_nj: float,
        utilization: float,
        tolerance_ns: float | None = None,
    ) -> QoSSliceStats:
        """Fold one service window in; returns its :class:`QoSSliceStats`.

        ``completions`` is an iterable of ``(request, completion_ns)``;
        ``tolerance_ns`` overrides the accountant's default slack for
        this window (the simulator passes the runtime's per-window
        quantisation slack).
        """
        if tolerance_ns is None:
            tolerance_ns = self.tolerance_ns
        window_latencies = []
        deadline_misses = 0
        slo_misses = 0
        for request, completion_ns in completions:
            latency = completion_ns - request.arrival_ns
            if latency < 0:
                raise QoSError(
                    f"request {request.rid} completed before it arrived"
                )
            window_latencies.append(latency)
            if completion_ns > request.deadline_ns + tolerance_ns:
                deadline_misses += 1
            target = self.slo_ns * request.cls.slo_factor
            if latency > target + tolerance_ns:
                slo_misses += 1
        window_latencies.sort()
        return self._fold_window(
            index=index,
            arrivals=arrivals,
            window_latencies=np.asarray(window_latencies, dtype=np.float64),
            deadline_misses=deadline_misses,
            slo_misses=slo_misses,
            backlog=backlog,
            fleet_size=fleet_size,
            energy_nj=energy_nj,
            utilization=utilization,
        )

    def observe_window_arrays(
        self,
        index: int,
        arrivals: int,
        *,
        arrival_ns,
        deadline_ns,
        slo_factor,
        completion_ns,
        rid=None,
        backlog: int,
        fleet_size: int,
        energy_nj: float,
        utilization: float,
        tolerance_ns: float | None = None,
    ) -> QoSSliceStats:
        """Array form of :meth:`observe_window` (the vectorized engine's).

        ``arrival_ns``/``deadline_ns``/``slo_factor``/``completion_ns``
        are parallel float64 columns over this window's completions
        (``rid`` optionally carries ids for error reporting).  The
        comparisons run the same float arithmetic as the scalar loop, so
        the two paths fold bit-identical :class:`QoSSliceStats`.
        """
        if tolerance_ns is None:
            tolerance_ns = self.tolerance_ns
        arrival_ns = np.asarray(arrival_ns, dtype=np.float64)
        deadline_ns = np.asarray(deadline_ns, dtype=np.float64)
        slo_factor = np.asarray(slo_factor, dtype=np.float64)
        completion_ns = np.asarray(completion_ns, dtype=np.float64)
        latencies = completion_ns - arrival_ns
        negative = latencies < 0
        if negative.any():
            first = int(np.argmax(negative))
            label = int(rid[first]) if rid is not None else first
            raise QoSError(
                f"request {label} completed before it arrived"
            )
        deadline_misses = int(
            np.count_nonzero(completion_ns > deadline_ns + tolerance_ns)
        )
        slo_misses = int(np.count_nonzero(
            latencies > self.slo_ns * slo_factor + tolerance_ns
        ))
        return self._fold_window(
            index=index,
            arrivals=arrivals,
            window_latencies=np.sort(latencies),
            deadline_misses=deadline_misses,
            slo_misses=slo_misses,
            backlog=backlog,
            fleet_size=fleet_size,
            energy_nj=energy_nj,
            utilization=utilization,
        )

    def _fold_window(
        self,
        index: int,
        arrivals: int,
        window_latencies: np.ndarray,
        deadline_misses: int,
        slo_misses: int,
        backlog: int,
        fleet_size: int,
        energy_nj: float,
        utilization: float,
    ) -> QoSSliceStats:
        """Merge one window's sorted latencies into the streaming series.

        Shared by both observe paths: the cumulative list update is one
        ``searchsorted`` + ``insert`` merge per window (O(n), like the
        old heapq merge), and every stat lands as a plain Python float
        so the stats stay JSON-serialisable whichever path produced
        them.
        """
        if len(self._latencies):
            positions = np.searchsorted(
                self._latencies, window_latencies, side="left"
            )
            self._latencies = np.insert(
                self._latencies, positions, window_latencies
            )
        else:
            self._latencies = np.array(window_latencies, dtype=np.float64)
        count = len(window_latencies)
        self.completed += count
        self.deadline_misses += deadline_misses
        self.slo_misses += slo_misses

        def _float(value):
            return None if value is None else float(value)

        p50, p95, p99 = (
            _float(percentile(window_latencies, q)) for q in PERCENTILES
        )
        c50, c95, c99 = (
            _float(percentile(self._latencies, q)) for q in PERCENTILES
        )
        stats = QoSSliceStats(
            index=index,
            arrivals=arrivals,
            completed=count,
            backlog=backlog,
            fleet_size=fleet_size,
            energy_nj=float(energy_nj),
            utilization=float(utilization),
            p50_ns=p50,
            p95_ns=p95,
            p99_ns=p99,
            cumulative_p50_ns=c50,
            cumulative_p95_ns=c95,
            cumulative_p99_ns=c99,
            deadline_misses=deadline_misses,
            slo_misses=slo_misses,
            slo_attainment=(count - slo_misses) / count if count else 1.0,
        )
        self.slices.append(stats)
        if self.on_window is not None:
            self.on_window(stats)
        return stats

    # -- overall statistics -----------------------------------------------------

    def overall_percentiles(self) -> tuple:
        """(p50, p95, p99) over every completion so far."""
        return tuple(
            None if value is None else float(value)
            for value in (
                percentile(self._latencies, q) for q in PERCENTILES
            )
        )

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of completions past their hard deadline."""
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of completions inside their per-class SLO."""
        if not self.completed:
            return 1.0
        return 1.0 - self.slo_misses / self.completed


@dataclass(frozen=True)
class QoSResult:
    """Outcome of one request-level QoS simulation."""

    scenario: Scenario
    architecture: str
    model: str
    discipline: str
    dispatch: str
    autoscaler: str
    batch: int
    t_slice_ns: float
    slo_ns: float
    total_requests: int
    completed: int
    #: Requests still queued when the drain budget ran out.
    unfinished: int
    #: Per-window QoS series, in window order (includes drain windows).
    slices: tuple
    #: Per-device SliceRecord streams, keyed by device slot; record
    #: ``index`` is the window the device was provisioned for, so the
    #: streams are bit-comparable to ``FleetResult.device_results``.
    device_records: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.completed + self.unfinished != self.total_requests:
            raise QoSError(
                f"request conservation violated: {self.completed} completed "
                f"+ {self.unfinished} unfinished != {self.total_requests}"
            )

    def __len__(self) -> int:
        return len(self.slices)

    # -- aggregates --------------------------------------------------------------

    @property
    def total_energy_nj(self) -> float:
        """Energy over the whole run, idle provisioned devices included."""
        return sum(stats.energy_nj for stats in self.slices)

    @property
    def energy_per_request_nj(self) -> float:
        """Mean energy per completed request."""
        return self.total_energy_nj / self.completed if self.completed else 0.0

    @property
    def deadline_misses(self) -> int:
        return sum(stats.deadline_misses for stats in self.slices)

    @property
    def deadline_miss_rate(self) -> float:
        """Completed requests past their hard deadline, as a fraction."""
        return self.deadline_misses / self.completed if self.completed else 0.0

    @property
    def slo_attainment(self) -> float:
        """Fraction of completed requests inside their per-class SLO."""
        if not self.completed:
            return 1.0
        misses = sum(stats.slo_misses for stats in self.slices)
        return 1.0 - misses / self.completed

    @property
    def latency_percentiles_ns(self) -> tuple:
        """Overall (p50, p95, p99): the last window's cumulative values."""
        if not self.slices:
            return (None, None, None)
        last = self.slices[-1]
        return (
            last.cumulative_p50_ns,
            last.cumulative_p95_ns,
            last.cumulative_p99_ns,
        )

    @property
    def mean_fleet_size(self) -> float:
        """Average provisioned devices per window."""
        if not self.slices:
            return 0.0
        return sum(stats.fleet_size for stats in self.slices) / len(self.slices)

    @property
    def peak_backlog(self) -> int:
        """Deepest end-of-window queue over the run."""
        return max((stats.backlog for stats in self.slices), default=0)

    @property
    def mean_utilization(self) -> float:
        """Mean per-window device utilization."""
        if not self.slices:
            return 0.0
        return sum(stats.utilization for stats in self.slices) / len(self.slices)

    # -- export ------------------------------------------------------------------

    def to_dict(self, include_records: bool = False) -> dict:
        """A plain-primitive summary (plus optional device records)."""
        p50, p95, p99 = self.latency_percentiles_ns
        data = {
            "scenario": self.scenario.to_dict(),
            "architecture": self.architecture,
            "model": self.model,
            "discipline": self.discipline,
            "dispatch": self.dispatch,
            "autoscaler": self.autoscaler,
            "batch": self.batch,
            "t_slice_ns": self.t_slice_ns,
            "slo_ns": self.slo_ns,
            "total_requests": self.total_requests,
            "completed": self.completed,
            "unfinished": self.unfinished,
            "total_energy_nj": self.total_energy_nj,
            "energy_per_request_nj": self.energy_per_request_nj,
            "p50_ns": p50,
            "p95_ns": p95,
            "p99_ns": p99,
            "deadline_miss_rate": self.deadline_miss_rate,
            "slo_attainment": self.slo_attainment,
            "mean_fleet_size": self.mean_fleet_size,
            "peak_backlog": self.peak_backlog,
            "mean_utilization": self.mean_utilization,
            "slices": [stats.to_dict() for stats in self.slices],
        }
        if include_records:
            data["device_records"] = {
                str(device): [record.to_dict() for record in records]
                for device, records in sorted(self.device_records.items())
            }
        return data
