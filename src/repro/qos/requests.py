"""Request sampling: per-slice loads become individual timestamped requests.

The slice runtime and the fleet see a scenario as *counts* — ``loads[s]``
inferences arriving somewhere inside slice ``s``.  The QoS layer needs
the individual requests: :func:`sample_requests` expands a materialised
:class:`~repro.workloads.scenarios.Scenario` (and therefore any
registered :class:`~repro.workloads.arrivals.ArrivalProcess`) into a
stream of :class:`Request` records with

* an **arrival timestamp** — each of the slice's ``loads[s]`` arrivals is
  drawn uniformly inside the slice's wall-clock window, then sorted, so
  the per-slice counts are preserved exactly (the zero-queueing
  differential against :class:`~repro.serving.fleet.Fleet` depends on
  this);
* a **deadline** — the paper's ``2T`` latency bound by default (a request
  arriving during slice ``s`` is staged at the next boundary and must
  finish within the following slice);
* a **request class** — the serving mix (interactive vs. batch traffic,
  priorities, per-class SLO factors) for the priority/EDF disciplines.

All randomness comes from one ``random.Random(seed)`` stream, so a
(scenario, seed, classes) triple always reproduces the same request
stream bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import cached_property
from itertools import accumulate

import numpy as np

from ..errors import QoSError
from ..workloads.scenarios import Scenario

__all__ = [
    "RequestClass",
    "Request",
    "RequestBatch",
    "DEFAULT_CLASSES",
    "INTERACTIVE_MIX",
    "sample_requests",
    "sample_request_batch",
]


@dataclass(frozen=True)
class RequestClass:
    """One traffic class of the serving mix.

    ``priority`` orders the priority discipline (lower is more urgent);
    ``slo_factor`` scales the run's SLO target for this class (a batch
    class may tolerate twice the latency of an interactive one);
    ``weight`` is the class's share of the seeded mix draw.
    """

    name: str
    priority: int = 0
    slo_factor: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QoSError(
                f"request class name must be a non-empty string, "
                f"got {self.name!r}"
            )
        if self.slo_factor <= 0:
            raise QoSError(
                f"request class {self.name!r}: slo_factor must be positive, "
                f"got {self.slo_factor!r}"
            )
        if self.weight <= 0:
            raise QoSError(
                f"request class {self.name!r}: weight must be positive, "
                f"got {self.weight!r}"
            )


#: The single-class default: every request is "standard" traffic.
DEFAULT_CLASSES = (RequestClass("standard"),)

#: A classic serving mix: mostly interactive traffic with a batch tail
#: that tolerates twice the SLO and yields priority.
INTERACTIVE_MIX = (
    RequestClass("interactive", priority=0, slo_factor=1.0, weight=4.0),
    RequestClass("batch", priority=1, slo_factor=2.0, weight=1.0),
)


@dataclass(frozen=True)
class Request:
    """One inference request with its QoS envelope."""

    #: Stable id in arrival order (ties in timestamps break on it).
    rid: int
    #: Scenario slice the request arrived in.
    slice_index: int
    #: Wall-clock arrival (ns from run start).
    arrival_ns: float
    #: Hard completion deadline (ns) — the paper's ``2T`` bound.
    deadline_ns: float
    #: Traffic class (priority / SLO treatment).
    cls: RequestClass

    @property
    def slack_ns(self) -> float:
        """Deadline headroom at arrival."""
        return self.deadline_ns - self.arrival_ns


@dataclass(frozen=True)
class RequestBatch:
    """A request stream as parallel NumPy columns (structure of arrays).

    The vectorized QoS engine consumes streams in this shape: one
    ``float64``/``int64`` column per :class:`Request` field plus an
    integer index into the ``classes`` tuple, so queue ordering, batch
    scheduling and SLO accounting become array gathers instead of
    per-object attribute walks.  :func:`sample_request_batch` produces
    batches bit-identical to :func:`sample_requests`;
    :meth:`from_requests`/:meth:`to_requests` convert losslessly in both
    directions (the round trip is exact — timestamps are float64 either
    way).
    """

    #: Stable ids in arrival order (``int64``).
    rid: np.ndarray
    #: Scenario slice each request arrived in (``int64``).
    slice_index: np.ndarray
    #: Wall-clock arrivals in ns (``float64``).
    arrival_ns: np.ndarray
    #: Hard completion deadlines in ns (``float64``).
    deadline_ns: np.ndarray
    #: Index of each request's class in :attr:`classes` (``int64``).
    cls_index: np.ndarray
    #: The distinct :class:`RequestClass` objects, in first-appearance
    #: order for :meth:`from_requests` streams.
    classes: tuple

    def __len__(self) -> int:
        return int(self.rid.shape[0])

    @cached_property
    def priority(self) -> np.ndarray:
        """Per-request class priority column (``int64``)."""
        table = np.array(
            [cls.priority for cls in self.classes], dtype=np.int64
        )
        return table[self.cls_index]

    @cached_property
    def slo_factor(self) -> np.ndarray:
        """Per-request SLO scale factor column (``float64``)."""
        table = np.array(
            [cls.slo_factor for cls in self.classes], dtype=np.float64
        )
        return table[self.cls_index]

    def to_requests(self) -> tuple:
        """Materialise the batch as a tuple of :class:`Request`."""
        classes = self.classes
        return tuple(
            Request(
                rid=int(rid),
                slice_index=int(slice_index),
                arrival_ns=float(arrival),
                deadline_ns=float(deadline),
                cls=classes[cls_index],
            )
            for rid, slice_index, arrival, deadline, cls_index in zip(
                self.rid.tolist(),
                self.slice_index.tolist(),
                self.arrival_ns.tolist(),
                self.deadline_ns.tolist(),
                self.cls_index.tolist(),
            )
        )

    @classmethod
    def from_requests(cls, requests) -> "RequestBatch":
        """Columnarise an iterable of :class:`Request` (order preserved).

        Classes are deduplicated by value in first-appearance order, so
        two streams sharing a mix produce comparable ``cls_index``
        columns.
        """
        requests = tuple(requests)
        class_index: dict = {}
        classes: list = []
        cls_column = np.empty(len(requests), dtype=np.int64)
        for i, request in enumerate(requests):
            if not isinstance(request, Request):
                raise QoSError(
                    f"RequestBatch.from_requests needs Request instances, "
                    f"got {type(request).__name__}"
                )
            index = class_index.get(request.cls)
            if index is None:
                index = len(classes)
                class_index[request.cls] = index
                classes.append(request.cls)
            cls_column[i] = index
        return cls(
            rid=np.array([r.rid for r in requests], dtype=np.int64),
            slice_index=np.array(
                [r.slice_index for r in requests], dtype=np.int64
            ),
            arrival_ns=np.array(
                [r.arrival_ns for r in requests], dtype=np.float64
            ),
            deadline_ns=np.array(
                [r.deadline_ns for r in requests], dtype=np.float64
            ),
            cls_index=cls_column,
            classes=tuple(classes),
        )


def _validated_classes(classes) -> tuple:
    classes = tuple(classes)
    if not classes:
        raise QoSError("request sampling needs at least one request class")
    for cls in classes:
        if not isinstance(cls, RequestClass):
            raise QoSError(
                f"request classes must be RequestClass instances, "
                f"got {type(cls).__name__}"
            )
    return classes


def _validate_sampling(t_slice_ns: float, deadline_slices: float) -> None:
    if t_slice_ns <= 0:
        raise QoSError(f"t_slice_ns must be positive, got {t_slice_ns!r}")
    if deadline_slices <= 0:
        raise QoSError(
            f"deadline_slices must be positive, got {deadline_slices!r}"
        )


def sample_requests(
    scenario: Scenario,
    t_slice_ns: float,
    seed: int = 2025,
    classes=DEFAULT_CLASSES,
    deadline_slices: float = 2.0,
) -> tuple:
    """Expand a scenario's per-slice counts into timestamped requests.

    Slice ``s`` spans ``[s*T, (s+1)*T)``; its ``loads[s]`` arrivals are
    drawn uniformly inside that window and sorted, so request streams are
    monotone in time and the per-slice counts match the scenario exactly.
    ``deadline_slices`` sets the hard deadline in units of the time slice
    (default: the paper's ``2T`` staging bound).  Returns a tuple of
    :class:`Request` in arrival order.

    This is the scalar reference; :func:`sample_request_batch` draws the
    same stream into columnar arrays, bit for bit.
    """
    _validate_sampling(t_slice_ns, deadline_slices)
    classes = _validated_classes(classes)
    weights = [cls.weight for cls in classes]
    rng = random.Random(seed)
    deadline_ns = deadline_slices * t_slice_ns
    requests = []
    rid = 0
    for index, load in enumerate(scenario.loads):
        offsets = sorted(rng.random() for _ in range(load))
        for offset in offsets:
            arrival = (index + offset) * t_slice_ns
            if len(classes) == 1:
                cls = classes[0]
            else:
                cls = rng.choices(classes, weights=weights)[0]
            requests.append(
                Request(
                    rid=rid,
                    slice_index=index,
                    arrival_ns=arrival,
                    deadline_ns=arrival + deadline_ns,
                    cls=cls,
                )
            )
            rid += 1
    return tuple(requests)


def sample_request_batch(
    scenario: Scenario,
    t_slice_ns: float,
    seed: int = 2025,
    classes=DEFAULT_CLASSES,
    deadline_slices: float = 2.0,
) -> RequestBatch:
    """Draw :func:`sample_requests`'s stream directly into a batch.

    Consumes the *same* ``random.Random(seed)`` draws in the same order
    (per slice: the sorted uniform offsets, then one draw per request
    for the class mix — ``random.choices`` is one ``random()`` per
    pick), so ``sample_request_batch(...).to_requests()`` equals
    ``sample_requests(...)`` exactly; only the assembly is columnar.
    The class draw replicates ``Random.choices``'s
    ``bisect_right(cum_weights, u * total, hi=n-1)`` as a clamped
    ``searchsorted``.
    """
    _validate_sampling(t_slice_ns, deadline_slices)
    classes = _validated_classes(classes)
    rng = random.Random(seed)
    deadline_ns = deadline_slices * t_slice_ns
    multi = len(classes) > 1
    if multi:
        cum_weights = np.array(
            list(accumulate(cls.weight for cls in classes)), dtype=np.float64
        )
        total = float(cum_weights[-1]) + 0.0

    slice_columns: list = []
    offset_columns: list = []
    cls_columns: list = []
    for index, load in enumerate(scenario.loads):
        if not load:
            continue
        offsets = sorted(rng.random() for _ in range(load))
        slice_columns.append(np.full(load, index, dtype=np.int64))
        offset_columns.append(np.asarray(offsets, dtype=np.float64))
        if multi:
            draws = np.asarray(
                [rng.random() for _ in range(load)], dtype=np.float64
            )
            cls_columns.append(
                np.minimum(
                    np.searchsorted(cum_weights, draws * total, side="right"),
                    len(classes) - 1,
                ).astype(np.int64)
            )

    if slice_columns:
        slice_index = np.concatenate(slice_columns)
        offsets_arr = np.concatenate(offset_columns)
    else:
        slice_index = np.empty(0, dtype=np.int64)
        offsets_arr = np.empty(0, dtype=np.float64)
    if multi and cls_columns:
        cls_index = np.concatenate(cls_columns)
    else:
        cls_index = np.zeros(len(slice_index), dtype=np.int64)
    arrival = (slice_index + offsets_arr) * t_slice_ns
    return RequestBatch(
        rid=np.arange(len(slice_index), dtype=np.int64),
        slice_index=slice_index,
        arrival_ns=arrival,
        deadline_ns=arrival + deadline_ns,
        cls_index=cls_index,
        classes=classes,
    )
