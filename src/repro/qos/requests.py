"""Request sampling: per-slice loads become individual timestamped requests.

The slice runtime and the fleet see a scenario as *counts* — ``loads[s]``
inferences arriving somewhere inside slice ``s``.  The QoS layer needs
the individual requests: :func:`sample_requests` expands a materialised
:class:`~repro.workloads.scenarios.Scenario` (and therefore any
registered :class:`~repro.workloads.arrivals.ArrivalProcess`) into a
stream of :class:`Request` records with

* an **arrival timestamp** — each of the slice's ``loads[s]`` arrivals is
  drawn uniformly inside the slice's wall-clock window, then sorted, so
  the per-slice counts are preserved exactly (the zero-queueing
  differential against :class:`~repro.serving.fleet.Fleet` depends on
  this);
* a **deadline** — the paper's ``2T`` latency bound by default (a request
  arriving during slice ``s`` is staged at the next boundary and must
  finish within the following slice);
* a **request class** — the serving mix (interactive vs. batch traffic,
  priorities, per-class SLO factors) for the priority/EDF disciplines.

All randomness comes from one ``random.Random(seed)`` stream, so a
(scenario, seed, classes) triple always reproduces the same request
stream bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import QoSError
from ..workloads.scenarios import Scenario

__all__ = [
    "RequestClass",
    "Request",
    "DEFAULT_CLASSES",
    "INTERACTIVE_MIX",
    "sample_requests",
]


@dataclass(frozen=True)
class RequestClass:
    """One traffic class of the serving mix.

    ``priority`` orders the priority discipline (lower is more urgent);
    ``slo_factor`` scales the run's SLO target for this class (a batch
    class may tolerate twice the latency of an interactive one);
    ``weight`` is the class's share of the seeded mix draw.
    """

    name: str
    priority: int = 0
    slo_factor: float = 1.0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise QoSError(
                f"request class name must be a non-empty string, "
                f"got {self.name!r}"
            )
        if self.slo_factor <= 0:
            raise QoSError(
                f"request class {self.name!r}: slo_factor must be positive, "
                f"got {self.slo_factor!r}"
            )
        if self.weight <= 0:
            raise QoSError(
                f"request class {self.name!r}: weight must be positive, "
                f"got {self.weight!r}"
            )


#: The single-class default: every request is "standard" traffic.
DEFAULT_CLASSES = (RequestClass("standard"),)

#: A classic serving mix: mostly interactive traffic with a batch tail
#: that tolerates twice the SLO and yields priority.
INTERACTIVE_MIX = (
    RequestClass("interactive", priority=0, slo_factor=1.0, weight=4.0),
    RequestClass("batch", priority=1, slo_factor=2.0, weight=1.0),
)


@dataclass(frozen=True)
class Request:
    """One inference request with its QoS envelope."""

    #: Stable id in arrival order (ties in timestamps break on it).
    rid: int
    #: Scenario slice the request arrived in.
    slice_index: int
    #: Wall-clock arrival (ns from run start).
    arrival_ns: float
    #: Hard completion deadline (ns) — the paper's ``2T`` bound.
    deadline_ns: float
    #: Traffic class (priority / SLO treatment).
    cls: RequestClass

    @property
    def slack_ns(self) -> float:
        """Deadline headroom at arrival."""
        return self.deadline_ns - self.arrival_ns


def sample_requests(
    scenario: Scenario,
    t_slice_ns: float,
    seed: int = 2025,
    classes=DEFAULT_CLASSES,
    deadline_slices: float = 2.0,
) -> tuple:
    """Expand a scenario's per-slice counts into timestamped requests.

    Slice ``s`` spans ``[s*T, (s+1)*T)``; its ``loads[s]`` arrivals are
    drawn uniformly inside that window and sorted, so request streams are
    monotone in time and the per-slice counts match the scenario exactly.
    ``deadline_slices`` sets the hard deadline in units of the time slice
    (default: the paper's ``2T`` staging bound).  Returns a tuple of
    :class:`Request` in arrival order.
    """
    if t_slice_ns <= 0:
        raise QoSError(f"t_slice_ns must be positive, got {t_slice_ns!r}")
    if deadline_slices <= 0:
        raise QoSError(
            f"deadline_slices must be positive, got {deadline_slices!r}"
        )
    classes = tuple(classes)
    if not classes:
        raise QoSError("request sampling needs at least one request class")
    for cls in classes:
        if not isinstance(cls, RequestClass):
            raise QoSError(
                f"request classes must be RequestClass instances, "
                f"got {type(cls).__name__}"
            )
    weights = [cls.weight for cls in classes]
    rng = random.Random(seed)
    deadline_ns = deadline_slices * t_slice_ns
    requests = []
    rid = 0
    for index, load in enumerate(scenario.loads):
        offsets = sorted(rng.random() for _ in range(load))
        for offset in offsets:
            arrival = (index + offset) * t_slice_ns
            if len(classes) == 1:
                cls = classes[0]
            else:
                cls = rng.choices(classes, weights=weights)[0]
            requests.append(
                Request(
                    rid=rid,
                    slice_index=index,
                    arrival_ns=arrival,
                    deadline_ns=arrival + deadline_ns,
                    cls=cls,
                )
            )
            rid += 1
    return tuple(requests)
