"""Autoscalers: capacity policies that resize the fleet between slices.

An :class:`Autoscaler` watches the serving loop's per-window signals
(staged queue depth, utilization, current size) and returns the fleet
size for the next service window, clamped to ``[min_devices,
max_devices]``.  Scaling is boundary-clocked — devices are added or
removed only between slices, never mid-window — and deterministic: the
decision is a pure function of the observation, so seeded runs
reproduce their scaling trace bit for bit.

Built-ins (also registered in :data:`repro.api.registry.AUTOSCALERS`):

* :class:`Fixed` — never resizes (the differential-test reference);
* :class:`Threshold` — classic utilization banding: one device up above
  the high-water mark, one down below the low-water mark (only when the
  backlog is clear);
* :class:`QueueDepthTarget` — sizes the fleet so the staged work per
  device approaches a target depth, the queue-proportional policy of
  serving autoscalers.

Energy economics: a provisioned-but-idle device still books its hold /
buffer leakage through the slice accounting, so scaling down is what
actually saves energy — the reports make the trade visible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import QoSError
from ..plugins import coerce_spec

__all__ = [
    "ScaleObservation",
    "Autoscaler",
    "Fixed",
    "Threshold",
    "QueueDepthTarget",
    "BUILTIN_AUTOSCALERS",
    "make_autoscaler",
]


@dataclass(frozen=True)
class ScaleObservation:
    """What an autoscaler may know at a slice boundary."""

    #: Index of the service window about to run.
    slice_index: int
    #: Devices provisioned for the previous window.
    fleet_size: int
    #: Requests awaiting service (carry-over backlog + new arrivals).
    staged: int
    #: Mean busy fraction of the previous window's devices.
    utilization: float
    #: Peak-placement inferences one device completes per window.
    capacity_per_device: int


class Autoscaler:
    """Base class: pick the next window's fleet size."""

    #: Registry key / report label.
    name = "base"

    def start(self, initial: int, min_devices: int, max_devices: int) -> None:
        """Reset per-run state and install the size bounds."""
        if not 1 <= min_devices <= max_devices:
            raise QoSError(
                f"autoscaler bounds must satisfy 1 <= min <= max, got "
                f"[{min_devices}, {max_devices}]"
            )
        if not min_devices <= initial <= max_devices:
            raise QoSError(
                f"initial fleet size {initial} outside the autoscaler "
                f"bounds [{min_devices}, {max_devices}]"
            )
        self.min_devices = min_devices
        self.max_devices = max_devices
        self._size = initial

    def decide(self, observation: ScaleObservation) -> int:
        """The fleet size for the observed window (before clamping)."""
        raise NotImplementedError

    def resize(self, observation: ScaleObservation) -> int:
        """Clamped decision; updates and returns the current size."""
        desired = self.decide(observation)
        if not isinstance(desired, int) or isinstance(desired, bool):
            raise QoSError(
                f"autoscaler {self.name!r} returned a non-integer fleet "
                f"size: {desired!r}"
            )
        self._size = max(self.min_devices, min(self.max_devices, desired))
        return self._size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Fixed(Autoscaler):
    """Never resizes: the fleet stays at its initial size."""

    name = "fixed"

    def decide(self, observation: ScaleObservation) -> int:
        return self._size


class Threshold(Autoscaler):
    """Utilization banding: up above ``high``, down below ``low``.

    Scale-down additionally requires an empty staged queue, so a briefly
    quiet fleet with a standing backlog is not starved.
    """

    name = "threshold"

    def __init__(self, low: float = 0.3, high: float = 0.85) -> None:
        if not 0.0 <= low < high <= 1.0:
            raise QoSError(
                f"threshold band must satisfy 0 <= low < high <= 1, got "
                f"[{low}, {high}]"
            )
        self.low = low
        self.high = high

    def decide(self, observation: ScaleObservation) -> int:
        if observation.utilization > self.high:
            return self._size + 1
        if observation.utilization < self.low and observation.staged == 0:
            return self._size - 1
        return self._size


class QueueDepthTarget(Autoscaler):
    """Size the fleet toward a target staged depth per device.

    The desired size is ``ceil(staged / target)`` where ``target``
    defaults to one window's per-device peak capacity — enough devices
    that the staged work clears in about one window.  Growth and shrink
    are limited to one device per boundary so scaling traces stay smooth
    (and cheap: each provision boots a placement).
    """

    name = "queue_depth"

    def __init__(self, target: int | None = None) -> None:
        if target is not None and target <= 0:
            raise QoSError(
                f"queue-depth target must be positive, got {target!r}"
            )
        self.target = target

    def decide(self, observation: ScaleObservation) -> int:
        target = self.target
        if target is None:
            target = max(1, observation.capacity_per_device)
        desired = max(1, math.ceil(observation.staged / target))
        if desired > self._size:
            return self._size + 1
        if desired < self._size:
            return self._size - 1
        return self._size


#: Built-in autoscalers by their registry name.
BUILTIN_AUTOSCALERS = {
    Fixed.name: Fixed,
    Threshold.name: Threshold,
    QueueDepthTarget.name: QueueDepthTarget,
}


def make_autoscaler(policy) -> Autoscaler:
    """Coerce an autoscaler spec — name, class, factory or instance.

    Names resolve against the built-ins first, then against the api
    ``AUTOSCALERS`` registry.
    """
    return coerce_spec(
        policy,
        base=Autoscaler,
        builtins=BUILTIN_AUTOSCALERS,
        registry_name="AUTOSCALERS",
        kind="autoscaler",
        error_cls=QoSError,
    )
