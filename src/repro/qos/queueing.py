"""The request-level serving simulator: queues, batching, service windows.

:class:`QoSSimulator` runs a scenario's *individual requests* (see
:mod:`repro.qos.requests`) through a fleet of devices, driven by the
deterministic :class:`~repro.sim.events.EventQueue`.  The clock follows
the paper's double-buffered slice discipline: requests arriving during
slice ``s`` are staged at the boundary ``(s+1)T`` and served during the
**service window** ``[(s+1)T, (s+2)T)`` — which is exactly the work the
slice runtime books under record index ``s``, so with zero queueing the
simulator's per-device :class:`~repro.core.runtime.SliceRecord` streams
are bit-identical to :class:`repro.serving.fleet.Fleet`'s (the
differential suite pins this).

Each window, each provisioned device:

1. sorts its queue by the :class:`QueueDiscipline` (FIFO / priority /
   EDF);
2. consults the allocation LUT through the runtime's placement selection
   for ``tasks = queue depth`` — so HP/LP placement decisions directly
   set the window's per-request **service time**
   (``placement.task_time_ns + core_time_ns``), and an overloaded queue
   pushes the device toward its peak (fastest, hungriest) placement;
3. serves batches of up to ``batch`` requests back to back while the
   window (plus the runtime's quantisation slack) has room — a batch's
   requests all complete at the batch's end, as events on the queue;
4. books the window with the *same accounting core* the slice runtime
   uses (idle provisioned devices pay their hold/buffer leakage — the
   autoscaler's energy incentive), and spills the unserved remainder to
   the next window.

Between windows the :class:`~repro.qos.autoscale.Autoscaler` resizes
the fleet; queues of deprovisioned devices are re-staged and
re-dispatched with the next window's arrivals.  After the last arrival
slice, drain windows run until the backlog clears or the drain budget is
exhausted (the remainder is reported as ``unfinished``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import numpy as np

from ..core.runtime import SliceRecord, TimeSliceRuntime
from ..errors import QoSError
from ..obs import events as _events
from ..obs.tracing import span as _span
from ..plugins import coerce_spec
from ..serving.dispatch import make_policy
from ..serving.fleet import device_info
from ..sim.events import EventQueue
from .autoscale import ScaleObservation, make_autoscaler
from .requests import (
    DEFAULT_CLASSES,
    RequestBatch,
    sample_request_batch,
    sample_requests,
)
from .slo import QoSResult, SloAccountant

__all__ = [
    "QueueDiscipline",
    "Fifo",
    "Priority",
    "EarliestDeadline",
    "BUILTIN_DISCIPLINES",
    "make_discipline",
    "QoSSimulator",
    "use_scalar_qos",
    "scalar_qos",
]

#: Programmatic override of the REPRO_SCALAR_QOS environment switch.
_FORCE_SCALAR_QOS: bool | None = None


def use_scalar_qos() -> bool:
    """Whether the scalar reference QoS event loop is selected."""
    if _FORCE_SCALAR_QOS is not None:
        return _FORCE_SCALAR_QOS
    value = os.environ.get("REPRO_SCALAR_QOS", "").strip().lower()
    return value in {"1", "true", "yes", "on"}


@contextmanager
def scalar_qos(enabled: bool = True):
    """Force the scalar (or vectorized) QoS engine for the enclosed block."""
    global _FORCE_SCALAR_QOS
    previous = _FORCE_SCALAR_QOS
    _FORCE_SCALAR_QOS = enabled
    try:
        yield
    finally:
        _FORCE_SCALAR_QOS = previous


# -- queue disciplines ----------------------------------------------------------------


class QueueDiscipline:
    """Orders a device's queue; lower keys are served first."""

    #: Registry key / report label.
    name = "base"

    def key(self, request) -> tuple:
        """The sort key of one request (must be deterministic)."""
        raise NotImplementedError

    def vector_keys(self, batch: RequestBatch):
        """Columnar sort keys for the vectorized engine, or ``None``.

        Returns the :meth:`key` tuple's columns over the whole request
        batch, *least-significant first* (``np.lexsort`` order), so the
        engine can order any queue with one gather + lexsort.  The base
        implementation returns ``None``, which routes the run through
        the scalar reference engine — a custom discipline that overrides
        :meth:`key` must either override this consistently or leave it
        returning ``None``; since every request id is unique, both sides
        describe the same total order whenever they agree.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class Fifo(QueueDiscipline):
    """First come, first served (ties break on request id)."""

    name = "fifo"

    def key(self, request) -> tuple:
        return (request.arrival_ns, request.rid)

    def vector_keys(self, batch: RequestBatch):
        return (batch.rid, batch.arrival_ns)


class Priority(QueueDiscipline):
    """Strict class priority, FIFO within a class."""

    name = "priority"

    def key(self, request) -> tuple:
        return (request.cls.priority, request.arrival_ns, request.rid)

    def vector_keys(self, batch: RequestBatch):
        return (batch.rid, batch.arrival_ns, batch.priority)


class EarliestDeadline(QueueDiscipline):
    """Deadline-EDF: the most urgent request first."""

    name = "edf"

    def key(self, request) -> tuple:
        return (request.deadline_ns, request.cls.priority, request.rid)

    def vector_keys(self, batch: RequestBatch):
        return (batch.rid, batch.priority, batch.deadline_ns)


#: Built-in disciplines by their registry name.
BUILTIN_DISCIPLINES = {
    Fifo.name: Fifo,
    Priority.name: Priority,
    EarliestDeadline.name: EarliestDeadline,
}


def make_discipline(discipline) -> QueueDiscipline:
    """Coerce a discipline spec — name, class, factory or instance.

    Names resolve against the built-ins first, then against the api
    ``QOS`` registry.
    """
    return coerce_spec(
        discipline,
        base=QueueDiscipline,
        builtins=BUILTIN_DISCIPLINES,
        registry_name="QOS",
        kind="queue discipline",
        error_cls=QoSError,
    )


# -- the simulator --------------------------------------------------------------------


class _Device:
    """One provisioned device: its queue and placement state."""

    __slots__ = ("queue", "prev_counts", "records")

    def __init__(self, boot_counts: dict) -> None:
        self.queue: list = []
        self.prev_counts = dict(boot_counts)
        self.records: list = []


class _VecDevice:
    """Vectorized-engine device: an index queue and memo-keyed state.

    ``queue`` holds batch-column indices in discipline order (ascending
    ``queue_rank``), an invariant dispatch maintains by merging each
    sorted chunk in — so serving never re-sorts a standing queue.
    """

    __slots__ = ("queue", "queue_rank", "prev_counts", "prev_key",
                 "records")

    def __init__(self, boot_counts: dict, boot_key: tuple) -> None:
        self.queue = _EMPTY_QUEUE
        self.queue_rank = _EMPTY_QUEUE
        self.prev_counts = boot_counts
        self.prev_key = boot_key
        self.records: list = []


_EMPTY_QUEUE = np.empty(0, dtype=np.intp)


def _canonical_counts(counts: dict) -> tuple:
    """Hashable canonical form of a placement's bank counts."""
    return tuple(sorted(
        (kind.value, blocks) for kind, blocks in counts.items()
    ))


class QoSSimulator:
    """Serves request streams on an autoscaled fleet of one runtime.

    All devices share one :class:`TimeSliceRuntime` (and therefore one
    LUT) — the homogeneous-fleet shape :meth:`repro.api.Engine.run_qos`
    produces.  ``slo`` is the latency target in units of the time slice
    (default: the paper's ``2T`` staging bound); ``max_devices`` bounds
    the autoscaler (default: the initial size, i.e. no growth).
    ``on_window`` streams each window's stats to an observer as the run
    unfolds (see :class:`SloAccountant`).
    """

    def __init__(
        self,
        runtime: TimeSliceRuntime,
        devices: int = 1,
        *,
        dispatch="round_robin",
        discipline="fifo",
        autoscaler="fixed",
        min_devices: int = 1,
        max_devices: int | None = None,
        batch: int = 1,
        slo: float = 2.0,
        deadline_slices: float = 2.0,
        classes=DEFAULT_CLASSES,
        max_drain: int | None = None,
        on_window=None,
    ) -> None:
        if not isinstance(runtime, TimeSliceRuntime):
            raise QoSError(
                f"QoSSimulator needs a TimeSliceRuntime, "
                f"got {type(runtime).__name__}"
            )
        if not isinstance(devices, int) or devices <= 0:
            raise QoSError(
                f"initial fleet size must be a positive integer, "
                f"got {devices!r}"
            )
        if not isinstance(batch, int) or batch <= 0:
            raise QoSError(
                f"batch size must be a positive integer, got {batch!r}"
            )
        if slo <= 0:
            raise QoSError(f"slo must be positive, got {slo!r}")
        if max_drain is not None and max_drain < 0:
            raise QoSError(
                f"max_drain must be non-negative, got {max_drain!r}"
            )
        self.runtime = runtime
        self.devices = devices
        self.max_devices = max_devices if max_devices is not None else devices
        self.min_devices = min_devices
        self.batch = batch
        self.slo = slo
        self.deadline_slices = deadline_slices
        self.classes = tuple(classes)
        self.max_drain = max_drain
        #: Streaming per-window observer handed to the SloAccountant.
        self.on_window = on_window
        self.policy = make_policy(dispatch)
        self.discipline = make_discipline(discipline)
        self.autoscaler = make_autoscaler(autoscaler)
        if self.max_devices < self.devices:
            raise QoSError(
                f"max_devices {self.max_devices} is below the initial "
                f"fleet size {self.devices}"
            )

    # -- fleet plumbing ----------------------------------------------------------

    def _device_infos(self, size: int) -> tuple:
        return tuple(device_info(i, self.runtime) for i in range(size))

    def _dispatch_shares(
        self, index: int, staged_count: int, fleet_count: int
    ) -> list:
        """Validated per-device dispatch counts for one window.

        Shared by both engines: the policy's contract covers only the
        counts — requests are dealt contiguously in time order, and each
        device re-sorts its queue by the discipline anyway.
        """
        shares = list(self.policy.assign(index, staged_count))
        if len(shares) != fleet_count:
            raise QoSError(
                f"dispatch policy {self.policy.name!r} returned "
                f"{len(shares)} shares for {fleet_count} devices"
            )
        if any(
            not isinstance(s, int) or isinstance(s, bool) or s < 0
            for s in shares
        ):
            raise QoSError(
                f"dispatch policy {self.policy.name!r} produced an invalid "
                f"share in window {index}: {shares}"
            )
        if sum(shares) != staged_count:
            raise QoSError(
                f"dispatch policy {self.policy.name!r} dropped or invented "
                f"requests in window {index}: {sum(shares)} != {staged_count}"
            )
        return shares

    def _dispatch(self, index: int, staged: list, fleet: list) -> list:
        """Split staged requests across the fleet; returns per-device counts."""
        shares = self._dispatch_shares(index, len(staged), len(fleet))
        cursor = 0
        for device, share in zip(fleet, shares):
            device.queue.extend(staged[cursor : cursor + share])
            cursor += share
        return shares

    def _serve_device(self, device: _Device, index: int, share: int) -> tuple:
        """Serve one device's window relative to its start.

        Returns ``(record, batch_ends)`` where ``batch_ends`` maps each
        served request to its completion offset from the window start.
        The placement is selected for the *whole* queue depth (the
        device intends to clear its backlog, so a deep queue demands the
        peak placement), batches run back to back after the movement
        settles, and a batch fits while the window plus the runtime's
        quantisation slack has room — mirroring the slice runtime's
        deadline tolerance, which is what keeps the zero-queueing
        differential exact.
        """
        runtime = self.runtime
        t_slice = runtime.t_slice_ns
        slack = runtime.optimizer.time_step_ns
        device.queue.sort(key=self.discipline.key)
        tasks_target = len(device.queue)

        placement, movement, t_constraint = runtime._select_placement(
            tasks_target, device.prev_counts
        )
        service_ns = placement.task_time_ns + runtime.core_time_ns

        served = 0
        batch_ends: list = []
        while served < tasks_target:
            size = min(self.batch, tasks_target - served)
            start_ns = movement.time_ns + served * service_ns
            busy_after = movement.time_ns + (served + size) * service_ns
            if start_ns >= t_slice - 1e-9:
                break
            if busy_after > t_slice + (served + size) * slack + 1e-6:
                break
            for request in device.queue[served : served + size]:
                batch_ends.append((request, busy_after))
            served += size
        del device.queue[:served]

        row = runtime._account_slice(placement, movement, served, t_constraint)
        (
            busy_total, idle, dynamic, hold, access, buffer_static,
            pe_static, deadline_met,
        ) = row
        record = SliceRecord(
            index=index,
            arrivals=share,
            tasks_processed=served,
            t_constraint_ns=t_constraint,
            placement_counts=dict(placement.counts),
            movement=movement,
            busy_time_ns=busy_total,
            idle_time_ns=idle,
            dynamic_energy_nj=dynamic,
            hold_static_energy_nj=hold,
            access_static_energy_nj=access,
            buffer_static_energy_nj=buffer_static,
            pe_static_energy_nj=pe_static,
            movement_energy_nj=movement.energy_nj,
            deadline_met=deadline_met,
        )
        device.prev_counts = dict(placement.counts)
        return record, batch_ends

    # -- the run -----------------------------------------------------------------

    def run(self, scenario, requests=None, seed: int = 2025) -> QoSResult:
        """Simulate the scenario's request stream; returns a QoSResult.

        Dispatches to the vectorized batch engine unless the scalar
        reference event loop is forced (``REPRO_SCALAR_QOS=1`` /
        :func:`scalar_qos`) or the discipline provides no
        :meth:`QueueDiscipline.vector_keys`.  Both engines produce
        bit-identical results (the differential suite pins it).
        ``requests`` accepts a tuple of :class:`Request`, a
        :class:`RequestBatch`, or ``None`` to sample the scenario.
        """
        if use_scalar_qos():
            return self.run_scalar(scenario, requests=requests, seed=seed)
        return self.run_vectorized(scenario, requests=requests, seed=seed)

    def run_scalar(self, scenario, requests=None, seed: int = 2025) -> QoSResult:
        """The event-driven reference engine (one event per completion)."""
        t_slice = self.runtime.t_slice_ns
        if requests is None:
            requests = sample_requests(
                scenario, t_slice, seed=seed, classes=self.classes,
                deadline_slices=self.deadline_slices,
            )
        elif isinstance(requests, RequestBatch):
            requests = requests.to_requests()
        by_slice: dict = {}
        for request in requests:
            if not 0 <= request.slice_index < len(scenario):
                raise QoSError(
                    f"request {request.rid} arrives in slice "
                    f"{request.slice_index}, outside the scenario's "
                    f"{len(scenario)} slices"
                )
            by_slice.setdefault(request.slice_index, []).append(request)

        slack = self.runtime.optimizer.time_step_ns
        capacity = device_info(0, self.runtime).capacity
        accountant = SloAccountant(
            slo_ns=self.slo * t_slice, on_window=self.on_window
        )
        boot_counts = self.runtime._boot_counts()

        size = self.devices
        self.autoscaler.start(size, self.min_devices, self.max_devices)
        fleet = [_Device(boot_counts) for _ in range(size)]
        self.policy.start(self._device_infos(size))
        device_records: dict = {i: fleet[i].records for i in range(size)}
        next_slot = size

        arrival_windows = len(scenario)
        max_drain = self.max_drain
        if max_drain is None:
            max_drain = max(64, arrival_windows)
        state = {"utilization": 0.0}
        events = EventQueue()

        def run_window(index: int) -> None:
            with _span("qos.window", index=index):
                _run_window(index)

        def _run_window(index: int) -> None:
            nonlocal size, next_slot
            window_start = events.now_ns
            arriving = by_slice.get(index, ())
            arrived = len(arriving)
            staged = sorted(arriving, key=lambda r: (r.arrival_ns, r.rid))
            backlog = sum(len(device.queue) for device in fleet)

            # 1. autoscale (boundary-clocked, before dispatch)
            new_size = self.autoscaler.resize(
                ScaleObservation(
                    slice_index=index,
                    fleet_size=size,
                    staged=backlog + len(staged),
                    utilization=state["utilization"],
                    capacity_per_device=capacity,
                )
            )
            if new_size != size:
                if new_size > size:
                    for _ in range(new_size - size):
                        device = _Device(boot_counts)
                        fleet.append(device)
                        device_records[next_slot] = device.records
                        next_slot += 1
                else:
                    for device in fleet[new_size:]:
                        staged.extend(device.queue)
                    staged.sort(key=lambda r: (r.arrival_ns, r.rid))
                    del fleet[new_size:]
                size = new_size
                # resize, not start: stateful policies (JSQ counts, the
                # round-robin pointer) keep steering by what the
                # surviving devices already hold.
                self.policy.resize(self._device_infos(size))

            # 2. dispatch the staged requests
            shares = self._dispatch(index, staged, fleet)

            # 3. serve every device's window; completions become events
            window_energy = 0.0
            busy_total_ns = 0.0
            completions: list = []
            worst_device_served = 0
            last_end = t_slice
            for device, share in zip(fleet, shares):
                record, batch_ends = self._serve_device(device, index, share)
                device.records.append(record)
                window_energy += record.total_energy_nj
                busy_total_ns += record.busy_time_ns
                worst_device_served = max(
                    worst_device_served, len(batch_ends)
                )
                for request, end_offset in batch_ends:
                    end_ns = window_start + end_offset
                    last_end = max(last_end, end_offset)
                    events.schedule_at(
                        end_ns,
                        lambda r=request, t=end_ns: completions.append((r, t)),
                        label=f"complete:{request.rid}",
                    )

            backlog_after = sum(len(device.queue) for device in fleet)
            utilization = busy_total_ns / (size * t_slice) if size else 0.0
            state["utilization"] = utilization
            # Quantisation slack mirrors the runtime's deadline
            # tolerance: a completion's error accumulates only from work
            # serialized before it on its own device, so the busiest
            # device bounds the window.
            tolerance = worst_device_served * slack + 1e-6
            fleet_size = size

            # 4. close the window once its completion events have fired
            def close() -> None:
                accountant.observe_window(
                    index=index,
                    arrivals=arrived,
                    completions=completions,
                    backlog=backlog_after,
                    fleet_size=fleet_size,
                    energy_nj=window_energy,
                    utilization=utilization,
                    tolerance_ns=tolerance,
                )

            events.schedule_at(
                window_start + last_end + 1e-9, close, label=f"close:{index}"
            )

            # 5. schedule the next boundary: every arrival slice gets a
            #    window; drain windows continue while work remains.
            next_index = index + 1
            if next_index < arrival_windows or (
                backlog_after
                and next_index < arrival_windows + max_drain
            ):
                events.schedule_at(
                    window_start + t_slice,
                    lambda: run_window(next_index),
                    label=f"boundary:{next_index}",
                )

        if arrival_windows:
            events.schedule_at(
                t_slice, lambda: run_window(0), label="boundary:0"
            )
            events.run(
                max_events=(
                    2 * len(requests) + 4 * (arrival_windows + max_drain) + 16
                )
            )

        unfinished = sum(len(device.queue) for device in fleet)
        return QoSResult(
            scenario=scenario,
            architecture=self.runtime.spec.name,
            model=self.runtime.model.name,
            discipline=self.discipline.name,
            dispatch=self.policy.name,
            autoscaler=self.autoscaler.name,
            batch=self.batch,
            t_slice_ns=t_slice,
            slo_ns=self.slo * t_slice,
            total_requests=len(requests),
            completed=accountant.completed,
            unfinished=unfinished,
            slices=tuple(accountant.slices),
            device_records=device_records,
        )

    # -- the vectorized batch engine ---------------------------------------------

    def _price_window(self, tasks_target: int, prev_counts: dict,
                      prev_key: tuple, memo: dict) -> tuple:
        """Price one device window, memoized on ``(tasks, prev placement)``.

        A window's outcome — placement, movement cost, served count, the
        per-request completion offsets and the accounting row — depends
        on nothing but the queue depth and the previous placement, so
        devices in the same state share one LUT lookup + accounting pass
        per run (the same memoization :meth:`TimeSliceRuntime.run_vectorized`
        applies to slices).  The batching arithmetic repeats the scalar
        loop's float operations term for term, so the offsets are
        bit-identical to the event engine's.

        Returns ``(served, ends, movement, t_constraint, row,
        next_counts, next_key)`` where ``ends`` holds each served
        request's completion offset from the window start.
        """
        key = (tasks_target, prev_key)
        hit = memo.get(key)
        if hit is not None:
            return hit
        runtime = self.runtime
        t_slice = runtime.t_slice_ns
        slack = runtime.optimizer.time_step_ns
        placement, movement, t_constraint = runtime._select_placement(
            tasks_target, prev_counts
        )
        service_ns = placement.task_time_ns + runtime.core_time_ns

        if tasks_target:
            batch = self.batch
            n_batches = -(-tasks_target // batch)
            counts_end = np.minimum(
                np.arange(1, n_batches + 1, dtype=np.int64) * batch,
                tasks_target,
            )
            counts_start = np.arange(n_batches, dtype=np.int64) * batch
            starts = movement.time_ns + counts_start * service_ns
            busy_after = movement.time_ns + counts_end * service_ns
            ok = (starts < t_slice - 1e-9) & (
                busy_after <= t_slice + counts_end * slack + 1e-6
            )
            served_batches = n_batches if ok.all() else int(np.argmin(ok))
            if served_batches:
                served = int(counts_end[served_batches - 1])
                sizes = np.diff(
                    np.concatenate(([0], counts_end[:served_batches]))
                )
                ends = np.repeat(busy_after[:served_batches], sizes)
            else:
                served = 0
                ends = np.empty(0, dtype=np.float64)
        else:
            served = 0
            ends = np.empty(0, dtype=np.float64)

        row = runtime._account_slice(placement, movement, served, t_constraint)
        next_counts = dict(placement.counts)
        hit = (
            served, ends, movement, t_constraint, row,
            next_counts, _canonical_counts(next_counts),
        )
        memo[key] = hit
        return hit

    def run_vectorized(self, scenario, requests=None,
                       seed: int = 2025) -> QoSResult:
        """The columnar batch engine: one sequential pass over windows.

        Replaces the event queue with a window loop over NumPy index
        arrays: staging is one global lexsort, queue ordering one gather
        + lexsort per device, serving an analytic prefix over batch
        boundaries, and SLO accounting an array fold
        (:meth:`SloAccountant.observe_window_arrays`).  Placement prices
        are memoized across devices and windows via
        :meth:`_price_window`.  The event engine's completion and close
        events are replayed in window order, which the quantisation
        bounds make equivalent — records and QoS series are
        bit-identical to :meth:`run_scalar` (the differential suite
        pins it).  Falls back to the scalar engine when the discipline
        provides no vector keys.
        """
        t_slice = self.runtime.t_slice_ns
        if requests is None:
            batch_cols = sample_request_batch(
                scenario, t_slice, seed=seed, classes=self.classes,
                deadline_slices=self.deadline_slices,
            )
        elif isinstance(requests, RequestBatch):
            batch_cols = requests
        else:
            batch_cols = RequestBatch.from_requests(requests)
        keys = self.discipline.vector_keys(batch_cols)
        if keys is None:
            _events.emit(
                "qos_scalar_fallback",
                discipline=type(self.discipline).__name__,
                reason="no_vector_keys",
            )
            return self.run_scalar(scenario, requests=batch_cols, seed=seed)

        arrival_windows = len(scenario)
        rid = batch_cols.rid
        slice_index = batch_cols.slice_index
        arrival = batch_cols.arrival_ns
        deadline = batch_cols.deadline_ns
        slo_factor = batch_cols.slo_factor
        outside = (slice_index < 0) | (slice_index >= arrival_windows)
        if outside.any():
            first = int(np.argmax(outside))
            raise QoSError(
                f"request {int(rid[first])} arrives in slice "
                f"{int(slice_index[first])}, outside the scenario's "
                f"{arrival_windows} slices"
            )

        # Staging order is global: one lexsort by (slice, arrival, rid)
        # turns every window's arrivals into a contiguous index segment.
        order_all = np.lexsort((rid, arrival, slice_index)).astype(np.intp)
        bounds = np.searchsorted(
            slice_index[order_all], np.arange(arrival_windows + 1)
        )
        # One global discipline sort; ``rank[i]`` is request ``i``'s
        # position in that total order (rid tie-breaks make it total),
        # so per-device queue ordering reduces to integer merges.
        disc_order = np.lexsort(keys)
        rank = np.empty(len(batch_cols), dtype=np.intp)
        rank[disc_order] = np.arange(len(batch_cols), dtype=np.intp)

        slack = self.runtime.optimizer.time_step_ns
        capacity = device_info(0, self.runtime).capacity
        accountant = SloAccountant(
            slo_ns=self.slo * t_slice, on_window=self.on_window
        )
        boot_counts = self.runtime._boot_counts()
        boot_key = _canonical_counts(boot_counts)

        size = self.devices
        self.autoscaler.start(size, self.min_devices, self.max_devices)
        fleet = [_VecDevice(boot_counts, boot_key) for _ in range(size)]
        self.policy.start(self._device_infos(size))
        device_records: dict = {i: fleet[i].records for i in range(size)}
        next_slot = size

        max_drain = self.max_drain
        if max_drain is None:
            max_drain = max(64, arrival_windows)
        utilization = 0.0
        memo: dict = {}

        index = 0
        window_start = t_slice
        while arrival_windows:
            with _span("qos.window", index=index):
                if index < arrival_windows:
                    staged = order_all[bounds[index] : bounds[index + 1]]
                else:
                    staged = _EMPTY_QUEUE
                arrived = len(staged)
                backlog = sum(len(device.queue) for device in fleet)

                # 1. autoscale (boundary-clocked, before dispatch)
                new_size = self.autoscaler.resize(
                    ScaleObservation(
                        slice_index=index,
                        fleet_size=size,
                        staged=backlog + arrived,
                        utilization=utilization,
                        capacity_per_device=capacity,
                    )
                )
                if new_size != size:
                    if new_size > size:
                        for _ in range(new_size - size):
                            device = _VecDevice(boot_counts, boot_key)
                            fleet.append(device)
                            device_records[next_slot] = device.records
                            next_slot += 1
                    else:
                        spilled = [
                            device.queue
                            for device in fleet[new_size:]
                            if len(device.queue)
                        ]
                        del fleet[new_size:]
                        if spilled:
                            staged = np.concatenate([staged, *spilled])
                            staged = staged[
                                np.lexsort((rid[staged], arrival[staged]))
                            ]
                    size = new_size
                    # resize, not start: stateful policies (JSQ counts, the
                    # round-robin pointer) keep steering by what the
                    # surviving devices already hold.
                    self.policy.resize(self._device_infos(size))

                # 2. dispatch the staged requests: sort each chunk by global
                #    discipline rank, then merge it into the device's
                #    standing (already-ordered) queue.
                shares = self._dispatch_shares(index, len(staged), len(fleet))
                cursor = 0
                for device, share in zip(fleet, shares):
                    if share:
                        chunk = staged[cursor : cursor + share]
                        chunk_rank = rank[chunk]
                        chunk_order = np.argsort(chunk_rank)
                        chunk = chunk[chunk_order]
                        chunk_rank = chunk_rank[chunk_order]
                        if len(device.queue):
                            positions = np.searchsorted(
                                device.queue_rank, chunk_rank
                            )
                            device.queue = np.insert(
                                device.queue, positions, chunk
                            )
                            device.queue_rank = np.insert(
                                device.queue_rank, positions, chunk_rank
                            )
                        else:
                            device.queue = chunk
                            device.queue_rank = chunk_rank
                    cursor += share

                # 3. serve every device's window as arrays
                window_energy = 0.0
                busy_total_ns = 0.0
                completed_parts: list = []
                completed_ends: list = []
                worst_device_served = 0
                for device, share in zip(fleet, shares):
                    queue = device.queue
                    (
                        served, ends, movement, t_constraint, row,
                        next_counts, next_key,
                    ) = self._price_window(
                        len(queue), device.prev_counts, device.prev_key, memo
                    )
                    (
                        busy_total, idle, dynamic, hold, access, buffer_static,
                        pe_static, deadline_met,
                    ) = row
                    record = SliceRecord(
                        index=index,
                        arrivals=share,
                        tasks_processed=served,
                        t_constraint_ns=t_constraint,
                        placement_counts=dict(next_counts),
                        movement=movement,
                        busy_time_ns=busy_total,
                        idle_time_ns=idle,
                        dynamic_energy_nj=dynamic,
                        hold_static_energy_nj=hold,
                        access_static_energy_nj=access,
                        buffer_static_energy_nj=buffer_static,
                        pe_static_energy_nj=pe_static,
                        movement_energy_nj=movement.energy_nj,
                        deadline_met=deadline_met,
                    )
                    device.records.append(record)
                    window_energy += record.total_energy_nj
                    busy_total_ns += record.busy_time_ns
                    worst_device_served = max(worst_device_served, served)
                    if served:
                        completed_parts.append(queue[:served])
                        completed_ends.append(window_start + ends)
                        device.queue = queue[served:]
                        device.queue_rank = device.queue_rank[served:]
                    device.prev_counts = next_counts
                    device.prev_key = next_key

                backlog_after = sum(len(device.queue) for device in fleet)
                utilization = busy_total_ns / (size * t_slice) if size else 0.0
                # Quantisation slack mirrors the runtime's deadline
                # tolerance: a completion's error accumulates only from work
                # serialized before it on its own device, so the busiest
                # device bounds the window.
                tolerance = worst_device_served * slack + 1e-6

                # 4. close the window: fold its completions into the series
                if completed_parts:
                    completed = np.concatenate(completed_parts)
                    completion_ns = np.concatenate(completed_ends)
                else:
                    completed = _EMPTY_QUEUE
                    completion_ns = np.empty(0, dtype=np.float64)
                accountant.observe_window_arrays(
                    index=index,
                    arrivals=arrived,
                    arrival_ns=arrival[completed],
                    deadline_ns=deadline[completed],
                    slo_factor=slo_factor[completed],
                    completion_ns=completion_ns,
                    rid=rid[completed],
                    backlog=backlog_after,
                    fleet_size=size,
                    energy_nj=window_energy,
                    utilization=utilization,
                    tolerance_ns=tolerance,
                )

                # 5. the next boundary: every arrival slice gets a window;
                #    drain windows continue while work remains.
                next_index = index + 1
                if next_index < arrival_windows or (
                    backlog_after
                    and next_index < arrival_windows + max_drain
                ):
                    index = next_index
                    window_start = window_start + t_slice
                    continue
                break

        unfinished = sum(len(device.queue) for device in fleet)
        return QoSResult(
            scenario=scenario,
            architecture=self.runtime.spec.name,
            model=self.runtime.model.name,
            discipline=self.discipline.name,
            dispatch=self.policy.name,
            autoscaler=self.autoscaler.name,
            batch=self.batch,
            t_slice_ns=t_slice,
            slo_ns=self.slo * t_slice,
            total_requests=len(batch_cols),
            completed=accountant.completed,
            unfinished=unfinished,
            slices=tuple(accountant.slices),
            device_records=device_records,
        )
