"""Spec coercion shared by the pluggable-policy seams.

Dispatch policies, queue disciplines and autoscalers all accept the same
spec shapes — an instance, a registered name, or a class/factory — and
resolve names against their built-ins first, then against the matching
:mod:`repro.api.registry` table.  :func:`coerce_spec` implements that
contract once; the seams keep their public ``make_*`` wrappers.
"""

from __future__ import annotations


def _registered(registry_name: str, name: str):
    """Look ``name`` up in an api registry, if the api layer is loaded.

    Imported lazily: :mod:`repro.api.registry` imports the seam modules
    to register their built-ins, so the dependency cannot be top-level.
    Returns the registered entry or None.
    """
    try:
        from .api import registry
    except ImportError:  # pragma: no cover - api layer always ships
        return None
    table = getattr(registry, registry_name)
    if name in table:
        return table.get(name)
    return None


def coerce_spec(value, *, base, builtins, registry_name, kind, error_cls):
    """Coerce a spec — name, class, factory or instance — to a ``base``.

    ``builtins`` maps canonical names to factories; ``registry_name``
    names the :mod:`repro.api.registry` table consulted for
    user-registered names; ``kind`` labels error messages and
    ``error_cls`` raises them.
    """
    if isinstance(value, base):
        return value
    if isinstance(value, str):
        name = value.strip().lower()
        entry = builtins.get(name) or _registered(registry_name, name)
        if entry is None:
            raise error_cls(
                f"unknown {kind} {value!r}; built-ins: "
                f"{', '.join(sorted(builtins))}"
            )
        return coerce_spec(
            entry, base=base, builtins=builtins,
            registry_name=registry_name, kind=kind, error_cls=error_cls,
        )
    if callable(value):
        made = value()
        if not isinstance(made, base):
            raise error_cls(
                f"{kind} factory {value!r} must produce a "
                f"{base.__name__}, got {type(made).__name__}"
            )
        return made
    raise error_cls(
        f"{kind} must be a name, {base.__name__} or factory, "
        f"got {type(value).__name__}"
    )
