"""Processing elements: the INT8 MAC datapath inside every PIM module."""

from .mac import MacUnit, int8_mac, requantize, saturate_int8, saturate_int32
from .pe import PeStats, ProcessingElement

__all__ = [
    "MacUnit",
    "int8_mac",
    "requantize",
    "saturate_int8",
    "saturate_int32",
    "PeStats",
    "ProcessingElement",
]
