"""Functional INT8 multiply-accumulate datapath.

The paper's TinyML benchmarks are INT8-quantized (Table IV), so the PE is
an 8-bit multiplier feeding a 32-bit saturating accumulator — the standard
quantized-inference datapath.  This module implements that arithmetic
bit-exactly so functional tests can check PIM results against a NumPy
reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError

INT8_MIN, INT8_MAX = -128, 127
INT32_MIN, INT32_MAX = -(2**31), 2**31 - 1


def saturate_int8(value: int) -> int:
    """Clamp ``value`` into the signed 8-bit range."""
    return max(INT8_MIN, min(INT8_MAX, value))


def saturate_int32(value: int) -> int:
    """Clamp ``value`` into the signed 32-bit range."""
    return max(INT32_MIN, min(INT32_MAX, value))


def int8_mac(accumulator: int, weight: int, activation: int) -> int:
    """One MAC step: ``acc + weight * activation`` with INT32 saturation.

    Inputs must already be valid INT8 values; the product of two INT8
    values always fits in 16 bits, so only the accumulation saturates.
    """
    for name, operand in (("weight", weight), ("activation", activation)):
        if not INT8_MIN <= operand <= INT8_MAX:
            raise ConfigurationError(f"{name} {operand} outside INT8 range")
    return saturate_int32(accumulator + weight * activation)


def requantize(accumulator: int, scale_num: int, scale_shift: int) -> int:
    """Requantize an INT32 accumulator back to INT8.

    Implements the usual fixed-point multiplier: the accumulator is scaled
    by ``scale_num / 2**scale_shift`` with round-half-away-from-zero, then
    saturated to INT8.  This mirrors what an edge NPU's output stage does
    after a convolution.
    """
    if scale_shift < 0:
        raise ConfigurationError("scale_shift must be non-negative")
    scaled = accumulator * scale_num
    half = 1 << (scale_shift - 1) if scale_shift > 0 else 0
    if scaled >= 0:
        rounded = (scaled + half) >> scale_shift
    else:
        rounded = -((-scaled + half) >> scale_shift)
    return saturate_int8(rounded)


@dataclass
class MacUnit:
    """A stateful MAC unit: INT32 accumulator plus operation counting.

    The PIM module drives one of these per PE; the EXECUTE state performs
    :meth:`step` once per operand pair fetched in the LOAD state.
    """

    accumulator: int = 0
    ops: int = field(default=0)

    def clear(self) -> None:
        """Zero the accumulator (start of a new output element)."""
        self.accumulator = 0

    def step(self, weight: int, activation: int) -> int:
        """Accumulate one product; returns the new accumulator value."""
        self.accumulator = int8_mac(self.accumulator, weight, activation)
        self.ops += 1
        return self.accumulator

    def dot(self, weights, activations) -> int:
        """Accumulate a whole dot product of two INT8 sequences."""
        if len(weights) != len(activations):
            raise ConfigurationError(
                f"operand length mismatch: {len(weights)} weights vs "
                f"{len(activations)} activations"
            )
        for w, a in zip(weights, activations):
            self.step(w, a)
        return self.accumulator

    def emit(self, scale_num: int = 1, scale_shift: int = 0) -> int:
        """Requantize and return the INT8 output, then clear."""
        result = requantize(self.accumulator, scale_num, scale_shift)
        self.clear()
        return result
