"""Processing element: timing and energy wrapper around the MAC datapath.

One :class:`ProcessingElement` lives in every PIM module.  Its latency and
power come from the calibrated 45 nm technology model
(:data:`repro.memory.technology.PE_45NM`): an HP PE at 1.2 V performs one
MAC in 5.52 ns, an LP PE at 0.8 V in 10.68 ns (Table III), with the
dynamic/static powers of Table V.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..memory.technology import PE_45NM, PeTechnology
from .mac import MacUnit


@dataclass
class PeStats:
    """Operation and energy statistics accumulated by a PE."""

    macs: int = 0
    busy_time_ns: float = 0.0
    dynamic_energy_nj: float = 0.0
    static_energy_nj: float = 0.0
    powered_time_ns: float = 0.0
    gated_time_ns: float = 0.0

    @property
    def total_energy_nj(self) -> float:
        """Dynamic plus static energy, in nanojoules."""
        return self.dynamic_energy_nj + self.static_energy_nj


@dataclass
class ProcessingElement:
    """An INT8 MAC engine with per-operation latency/energy accounting."""

    name: str
    vdd: float
    technology: PeTechnology = PE_45NM

    mac: MacUnit = field(default_factory=MacUnit, init=False)
    stats: PeStats = field(default_factory=PeStats, init=False)
    _powered: bool = field(default=True, init=False)

    @property
    def mac_latency_ns(self) -> float:
        """Latency of one MAC at this PE's supply voltage (ns)."""
        return self.technology.mac_latency(self.vdd)

    @property
    def dynamic_power_mw(self) -> float:
        """Dynamic power while computing (mW)."""
        return self.technology.dynamic_power(self.vdd)

    @property
    def static_power_mw(self) -> float:
        """Leakage power while powered on (mW)."""
        return self.technology.static_power(self.vdd)

    @property
    def mac_energy_nj(self) -> float:
        """Dynamic energy of one MAC (nJ)."""
        return self.dynamic_power_mw * self.mac_latency_ns / 1000.0

    @property
    def powered(self) -> bool:
        """Whether the PE is currently powered on."""
        return self._powered

    # -- power management -----------------------------------------------------

    def power_off(self) -> None:
        """Gate the PE (the accumulator is architecturally cleared)."""
        self.mac.clear()
        self._powered = False

    def power_on(self) -> None:
        """Un-gate the PE."""
        self._powered = True

    def account_idle(self, duration_ns: float) -> None:
        """Charge ``duration_ns`` of idle time at the current power state."""
        if duration_ns < 0:
            raise ConfigurationError("idle duration must be non-negative")
        if self._powered:
            self.stats.powered_time_ns += duration_ns
            self.stats.static_energy_nj += (
                self.static_power_mw * duration_ns / 1000.0
            )
        else:
            self.stats.gated_time_ns += duration_ns

    # -- computation -------------------------------------------------------------

    def execute_mac(self, weight: int, activation: int) -> int:
        """Run one functional MAC and charge its latency/energy."""
        if not self._powered:
            raise ConfigurationError(f"PE {self.name}: compute while gated")
        result = self.mac.step(weight, activation)
        self._charge(1)
        return result

    def charge_macs(self, count: int) -> float:
        """Charge time/energy for ``count`` MACs without functional data.

        The cycle engine uses this fast path when simulating whole layers
        whose numerics are validated elsewhere; returns elapsed ns.
        """
        if count < 0:
            raise ConfigurationError("MAC count must be non-negative")
        if not self._powered and count > 0:
            raise ConfigurationError(f"PE {self.name}: compute while gated")
        return self._charge(count)

    def _charge(self, count: int) -> float:
        elapsed = count * self.mac_latency_ns
        self.stats.macs += count
        self.stats.busy_time_ns += elapsed
        self.stats.dynamic_energy_nj += count * self.mac_energy_nj
        self.stats.powered_time_ns += elapsed
        self.stats.static_energy_nj += self.static_power_mw * elapsed / 1000.0
        return elapsed

    def reset_stats(self) -> None:
        """Zero the accumulated statistics."""
        self.stats = PeStats()
