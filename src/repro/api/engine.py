"""The experiment engine: one front door to every layer of the library.

:class:`Engine` turns an :class:`~repro.api.config.ExperimentConfig`
into a :class:`~repro.core.runtime.RunResult` — resolving registry keys,
sizing the time slice with the paper's rule, and (most importantly)
**memoizing the allocation LUTs**: every run sharing the same
(architecture, model, policy, time slice, resolution, granularity)
reuses one :class:`~repro.core.runtime.TimeSliceRuntime`, so a Fig. 5
style sweep computes each knapsack table exactly once instead of once
per scenario.

``run_many`` executes batches.  Serially it streams through the shared
runtime cache; with ``max_workers > 1`` it fans *runtime groups* out
over a ``concurrent.futures`` process pool — one worker task per
distinct runtime, so the exactly-once LUT property survives
parallelisation — and reassembles results in input order, making the
batch deterministic regardless of completion order.

Beneath the in-memory memoization sits the *persistent* LUT cache
(:mod:`repro.core.lutcache`): every runtime materialisation — in this
process or inside a pool worker — first consults the on-disk store, so
repeated CLI invocations and sweeps across processes rebuild zero DP
tables once the cache is warm.  ``EngineStats.dp_builds`` counts the DP
tables actually computed (aggregated across workers), which is how the
zero-rebuild property is asserted.
"""

from __future__ import annotations

import dataclasses
import inspect
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core import lutcache
from ..core.knapsack import dp_build_count
from ..obs.tracing import span as _span
from ..core.placement import PlacementPolicy
from ..core.runtime import TimeSliceRuntime, default_time_slice_ns
from ..errors import ConfigurationError, RegistryError
from ..qos.queueing import QoSSimulator
from ..qos.slo import QoSResult
from ..serving.fleet import Fleet, FleetResult
from ..workloads.scenarios import Scenario
from .config import ExperimentConfig
from .registry import (
    ARCHITECTURES,
    AUTOSCALERS,
    DISPATCH,
    MODELS,
    POLICIES,
    QOS,
    SCENARIOS,
)
from .results import FleetRecord, ResultSet, RunRecord, StoredResultSet


@dataclass
class EngineStats:
    """Observable cache behaviour (the tests assert on these)."""

    #: Times a TimeSliceRuntime was materialised (built or disk-loaded).
    lut_builds: int = 0
    #: Times a run was served by an already-materialised runtime.
    lut_hits: int = 0
    #: Total scenario runs executed.
    runs: int = 0
    #: Distinct (model, resolution) time-slice sizings computed.
    t_slice_builds: int = 0
    #: DP tables actually computed (across this engine's pool workers
    #: too); zero on a warm persistent cache.
    dp_builds: int = 0
    #: Runtime/t-slice materialisations served by the persistent cache.
    lut_disk_hits: int = 0
    #: Entries this engine persisted to the on-disk cache.
    lut_disk_writes: int = 0
    #: Whole runs served from the experiment store (no recomputation).
    store_hits: int = 0
    #: Runs the store was consulted for but had to be computed.
    store_misses: int = 0


@dataclass(frozen=True)
class _ResolvedRuntime:
    """An ExperimentConfig with every registry key resolved to its spec."""

    spec: object
    model: object
    policy: PlacementPolicy
    t_slice_ns: float
    block_count: int
    time_steps: int
    granule_bytes: int
    #: Whether the persistent on-disk cache participates (never part of
    #: the memoization key: results are identical either way).
    use_cache: bool = True

    @property
    def key(self) -> tuple:
        """The memoization key: all runtime-construction parameters."""
        return (
            self.spec, self.model, self.policy, self.t_slice_ns,
            self.block_count, self.time_steps, self.granule_bytes,
        )

    def build(self) -> TimeSliceRuntime:
        return TimeSliceRuntime(
            self.spec,
            self.model,
            t_slice_ns=self.t_slice_ns,
            policy=self.policy,
            block_count=self.block_count,
            time_steps=self.time_steps,
            granule_bytes=self.granule_bytes,
        )


def _materialize_runtime(resolved: _ResolvedRuntime) -> tuple:
    """Obtain a runtime through the persistent cache when permitted.

    Returns ``(runtime, source, dp_delta)`` where ``source`` is
    ``"disk"``/``"stored"``/``"built"`` (see
    :func:`repro.core.lutcache.fetch_or_build`) and ``dp_delta`` is how
    many DP tables the materialisation actually computed — zero on a
    disk hit.
    """
    before = dp_build_count()
    with _span("engine.materialize_runtime") as trace_span:
        if resolved.use_cache and lutcache.enabled():
            runtime, source = lutcache.fetch_or_build(
                ("runtime",) + resolved.key, resolved.build
            )
        else:
            runtime, source = resolved.build(), "built"
        dp_delta = dp_build_count() - before
        trace_span.annotate(source=source, dp_builds=dp_delta)
    return runtime, source, dp_delta


def _coerce_store(store):
    """Accept a Store, a directory path, or None (imported lazily:
    :mod:`repro.store` depends on :mod:`repro.api`, not vice versa)."""
    if store is None:
        return None
    from ..store.store import Store

    if isinstance(store, Store):
        return store
    return Store(store)


def _run_group(resolved: _ResolvedRuntime, jobs: list) -> tuple:
    """Worker task: materialise one runtime, run all its scenarios.

    ``jobs`` is ``[(position, scenario), ...]``; the positions travel
    with the results so the parent can reassemble input order.  Shipping
    resolved specs (not registry keys) keeps worker processes independent
    of any registrations made after the interpreter forked.  The runtime
    ships back with the results — plus its cache provenance and DP-build
    count, which only this worker process can observe — so the parent
    engine can adopt it and fold the stats in.
    """
    runtime, source, dp_delta = _materialize_runtime(resolved)
    results = [(position, runtime.run(scn)) for position, scn in jobs]
    return results, runtime, source, dp_delta


class Engine:
    """Executes experiment configs with cross-run LUT memoization.

    One engine instance is one in-memory cache domain: keep an engine
    alive across sweeps to amortise LUT construction, or create a fresh
    one for isolated measurements.  The *persistent* disk cache spans
    engines and processes; ``use_disk_cache=False`` opts this engine out
    of it (configs can also opt out individually via ``lut_cache``).
    ``max_workers`` sets the default parallelism of :meth:`run_many`
    (``None``/``1`` = in-process serial execution).

    Above both caches sits the optional *experiment store*
    (:mod:`repro.store`): attach one with ``store=`` and every completed
    :meth:`run_many`/:meth:`sweep` record (and :meth:`run_qos` result)
    persists content-addressed by config; with ``resume=True`` (the
    default) already-stored configs are served back without any
    recomputation — the LUT caches make *runs* cheap, the store makes
    *rerunning* free.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        use_disk_cache: bool = True,
        store=None,
        resume: bool = True,
    ) -> None:
        """See the class docstring; ``store`` attaches an experiment
        store (a :class:`repro.store.Store` or a directory path) that
        :meth:`run_many`/:meth:`sweep`/:meth:`run_qos` write completed
        runs into — and, when ``resume`` is true, serve already-stored
        configs from without recomputation."""
        self.max_workers = max_workers
        self.use_disk_cache = use_disk_cache
        self.store = _coerce_store(store)
        self.resume = resume
        self.stats = EngineStats()
        self._runtimes: dict = {}
        self._t_slices: dict = {}

    # -- resolution -------------------------------------------------------------

    def resolve(self, config: ExperimentConfig) -> _ResolvedRuntime:
        """Resolve registry keys and size the time slice for a config."""
        spec = ARCHITECTURES.get(config.arch)
        model = MODELS.get(config.model)
        if config.policy is None:
            policy = PlacementPolicy.default_for(spec)
        else:
            policy = POLICIES.get(config.policy)
        t_slice_ns = config.t_slice_ns
        if t_slice_ns is None:
            t_slice_ns = self._default_t_slice(config, model)
        return _ResolvedRuntime(
            spec=spec,
            model=model,
            policy=policy,
            t_slice_ns=t_slice_ns,
            block_count=config.block_count,
            time_steps=config.time_steps,
            granule_bytes=config.granule_bytes,
            use_cache=config.lut_cache and self.use_disk_cache,
        )

    def _default_t_slice(self, config: ExperimentConfig, model) -> float:
        key = (
            model, config.peak_inferences, config.block_count,
            config.time_steps,
        )
        if key not in self._t_slices:
            # The paper's sizing rule bootstraps a throwaway LUT, so it
            # goes through the persistent cache too: a warm-cache sweep
            # must trigger zero DP builds end to end.
            def compute() -> float:
                return default_time_slice_ns(
                    model,
                    peak_inferences=config.peak_inferences,
                    block_count=config.block_count,
                    time_steps=config.time_steps,
                )

            before = dp_build_count()
            if config.lut_cache and self.use_disk_cache and lutcache.enabled():
                value, source = lutcache.fetch_or_build(
                    ("t_slice",) + key, compute
                )
                if source == "disk":
                    self.stats.lut_disk_hits += 1
                elif source == "stored":
                    self.stats.lut_disk_writes += 1
            else:
                value = compute()
            self.stats.dp_builds += dp_build_count() - before
            self._t_slices[key] = value
            self.stats.t_slice_builds += 1
        return self._t_slices[key]

    def scenario(self, config: ExperimentConfig) -> Scenario:
        """Materialise the config's scenario from the registry.

        Registry entries are either pre-built :class:`Scenario` instances
        (returned as-is) or factories.  Factories are always called with
        the config's four materialisation knobs (``slices``, ``peak``,
        ``low``, ``seed``) — the config wins over any defaults the
        factory declares, so a config fully describes its workload.
        """
        entry = SCENARIOS.get(config.scenario)
        if isinstance(entry, Scenario):
            return entry
        knobs = dict(
            slices=config.slices, peak=config.peak, low=config.low,
            seed=config.seed,
        )
        try:
            inspect.signature(entry).bind(**knobs)
        except TypeError as error:
            raise RegistryError(
                f"scenario factory {config.scenario!r} must accept the "
                f"keyword arguments slices, peak, low and seed: {error}"
            ) from error
        return entry(**knobs)

    def runtime(self, config: ExperimentConfig) -> TimeSliceRuntime:
        """The memoized runtime (and LUT) for a config's runtime key."""
        runtime, _ = self._runtime_cached(self.resolve(config))
        return runtime

    def _runtime_cached(self, resolved: _ResolvedRuntime):
        """Returns ``(runtime, was_cached)``, materialising on first use."""
        key = resolved.key
        if key in self._runtimes:
            self.stats.lut_hits += 1
            return self._runtimes[key], True
        runtime, source, dp_delta = _materialize_runtime(resolved)
        self._runtimes[key] = runtime
        self.stats.lut_builds += 1
        self.stats.dp_builds += dp_delta
        if source == "disk":
            self.stats.lut_disk_hits += 1
        elif source == "stored":
            self.stats.lut_disk_writes += 1
        return runtime, False

    # -- execution --------------------------------------------------------------

    def run(self, config: ExperimentConfig,
            scenario: Scenario | None = None):
        """Execute one experiment; ``scenario`` overrides the config's.

        Identical inputs produce bit-for-bit identical results to a
        hand-constructed :class:`TimeSliceRuntime` — the engine adds
        caching, never approximation.  Returns a :class:`RunResult` for
        a single device (``config.fleet == 1``) and a
        :class:`~repro.serving.fleet.FleetResult` for a fleet.
        """
        if config.fleet > 1:
            return self.run_fleet(config, scenario=scenario)
        return self.run_record(config, scenario=scenario).result

    def run_record(self, config: ExperimentConfig,
                   scenario: Scenario | None = None) -> RunRecord:
        """Like :meth:`run` but keeps the config and cache provenance."""
        if config.fleet > 1:
            raise ConfigurationError(
                f"config asks for a {config.fleet}-device fleet; use "
                f"Engine.run_fleet / run_fleet_record (or run_many, which "
                f"batches fleet configs as FleetRecord entries)"
            )
        with _span("engine.run", label=config.label) as trace_span:
            runtime, cached = self._runtime_cached(self.resolve(config))
            workload = (
                scenario if scenario is not None else self.scenario(config)
            )
            result = runtime.run(workload)
            self.stats.runs += 1
            trace_span.annotate(lut_cached=cached)
        return RunRecord(config=config, result=result, lut_cached=cached)

    def run_fleet(self, config: ExperimentConfig,
                  scenario: Scenario | None = None) -> FleetResult:
        """Serve the config's scenario on a ``config.fleet``-device fleet.

        All devices share the config's (architecture, model, resolution)
        — and therefore one memoized runtime and one LUT; the dispatch
        policy comes from the :data:`~repro.api.registry.DISPATCH`
        registry.  Heterogeneous fleets are built directly with
        :class:`repro.serving.fleet.Fleet`.
        """
        return self.run_fleet_record(config, scenario=scenario).result

    def run_fleet_record(self, config: ExperimentConfig,
                         scenario: Scenario | None = None) -> FleetRecord:
        """Like :meth:`run_fleet` but keeps the config and provenance."""
        with _span(
            "engine.fleet", label=config.label, devices=config.fleet
        ) as trace_span:
            runtime, cached = self._runtime_cached(self.resolve(config))
            workload = (
                scenario if scenario is not None else self.scenario(config)
            )
            fleet = Fleet(
                [runtime] * config.fleet,
                dispatch=DISPATCH.get(config.dispatch),
            )
            result = fleet.run(workload)
            self.stats.runs += 1
            trace_span.annotate(lut_cached=cached)
        return FleetRecord(config=config, result=result, lut_cached=cached)

    def run_qos(self, config: ExperimentConfig,
                scenario: Scenario | None = None,
                requests=None, store=None,
                resume: bool | None = None,
                on_window=None) -> QoSResult:
        """Simulate the config's scenario at request level (see
        :mod:`repro.qos`).

        The fleet starts at ``config.fleet`` devices sharing the config's
        memoized runtime; ``config.qos`` names the queue discipline,
        ``config.autoscaler`` the capacity policy (bounded by
        ``config.max_fleet``), ``config.slo`` the latency target in time
        slices and ``config.batch`` the per-device batch size.  Requests
        are sampled from the scenario under ``config.seed`` unless an
        explicit ``requests`` stream is given, so identical configs
        reproduce identical percentile/SLO series bit for bit.

        With an experiment store attached, the result persists under the
        config's ``qos`` key and a resumed call returns it without
        re-simulating — but only when the config fully describes the run
        (no ``scenario``/``requests`` override).

        ``on_window`` is a streaming observer called with each service
        window's :class:`~repro.qos.slo.QoSSliceStats` as the simulation
        produces it (the serving daemon feeds its metrics exporter this
        way).  Observation never alters the result, and a store-served
        (resumed) result skips the callback entirely — the windows were
        produced by an earlier run.
        """
        store = self.store if store is None else _coerce_store(store)
        resume = self.resume if resume is None else resume
        addressable = scenario is None and requests is None
        with _span("engine.qos", label=config.label) as trace_span:
            if store is not None and addressable and resume:
                stored = store.get_qos(config)
                if stored is not None:
                    self.stats.store_hits += 1
                    trace_span.annotate(source="store")
                    return stored
                self.stats.store_misses += 1
            runtime, _ = self._runtime_cached(self.resolve(config))
            workload = (
                scenario if scenario is not None else self.scenario(config)
            )
            simulator = QoSSimulator(
                runtime,
                devices=config.fleet,
                dispatch=DISPATCH.get(config.dispatch),
                discipline=QOS.get(config.qos),
                autoscaler=AUTOSCALERS.get(config.autoscaler),
                # None defers to the simulator's default (the initial size)
                max_devices=config.max_fleet,
                batch=config.batch,
                slo=config.slo,
                on_window=on_window,
            )
            result = simulator.run(
                workload, requests=requests, seed=config.seed
            )
            self.stats.runs += 1
            trace_span.annotate(source="computed")
            if store is not None and addressable:
                store.put_qos(config, result, engine_stats=self.stats)
        return result

    def run_job(self, config: ExperimentConfig, kind: str | None = None,
                on_window=None) -> tuple:
        """Execute one config as a serving job; returns ``(kind, outcome)``.

        The single entry point the serving daemon dispatches SUBMIT jobs
        through.  ``kind`` picks the execution path — ``"run"``
        (:meth:`run_record`), ``"fleet"`` (:meth:`run_fleet_record`) or
        ``"qos"`` (:meth:`run_qos`); ``None`` infers ``"fleet"`` for
        multi-device configs and ``"run"`` otherwise.  The outcome is the
        corresponding record/result object, produced by exactly the same
        code path an in-process caller would use — daemon-served results
        are bit-identical to local ones by construction.  ``on_window``
        streams QoS windows (ignored for the other kinds).
        """
        if kind is None:
            kind = "fleet" if config.fleet > 1 else "run"
        if kind == "run":
            return kind, self.run_record(config)
        if kind == "fleet":
            return kind, self.run_fleet_record(config)
        if kind == "qos":
            return kind, self.run_qos(config, on_window=on_window)
        raise ConfigurationError(
            f"unknown job kind {kind!r}; known: run, fleet, qos"
        )

    #: Configs computed per chunk in spill mode — bounds how many
    #: records a spilled sweep holds in memory at once while still
    #: giving the process pool a full fan-out per chunk.
    SPILL_CHUNK = 64

    def run_many(self, configs, max_workers: int | None = None,
                 store=None, resume: bool | None = None,
                 spill: bool = False) -> ResultSet:
        """Execute a batch of configs; results follow the input order.

        Fleet configs (``fleet > 1``) run serially through
        :meth:`run_fleet_record` — their devices share one memoized
        runtime, so there is no LUT work to fan out — and land in the
        batch as :class:`FleetRecord` entries.  With ``max_workers > 1``
        the single-device remainder is partitioned by runtime key and
        each partition runs as one process-pool task, preserving the
        exactly-once LUT construction per (arch, model, resolution)
        group.  Groups whose runtime this engine already cached run
        in-process from the cache.

        With an experiment store attached (``store=`` here or on the
        engine), every computed record is persisted; when ``resume`` is
        true (the engine default) already-stored configs are *skipped*
        and served from the store — ``stats.store_hits`` counts them —
        so an interrupted or sharded sweep completes with zero
        recomputation and a batch bit-identical to an uninterrupted run.

        With ``spill=True`` (requires a store) computed records are
        written to the store in bounded chunks and *dropped* instead of
        accumulated, and the returned :class:`StoredResultSet` streams
        them back on demand — peak memory stays bounded however many
        configs the batch holds, and exports are byte-identical to the
        in-memory path's.
        """
        configs = tuple(configs)
        store = self.store if store is None else _coerce_store(store)
        resume = self.resume if resume is None else resume
        with _span("engine.run_many", configs=len(configs), spill=spill):
            return self._run_many(configs, max_workers, store, resume, spill)

    def _run_many(self, configs: tuple, max_workers: int | None,
                  store, resume: bool, spill: bool) -> ResultSet:
        """The :meth:`run_many` body (split out for the tracing span)."""
        if spill:
            if store is None:
                raise ConfigurationError(
                    "run_many(spill=True) needs an experiment store; "
                    "attach one with store= or Engine(store=...)"
                )
            return self._run_many_spill(configs, max_workers, store, resume)
        if store is None:
            return self._execute_many(configs, max_workers)
        records: list = [None] * len(configs)
        pending: list = []
        for position, config in enumerate(configs):
            stored = store.get(config) if resume else None
            if stored is None:
                pending.append(position)
                if resume:
                    self.stats.store_misses += 1
            else:
                records[position] = stored
                self.stats.store_hits += 1
        if pending:
            computed = self._execute_many(
                tuple(configs[i] for i in pending), max_workers
            )
            for position, record in zip(pending, computed):
                store.put(record, engine_stats=self.stats)
                records[position] = record
        return ResultSet(records)

    def _run_many_spill(self, configs: tuple, max_workers: int | None,
                        store, resume: bool) -> "StoredResultSet":
        """The bounded-memory batch executor behind ``spill=True``.

        Skips already-stored configs (under ``resume``) without loading
        their records, computes the rest :attr:`SPILL_CHUNK` configs at
        a time, persists each chunk and drops it.  A failed store write
        is an error here — unlike the in-memory path there is no record
        left to fall back on.
        """
        pending: list = []
        for config in configs:
            if resume and config in store:
                self.stats.store_hits += 1
                continue
            pending.append(config)
            if resume:
                self.stats.store_misses += 1
        for start in range(0, len(pending), self.SPILL_CHUNK):
            chunk = tuple(pending[start : start + self.SPILL_CHUNK])
            with _span("engine.spill_chunk", start=start, configs=len(chunk)):
                for record in self._execute_many(chunk, max_workers):
                    if not store.put(record, engine_stats=self.stats):
                        raise ConfigurationError(
                            f"spill sweep could not persist config "
                            f"{record.config.fingerprint()} to the store at "
                            f"{store.root}; spilled batches need a writable "
                            f"store"
                        )
        return StoredResultSet(store, configs)

    def sweep(self, base: ExperimentConfig | None = None, *,
              shard=None, max_workers: int | None = None,
              store=None, resume: bool | None = None,
              spill: bool = False, dist: int | None = None,
              **axes) -> ResultSet:
        """Expand a config grid and run it (optionally one shard of it).

        ``axes`` are :meth:`ExperimentConfig.sweep` keyword grids fanned
        out from ``base`` (default: a default config).  ``shard`` —
        an ``"I/N"`` string or ``(index, count)`` pair — restricts the
        batch to the configs :func:`repro.store.sharding.shard_index`
        deterministically assigns to shard I of N, so N processes
        expanding the same grid split it exactly.  ``store``/``resume``/
        ``spill`` behave as in :meth:`run_many`; together they make the
        sharded grid resumable, and ``spill=True`` keeps a grid of
        thousands of configs bounded-memory::

            engine.sweep(shard="0/2", store="results/", arch=[...])
            engine.sweep(shard="1/2", store="results/", arch=[...])
            full = engine.sweep(store="results/", arch=[...])  # all hits

        ``dist=N`` executes the grid through the work-stealing
        executor instead (:func:`repro.dist.executor.distributed_sweep`
        — a coordinator plus N worker processes writing into the
        store, which is required); the returned
        :class:`StoredResultSet` exports byte-identically to the
        in-process paths.
        """
        base = ExperimentConfig() if base is None else base
        configs = base.sweep(**axes)
        if shard is not None:
            from ..store.sharding import select_shard

            configs = select_shard(configs, shard)
        with _span("engine.sweep", configs=len(configs)):
            return self._sweep(
                configs, max_workers, store, resume, spill, dist
            )

    def _sweep(self, configs, max_workers, store, resume, spill,
               dist) -> ResultSet:
        """The :meth:`sweep` execution body (split out for tracing)."""
        if dist is not None:
            target = self.store if store is None else _coerce_store(store)
            if target is None:
                raise ConfigurationError(
                    "sweep(dist=N) needs an experiment store; attach one "
                    "with store= or Engine(store=...)"
                )
            from ..dist.executor import distributed_sweep

            return distributed_sweep(configs, target, workers=dist)
        return self.run_many(
            configs, max_workers=max_workers, store=store, resume=resume,
            spill=spill,
        )

    def _execute_many(self, configs: tuple,
                      max_workers: int | None = None) -> ResultSet:
        """The store-blind batch executor behind :meth:`run_many`."""
        workers = max_workers if max_workers is not None else self.max_workers
        if not configs:
            return ResultSet(())
        if workers is None or workers <= 1 or len(configs) == 1:
            return ResultSet(
                self.run_fleet_record(c) if c.fleet > 1 else self.run_record(c)
                for c in configs
            )
        single = [(i, c) for i, c in enumerate(configs) if c.fleet == 1]
        records: list = [None] * len(configs)
        if single:
            pooled = self._run_pooled(tuple(c for _, c in single), workers)
            for (position, _), record in zip(single, pooled):
                records[position] = record
        for position, config in enumerate(configs):
            if config.fleet > 1:
                records[position] = self.run_fleet_record(config)
        return ResultSet(records)

    def _run_pooled(self, configs: tuple, workers: int) -> ResultSet:
        groups: dict = {}  # runtime key -> (resolved, [(position, scenario)])
        cached_jobs: list = []  # [(position, config, scenario)]
        for position, config in enumerate(configs):
            resolved = self.resolve(config)
            if resolved.key in self._runtimes:
                cached_jobs.append((position, config, self.scenario(config)))
            else:
                group = groups.setdefault(resolved.key, (resolved, []))
                group[1].append((position, self.scenario(config)))

        results: list = [None] * len(configs)
        cached_flags: list = [False] * len(configs)

        def drain_cached() -> None:
            for position, config, workload in cached_jobs:
                record = self.run_record(config, scenario=workload)
                results[position] = record.result
                cached_flags[position] = True

        if not groups:
            drain_cached()
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    key: pool.submit(_run_group, resolved, jobs)
                    for key, (resolved, jobs) in groups.items()
                }
                # Drain the cache-hit jobs in the parent while the pool
                # chews on the uncached groups, overlapping the two.
                drain_cached()
                for key, future in futures.items():
                    group_results, runtime, source, dp_delta = future.result()
                    # Adopt the worker's runtime so later batches (pooled
                    # or serial) reuse its LUT instead of rebuilding it,
                    # and fold in the cache behaviour only the worker
                    # process could observe.
                    self._runtimes[key] = runtime
                    self.stats.dp_builds += dp_delta
                    if source == "disk":
                        self.stats.lut_disk_hits += 1
                    elif source == "stored":
                        self.stats.lut_disk_writes += 1
                    for index, (position, result) in enumerate(group_results):
                        results[position] = result
                        # Mirror the serial path's provenance: the group's
                        # first run built the LUT, the rest reused it.
                        cached_flags[position] = index > 0
            self.stats.lut_builds += len(groups)
            pooled_runs = sum(len(jobs) for _, jobs in groups.values())
            self.stats.lut_hits += pooled_runs - len(groups)
            self.stats.runs += pooled_runs

        return ResultSet(
            RunRecord(
                config=config, result=results[position],
                lut_cached=cached_flags[position],
            )
            for position, config in enumerate(configs)
        )

    # -- cache control ----------------------------------------------------------

    def clear(self) -> None:
        """Drop every cached runtime/time slice and reset the stats."""
        self._runtimes.clear()
        self._t_slices.clear()
        self.stats = EngineStats()

    @property
    def cached_runtimes(self) -> int:
        """Number of distinct runtimes currently memoized."""
        return len(self._runtimes)

    def stats_snapshot(self) -> dict:
        """The current :class:`EngineStats` as a JSON-ready dict.

        Adds the derived ``cached_runtimes`` count and the hit rates the
        serving daemon exports as gauges: ``lut_hit_rate`` (in-memory
        runtime reuse over all runtime requests) and ``store_hit_rate``
        (store-served runs over all store consultations); both are 0.0
        before any traffic.
        """
        snapshot = dataclasses.asdict(self.stats)
        snapshot["cached_runtimes"] = self.cached_runtimes
        runtime_requests = self.stats.lut_hits + self.stats.lut_builds
        snapshot["lut_hit_rate"] = (
            self.stats.lut_hits / runtime_requests if runtime_requests else 0.0
        )
        consultations = self.stats.store_hits + self.stats.store_misses
        snapshot["store_hit_rate"] = (
            self.stats.store_hits / consultations if consultations else 0.0
        )
        return snapshot


_SHARED: Engine | None = None


def shared_engine() -> Engine:
    """The process-wide engine the analysis layers and CLI share.

    Sharing one cache domain means a CLI invocation, a savings grid and
    a sweep all reuse each other's LUTs within one interpreter.
    """
    global _SHARED
    if _SHARED is None:
        _SHARED = Engine()
    return _SHARED
