"""String-keyed registries: the extension seam of the experiment engine.

Every axis of an :class:`~repro.api.config.ExperimentConfig` — the
architecture, the model, the scenario and the placement policy — is a
*string key* resolved against one of the registries below.  The paper's
Table I architectures, Table IV models, Fig. 4 scenario generators and
the three placement policies are pre-registered; users plug in their own
specs without touching core code::

    from repro.api import ARCHITECTURES, SCENARIOS, register_architecture
    from repro import ArchitectureSpec, ClusterSpec

    register_architecture(my_spec)                  # key = spec.name

    @SCENARIOS.register("sawtooth")                 # decorator form
    def sawtooth(slices=50, peak=10, low=2, seed=2025):
        ...
        return Scenario(...)

Keys are case-insensitive (``"hh-pim"`` finds ``"HH-PIM"``); the
canonical spelling is whatever was passed at registration time.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..arch.specs import TABLE_I, ArchitectureSpec
from ..core.placement import PlacementPolicy
from ..errors import RegistryError
from ..qos.autoscale import BUILTIN_AUTOSCALERS, Autoscaler
from ..qos.queueing import BUILTIN_DISCIPLINES, QueueDiscipline
from ..serving.dispatch import BUILTIN_POLICIES, DispatchPolicy
from ..workloads import arrivals
from ..workloads.models import TABLE_IV, ModelSpec
from ..workloads.scenarios import ALL_CASES, Scenario, ScenarioCase, scenario

_MISSING = object()


class Registry:
    """An ordered, case-insensitive mapping from string keys to specs.

    ``register`` works both as a direct call and as a decorator; lookups
    raise :class:`~repro.errors.RegistryError` listing the available keys
    so typos fail loudly and helpfully.
    """

    def __init__(self, kind: str, validator: Callable | None = None) -> None:
        self.kind = kind
        self._validator = validator
        #: normalised key -> (canonical key, value), in registration order.
        self._entries: dict = {}
        #: normalised alias -> normalised target key (resolved per lookup,
        #: so an alias tracks later overwrites of its target).
        self._aliases: dict = {}

    @staticmethod
    def _normalize(key) -> str:
        if not isinstance(key, str) or not key.strip():
            raise RegistryError("registry keys must be non-empty strings")
        return key.strip().lower()

    # -- registration -----------------------------------------------------------

    def register(self, key: str, value=_MISSING, *, overwrite: bool = False):
        """Register ``value`` under ``key``; decorator form when value is omitted.

        Re-registering an existing key raises unless ``overwrite=True``,
        or the new value compares equal to the old one (a harmless no-op
        for value-comparable specs like :class:`ArchitectureSpec`; note
        that re-executing a ``def`` produces a *new* function object, so
        re-registering a factory needs ``overwrite=True``).
        """
        if value is _MISSING:
            def decorator(obj):
                self.register(key, obj, overwrite=overwrite)
                return obj
            return decorator

        norm = self._normalize(key)
        if self._validator is not None:
            self._validator(key, value)
        if norm in self._entries and not overwrite:
            existing = self._entries[norm][1]
            if existing == value:
                return value  # idempotent re-registration
            raise RegistryError(
                f"{self.kind} {key!r} is already registered; "
                f"pass overwrite=True to replace it"
            )
        self._entries[norm] = (key.strip(), value)
        return value

    def alias(self, alias: str, key: str) -> None:
        """Register ``alias`` as another spelling of an existing ``key``.

        Aliases resolve through the target at lookup time, so
        overwriting the target later is reflected by the alias too.
        """
        target = self._resolve(key)
        if target not in self._entries:
            raise RegistryError(
                f"cannot alias unknown {self.kind} {key!r}"
            )
        self._aliases[self._normalize(alias)] = target

    def unregister(self, key: str) -> None:
        """Drop a key or alias (and only that spelling)."""
        norm = self._normalize(key)
        if norm in self._aliases:
            del self._aliases[norm]
        elif norm in self._entries:
            del self._entries[norm]
            # drop aliases left dangling by the removal
            self._aliases = {
                a: t for a, t in self._aliases.items() if t != norm
            }
        else:
            raise RegistryError(f"unknown {self.kind} {key!r}")

    # -- lookup -----------------------------------------------------------------

    def _resolve(self, key: str) -> str:
        """Normalise a key, following a (single-level) alias."""
        norm = self._normalize(key)
        if norm in self._entries:
            return norm
        return self._aliases.get(norm, norm)

    def get(self, key: str):
        """Resolve a key or alias, raising a helpful error for unknown ones."""
        try:
            return self._entries[self._resolve(key)][1]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {key!r}; available: "
                f"{', '.join(self.keys()) or '(none)'}"
            ) from None

    def canonical(self, key: str) -> str:
        """The canonical spelling of a key or alias."""
        try:
            return self._entries[self._resolve(key)][0]
        except KeyError:
            raise RegistryError(
                f"unknown {self.kind} {key!r}; available: "
                f"{', '.join(self.keys()) or '(none)'}"
            ) from None

    def __contains__(self, key) -> bool:
        try:
            return self._resolve(key) in self._entries
        except RegistryError:
            return False

    def keys(self) -> list:
        """Canonical keys, in registration order (aliases not repeated)."""
        return [canonical for canonical, _ in self._entries.values()]

    def items(self) -> list:
        """(canonical key, value) pairs, in registration order."""
        return list(self._entries.values())

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, keys={self.keys()})"


# -- validators -------------------------------------------------------------------


def _check_architecture(key, value) -> None:
    if not isinstance(value, ArchitectureSpec):
        raise RegistryError(
            f"architecture {key!r} must be an ArchitectureSpec, "
            f"got {type(value).__name__}"
        )


def _check_model(key, value) -> None:
    if not isinstance(value, ModelSpec):
        raise RegistryError(
            f"model {key!r} must be a ModelSpec, got {type(value).__name__}"
        )


def _check_scenario(key, value) -> None:
    if not (isinstance(value, Scenario) or callable(value)):
        raise RegistryError(
            f"scenario {key!r} must be a Scenario or a factory callable, "
            f"got {type(value).__name__}"
        )


def _check_policy(key, value) -> None:
    if not isinstance(value, PlacementPolicy):
        raise RegistryError(
            f"policy {key!r} must be a PlacementPolicy, "
            f"got {type(value).__name__}"
        )


def _check_dispatch(key, value) -> None:
    if not (isinstance(value, DispatchPolicy) or callable(value)):
        raise RegistryError(
            f"dispatch policy {key!r} must be a DispatchPolicy or a "
            f"factory callable, got {type(value).__name__}"
        )


def _check_qos(key, value) -> None:
    if not (isinstance(value, QueueDiscipline) or callable(value)):
        raise RegistryError(
            f"queue discipline {key!r} must be a QueueDiscipline or a "
            f"factory callable, got {type(value).__name__}"
        )


def _check_autoscaler(key, value) -> None:
    if not (isinstance(value, Autoscaler) or callable(value)):
        raise RegistryError(
            f"autoscaler {key!r} must be an Autoscaler or a factory "
            f"callable, got {type(value).__name__}"
        )


#: Table I architectures plus any user-registered fabrics.
ARCHITECTURES = Registry("architecture", _check_architecture)

#: Table IV models plus any user-registered workload models.
MODELS = Registry("model", _check_model)

#: Fig. 4 scenario factories (``case1`` .. ``case6``) plus custom traces.
#: Entries are either factories ``f(slices, peak, low, seed) -> Scenario``
#: or pre-materialised :class:`Scenario` instances.
SCENARIOS = Registry("scenario", _check_scenario)

#: Placement policies by their string value (``dynamic_lut``, ...).
POLICIES = Registry("placement policy", _check_policy)

#: Fleet dispatch policies (``round_robin``, ``least_loaded``,
#: ``energy_aware``) plus any user-registered strategies.  Entries are
#: factories producing :class:`repro.serving.dispatch.DispatchPolicy`.
DISPATCH = Registry("dispatch policy", _check_dispatch)

#: QoS queue disciplines (``fifo``, ``priority``, ``edf``) plus any
#: user-registered orderings.  Entries are factories producing
#: :class:`repro.qos.queueing.QueueDiscipline`.
QOS = Registry("queue discipline", _check_qos)

#: Fleet autoscalers (``fixed``, ``threshold``, ``queue_depth``) plus
#: any user-registered capacity policies.  Entries are factories
#: producing :class:`repro.qos.autoscale.Autoscaler`.
AUTOSCALERS = Registry("autoscaler", _check_autoscaler)


def ensure_registered(registry: Registry, name: str, value) -> None:
    """Make a spec resolvable by key, latest-wins on name collisions.

    Used by callers that accept spec *objects* (analysis helpers, legacy
    entry points): the passed object must be what the engine resolves,
    even if a different spec already claimed the same name.
    """
    if name in registry and registry.get(name) == value:
        return
    registry.register(name, value, overwrite=True)


def register_architecture(spec: ArchitectureSpec, name: str | None = None,
                          *, overwrite: bool = False) -> ArchitectureSpec:
    """Register an architecture under its (or an explicit) name."""
    return ARCHITECTURES.register(name or spec.name, spec, overwrite=overwrite)


def register_model(spec: ModelSpec, name: str | None = None,
                   *, overwrite: bool = False) -> ModelSpec:
    """Register a workload model under its (or an explicit) name."""
    return MODELS.register(name or spec.name, spec, overwrite=overwrite)


def register_scenario(name: str, value=None, *, overwrite: bool = False):
    """Register a scenario factory or instance; decorator without value."""
    if value is None:
        return SCENARIOS.register(name, overwrite=overwrite)
    return SCENARIOS.register(name, value, overwrite=overwrite)


def _case_factory(case: ScenarioCase):
    def factory(slices: int = 50, peak: int = 10, low: int = 2,
                seed: int = 2025) -> Scenario:
        return scenario(case, slices=slices, peak=peak, low=low, seed=seed)
    factory.__name__ = f"case{case.value}"
    factory.__doc__ = f"Fig. 4 Case {case.value}: {case.label}."
    return factory


def _poisson_factory(slices: int = 50, peak: int = 10, low: int = 2,
                     seed: int = 2025) -> Scenario:
    """Poisson arrivals at the midpoint rate between ``low`` and ``peak``."""
    rate = (low + peak) / 2.0
    return arrivals.poisson(rate).materialize(
        slices=slices, peak=peak, seed=seed
    )


def _bursty_factory(slices: int = 50, peak: int = 10, low: int = 2,
                    seed: int = 2025) -> Scenario:
    """MMPP bursty traffic: calm at ``low``, bursting toward ``peak``."""
    return arrivals.bursty(calm_rate=low, burst_rate=peak).materialize(
        slices=slices, peak=peak, seed=seed
    )


def _diurnal_factory(slices: int = 50, peak: int = 10, low: int = 2,
                     seed: int = 2025) -> Scenario:
    """A day/night sinusoid from ``low`` to ``peak`` over the run."""
    return arrivals.diurnal(trough=low, crest=peak).materialize(
        slices=slices, peak=peak, seed=seed
    )


def _register_builtins() -> None:
    for spec in TABLE_I:
        ARCHITECTURES.register(spec.name, spec)
    for model in TABLE_IV:
        MODELS.register(model.name, model)
    for case in ALL_CASES:
        SCENARIOS.register(f"case{case.value}", _case_factory(case))
        SCENARIOS.alias(case.name.lower(), f"case{case.value}")
    SCENARIOS.register("poisson", _poisson_factory)
    SCENARIOS.register("bursty", _bursty_factory)
    SCENARIOS.register("diurnal", _diurnal_factory)
    for policy in PlacementPolicy:
        POLICIES.register(policy.value, policy)
    for name, factory in BUILTIN_POLICIES.items():
        DISPATCH.register(name, factory)
    for name, factory in BUILTIN_DISCIPLINES.items():
        QOS.register(name, factory)
    for name, factory in BUILTIN_AUTOSCALERS.items():
        AUTOSCALERS.register(name, factory)


_register_builtins()
