"""The frozen experiment description: one point of the design space.

:class:`ExperimentConfig` names *what* to run — an architecture, a model,
a scenario and a policy, all as registry keys — plus the numeric knobs
(time slice, optimizer resolution, gating granularity).  It is hashable,
serialisable (``to_dict``/``from_dict``) and expandable over grids
(``sweep``), so a whole Fig. 5-style comparison is just::

    configs = ExperimentConfig(slices=50).sweep(
        arch=["Baseline-PIM", "Heterogeneous-PIM", "Hybrid-PIM", "HH-PIM"],
        model=["EfficientNet-B0", "MobileNetV2", "ResNet-18"],
        scenario=["case1", "case2", "case3", "case4", "case5", "case6"],
    )
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, fields

from ..core import lutcache
from ..core.placement import DEFAULT_BLOCK_COUNT, DEFAULT_TIME_STEPS
from ..core.runtime import FINE_GRANULE_BYTES
from ..errors import ConfigurationError
from .registry import (
    ARCHITECTURES,
    AUTOSCALERS,
    DISPATCH,
    MODELS,
    POLICIES,
    QOS,
    SCENARIOS,
)


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully specified experiment: arch x model x scenario x knobs.

    All four spec axes are registry keys (see :mod:`repro.api.registry`);
    ``policy=None`` selects the paper's default policy for the
    architecture (dynamic LUT on HH-PIM, the fixed Table I policies on
    the comparison groups).  ``t_slice_ns=None`` sizes the slice with the
    paper's rule (10 peak-rate inferences plus headroom).
    """

    arch: str = "HH-PIM"
    model: str = "EfficientNet-B0"
    scenario: str = "case3"
    policy: str | None = None
    #: Scenario materialisation knobs.
    slices: int = 50
    peak: int = 10
    low: int = 2
    seed: int = 2025
    #: Time-slice sizing: explicit length, or None for the paper's rule.
    t_slice_ns: float | None = None
    peak_inferences: int = 10
    #: Optimizer resolution and gating granularity.
    block_count: int = DEFAULT_BLOCK_COUNT
    time_steps: int = DEFAULT_TIME_STEPS
    granule_bytes: int = FINE_GRANULE_BYTES
    #: Consult the persistent on-disk LUT cache (see
    #: :mod:`repro.core.lutcache`); identical results either way, so
    #: disable only to benchmark or debug cold builds.
    lut_cache: bool = True
    #: Fleet shape: number of devices serving the scenario (1 = the
    #: paper's single-device runtime) and the dispatch policy splitting
    #: the arrival stream (a :data:`repro.api.registry.DISPATCH` key).
    fleet: int = 1
    dispatch: str = "round_robin"
    #: Request-level QoS knobs (see :mod:`repro.qos`): the queue
    #: discipline (a :data:`repro.api.registry.QOS` key), the latency SLO
    #: target in units of the time slice (the paper's staging bound is
    #: 2T), the autoscaler resizing the fleet between slices (an
    #: :data:`~repro.api.registry.AUTOSCALERS` key) with its device
    #: ceiling (``None``: the initial ``fleet`` size, i.e. no growth),
    #: and the per-device batch size.
    qos: str = "fifo"
    slo: float = 2.0
    autoscaler: str = "fixed"
    max_fleet: int | None = None
    batch: int = 1

    def __post_init__(self) -> None:
        for name in ("arch", "model", "scenario"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value.strip():
                raise ConfigurationError(
                    f"config {name} must be a non-empty string, got {value!r}"
                )
        if self.policy is not None and (
            not isinstance(self.policy, str) or not self.policy.strip()
        ):
            raise ConfigurationError(
                f"config policy must be a string or None, got {self.policy!r}"
            )
        if self.slices <= 0:
            raise ConfigurationError("slices must be positive")
        if not 0 < self.low <= self.peak:
            raise ConfigurationError(
                f"low load {self.low} must lie in (0, peak={self.peak}]"
            )
        if self.t_slice_ns is not None and self.t_slice_ns <= 0:
            raise ConfigurationError("t_slice_ns must be positive")
        if self.peak_inferences <= 0:
            raise ConfigurationError("peak_inferences must be positive")
        if self.block_count <= 0 or self.time_steps <= 0:
            raise ConfigurationError(
                "block_count and time_steps must be positive"
            )
        if self.granule_bytes <= 0:
            raise ConfigurationError("granule_bytes must be positive")
        if not isinstance(self.lut_cache, bool):
            raise ConfigurationError(
                f"lut_cache must be a bool, got {self.lut_cache!r}"
            )
        if not isinstance(self.fleet, int) or self.fleet <= 0:
            raise ConfigurationError(
                f"fleet size must be a positive integer, got {self.fleet!r}"
            )
        if not isinstance(self.dispatch, str) or not self.dispatch.strip():
            raise ConfigurationError(
                f"dispatch must be a non-empty string, got {self.dispatch!r}"
            )
        if not isinstance(self.qos, str) or not self.qos.strip():
            raise ConfigurationError(
                f"qos discipline must be a non-empty string, got {self.qos!r}"
            )
        if not isinstance(self.slo, (int, float)) or self.slo <= 0:
            raise ConfigurationError(
                f"slo must be a positive number of time slices, "
                f"got {self.slo!r}"
            )
        if not isinstance(self.autoscaler, str) or not self.autoscaler.strip():
            raise ConfigurationError(
                f"autoscaler must be a non-empty string, "
                f"got {self.autoscaler!r}"
            )
        if self.max_fleet is not None and (
            not isinstance(self.max_fleet, int) or self.max_fleet < self.fleet
        ):
            raise ConfigurationError(
                f"max_fleet must be an integer >= fleet ({self.fleet}) or "
                f"None, got {self.max_fleet!r}"
            )
        if not isinstance(self.batch, int) or self.batch <= 0:
            raise ConfigurationError(
                f"batch size must be a positive integer, got {self.batch!r}"
            )

    # -- registry resolution ----------------------------------------------------

    def validate(self) -> "ExperimentConfig":
        """Check every registry key resolves; returns self for chaining."""
        ARCHITECTURES.get(self.arch)
        MODELS.get(self.model)
        SCENARIOS.get(self.scenario)
        if self.policy is not None:
            POLICIES.get(self.policy)
        DISPATCH.get(self.dispatch)
        QOS.get(self.qos)
        AUTOSCALERS.get(self.autoscaler)
        return self

    @property
    def resolution(self) -> tuple:
        """The optimizer resolution pair (block_count, time_steps)."""
        return (self.block_count, self.time_steps)

    @property
    def label(self) -> str:
        """Compact human-readable identity for tables and logs."""
        policy = f":{self.policy}" if self.policy else ""
        return f"{self.arch}/{self.model}/{self.scenario}{policy}"

    # -- serialisation ----------------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-primitive dict that round-trips via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    def fingerprint(self) -> str:
        """The SHA-256 content address of this config's *results*.

        Canonicalises the config through the same machinery as the LUT
        cache (:func:`repro.core.lutcache.fingerprint`), excluding
        ``lut_cache`` — a caching knob that never changes what a run
        produces — so two configs share a fingerprint exactly when they
        describe the same experiment.  This is the key the experiment
        store (:mod:`repro.store`) addresses completed runs by, and the
        hash :mod:`repro.store.sharding` partitions sweep grids with.
        """
        payload = self.to_dict()
        del payload["lut_cache"]
        return lutcache.fingerprint("experiment", payload)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentConfig":
        """Build a config from a dict, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown config keys: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**data)

    def replace(self, **changes) -> "ExperimentConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- grid expansion ---------------------------------------------------------

    def sweep(self, **axes) -> tuple:
        """Fan this config out over a grid of field values.

        Each keyword names a config field and gives either a single value
        or an iterable of values; the cartesian product is expanded in
        the order the axes are given (last axis fastest), so the result
        is deterministic::

            base.sweep(arch=["HH-PIM", "Hybrid-PIM"], scenario="case1")

        Returns a tuple of :class:`ExperimentConfig`.
        """
        if not axes:
            return (self,)
        known = {f.name for f in fields(type(self))}
        unknown = set(axes) - known
        if unknown:
            raise ConfigurationError(
                f"unknown sweep axes: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        names = list(axes)
        value_lists = []
        for name in names:
            values = axes[name]
            if isinstance(values, (str, bytes)) or not hasattr(
                values, "__iter__"
            ):
                values = [values]
            values = list(values)
            if not values:
                raise ConfigurationError(f"sweep axis {name!r} is empty")
            value_lists.append(values)
        return tuple(
            dataclasses.replace(self, **dict(zip(names, combo)))
            for combo in itertools.product(*value_lists)
        )
