"""The unified experiment API: the library's single front door.

Everything the CLI, benchmarks, examples and analysis layers do funnels
through four pieces:

* **registries** (:data:`ARCHITECTURES`, :data:`MODELS`,
  :data:`SCENARIOS`, :data:`POLICIES`) — string-keyed extension points
  with the paper's Table I / Table IV / Fig. 4 entries pre-registered;
* :class:`ExperimentConfig` — a frozen, serialisable description of one
  experiment, with :meth:`~ExperimentConfig.sweep` to fan out grids;
* :class:`Engine` — executes configs with cross-run LUT memoization and
  optional process-pool batching (:meth:`~Engine.run_many`);
* :class:`ResultSet` — ordered batch results with filtering,
  aggregation and JSON/CSV export.

Quickstart::

    from repro.api import Engine, ExperimentConfig

    engine = Engine()
    configs = ExperimentConfig(slices=50).sweep(
        arch=["Baseline-PIM", "HH-PIM"],
        scenario=["case1", "case3", "case6"],
    )
    results = engine.run_many(configs)
    print(results.aggregate(by="arch"))
    results.to_csv("runs.csv")
"""

from .config import ExperimentConfig
from .engine import Engine, EngineStats, shared_engine
from .registry import (
    ARCHITECTURES,
    AUTOSCALERS,
    DISPATCH,
    MODELS,
    POLICIES,
    QOS,
    Registry,
    SCENARIOS,
    register_architecture,
    register_model,
    register_scenario,
)
from .results import (
    AggregateStats,
    FleetRecord,
    ResultSet,
    RunRecord,
    StoredResultSet,
)

__all__ = [
    "ARCHITECTURES",
    "AUTOSCALERS",
    "DISPATCH",
    "MODELS",
    "POLICIES",
    "QOS",
    "SCENARIOS",
    "Registry",
    "register_architecture",
    "register_model",
    "register_scenario",
    "ExperimentConfig",
    "Engine",
    "EngineStats",
    "shared_engine",
    "AggregateStats",
    "FleetRecord",
    "ResultSet",
    "RunRecord",
    "StoredResultSet",
]
