"""Batched results: filtering, aggregation and export.

:class:`ResultSet` is what :meth:`repro.api.engine.Engine.run_many`
returns — an ordered, immutable collection of :class:`RunRecord`
(config + its :class:`~repro.core.runtime.RunResult`) and
:class:`FleetRecord` (config + its
:class:`~repro.serving.fleet.FleetResult`) entries.  Both record kinds
expose the same flat metric surface, so one batch can mix single-device
and fleet experiments and still slice like a sequence, filter by any
config axis, aggregate energy/latency/deadline statistics per group, and
export to JSON or CSV with a uniform row schema.

:class:`StoredResultSet` is the *spill* variant behind
``Engine.run_many(..., spill=True)``: the same interface over records
that live in the experiment store rather than in memory — every
iteration streams them back one at a time, so a sweep over thousands of
configs exports with bounded peak memory and byte-identical output.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass

from ..core.runtime import RunResult
from ..errors import ConfigurationError
from ..serving.fleet import FleetResult
from .config import ExperimentConfig


@dataclass(frozen=True)
class RunRecord:
    """One executed experiment: the config and its run outcome."""

    config: ExperimentConfig
    result: RunResult
    #: Whether the engine served this run's allocation LUT from cache.
    #: Pure provenance — it never appears in exports, so a record
    #: reloaded from the experiment store exports identically to the
    #: freshly computed one.
    lut_cached: bool = False

    # -- flat accessors (used by filtering/aggregation/export) ------------------

    @property
    def kind(self) -> str:
        """The record kind: ``run`` (see :attr:`FleetRecord.kind`)."""
        return "run"

    @property
    def arch(self) -> str:
        """The config's architecture key."""
        return self.config.arch

    @property
    def model(self) -> str:
        """The config's model key."""
        return self.config.model

    @property
    def scenario(self) -> str:
        """The config's scenario key."""
        return self.config.scenario

    @property
    def policy(self) -> str:
        """The *resolved* policy (config may have left it defaulted)."""
        return self.result.policy.value

    @property
    def total_energy_nj(self) -> float:
        """Energy of the whole run, in nanojoules."""
        return self.result.total_energy_nj

    @property
    def energy_per_inference_nj(self) -> float:
        """Mean energy per executed inference, in nanojoules."""
        return self.result.energy_per_inference_nj

    @property
    def mean_power_mw(self) -> float:
        """Mean power over the run, in milliwatts."""
        return self.result.mean_power_mw

    @property
    def deadlines_met(self) -> bool:
        """Whether every slice finished inside its deadline."""
        return self.result.deadlines_met

    @property
    def missed_slices(self) -> int:
        """Slices that blew their deadline."""
        return sum(1 for r in self.result.records if not r.deadline_met)

    @property
    def total_inferences(self) -> int:
        """Inferences executed over the whole run."""
        return self.result.total_inferences

    @property
    def mean_slice_busy_ns(self) -> float:
        """Mean busy time per slice (compute + core + movement)."""
        records = self.result.records
        if not records:
            return 0.0
        return sum(r.busy_time_ns for r in records) / len(records)

    @property
    def worst_slice_busy_ns(self) -> float:
        """The most loaded slice's busy time."""
        records = self.result.records
        return max((r.busy_time_ns for r in records), default=0.0)

    @property
    def blocks_moved(self) -> int:
        """Weight blocks migrated over the whole run."""
        return sum(r.movement.blocks_moved for r in self.result.records)

    @property
    def devices(self) -> int:
        """Devices this run occupied (a single-device run: 1)."""
        return 1

    @property
    def dispatch(self) -> str:
        """The config's dispatch policy (idle on a single device)."""
        return self.config.dispatch

    @property
    def slice_count(self) -> int:
        """(device, slice) cells executed — the aggregation weight."""
        return len(self.result.records)

    @property
    def total_busy_ns(self) -> float:
        """Busy time summed over every executed slice."""
        return sum(r.busy_time_ns for r in self.result.records)

    @property
    def slices(self) -> int:
        """The *realized* per-device slice count: a registered Scenario
        instance ignores the config's slices knob, so the executed
        length is the truthful value to export."""
        return len(self.result.records)

    @property
    def seed(self) -> int:
        """The config's scenario-materialisation seed."""
        return self.config.seed

    @property
    def block_count(self) -> int:
        """The config's optimizer block resolution."""
        return self.config.block_count

    @property
    def time_steps(self) -> int:
        """The config's optimizer time-step resolution."""
        return self.config.time_steps

    @property
    def t_slice_ns(self) -> float:
        """The realized time-slice length, in nanoseconds."""
        return self.result.t_slice_ns

    def to_row(self) -> dict:
        """A flat, JSON/CSV-ready summary of this run.

        Fleet rows (:meth:`FleetRecord.to_row`) share the same
        :data:`ROW_FIELDS` schema, so mixed batches export to one CSV
        layout.
        """
        return {field: getattr(self, field) for field in ROW_FIELDS}


#: The shared flat-row schema of :meth:`RunRecord.to_row` and
#: :meth:`FleetRecord.to_row` — every name is a property on both record
#: kinds, so the export stays rectangular however a batch is mixed.
#: Deliberately *results only*: provenance like ``lut_cached`` stays off
#: the row, so identical experiments export identically whether they
#: were computed cold, LUT-cached, or reloaded from the experiment
#: store.
ROW_FIELDS = (
    "arch", "model", "scenario", "policy", "devices", "dispatch",
    "slices", "seed", "block_count", "time_steps", "t_slice_ns",
    "total_energy_nj", "energy_per_inference_nj", "mean_power_mw",
    "deadlines_met", "missed_slices", "total_inferences",
    "mean_slice_busy_ns", "worst_slice_busy_ns", "blocks_moved",
)


@dataclass(frozen=True)
class FleetRecord:
    """One executed fleet experiment: the config and its fleet outcome.

    Exposes the same flat metric surface as :class:`RunRecord` (per-slice
    statistics aggregate over every (device, slice) cell), so
    :class:`ResultSet` filtering, aggregation and export treat both
    uniformly.
    """

    config: ExperimentConfig
    result: FleetResult
    #: Whether the engine served the fleet's shared LUT from cache
    #: (provenance only — never exported; see :data:`ROW_FIELDS`).
    lut_cached: bool = False

    # -- flat accessors (the RunRecord surface) ---------------------------------

    @property
    def kind(self) -> str:
        """The record kind: ``fleet`` (see :attr:`RunRecord.kind`)."""
        return "fleet"

    @property
    def arch(self) -> str:
        """The config's architecture key (shared by every device)."""
        return self.config.arch

    @property
    def model(self) -> str:
        """The config's model key (shared by every device)."""
        return self.config.model

    @property
    def scenario(self) -> str:
        """The config's scenario key."""
        return self.config.scenario

    @property
    def policy(self) -> str:
        """The *resolved* placement policy (shared by every device)."""
        return self.result.device_results[0].policy.value

    @property
    def devices(self) -> int:
        """Number of devices the fleet ran."""
        return len(self.result.device_results)

    @property
    def dispatch(self) -> str:
        """The dispatch policy that split the arrival stream."""
        return self.result.dispatch

    @property
    def total_energy_nj(self) -> float:
        """Energy of the whole fleet run, in nanojoules."""
        return self.result.total_energy_nj

    @property
    def energy_per_inference_nj(self) -> float:
        """Mean energy per executed inference, in nanojoules."""
        return self.result.energy_per_inference_nj

    @property
    def mean_power_mw(self) -> float:
        """Mean fleet power over the run, in milliwatts."""
        return self.result.mean_power_mw

    @property
    def deadlines_met(self) -> bool:
        """Whether every (device, slice) cell met its deadline."""
        return self.result.deadlines_met

    @property
    def missed_slices(self) -> int:
        """(device, slice) cells that blew their deadline."""
        return sum(
            1
            for device in self.result.device_results
            for record in device.records
            if not record.deadline_met
        )

    @property
    def total_inferences(self) -> int:
        """Inferences executed across the whole fleet."""
        return self.result.total_inferences

    @property
    def slice_count(self) -> int:
        """(device, slice) cells executed — the aggregation weight."""
        return sum(len(d.records) for d in self.result.device_results)

    @property
    def total_busy_ns(self) -> float:
        """Busy time summed over every (device, slice) cell."""
        return sum(
            record.busy_time_ns
            for device in self.result.device_results
            for record in device.records
        )

    @property
    def mean_slice_busy_ns(self) -> float:
        """Mean busy time per (device, slice) cell."""
        cells = self.slice_count
        return self.total_busy_ns / cells if cells else 0.0

    @property
    def worst_slice_busy_ns(self) -> float:
        """The most loaded (device, slice) cell's busy time."""
        return max(
            (
                record.busy_time_ns
                for device in self.result.device_results
                for record in device.records
            ),
            default=0.0,
        )

    @property
    def blocks_moved(self) -> int:
        """Weight blocks migrated across the whole fleet."""
        return sum(
            record.movement.blocks_moved
            for device in self.result.device_results
            for record in device.records
        )

    @property
    def slices(self) -> int:
        """Realized slices per device (every device runs the full run)."""
        return len(self.result.device_results[0].records)

    @property
    def seed(self) -> int:
        """The config's scenario-materialisation seed."""
        return self.config.seed

    @property
    def block_count(self) -> int:
        """The config's optimizer block resolution."""
        return self.config.block_count

    @property
    def time_steps(self) -> int:
        """The config's optimizer time-step resolution."""
        return self.config.time_steps

    @property
    def t_slice_ns(self) -> float:
        """The realized time-slice length, in nanoseconds."""
        return self.result.device_results[0].t_slice_ns

    def to_row(self) -> dict:
        """A flat summary over the shared :data:`ROW_FIELDS` schema."""
        return {field: getattr(self, field) for field in ROW_FIELDS}


@dataclass(frozen=True)
class AggregateStats:
    """Energy/latency/deadline statistics over one group of runs."""

    runs: int
    total_energy_nj: float
    mean_energy_nj: float
    min_energy_nj: float
    max_energy_nj: float
    energy_per_inference_nj: float
    mean_power_mw: float
    total_inferences: int
    deadline_rate: float
    missed_slices: int
    mean_slice_busy_ns: float


#: The config axes `ResultSet.filter` / `.aggregate` understand.
_AXES = ("arch", "model", "scenario", "policy", "dispatch")


class ResultSet:
    """An ordered, immutable batch of experiment outcomes.

    Holds :class:`RunRecord` (single-device) and :class:`FleetRecord`
    (multi-device) entries interchangeably — both expose the same flat
    metric surface.
    """

    def __init__(self, records) -> None:
        self._records = tuple(records)
        for record in self._records:
            if not isinstance(record, (RunRecord, FleetRecord)):
                raise ConfigurationError(
                    f"ResultSet holds RunRecord/FleetRecord entries, "
                    f"got {type(record).__name__}"
                )

    # -- sequence protocol ------------------------------------------------------

    @property
    def records(self) -> tuple:
        """The underlying record tuple, in batch order."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        picked = self._records[index]
        if isinstance(index, slice):
            return ResultSet(picked)
        return picked

    def __add__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(self._records + other.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultSet({len(self)} runs)"

    # -- filtering --------------------------------------------------------------

    def filter(self, predicate=None, **axes) -> "ResultSet":
        """Select runs by config axis values and/or a predicate.

        Axis keywords (``arch=``, ``model=``, ``scenario=``, ``policy=``,
        ``dispatch=``) accept a single value or an iterable of accepted
        values; ``predicate`` is a callable over the record — a
        :class:`RunRecord` or :class:`FleetRecord` (both expose the
        same flat metric surface).
        """
        unknown = set(axes) - set(_AXES)
        if unknown:
            raise ConfigurationError(
                f"unknown filter axes: {', '.join(sorted(unknown))}; "
                f"known: {', '.join(_AXES)}"
            )
        wanted = {}
        for name, values in axes.items():
            if isinstance(values, str) or not hasattr(values, "__iter__"):
                values = [values]
            wanted[name] = {str(v).lower() for v in values}
        out = []
        for record in self:
            if any(
                getattr(record, name).lower() not in accepted
                for name, accepted in wanted.items()
            ):
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return ResultSet(out)

    def best(self, metric: str = "total_energy_nj",
             minimize: bool = True) -> RunRecord:
        """The single best run under a flat metric."""
        if not len(self):
            raise ConfigurationError("cannot pick best of an empty ResultSet")
        chooser = min if minimize else max
        return chooser(self, key=lambda r: getattr(r, metric))

    # -- aggregate statistics ---------------------------------------------------

    @property
    def total_energy_nj(self) -> float:
        """Energy summed over every record, in nanojoules."""
        return sum(r.total_energy_nj for r in self)

    @property
    def deadlines_met(self) -> bool:
        """Whether every record met all of its deadlines."""
        return all(r.deadlines_met for r in self)

    def aggregate(self, by: str = "arch") -> dict:
        """Group stats by a config axis (or a callable over records).

        Returns ``{group_key: AggregateStats}`` with groups in first-seen
        order.
        """
        if callable(by):
            key_of = by
        elif by in _AXES:
            key_of = lambda record: getattr(record, by)  # noqa: E731
        else:
            raise ConfigurationError(
                f"unknown aggregation axis {by!r}; known: {', '.join(_AXES)}"
            )
        groups: dict = {}
        for record in self:
            groups.setdefault(key_of(record), []).append(record)
        out = {}
        for key, records in groups.items():
            energies = [r.total_energy_nj for r in records]
            inferences = sum(r.total_inferences for r in records)
            slices = sum(r.slice_count for r in records)
            busy = sum(r.total_busy_ns for r in records)
            out[key] = AggregateStats(
                runs=len(records),
                total_energy_nj=sum(energies),
                mean_energy_nj=sum(energies) / len(records),
                min_energy_nj=min(energies),
                max_energy_nj=max(energies),
                energy_per_inference_nj=(
                    sum(energies) / inferences if inferences else 0.0
                ),
                mean_power_mw=(
                    sum(r.mean_power_mw for r in records) / len(records)
                ),
                total_inferences=inferences,
                deadline_rate=(
                    sum(1 for r in records if r.deadlines_met) / len(records)
                ),
                missed_slices=sum(r.missed_slices for r in records),
                mean_slice_busy_ns=busy / slices if slices else 0.0,
            )
        return out

    def savings_vs(self, reference_arch: str) -> dict:
        """Fractional energy savings of the reference arch vs each other.

        For every (model, scenario) pair present, computes
        ``1 - E_ref / E_other`` — the paper's Fig. 5 statistic — and
        averages over pairs.  Returns ``{other_arch: mean_savings}``.
        """
        by_cell: dict = {}
        for record in self:
            by_cell.setdefault((record.model, record.scenario), {})[
                record.arch
            ] = record.total_energy_nj
        sums: dict = {}
        counts: dict = {}
        for cell in by_cell.values():
            matches = [a for a in cell if a.lower() == reference_arch.lower()]
            if not matches:
                continue
            ref_energy = cell[matches[0]]
            for arch, energy in cell.items():
                if arch == matches[0]:
                    continue
                sums[arch] = sums.get(arch, 0.0) + (1.0 - ref_energy / energy)
                counts[arch] = counts.get(arch, 0) + 1
        if not sums:
            raise ConfigurationError(
                f"no (model, scenario) cell contains {reference_arch!r}"
            )
        return {arch: sums[arch] / counts[arch] for arch in sums}

    # -- export -----------------------------------------------------------------

    def to_rows(self) -> list:
        """Flat per-run summary dicts, in run order."""
        return [record.to_row() for record in self]

    def to_json(self, path=None, indent: int = 2) -> str:
        """Serialise the per-run summaries as JSON (optionally to a file)."""
        text = json.dumps(self.to_rows(), indent=indent)
        if path is not None:
            with open(path, "w") as handle:
                handle.write(text + "\n")
        return text

    def to_csv(self, path=None) -> str:
        """Serialise the per-run summaries as CSV (optionally to a file)."""
        rows = self.to_rows()
        buffer = io.StringIO()
        if rows:
            writer = csv.DictWriter(
                buffer, fieldnames=list(rows[0]), lineterminator="\n"
            )
            writer.writeheader()
            writer.writerows(rows)
        text = buffer.getvalue()
        if path is not None:
            with open(path, "w", newline="") as handle:
                handle.write(text)
        return text


class StoredResultSet(ResultSet):
    """A :class:`ResultSet` whose records live in the experiment store.

    ``Engine.run_many(..., spill=True)`` returns one instead of holding
    every computed record: the set keeps only the config tuple, and each
    record is streamed back from the store (one ``get`` per access) when
    iterated.  The full :class:`ResultSet` surface — filtering,
    aggregation, ``best``, ``to_rows``/``to_json``/``to_csv`` — works
    unchanged and produces byte-identical exports, because the base
    class iterates ``self`` and the store returns the very records an
    in-memory batch would have held.  Peak memory is bounded by one
    record at a time plus the flat rows; only :attr:`records`,
    :meth:`filter` and slicing re-materialise records in memory.
    """

    def __init__(self, store, configs) -> None:
        """Wrap ``store`` (a :class:`repro.store.Store`) and the batch's
        configs, in batch order.  Records are fetched lazily — a config
        whose entry has vanished from the store raises on access."""
        self._store = store
        self._configs = tuple(configs)

    @property
    def store(self):
        """The backing experiment store."""
        return self._store

    @property
    def configs(self) -> tuple:
        """The batch's configs, in batch order."""
        return self._configs

    @property
    def records(self) -> tuple:
        """Every record, materialised in memory (loses the bound)."""
        return tuple(self)

    def _load(self, config) -> "RunRecord | FleetRecord":
        record = self._store.get(config)
        if record is None:
            raise ConfigurationError(
                f"spilled record missing from the experiment store at "
                f"{self._store.root} for config {config.fingerprint()}; "
                f"was the store cleared mid-sweep?"
            )
        return record

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self):
        for config in self._configs:
            yield self._load(config)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return StoredResultSet(self._store, self._configs[index])
        return self._load(self._configs[index])

    def __add__(self, other: "ResultSet") -> "ResultSet":
        return ResultSet(tuple(self) + tuple(other))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StoredResultSet({len(self)} runs @ {self._store.root})"
        )
