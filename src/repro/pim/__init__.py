"""PIM modules and clusters.

A *PIM module* couples a processing element with a hybrid MRAM+SRAM memory
behind a module interface (Fig. 1).  Modules of the same kind are grouped
into a *cluster* — HH-PIM has one High-Performance cluster at 1.2 V and one
Low-Power cluster at 0.8 V, four modules each (Table I).
"""

from .module import ModuleKind, PIMModule
from .cluster import PIMCluster

__all__ = ["ModuleKind", "PIMModule", "PIMCluster"]
